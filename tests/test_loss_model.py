"""Tests for the operator output-loss model (Eq. 1–3), anchored to Fig. 2.

The paper's worked example: task t22 fails; with rates λ(t11)=2, λ(t12)=1,
λ(t21)=3, λ(t22)=2, the output loss of t31 is 2/5 when O3 is a
correlated-input operator and 1/4 when it is independent-input.
"""

import pytest

from repro.core import propagate_information_loss
from repro.topology import TaskId


T22 = TaskId("O2", 1)
T31 = TaskId("O3", 0)


class TestFig2Example:
    def test_correlated_loss_matches_paper(self, fig2_topology, fig2_rates):
        loss = propagate_information_loss(fig2_topology, fig2_rates, {T22})
        assert loss[T31] == pytest.approx(2.0 / 5.0)

    def test_independent_loss_matches_paper(self, fig2_independent,
                                            fig2_independent_rates):
        loss = propagate_information_loss(
            fig2_independent, fig2_independent_rates, {T22}
        )
        assert loss[T31] == pytest.approx(1.0 / 4.0)

    def test_ignore_correlation_flag_reduces_join_to_union(self, fig2_topology,
                                                           fig2_rates):
        loss = propagate_information_loss(
            fig2_topology, fig2_rates, {T22}, ignore_correlation=True
        )
        assert loss[T31] == pytest.approx(1.0 / 4.0)

    def test_failed_task_has_total_loss(self, fig2_topology, fig2_rates):
        loss = propagate_information_loss(fig2_topology, fig2_rates, {T22})
        assert loss[T22] == 1.0

    def test_no_failure_means_no_loss(self, fig2_topology, fig2_rates):
        loss = propagate_information_loss(fig2_topology, fig2_rates, frozenset())
        assert all(v == 0.0 for v in loss.values())


class TestPropagationMechanics:
    def test_loss_propagates_through_chain(self, chain_topology, chain_rates):
        loss = propagate_information_loss(
            chain_topology, chain_rates, {TaskId("S", 0)}
        )
        # One of four equal sources lost; every downstream level sees 1/4.
        assert loss[TaskId("A", 0)] == pytest.approx(0.25)
        assert loss[TaskId("C", 0)] == pytest.approx(0.25)

    def test_failed_intermediate_blocks_its_share(self, chain_topology, chain_rates):
        loss = propagate_information_loss(
            chain_topology, chain_rates, {TaskId("A", 1)}
        )
        # A[1] handles 1/4 of the stream (uniform weights).
        assert loss[TaskId("B", 0)] == pytest.approx(0.25)
        assert loss[TaskId("C", 0)] == pytest.approx(0.25)

    def test_all_sources_failed_gives_total_loss(self, chain_topology, chain_rates):
        failed = set(chain_topology.tasks_of("S"))
        loss = propagate_information_loss(chain_topology, chain_rates, failed)
        assert loss[TaskId("C", 0)] == pytest.approx(1.0)

    def test_join_losing_one_stream_loses_everything(self, join_topology, join_rates):
        failed = {TaskId("Sb", 0), TaskId("Sb", 1)}
        loss = propagate_information_loss(join_topology, join_rates, failed)
        assert loss[TaskId("J", 0)] == pytest.approx(1.0)
        assert loss[TaskId("K", 0)] == pytest.approx(1.0)

    def test_union_losing_one_stream_loses_its_share(self, join_topology, join_rates):
        # Same failure, correlation ignored: J still gets the A-side stream.
        failed = {TaskId("Sb", 0), TaskId("Sb", 1)}
        loss = propagate_information_loss(
            join_topology, join_rates, failed, ignore_correlation=True
        )
        assert 0.0 < loss[TaskId("J", 0)] < 1.0

    def test_losses_clamped_to_unit_interval(self, join_topology, join_rates):
        failed = set(join_topology.tasks()) - {TaskId("K", 0)}
        loss = propagate_information_loss(join_topology, join_rates, failed)
        assert all(0.0 <= v <= 1.0 for v in loss.values())

    def test_alive_task_with_all_inputs_lost_emits_nothing(self, chain_topology,
                                                           chain_rates):
        failed = set(chain_topology.tasks_of("A"))
        loss = propagate_information_loss(chain_topology, chain_rates, failed)
        # B tasks are alive but every input substream is lost.
        assert loss[TaskId("B", 0)] == pytest.approx(1.0)

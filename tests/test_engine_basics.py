"""Engine basics: batch protocol, punctuations, determinism, accounting."""

import pytest

from repro.engine import EngineConfig, StreamEngine, TaskStatus
from repro.errors import SimulationError
from repro.topology import TaskId

from tests.engine_helpers import build_engine, sink_outputs, small_logic, small_topology


class TestBatchProtocol:
    def test_processes_one_batch_per_interval(self):
        engine = build_engine(EngineConfig(checkpoint_interval=None))
        engine.run(10.0)
        outs = sink_outputs(engine)
        assert sorted(outs) == list(range(10))

    def test_sink_receives_all_tuples_with_selectivity_one(self):
        engine = build_engine(EngineConfig(checkpoint_interval=None), rate=20.0)
        engine.run(10.0)
        total = sum(len(t) for t in sink_outputs(engine).values())
        assert total == 2 * 20 * 10  # 2 sources x 20 t/s x 10 s

    def test_batches_wait_for_all_upstream_punctuations(self):
        engine = build_engine(EngineConfig(checkpoint_interval=None))
        engine.run(5.0)
        sink = engine.runtime(TaskId("L1", 0))
        # Progress per upstream task is aligned: same last batch everywhere.
        assert len(set(sink.progress.values())) == 1

    def test_progress_vector_tracks_batches(self):
        engine = build_engine(EngineConfig(checkpoint_interval=None))
        engine.run(8.0)
        sink = engine.runtime(TaskId("L1", 0))
        assert all(v >= 6 for v in sink.progress.values())

    def test_all_outputs_complete_without_failures(self):
        engine = build_engine(EngineConfig(checkpoint_interval=None))
        engine.run(6.0)
        assert all(r.complete for r in engine.metrics.sink_records)

    def test_engine_runs_exactly_once(self):
        engine = build_engine(EngineConfig(checkpoint_interval=None))
        engine.run(2.0)
        with pytest.raises(SimulationError):
            engine.run(2.0)

    def test_unknown_plan_task_rejected(self):
        topo = small_topology()
        with pytest.raises(SimulationError):
            StreamEngine(topo, small_logic(), EngineConfig(),
                         plan=[TaskId("Z", 0)])


class TestDeterminism:
    def test_two_runs_produce_identical_sink_output(self):
        a = build_engine(EngineConfig(checkpoint_interval=5.0))
        b = build_engine(EngineConfig(checkpoint_interval=5.0))
        a.run(12.0)
        b.run(12.0)
        assert sink_outputs(a) == sink_outputs(b)

    def test_selectivity_filters_deterministically(self):
        a = build_engine(EngineConfig(checkpoint_interval=None), selectivity=0.5)
        b = build_engine(EngineConfig(checkpoint_interval=None), selectivity=0.5)
        a.run(6.0)
        b.run(6.0)
        assert sink_outputs(a) == sink_outputs(b)
        total = sum(len(t) for t in sink_outputs(a).values())
        assert 0 < total < 2 * 20 * 6  # roughly half survives two operators


class TestAccounting:
    def test_cpu_time_recorded_for_processing(self):
        engine = build_engine(EngineConfig(checkpoint_interval=None))
        engine.run(6.0)
        cpu = engine.metrics.cpu_of(TaskId("L1", 0))
        assert cpu.process > 0.0
        assert cpu.checkpoint == 0.0

    def test_tuples_processed_counted(self):
        engine = build_engine(EngineConfig(checkpoint_interval=None))
        engine.run(4.0)
        assert engine.metrics.tuples_processed > 0

    def test_all_tasks_running_after_clean_run(self):
        engine = build_engine(EngineConfig(checkpoint_interval=None))
        engine.run(4.0)
        assert all(
            rt.status is TaskStatus.RUNNING for rt in engine.runtimes.values()
        )

    def test_busy_until_advances(self):
        engine = build_engine(EngineConfig(checkpoint_interval=None))
        engine.run(4.0)
        assert engine.runtime(TaskId("L0", 0)).busy_until > 0.0


class TestCheckpointing:
    def test_checkpoints_taken_periodically(self):
        engine = build_engine(EngineConfig(checkpoint_interval=3.0,
                                           stagger_checkpoints=False))
        engine.run(12.0)
        assert engine.metrics.checkpoints_taken > 0
        ckpt = engine.checkpoints.latest(TaskId("L1", 0))
        assert ckpt is not None
        assert ckpt.batch_index >= 8

    def test_no_checkpoints_when_disabled(self):
        engine = build_engine(EngineConfig(checkpoint_interval=None))
        engine.run(8.0)
        assert engine.metrics.checkpoints_taken == 0

    def test_checkpoint_charges_cpu(self):
        engine = build_engine(EngineConfig(checkpoint_interval=2.0))
        engine.run(10.0)
        assert engine.metrics.cpu_of(TaskId("L0", 0)).checkpoint > 0.0

    def test_trim_follows_checkpoint(self):
        engine = build_engine(EngineConfig(checkpoint_interval=2.0,
                                           stagger_checkpoints=False))
        engine.run(10.0)
        source = engine.runtime(TaskId("S", 0))
        assert source.trimmed_upto >= 0
        # The trim point never exceeds any subscriber's acknowledgement.
        assert source.trimmed_upto <= min(source.acked.values())

    def test_stagger_spreads_checkpoint_phases(self):
        engine = build_engine(EngineConfig(checkpoint_interval=4.0,
                                           stagger_checkpoints=True))
        phases = {rt.checkpoint_phase for rt in engine.runtimes.values()}
        assert len(phases) > 1

"""Tests for the deterministic chaos-injection harness (repro.chaos).

Unit layers are socket-free: the seeded decision coin, the wire-fault
hook with an injected sleep, the fault log's canonical form, and the
controller against a stub backend.  The end-to-end layers run real
local fleets: a determinism run (same seed twice → identical canonical
fault logs) and the CI-style run (kills + a coordinator crash mid-grid
→ zero errors and a sink byte-identical to serial).
"""

import json
import threading
import time

import pytest

from repro.chaos import (
    ChaosController,
    ChaosEvent,
    ChaosSchedule,
    FaultLog,
    WireFaults,
    chaos_runner,
    run_chaos,
)
from repro.chaos.inject import (
    ENV_FAIL_FRACTION,
    ENV_SEED,
    ENV_SLOW_MS,
    _decide,
)
from repro.chaos.schedule import ChaosError
from repro.scenarios import GridSession, JsonlSink, Scenario, ScenarioResult


def cell(seed: int) -> Scenario:
    """A fast scenario whose digest is distinct per seed."""
    return Scenario(name=f"cell-{seed}", seed=seed, duration=5.0,
                    planner="none",
                    workload_params={"window_seconds": 5.0,
                                     "rate_per_source": 50.0})


def lease(index: int, attempt: int = 1) -> dict:
    return {"type": "cell", "cell": index + 1, "index": index,
            "attempt": attempt, "scenario": {}, "runner": None}


def result(cell_id: int) -> dict:
    return {"op": "result", "cell": cell_id, "outcome": {}}


# ---------------------------------------------------------------------------
# Schedules
# ---------------------------------------------------------------------------

class TestChaosSchedule:
    def test_json_round_trip(self):
        schedule = ChaosSchedule(
            seed=7,
            events=(ChaosEvent(0.5, "kill", 1), ChaosEvent(1.2, "crash")),
            delay_ms=50.0, delay_fraction=0.3, drop_fraction=0.1,
            duplicate_fraction=0.2, slow_runner_ms=25.0, fail_fraction=0.05)
        data = json.loads(json.dumps(schedule.to_dict()))
        assert ChaosSchedule.from_dict(data) == schedule

    def test_event_validation(self):
        with pytest.raises(ChaosError, match="unknown chaos action"):
            ChaosEvent(0.5, "reboot")
        with pytest.raises(ChaosError, match=">= 0"):
            ChaosEvent(-1.0, "kill")
        with pytest.raises(ChaosError, match="slot"):
            ChaosEvent(0.5, "kill", -1)

    @pytest.mark.parametrize("kwargs", [
        {"delay_ms": -1.0},
        {"slow_runner_ms": -5.0},
        {"delay_fraction": 1.5},
        {"drop_fraction": -0.1},
        {"duplicate_fraction": 2.0},
        {"fail_fraction": 1.01},
    ])
    def test_knob_validation(self, kwargs):
        with pytest.raises(ChaosError):
            ChaosSchedule(**kwargs)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ChaosError, match="unknown chaos schedule"):
            ChaosSchedule.from_dict({"seed": 1, "chaos_level": "maximum"})

    def test_delay_fraction_defaults_to_everything(self):
        assert ChaosSchedule(delay_ms=10.0).effective_delay_fraction == 1.0
        assert ChaosSchedule(delay_ms=10.0, delay_fraction=0.25) \
            .effective_delay_fraction == 0.25
        assert ChaosSchedule().effective_delay_fraction == 0.0

    def test_kill_and_crash_tallies(self):
        schedule = ChaosSchedule(events=(
            ChaosEvent(0.1, "kill"), ChaosEvent(0.2, "kill", 1),
            ChaosEvent(0.3, "pause"), ChaosEvent(0.4, "crash")))
        assert schedule.kills() == 2
        assert schedule.crashes() == 1


# ---------------------------------------------------------------------------
# The seeded coin + wire faults
# ---------------------------------------------------------------------------

class TestDecide:
    def test_same_seed_same_decisions(self):
        ids = [f"out:{i}:1" for i in range(200)]
        first = [_decide(7, "drop", i, 0.5) for i in ids]
        assert first == [_decide(7, "drop", i, 0.5) for i in ids]

    def test_different_seeds_differ(self):
        ids = [f"out:{i}:1" for i in range(200)]
        assert [_decide(7, "drop", i, 0.5) for i in ids] \
            != [_decide(8, "drop", i, 0.5) for i in ids]

    def test_fraction_extremes(self):
        assert not _decide(7, "delay", "in:3", 0.0)
        assert _decide(7, "delay", "in:3", 1.0)


class TestWireFaults:
    def test_ineligible_messages_pass_through_untouched(self):
        faults = WireFaults(
            ChaosSchedule(drop_fraction=1.0, duplicate_fraction=1.0,
                          delay_ms=1000.0),
            sleep=lambda s: pytest.fail("must not sleep"))
        for direction, message in [
            ("out", {"type": "welcome", "worker": "w"}),
            ("out", {"type": "shutdown"}),
            ("in", {"op": "heartbeat"}),
            ("in", {"op": "register", "worker": "w"}),
        ]:
            assert faults.apply(direction, "w", message) == [message]
        assert faults.log.wire == []

    def test_drop_swallows_outbound_leases_only(self):
        faults = WireFaults(ChaosSchedule(drop_fraction=1.0),
                            sleep=lambda s: None)
        assert faults.apply("out", "w", lease(0)) == []
        # Results are never dropped: the same lease would be re-dropped
        # on every retry, starving the cell forever.
        assert faults.apply("in", "w", result(1)) == [result(1)]
        assert faults.log.counts() == {"drop": 1}

    def test_duplicate_delivers_twice(self):
        faults = WireFaults(ChaosSchedule(duplicate_fraction=1.0),
                            sleep=lambda s: None)
        assert faults.apply("out", "w", lease(3)) == [lease(3), lease(3)]
        assert faults.apply("in", "w", result(4)) \
            == [result(4), result(4)]
        assert faults.log.counts() == {"duplicate": 2}

    def test_delay_sleeps_through_the_injected_clock(self):
        slept = []
        faults = WireFaults(ChaosSchedule(delay_ms=50.0),
                            sleep=slept.append)
        assert faults.apply("out", "w", lease(0)) == [lease(0)]
        assert slept == [0.05]
        assert faults.log.counts() == {"delay": 1}

    def test_reattempted_lease_gets_a_fresh_coin(self):
        # Find a seed/fraction where attempt 1 drops and attempt 2
        # survives — the liveness property drop_fraction < 1 relies on.
        schedule = ChaosSchedule(seed=3, drop_fraction=0.5)
        faults = WireFaults(schedule, sleep=lambda s: None)
        fates = {a: faults.apply("out", "w", lease(11, a)) != []
                 for a in range(1, 20)}
        assert True in fates.values() and False in fates.values()


class TestFaultLog:
    def test_canonical_is_insertion_order_independent_for_wire(self):
        a, b = FaultLog(), FaultLog()
        records = [{"fault": "delay", "id": f"out:{i}:1"} for i in range(5)]
        for record in records:
            a.record_wire(record)
        for record in reversed(records):
            b.record_wire(record)
        assert a.canonical() == b.canonical()

    def test_canonical_preserves_scheduled_order(self):
        a, b = FaultLog(), FaultLog()
        first = ChaosEvent(0.1, "kill").to_dict()
        second = ChaosEvent(0.2, "pause", 1).to_dict()
        a.record_scheduled(first)
        a.record_scheduled(second)
        b.record_scheduled(second)
        b.record_scheduled(first)
        assert a.canonical() != b.canonical()

    def test_errors_are_not_part_of_the_canonical_form(self):
        a, b = FaultLog(), FaultLog()
        a.record_error("kill@0.5: no such slot")
        assert a.canonical() == b.canonical()
        assert a.to_dict()["errors"] == ["kill@0.5: no such slot"]


# ---------------------------------------------------------------------------
# The controller, against a stub backend
# ---------------------------------------------------------------------------

class StubFleet:
    def __init__(self, size: int):
        self.processes = list(range(size))
        self.calls: list[tuple[str, int]] = []

    def kill(self, slot):
        self.calls.append(("kill", slot))

    def pause(self, slot):
        self.calls.append(("pause", slot))

    def resume(self, slot):
        self.calls.append(("resume", slot))


class StubBackend:
    def __init__(self, fleets):
        self._fleets = fleets
        self.restarts = 0

    def restart_coordinator(self):
        self.restarts += 1


class TestChaosController:
    def test_fires_events_in_time_order_and_logs_them(self):
        fleets = [StubFleet(2), StubFleet(1)]
        backend = StubBackend(fleets)
        schedule = ChaosSchedule(events=(
            ChaosEvent(0.10, "crash"),
            ChaosEvent(0.05, "pause", 1),
            ChaosEvent(0.15, "kill", 2),   # flattened: fleet[1] slot 0
        ))
        controller = ChaosController(schedule).attach(backend)
        controller.start()
        assert controller.wait(5.0)
        controller.stop()
        assert fleets[0].calls == [("pause", 1)]
        assert fleets[1].calls == [("kill", 0)]
        assert backend.restarts == 1
        assert [r["action"] for r in controller.log.scheduled] \
            == ["pause", "crash", "kill"]
        assert controller.log.errors == []

    def test_unresolvable_slot_is_a_harness_error_not_a_crash(self):
        backend = StubBackend([StubFleet(1)])
        schedule = ChaosSchedule(events=(ChaosEvent(0.0, "kill", 5),))
        controller = ChaosController(schedule).attach(backend)
        controller.start()
        assert controller.wait(5.0)
        controller.stop()
        # The planned event is logged regardless (canonical form stays
        # a pure function of the schedule); the failure is separate.
        assert [r["action"] for r in controller.log.scheduled] == ["kill"]
        assert len(controller.log.errors) == 1
        assert "no fleet worker" in controller.log.errors[0]

    def test_start_requires_attach_and_refuses_restarts(self):
        controller = ChaosController(ChaosSchedule())
        with pytest.raises(ChaosError, match="attach"):
            controller.start()
        controller.attach(StubBackend([]))
        controller.start()
        with pytest.raises(ChaosError, match="already started"):
            controller.start()
        controller.stop()

    def test_stop_cancels_pending_events(self):
        fleet = StubFleet(1)
        schedule = ChaosSchedule(events=(ChaosEvent(30.0, "kill"),))
        controller = ChaosController(schedule).attach(StubBackend([fleet]))
        controller.start()
        controller.stop()
        assert fleet.calls == []
        assert controller.log.scheduled == []


# ---------------------------------------------------------------------------
# The in-worker runner
# ---------------------------------------------------------------------------

class TestChaosRunner:
    def test_plain_delegation_without_env(self, monkeypatch):
        for key in (ENV_SLOW_MS, ENV_FAIL_FRACTION, ENV_SEED):
            monkeypatch.delenv(key, raising=False)
        outcome = chaos_runner(cell(1))
        assert isinstance(outcome, ScenarioResult)

    def test_fail_fraction_is_deterministic_per_scenario(self, monkeypatch):
        monkeypatch.setenv(ENV_FAIL_FRACTION, "0.5")
        monkeypatch.setenv(ENV_SEED, "7")
        monkeypatch.setenv(ENV_SLOW_MS, "0")

        def fate(scenario):
            try:
                chaos_runner(scenario)
                return "ok"
            except RuntimeError:
                return "fail"

        fates = [fate(cell(i)) for i in range(10)]
        assert "ok" in fates and "fail" in fates   # fraction really bites
        assert fates == [fate(cell(i)) for i in range(10)]   # and repeats


# ---------------------------------------------------------------------------
# run_chaos: validation + end-to-end
# ---------------------------------------------------------------------------

class TestRunChaos:
    def test_drop_without_lease_timeout_is_refused(self):
        with pytest.raises(ChaosError, match="lease_timeout"):
            run_chaos([cell(0)], ChaosSchedule(drop_fraction=0.5))

    def test_custom_runner_conflicts_with_runner_faults(self):
        with pytest.raises(ChaosError, match="not both"):
            run_chaos([cell(0)], ChaosSchedule(slow_runner_ms=10.0),
                      runner=chaos_runner)

    def test_same_seed_injects_identical_faults(self):
        """The determinism acceptance test: two runs, one canonical log.

        Kills and crashes are excluded on purpose — a kill changes
        *attempt* numbers on re-leases, which re-keys the wire coins —
        but pauses, delays and duplicates must reproduce exactly.  The
        slow runner stretches the grid so every scheduled event fires
        in both runs.
        """
        grid = [cell(i) for i in range(8)]
        schedule = ChaosSchedule(
            seed=11,
            events=(ChaosEvent(0.2, "pause", 1), ChaosEvent(0.45, "resume", 1)),
            delay_ms=20.0, delay_fraction=0.5,
            duplicate_fraction=0.4,
            slow_runner_ms=100.0)

        logs = []
        for _run in range(2):
            report, log = run_chaos(grid, schedule, local_workers=2,
                                    retries=2)
            assert report.executed == len(grid)
            assert report.errors == 0
            logs.append(log)
        assert logs[0].canonical() == logs[1].canonical()
        # And the schedule really did something in both runs.
        counts = logs[0].counts()
        assert counts.get("pause") == 1 and counts.get("resume") == 1
        assert counts.get("delay", 0) > 0
        assert counts.get("duplicate", 0) > 0

    def test_kills_and_coordinator_crash_cannot_corrupt_the_grid(
            self, tmp_path):
        """The CI chaos assertion: carnage in, clean identical sink out."""
        grid = [cell(i) for i in range(12)]
        serial = tmp_path / "serial.jsonl"
        report = GridSession("serial", sink=JsonlSink(serial)).run(grid)
        assert report.errors == 0

        chaotic = tmp_path / "chaos.jsonl"
        schedule = ChaosSchedule(
            seed=7,
            events=(ChaosEvent(0.4, "kill", 0),
                    ChaosEvent(0.9, "crash"),
                    ChaosEvent(1.2, "kill", 1)),
            delay_ms=25.0, delay_fraction=0.5,
            duplicate_fraction=0.3,
            slow_runner_ms=150.0)
        report, log = run_chaos(grid, schedule, local_workers=2,
                                sink=JsonlSink(chaotic), retries=2,
                                collect=False)
        assert report.executed == len(grid)
        assert report.errors == 0
        assert log.errors == []
        counts = log.counts()
        assert counts.get("kill") == 2 and counts.get("crash") == 1
        assert chaotic.read_bytes() == serial.read_bytes()


# ---------------------------------------------------------------------------
# The CLI face
# ---------------------------------------------------------------------------

class TestChaosCli:
    def test_cli_runs_a_schedule_file_and_writes_the_fault_log(
            self, tmp_path, capsys):
        from repro.experiments.cli import main

        grid_file = tmp_path / "grid.json"
        grid_file.write_text(json.dumps(
            {"scenarios": [cell(i).to_dict() for i in range(3)]}))
        schedule_file = tmp_path / "schedule.json"
        schedule_file.write_text(json.dumps(ChaosSchedule(
            seed=5, delay_ms=10.0, duplicate_fraction=0.5).to_dict()))
        fault_log = tmp_path / "faults.json"
        output = tmp_path / "out.jsonl"

        code = main(["chaos", str(grid_file),
                     "--schedule", str(schedule_file),
                     "--workers", "1",
                     "--output", str(output),
                     "--fault-log", str(fault_log)])
        out = capsys.readouterr().out
        assert code == 0
        assert "[chaos] seed 5" in out
        assert "3 cells: 3 executed, 0 errors" in out
        assert output.exists()
        assert len(output.read_text().splitlines()) == 3
        logged = json.loads(fault_log.read_text())
        assert set(logged) == {"scheduled", "wire", "errors"}

    def test_cli_inline_flags_build_the_schedule(self, tmp_path, capsys):
        from repro.chaos.cli import chaos_main

        grid_file = tmp_path / "grid.json"
        grid_file.write_text(json.dumps(
            {"scenarios": [cell(0).to_dict()]}))
        code = chaos_main([str(grid_file), "--seed", "3", "--workers", "1",
                           "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["seed"] == 3
        assert payload["executed"] == 1 and payload["errors"] == 0

    def test_cli_rejects_malformed_event_flags(self, tmp_path):
        from repro.chaos.cli import chaos_main

        grid_file = tmp_path / "grid.json"
        grid_file.write_text(json.dumps(
            {"scenarios": [cell(0).to_dict()]}))
        with pytest.raises(ChaosError, match="expected T or T:SLOT"):
            chaos_main([str(grid_file), "--kill", "soon"])

"""Unit tests for engine internals: runtimes, checkpoints store, metrics."""

import pytest

from repro.engine import (
    Batch,
    Checkpoint,
    CheckpointStore,
    CostModel,
    EngineConfig,
    LogicFactory,
    MetricsCollector,
    RecoveryMode,
    SinkRecord,
    forged_batch,
)
from repro.engine.tasks import TaskRuntime, TaskStatus
from repro.errors import SimulationError
from repro.topology import TaskId

T = TaskId("A", 0)
UP = TaskId("S", 0)
UP2 = TaskId("S", 1)


def _runtime(upstreams=(UP, UP2), replicated=False):
    return TaskRuntime(
        T, is_source=False, is_sink=False,
        expected_upstreams=tuple(upstreams), replicated=replicated,
    )


class TestTaskRuntime:
    def test_inbox_requires_all_upstreams(self):
        rt = _runtime()
        assert not rt.inbox_ready(0)
        rt.inbox_put(Batch(UP, T, 0, (("k", 1),)))
        assert not rt.inbox_ready(0)
        rt.inbox_put(Batch(UP2, T, 0, ()))
        assert rt.inbox_ready(0)

    def test_stale_batches_rejected(self):
        rt = _runtime()
        rt.next_batch = 5
        assert not rt.inbox_put(Batch(UP, T, 4, ()))

    def test_real_batch_replaces_forged(self):
        rt = _runtime()
        assert rt.inbox_put(forged_batch(UP, T, 0))
        assert rt.inbox_put(Batch(UP, T, 0, (("k", 1),)))
        assert not rt.inbox[0][UP].forged

    def test_forged_never_overwrites_real(self):
        rt = _runtime()
        rt.inbox_put(Batch(UP, T, 0, (("k", 1),)))
        assert not rt.inbox_put(forged_batch(UP, T, 0))

    def test_duplicate_real_batch_rejected(self):
        rt = _runtime()
        assert rt.inbox_put(Batch(UP, T, 0, ()))
        assert not rt.inbox_put(Batch(UP, T, 0, ()))

    def test_caught_up_against_pre_failure_progress(self):
        rt = _runtime()
        rt.pre_failure_progress = {UP: 4, UP2: 4}
        rt.progress = {UP: 3, UP2: 5}
        assert not rt.caught_up()
        rt.progress = {UP: 4, UP2: 5}
        assert rt.caught_up()

    def test_source_caught_up_by_emitted(self):
        rt = TaskRuntime(UP, is_source=True, is_sink=False,
                         expected_upstreams=(), replicated=False)
        rt.pre_failure_emitted = 7
        rt.emitted = 6
        assert not rt.caught_up()
        rt.emitted = 7
        assert rt.caught_up()

    def test_buffered_tuples_counts_range(self):
        rt = _runtime()
        rt.record_output(1, {UP: Batch(T, UP, 1, (("k", 1), ("k", 2)))})
        rt.record_output(2, {UP: Batch(T, UP, 2, (("k", 3),))})
        assert rt.buffered_tuples(0, 2) == 3
        assert rt.buffered_tuples(1, 2) == 1
        assert rt.buffered_tuples(2, 2) == 0

    def test_buffered_tuples_survive_physical_trim(self):
        rt = _runtime()
        rt.record_output(1, {UP: Batch(T, UP, 1, (("k", 1), ("k", 2)))})
        rt.record_output(2, {UP: Batch(T, UP, 2, (("k", 3),))})
        rt.trim_history(1)
        assert 1 not in rt.history and 2 in rt.history
        assert rt.history_floor == 2
        assert rt.buffered_tuples(0, 2) == 3  # skeleton keeps the counts

    def test_trim_history_is_monotonic(self):
        rt = _runtime()
        for index in range(4):
            rt.record_output(index, {UP: Batch(T, UP, index, (("k", index),))})
        rt.trim_history(2)
        rt.trim_history(0)  # going backwards is a no-op
        assert sorted(rt.history) == [3]
        assert rt.peak_history_batches == 4


class TestBatches:
    def test_forged_batches_are_incomplete(self):
        batch = forged_batch(UP, T, 3)
        assert batch.forged and not batch.complete and batch.size == 0

    def test_sink_record_tentative_flag(self):
        record = SinkRecord(T, 0, (), complete=False, emitted_at=1.0)
        assert record.tentative
        assert not SinkRecord(T, 0, (), True, 1.0).tentative


class TestCheckpointStore:
    def test_latest_wins(self):
        store = CheckpointStore()
        store.put(Checkpoint(T, 5, None, {}, 0, 5.0))
        store.put(Checkpoint(T, 9, None, {}, 0, 9.0))
        assert store.latest(T).batch_index == 9

    def test_stale_checkpoint_ignored(self):
        store = CheckpointStore()
        store.put(Checkpoint(T, 9, None, {}, 0, 9.0))
        store.put(Checkpoint(T, 5, None, {}, 0, 5.0))
        assert store.latest(T).batch_index == 9

    def test_missing_task_returns_none(self):
        assert CheckpointStore().latest(T) is None


class TestMetricsCollector:
    def test_cpu_entries_created_on_demand(self):
        metrics = MetricsCollector()
        metrics.cpu_of(T).process += 1.0
        assert metrics.cpu_of(T).total == 1.0

    def test_checkpoint_ratio(self):
        metrics = MetricsCollector()
        cpu = metrics.cpu_of(T)
        cpu.process, cpu.checkpoint = 10.0, 2.0
        assert cpu.checkpoint_ratio == pytest.approx(0.2)
        assert metrics.checkpoint_cpu_ratio() == pytest.approx(0.2)

    def test_recovery_filtering(self):
        metrics = MetricsCollector()
        r1 = metrics.record_recovery_start(T, RecoveryMode.ACTIVE, 1.0, 2.0)
        r1.recovered_time = 3.0
        r2 = metrics.record_recovery_start(UP, RecoveryMode.CHECKPOINT, 1.0, 2.0)
        r2.recovered_time = 6.0
        assert metrics.recovery_latencies() == [1.0, 4.0]
        assert metrics.recovery_latencies(RecoveryMode.ACTIVE) == [1.0]
        assert metrics.recovery_latencies(tasks=[UP]) == [4.0]
        assert metrics.max_recovery_latency() == 4.0
        assert metrics.mean_recovery_latency() == pytest.approx(2.5)

    def test_incomplete_recovery_excluded(self):
        metrics = MetricsCollector()
        metrics.record_recovery_start(T, RecoveryMode.ACTIVE, 1.0, 2.0)
        assert metrics.recovery_latencies() == []
        assert metrics.max_recovery_latency() is None


class TestConfigValidation:
    def test_rejects_bad_batch_interval(self):
        with pytest.raises(SimulationError):
            EngineConfig(batch_interval=0.0)

    def test_rejects_bad_checkpoint_interval(self):
        with pytest.raises(SimulationError):
            EngineConfig(checkpoint_interval=-1.0)

    def test_checkpoint_batches_rounding(self):
        assert EngineConfig(checkpoint_interval=2.5).checkpoint_batches == 2
        assert EngineConfig(checkpoint_interval=None).checkpoint_batches is None

    def test_cost_model_rejects_negative(self):
        with pytest.raises(SimulationError):
            CostModel(per_tuple_process=-1.0)


class TestLogicFactory:
    def test_missing_operator_raises(self):
        with pytest.raises(KeyError):
            LogicFactory().logic_for(T)

    def test_missing_source_raises(self):
        with pytest.raises(KeyError):
            LogicFactory().source_for(UP)

    def test_registration_roundtrip(self):
        from repro.queries import WindowedSelectivityOperator
        factory = LogicFactory()
        factory.register_operator("A", WindowedSelectivityOperator)
        assert factory.has_operator("A")
        assert isinstance(factory.logic_for(T), WindowedSelectivityOperator)

"""API surface checks: docstrings, exports, and the README quickstart."""

import doctest
import inspect

import repro
import repro.core
import repro.engine
import repro.experiments
import repro.queries
import repro.scenarios
import repro.topology
import repro.workloads


PACKAGES = [repro, repro.core, repro.engine, repro.experiments,
            repro.queries, repro.scenarios, repro.topology, repro.workloads]


class TestApiSurface:
    def test_all_exports_resolve(self):
        for package in PACKAGES:
            for name in package.__all__:
                assert hasattr(package, name), f"{package.__name__}.{name}"

    def test_all_lists_are_sorted(self):
        for package in PACKAGES:
            assert list(package.__all__) == sorted(package.__all__), (
                f"{package.__name__}.__all__ is not sorted"
            )

    def test_public_items_have_docstrings(self):
        for package in PACKAGES:
            for name in package.__all__:
                item = getattr(package, name)
                if inspect.isclass(item) or inspect.isfunction(item):
                    assert item.__doc__, f"{package.__name__}.{name} lacks a docstring"

    def test_public_classes_public_methods_documented(self):
        for package in (repro.core, repro.engine, repro.topology):
            for name in package.__all__:
                item = getattr(package, name)
                if not inspect.isclass(item):
                    continue
                for method_name, method in inspect.getmembers(item, inspect.isfunction):
                    if method_name.startswith("_"):
                        continue
                    # getdoc() resolves inherited docstrings for overrides.
                    assert inspect.getdoc(method) is not None, (
                        f"{item.__module__}.{item.__qualname__}.{method_name} "
                        "lacks a docstring"
                    )

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestDoctests:
    def test_package_quickstart_doctest(self):
        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0

    def test_builder_doctest(self):
        import repro.topology.builder as builder_module

        results = doctest.testmod(builder_module, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0

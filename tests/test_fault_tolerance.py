"""Smarter fault tolerance: approximate recovery, k-safe placement,
adaptive checkpoints, flapping/detection-jitter failures, quality axis.

Covers the invariants the new schemes promise:

* ``approximate-ft`` always reports ``fidelity_loss <= fidelity_bound`` and
  degrades to exact checkpoint-replay when the bound is exceeded;
* ``k-safe`` never co-locates a task and its standby replica inside one
  rack-correlated blast radius (randomized property over random
  topologies and placements);
* ``adaptive-checkpoint`` retunes the interval from observed failures and
  measured snapshot costs (Young/Daly);
* the ``flapping`` and ``detection-jitter`` failure models compose with
  the wave machinery and the engine's detection path;
* the new optional ``Scenario``/``RecoveryOutcome``/``ScenarioResult``
  fields stay invisible (digest- and byte-compatible) until used.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.engine import EngineConfig, StreamEngine, create_scheme
from repro.errors import ScenarioError, SimulationError
from repro.scenarios import (
    FAILURE_MODELS,
    GridSession,
    JsonlSink,
    Scenario,
    ScenarioResult,
    ScenarioRunner,
    SqliteSink,
    as_waves,
    run_scenario,
    scenario_digest,
)
from repro.scenarios.runner import RecoveryOutcome
from repro.topology import TaskId

from tests.engine_helpers import build_engine, metrics_fingerprint, \
    run_scenario_engine

_RECIPE = {
    "operators": [
        {"name": "S", "parallelism": 2, "kind": "source"},
        {"name": "A", "parallelism": 2, "selectivity": 0.5},
        {"name": "B", "parallelism": 1, "selectivity": 0.5},
    ],
    "edges": [
        {"upstream": "S", "downstream": "A", "pattern": "one-to-one"},
        {"upstream": "A", "downstream": "B", "pattern": "merge"},
    ],
}


def _tiny_scenario(**overrides) -> Scenario:
    base = {
        "workload": "custom",
        "topology": _RECIPE,
        "workload_params": {"source_rate": 40.0, "window_seconds": 6.0},
        "planner": "none",
        "engine": {"checkpoint_interval": 4.0, "heartbeat_interval": 2.0},
        "failures": [{"model": "correlated", "at": 12.0}],
        "duration": 24.0,
    }
    base.update(overrides)
    return Scenario.from_dict(base)


def _build_engine_for(scenario: Scenario):
    """Engine + resolution artefacts without running (placement inspection)."""
    runner = ScenarioRunner(scenario)
    bundle = runner.bundle()
    plan = runner.plan(bundle)
    config = runner.engine_config(bundle)
    engine = StreamEngine(bundle.topology, bundle.make_logic(), config,
                          plan=plan)
    return engine, runner, bundle, plan


# ----------------------------------------------------------------------
# approximate-ft
# ----------------------------------------------------------------------


class TestApproximateFt:
    def test_bound_validation(self):
        for bad in (-0.1, 1.5):
            with pytest.raises(SimulationError, match="fidelity_bound"):
                create_scheme("approximate-ft", {"fidelity_bound": bad})

    def test_unknown_parameter_rejected_with_context(self):
        with pytest.raises(SimulationError, match="rejected parameters"):
            create_scheme("approximate-ft", {"bogus": 1})

    @pytest.mark.parametrize("bound", [0.0, 0.2, 1.0])
    @pytest.mark.parametrize("model,params", [
        ("correlated", {}),
        ("rolling-restart", {"stagger": 2.0}),
        ("flapping", {"cycles": 2, "down": 3.0, "up": 6.0,
                      "operators": ["A"]}),
    ])
    def test_loss_never_exceeds_bound(self, bound, model, params):
        scenario = _tiny_scenario(
            recovery="approximate-ft",
            recovery_params={"fidelity_bound": bound},
            failures=[{"model": model, "at": 10.0, "params": params}],
        )
        result = run_scenario(scenario)
        assert result.all_recovered
        assert result.recoveries
        for outcome in result.recoveries:
            assert outcome.fidelity_bound == bound
            assert outcome.fidelity_loss is not None
            assert outcome.fidelity_loss <= outcome.fidelity_bound + 1e-12

    def test_generous_bound_jumps_approximately(self):
        result = run_scenario(_tiny_scenario(
            recovery="approximate-ft",
            recovery_params={"fidelity_bound": 1.0},
        ))
        approx = [r for r in result.recoveries if r.mode == "approximate"]
        assert approx, "a bound of 1.0 must let some task skip its replay"
        assert any(r.fidelity_loss > 0.0 for r in approx)
        # The skipped replay never counts against recovery latency: the
        # approximate path must not be slower than exact recovery.
        exact = run_scenario(_tiny_scenario(recovery="checkpoint-replay"))
        assert result.max_recovery_latency <= exact.max_recovery_latency

    def test_zero_bound_is_byte_identical_to_exact_recovery(self):
        scenario = _tiny_scenario(recovery="checkpoint-replay")
        exact = run_scenario_engine(scenario)
        approx = run_scenario_engine(_tiny_scenario(
            recovery="approximate-ft",
            recovery_params={"fidelity_bound": 0.0},
        ))
        assert (metrics_fingerprint(approx.metrics)
                == metrics_fingerprint(exact.metrics))


# ----------------------------------------------------------------------
# k-safe
# ----------------------------------------------------------------------


def _random_recipe(rng: random.Random) -> dict:
    operators = [{"name": "S", "parallelism": rng.randint(1, 3),
                  "kind": "source"}]
    edges = []
    previous = "S"
    for position in range(rng.randint(1, 3)):
        name = f"O{position}"
        operators.append({"name": name, "parallelism": rng.randint(1, 3),
                          "selectivity": 0.5})
        edges.append({"upstream": previous, "downstream": name,
                      "pattern": "full"})
        previous = name
    return {"operators": operators, "edges": edges}


def _random_placement(rng: random.Random) -> dict[str, str]:
    n_racks = rng.randint(2, 4)
    n_nodes = rng.randint(n_racks, 8)
    # i % n_racks guarantees every rack hosts at least one node.
    return {f"n{i}": f"rack{i % n_racks}" for i in range(n_nodes)}


def _ksafe_scenario(recipe: dict, placement: dict[str, str],
                    racks=("rack0",)) -> Scenario:
    return Scenario.from_dict({
        "workload": "custom",
        "topology": recipe,
        "workload_params": {"source_rate": 30.0, "window_seconds": 4.0},
        "planner": "all",
        "engine": {"checkpoint_interval": 4.0, "heartbeat_interval": 2.0},
        "recovery": "k-safe",
        "failures": [{"model": "rack-correlated", "at": 8.0,
                      "params": {"placement": placement,
                                 "racks": list(racks)}}],
        "duration": 16.0,
    })


class TestKSafePlacement:
    @pytest.mark.parametrize("seed", range(10))
    def test_replica_never_shares_blast_radius(self, seed):
        """Property: over random topologies and rack maps, no task's standby
        lives in the rack whose failure would kill the task's primary."""
        rng = random.Random(seed)
        scenario = _ksafe_scenario(_random_recipe(rng), _random_placement(rng))
        engine, runner, bundle, plan = _build_engine_for(scenario)
        scheme = engine.scheme
        assert scheme.name == "k-safe"
        assert scheme.replica_host, "planner 'all' must yield replicas"
        for task, replica_node in scheme.replica_host.items():
            primary_rack = scheme.rack_of[scheme.primary_host[task]]
            assert scheme.rack_of[replica_node] != primary_rack, (
                f"seed {seed}: {task} and its replica share "
                f"rack {primary_rack!r}"
            )
        # The scheme's view of the blast radius must agree with the kills
        # the failure model actually injects (shared placement_node_map).
        spec = scenario.failures[0]
        victims = runner.victims_of(spec, bundle, plan)
        assert victims, "rack0 always hosts at least one node"
        for victim in victims:
            assert scheme.rack_of[scheme.primary_host[victim]] == "rack0"
            if victim in scheme.replica_host:  # sources have no standby
                assert scheme.rack_of[scheme.replica_host[victim]] != "rack0"

    def test_rack_failure_recovers_via_takeover(self):
        """End-to-end: losing one whole rack only triggers ACTIVE takeovers
        because every affected replica lives elsewhere (auto-wired from the
        rack-correlated failure spec, no explicit recovery_params)."""
        placement = {"n0": "r0", "n1": "r0", "n2": "r1", "n3": "r1"}
        scenario = _ksafe_scenario(_RECIPE, placement, racks=("r0",))
        result = run_scenario(scenario)
        assert result.failed_tasks
        assert result.all_recovered
        # Sources carry no standby (they recover by replaying their own
        # log); every replicated victim must fail over to its standby.
        modes = {str(r.task): r.mode for r in result.recoveries}
        replicated = {name: mode for name, mode in modes.items()
                      if not name.startswith("S[")}
        assert replicated
        assert set(replicated.values()) == {"active"}

    def test_single_rack_placement_rejected(self):
        placement = {"n0": "r0", "n1": "r0"}
        scenario = _ksafe_scenario(_RECIPE, placement, racks=("r0",))
        with pytest.raises(SimulationError, match="at least two racks"):
            run_scenario(scenario)

    def test_assignment_without_placement_rejected(self):
        with pytest.raises(SimulationError, match="placement"):
            create_scheme("k-safe", {"assignment": {"A[0]": "n0"}})

    def test_no_placement_degrades_to_ppa(self):
        engine = build_engine(
            EngineConfig(recovery_scheme="k-safe"), plan=[TaskId("L1", 0)])
        assert engine.replicated == frozenset({TaskId("L1", 0)})
        assert not engine.scheme.replica_host

    def test_replica_loss_demotes_to_passive(self):
        """A second wave that takes out the replica rack too: the scheme
        must demote affected tasks to passive recovery, not hang on a
        takeover that can never complete."""
        placement = {"n0": "r0", "n1": "r0", "n2": "r1", "n3": "r1"}
        scenario = _ksafe_scenario(_RECIPE, placement, racks=("r0",))
        scenario = scenario.with_overrides(failures=(
            scenario.failures[0],
            scenario.failures[0].__class__(
                "rack-correlated", at=8.5,
                params={"placement": placement, "racks": ["r1"]}),
        ))
        result = run_scenario(scenario)
        assert result.all_recovered
        assert {r.mode for r in result.recoveries} >= {"checkpoint"}


# ----------------------------------------------------------------------
# adaptive-checkpoint
# ----------------------------------------------------------------------


class TestAdaptiveCheckpoint:
    def test_parameter_validation(self):
        with pytest.raises(SimulationError, match="min_interval"):
            create_scheme("adaptive-checkpoint", {"min_interval": 9.0,
                                                  "max_interval": 3.0})
        with pytest.raises(SimulationError, match="mtbf_prior"):
            create_scheme("adaptive-checkpoint", {"mtbf_prior": 0.0})
        with pytest.raises(SimulationError, match="smoothing"):
            create_scheme("adaptive-checkpoint", {"smoothing": 0.0})

    def _config(self) -> EngineConfig:
        return EngineConfig(
            recovery_scheme="adaptive-checkpoint",
            recovery_params={"min_interval": 1.0, "max_interval": 64.0,
                             "mtbf_prior": 10.0},
            checkpoint_interval=16.0, heartbeat_interval=2.0,
        )

    def test_configured_interval_until_first_measurement(self):
        engine = build_engine(self._config())
        rt = engine.runtimes[TaskId("L0", 0)]
        assert len(engine.scheme.timings) == 0
        assert (engine.scheme.checkpoint_period(rt)
                == engine.config.checkpoint_batches)

    def test_interval_adapts_to_failures_and_snapshot_cost(self):
        engine = build_engine(self._config())
        victim = TaskId("L0", 0)
        for at in (8.0, 16.0, 24.0):
            engine.schedule_task_failure(at, [victim])
            # The host must come back up before it can flap again.
            engine.schedule_task_restore(at + 4.0, [victim])
        engine.run(40.0)
        scheme = engine.scheme
        assert engine.all_recovered()
        # Failure instants 8/16/24 -> mean inter-arrival 8 s.
        assert scheme.mtbf_estimate() == pytest.approx(8.0)
        assert len(scheme.timings) > 0
        rt = engine.runtimes[TaskId("L0", 0)]
        delta = scheme.timings.cost_estimate(rt.task)
        assert delta is not None and delta > 0.0
        tau = math.sqrt(2.0 * delta * scheme.mtbf_estimate())
        tau = min(max(tau, 1.0), 64.0)
        expected = max(1, round(tau / engine.config.batch_interval))
        assert scheme.checkpoint_period(rt) == expected
        # Cheap snapshots + failures every 8 s must tighten the interval.
        assert scheme.checkpoint_period(rt) < engine.config.checkpoint_batches

    def test_disabled_checkpointing_stays_disabled(self):
        engine = build_engine(EngineConfig(
            recovery_scheme="adaptive-checkpoint", checkpoint_interval=None))
        rt = engine.runtimes[TaskId("L0", 0)]
        assert engine.scheme.checkpoint_period(rt) is None


# ----------------------------------------------------------------------
# flapping / detection-jitter failure models
# ----------------------------------------------------------------------


def _recipe_topology():
    runner = ScenarioRunner(_tiny_scenario())
    return runner.bundle().topology


class TestFlappingModel:
    def test_wave_structure(self):
        topology = _recipe_topology()
        model = FAILURE_MODELS.get("flapping")
        waves = as_waves(model(topology, frozenset(), seed=0, cycles=3,
                               down=4.0, up=6.0, operators=["A"]))
        kills = [w for w in waves if w.tasks]
        restores = [w for w in waves if w.restores]
        assert [w.offset for w in kills] == [0.0, 10.0, 20.0]
        # No restore after the final kill; each restore revives the victims.
        assert [w.offset for w in restores] == [4.0, 14.0]
        for kill, restore in zip(kills, restores):
            assert restore.restores == kill.tasks
            assert restore.tasks == ()

    def test_validation(self):
        topology = _recipe_topology()
        model = FAILURE_MODELS.get("flapping")
        with pytest.raises(ScenarioError, match="cycles"):
            model(topology, frozenset(), seed=0, cycles=0)
        with pytest.raises(ScenarioError, match="down"):
            model(topology, frozenset(), seed=0, down=0.0)
        with pytest.raises(ScenarioError, match="not both"):
            model(topology, frozenset(), seed=0, operators=["A"],
                  tasks=[["A", 0]])

    def test_empty_wave_rejected(self):
        from repro.scenarios import FailureWave

        with pytest.raises(ScenarioError, match="kill or restore"):
            FailureWave(0.0, ())

    def test_engine_recovers_through_repeated_kills(self):
        scenario = _tiny_scenario(failures=[{
            "model": "flapping", "at": 6.0,
            "params": {"cycles": 2, "down": 4.0, "up": 8.0,
                       "operators": ["A"]}}])
        result = run_scenario(scenario)
        assert result.all_recovered
        by_task: dict[str, int] = {}
        for outcome in result.recoveries:
            by_task[str(outcome.task)] = by_task.get(str(outcome.task), 0) + 1
        # Both A tasks die in both cycles: two full recoveries each.
        assert by_task == {"A[0]": 2, "A[1]": 2}


class TestDetectionJitter:
    def test_deterministic_per_task_delays(self):
        topology = _recipe_topology()
        model = FAILURE_MODELS.get("detection-jitter")
        waves = as_waves(model(topology, frozenset(), seed=5, jitter=3.0))
        again = as_waves(model(topology, frozenset(), seed=5, jitter=3.0))
        assert waves == again
        assert all(len(w.tasks) == 1 for w in waves)
        delays = [w.detect_delay for w in waves]
        assert all(0.0 <= d <= 3.0 for d in delays)
        assert len(set(delays)) > 1, "jitter must actually vary per task"

    def test_wraps_staggered_base_model(self):
        topology = _recipe_topology()
        model = FAILURE_MODELS.get("detection-jitter")
        waves = as_waves(model(topology, frozenset(), seed=1, jitter=2.0,
                               base="rolling-restart",
                               base_params={"stagger": 3.0}))
        offsets = sorted({w.offset for w in waves})
        assert offsets == [0.0, 3.0, 6.0]

    def test_validation(self):
        topology = _recipe_topology()
        model = FAILURE_MODELS.get("detection-jitter")
        with pytest.raises(ScenarioError, match="jitter"):
            model(topology, frozenset(), seed=0, jitter=-1.0)
        with pytest.raises(ScenarioError, match="cannot wrap itself"):
            model(topology, frozenset(), seed=0, base="detection-jitter")

    def test_detection_times_spread_end_to_end(self):
        scenario = _tiny_scenario(failures=[{
            "model": "detection-jitter", "at": 12.0,
            "params": {"jitter": 3.0}}])
        result = run_scenario(scenario)
        assert result.all_recovered
        assert len(result.recoveries) >= 2
        detect_times = {r.detect_time for r in result.recoveries}
        assert len(detect_times) > 1, "jitter must desynchronize detection"
        for outcome in result.recoveries:
            assert outcome.detect_time >= outcome.fail_time

    def test_zero_jitter_matches_plain_base_model(self):
        plain = run_scenario_engine(_tiny_scenario())
        jittered = run_scenario_engine(_tiny_scenario(failures=[{
            "model": "detection-jitter", "at": 12.0,
            "params": {"jitter": 0.0}}]))
        assert (metrics_fingerprint(jittered.metrics)
                == metrics_fingerprint(plain.metrics))


# ----------------------------------------------------------------------
# Serialization compatibility
# ----------------------------------------------------------------------


class TestScenarioDigestCompat:
    def test_new_fields_omitted_when_defaulted(self):
        scenario = _tiny_scenario()
        data = scenario.to_dict()
        assert "recovery_params" not in data
        assert "quality" not in data
        explicit = dict(data)
        explicit["recovery_params"] = {}
        explicit["quality"] = {}
        assert (scenario_digest(Scenario.from_dict(explicit))
                == scenario_digest(scenario))

    def test_set_fields_round_trip_and_change_digest(self):
        scenario = _tiny_scenario(
            recovery="approximate-ft",
            recovery_params={"fidelity_bound": 0.5},
            quality={"measure_from": 12.0},
        )
        data = scenario.to_dict()
        assert data["recovery_params"] == {"fidelity_bound": 0.5}
        assert data["quality"] == {"measure_from": 12.0}
        assert Scenario.from_dict(data) == scenario
        assert scenario_digest(scenario) != scenario_digest(_tiny_scenario())


class TestFidelitySerialization:
    def test_outcome_omits_fields_when_none(self):
        outcome = RecoveryOutcome(TaskId("A", 0), "checkpoint", 1.0, 2.0, 3.0)
        data = outcome.to_dict()
        assert "fidelity_bound" not in data
        assert "fidelity_loss" not in data
        assert RecoveryOutcome.from_dict(data) == outcome

    def test_outcome_round_trips_fidelity_fields(self):
        outcome = RecoveryOutcome(TaskId("A", 0), "approximate", 1.0, 2.0,
                                  3.0, fidelity_bound=0.2, fidelity_loss=0.1)
        data = outcome.to_dict()
        assert data["fidelity_bound"] == 0.2
        assert data["fidelity_loss"] == 0.1
        assert RecoveryOutcome.from_dict(data) == outcome

    def test_result_round_trips_quality_and_fidelity(self):
        result = run_scenario(_tiny_scenario(
            recovery="approximate-ft",
            recovery_params={"fidelity_bound": 1.0},
            quality={"measure_from": 12.0},
        ))
        data = result.to_dict()
        assert 0.0 <= data["output_quality"] <= 1.0
        assert any("fidelity_loss" in r for r in data["recoveries"])
        assert ScenarioResult.from_dict(data).to_dict() == data

    def test_result_omits_quality_when_absent(self):
        result = run_scenario(_tiny_scenario())
        assert "output_quality" not in result.to_dict()
        assert result.output_quality is None

    @pytest.mark.parametrize("sink_cls", [JsonlSink, SqliteSink],
                             ids=["jsonl", "sqlite"])
    def test_sink_round_trip_preserves_new_fields(self, tmp_path, sink_cls):
        scenario = _tiny_scenario(
            recovery="approximate-ft",
            recovery_params={"fidelity_bound": 1.0},
            quality={"measure_from": 12.0},
        )
        expected = run_scenario(scenario).to_dict()
        path = tmp_path / f"out.{sink_cls.name}"
        GridSession("serial", sink=sink_cls(path)).run([scenario])
        (loaded,) = sink_cls.load(path)
        assert loaded.to_dict() == expected

    def test_parquet_round_trip_preserves_new_fields(self, tmp_path):
        pytest.importorskip("pyarrow")
        from repro.scenarios import ParquetSink

        scenario = _tiny_scenario(
            recovery="approximate-ft",
            recovery_params={"fidelity_bound": 1.0},
            quality={"measure_from": 12.0},
        )
        expected = run_scenario(scenario).to_dict()
        path = tmp_path / "out.parquet"
        GridSession("serial", sink=ParquetSink(path)).run([scenario])
        (loaded,) = ParquetSink.load(path)
        assert loaded.to_dict() == expected


# ----------------------------------------------------------------------
# Output-quality axis
# ----------------------------------------------------------------------


class TestQualityAxis:
    def test_quality_computed_and_bounded(self):
        result = run_scenario(_tiny_scenario(quality={"measure_from": 12.0}))
        assert result.output_quality is not None
        assert 0.0 <= result.output_quality <= 1.0

    def test_empty_quality_spec_disables_measurement(self):
        assert run_scenario(_tiny_scenario()).output_quality is None

    def test_unknown_quality_key_rejected(self):
        with pytest.raises(ScenarioError, match="quality"):
            run_scenario(_tiny_scenario(quality={"bogus": 1.0}))

    def test_active_standby_quality_is_lossless(self):
        result = run_scenario(_tiny_scenario(
            recovery="active-standby", quality={"measure_from": 12.0}))
        assert result.output_quality == pytest.approx(1.0)

    def test_default_window_starts_at_first_failure(self):
        explicit = run_scenario(_tiny_scenario(
            quality={"measure_from": 12.0, "measure_until": 22.0}))
        defaulted = run_scenario(_tiny_scenario(quality={"measure_from": 12.0}))
        assert explicit.output_quality == defaulted.output_quality

    def test_scheme_sweep_reports_quality_rows(self):
        from repro.experiments.recovery import scheme_sweep

        fig = scheme_sweep(windows=(6.0,), rates=(200.0,),
                           failure_models=("correlated",),
                           tuple_scale=16.0, duration=30.0)
        assert "metric" in fig.headers
        metrics = {row[fig.headers.index("metric")] for row in fig.rows}
        assert metrics == {"latency", "quality"}
        from repro.engine import RECOVERY_SCHEMES

        for name in RECOVERY_SCHEMES.names():
            assert name in fig.headers

"""Tests for the random topology generator (Sec. VI-C)."""

import pytest

from repro.topology import (
    OperatorKind,
    Partitioning,
    TopologyClass,
    TopologySpec,
    WeightSkew,
    generate_source_rates,
    generate_topology,
    propagate_rates,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalised(self):
        assert sum(zipf_weights(10, 0.5)) == pytest.approx(1.0)

    def test_skewed_head(self):
        weights = zipf_weights(10, 1.0)
        assert weights[0] > weights[-1]

    def test_rejects_empty(self):
        from repro.errors import TopologyError
        with pytest.raises(TopologyError):
            zipf_weights(0, 0.5)


class TestGenerator:
    def test_deterministic_per_seed(self):
        spec = TopologySpec()
        a = generate_topology(spec, 42)
        b = generate_topology(spec, 42)
        assert a.operator_names == b.operator_names
        assert [e.pattern for e in a.edges()] == [e.pattern for e in b.edges()]

    def test_different_seeds_differ(self):
        spec = TopologySpec()
        a = generate_topology(spec, 1)
        b = generate_topology(spec, 2)
        assert (
            a.operator_names != b.operator_names
            or [e.pattern for e in a.edges()] != [e.pattern for e in b.edges()]
        )

    def test_operator_count_within_spec(self):
        spec = TopologySpec(n_operators=(3, 5), n_sources=(1, 1))
        for seed in range(10):
            topo = generate_topology(spec, seed)
            non_sources = [o for o in topo.operators() if not o.is_source]
            assert 3 <= len(non_sources) <= 5

    def test_parallelism_within_spec(self):
        spec = TopologySpec(parallelism=(2, 4))
        for seed in range(5):
            topo = generate_topology(spec, seed)
            assert all(2 <= o.parallelism <= 4 for o in topo.operators())

    def test_full_class_uses_only_full_edges(self):
        spec = TopologySpec(topology_class=TopologyClass.FULL)
        for seed in range(5):
            topo = generate_topology(spec, seed)
            assert all(e.pattern is Partitioning.FULL for e in topo.edges())

    def test_structured_class_avoids_full_edges(self):
        spec = TopologySpec(topology_class=TopologyClass.STRUCTURED)
        for seed in range(5):
            topo = generate_topology(spec, seed)
            assert all(e.pattern is not Partitioning.FULL for e in topo.edges())

    def test_join_fraction_produces_correlated_operators(self):
        spec = TopologySpec(join_fraction=0.5, n_operators=(6, 8))
        found = 0
        for seed in range(5):
            topo = generate_topology(spec, seed)
            found += sum(1 for o in topo.operators() if o.is_correlated)
        assert found > 0

    def test_join_operators_have_at_least_two_upstreams(self):
        # Joins are created with exactly two upstream operators, but a join
        # that ends up as the final sink may absorb extra dangling branches.
        spec = TopologySpec(join_fraction=0.5, n_operators=(6, 8))
        for seed in range(5):
            topo = generate_topology(spec, seed)
            for op in topo.operators():
                if op.is_correlated:
                    assert len(topo.upstream_of(op.name)) >= 2

    def test_zipf_skew_produces_uneven_weights(self):
        spec = TopologySpec(weight_skew=WeightSkew.ZIPF, zipf_s=0.8,
                            parallelism=(4, 6))
        topo = generate_topology(spec, 3)
        skewed = any(
            max(o.task_weights) > 1.5 * min(o.task_weights)
            for o in topo.operators()
            if o.parallelism >= 4
        )
        assert skewed

    def test_generated_topologies_are_valid_for_rates(self):
        spec = TopologySpec(join_fraction=0.3)
        for seed in range(8):
            topo = generate_topology(spec, seed)
            rates = propagate_rates(topo, generate_source_rates(topo, seed))
            assert all(v >= 0.0 for v in rates.task_output.values())

    def test_source_rates_cover_all_sources(self):
        topo = generate_topology(TopologySpec(), 5)
        sources = generate_source_rates(topo, 5)
        for spec_ in topo.sources():
            assert spec_.name in sources.per_operator

"""Unit tests for operator specs and task identifiers."""

import pytest

from repro.errors import TopologyError
from repro.topology import OperatorKind, OperatorSpec, TaskId


class TestTaskId:
    def test_renders_as_operator_and_index(self):
        assert repr(TaskId("O1", 3)) == "O1[3]"

    def test_is_ordered_and_hashable(self):
        a, b = TaskId("A", 0), TaskId("A", 1)
        assert a < b
        assert len({a, b, TaskId("A", 0)}) == 2

    def test_fields_accessible_by_name(self):
        task = TaskId("Op", 2)
        assert task.operator == "Op"
        assert task.index == 2


class TestOperatorSpec:
    def test_defaults_to_uniform_weights(self):
        spec = OperatorSpec("O", 4, OperatorKind.INDEPENDENT)
        assert spec.task_weights == pytest.approx((0.25,) * 4)

    def test_weights_are_normalised(self):
        spec = OperatorSpec("O", 2, OperatorKind.INDEPENDENT, task_weights=(3.0, 1.0))
        assert spec.task_weights == pytest.approx((0.75, 0.25))

    def test_tasks_enumerates_in_index_order(self):
        spec = OperatorSpec("O", 3, OperatorKind.SOURCE)
        assert spec.tasks() == (TaskId("O", 0), TaskId("O", 1), TaskId("O", 2))

    def test_task_supports_negative_index(self):
        spec = OperatorSpec("O", 3, OperatorKind.SOURCE)
        assert spec.task(-1) == TaskId("O", 2)

    def test_task_rejects_out_of_range(self):
        spec = OperatorSpec("O", 3, OperatorKind.SOURCE)
        with pytest.raises(TopologyError):
            spec.task(3)

    def test_weight_of_returns_normalised_share(self):
        spec = OperatorSpec("O", 2, OperatorKind.INDEPENDENT, task_weights=(1.0, 3.0))
        assert spec.weight_of(1) == pytest.approx(0.75)

    @pytest.mark.parametrize("parallelism", [0, -1])
    def test_rejects_non_positive_parallelism(self, parallelism):
        with pytest.raises(TopologyError):
            OperatorSpec("O", parallelism, OperatorKind.SOURCE)

    def test_rejects_empty_name(self):
        with pytest.raises(TopologyError):
            OperatorSpec("", 1, OperatorKind.SOURCE)

    def test_rejects_negative_selectivity(self):
        with pytest.raises(TopologyError):
            OperatorSpec("O", 1, OperatorKind.INDEPENDENT, selectivity=-0.1)

    def test_rejects_wrong_weight_count(self):
        with pytest.raises(TopologyError):
            OperatorSpec("O", 3, OperatorKind.INDEPENDENT, task_weights=(0.5, 0.5))

    def test_rejects_negative_weights(self):
        with pytest.raises(TopologyError):
            OperatorSpec("O", 2, OperatorKind.INDEPENDENT, task_weights=(1.0, -1.0))

    def test_rejects_all_zero_weights(self):
        with pytest.raises(TopologyError):
            OperatorSpec("O", 2, OperatorKind.INDEPENDENT, task_weights=(0.0, 0.0))

    def test_kind_flags(self):
        assert OperatorSpec("S", 1, OperatorKind.SOURCE).is_source
        assert OperatorSpec("J", 1, OperatorKind.CORRELATED).is_correlated
        ind = OperatorSpec("M", 1, OperatorKind.INDEPENDENT)
        assert not ind.is_source and not ind.is_correlated

"""Tests for the plan/topology analysis helpers."""

import pytest

from repro.core import StructureAwarePlanner
from repro.core.analysis import (
    criticality_report,
    explain_plan,
    fidelity_under_failures,
    marginal_gains,
)
from repro.topology import TaskId


class TestCriticality:
    def test_sink_ranks_most_critical(self, chain_topology, chain_rates):
        report = criticality_report(chain_topology, chain_rates)
        assert report[0].task == TaskId("C", 0)
        assert report[0].damage == 1.0

    def test_covers_every_task(self, chain_topology, chain_rates):
        report = criticality_report(chain_topology, chain_rates)
        assert len(report) == chain_topology.num_tasks

    def test_damage_ordering_is_descending(self, join_topology, join_rates):
        report = criticality_report(join_topology, join_rates)
        damages = [e.damage for e in report]
        assert damages == sorted(damages, reverse=True)


class TestExplainPlan:
    def test_complete_tree_detected(self, chain_topology, chain_rates):
        tree = {TaskId("S", 0), TaskId("A", 0), TaskId("B", 0), TaskId("C", 0)}
        explanation = explain_plan(chain_topology, chain_rates, tree)
        assert explanation.complete_trees == (frozenset(tree),)
        assert not explanation.stranded_tasks
        assert explanation.fidelity > 0.0

    def test_stranded_tasks_reported(self, chain_topology, chain_rates):
        # No source: nothing completes; everything is dead weight.
        plan = {TaskId("A", 0), TaskId("B", 0), TaskId("C", 0)}
        explanation = explain_plan(chain_topology, chain_rates, plan)
        assert explanation.complete_trees == ()
        assert explanation.stranded_tasks == frozenset(plan)
        assert explanation.fidelity == 0.0

    def test_sa_plans_have_no_stranded_tasks(self, join_topology, join_rates):
        plan = StructureAwarePlanner().plan(join_topology, join_rates, 7)
        explanation = explain_plan(join_topology, join_rates, plan.replicated)
        assert not explanation.stranded_tasks
        assert explanation.effective_tasks == plan.replicated


class TestMarginalGains:
    def test_completing_task_has_positive_gain(self, chain_topology, chain_rates):
        partial = {TaskId("A", 0), TaskId("B", 0), TaskId("C", 0)}
        gains = marginal_gains(chain_topology, chain_rates, partial,
                               candidates=chain_topology.tasks_of("S"))
        assert gains[0].gain > 0.0

    def test_gains_sorted_descending(self, chain_topology, chain_rates):
        gains = marginal_gains(chain_topology, chain_rates, frozenset())
        values = [g.gain for g in gains]
        assert values == sorted(values, reverse=True)

    def test_default_pool_excludes_replicated(self, chain_topology, chain_rates):
        plan = {TaskId("C", 0)}
        gains = marginal_gains(chain_topology, chain_rates, plan)
        assert all(g.task != TaskId("C", 0) for g in gains)


class TestWhatIf:
    def test_batch_scenarios(self, chain_topology, chain_rates):
        scenarios = [
            [],
            [TaskId("S", 0)],
            chain_topology.tasks(),
        ]
        values = fidelity_under_failures(chain_topology, chain_rates, scenarios)
        assert values[0] == 1.0
        assert values[1] == pytest.approx(0.75)
        assert values[2] == 0.0

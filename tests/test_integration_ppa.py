"""End-to-end integration: plan -> engine -> failure -> tentative -> recovery.

This is the full PPA story on one small pipeline: a structure-aware plan is
computed from the topology and rates, deployed as active replicas on the
engine, a correlated failure kills everything else, tentative outputs flow
from the replicated MC-trees while passive recovery runs, and accurate
outputs resume afterwards.
"""

import pytest

from repro.core import StructureAwarePlanner, worst_case_fidelity
from repro.engine import (
    EngineConfig,
    LogicFactory,
    RecoveryMode,
    StreamEngine,
)
from repro.queries import WindowedSelectivityOperator
from repro.topology import (
    Partitioning,
    TaskId,
    TopologyBuilder,
    propagate_rates,
    uniform_source_rates,
)
from repro.workloads import UniformRateSource


@pytest.fixture
def pipeline():
    topology = (
        TopologyBuilder()
        .source("S", 4)
        .operator("A", 4, selectivity=1.0)
        .operator("B", 2, selectivity=1.0)
        .operator("C", 1, selectivity=1.0)
        .connect("S", "A", Partitioning.ONE_TO_ONE)
        .connect("A", "B", Partitioning.MERGE)
        .connect("B", "C", Partitioning.MERGE)
        .build()
    )
    rates = propagate_rates(topology, uniform_source_rates(topology, 30.0))
    return topology, rates


def _logic() -> LogicFactory:
    factory = LogicFactory()
    factory.register_source("S", UniformRateSource(30.0))
    for name in ("A", "B", "C"):
        factory.register_operator(name, lambda: WindowedSelectivityOperator(8.0, 1.0))
    return factory


class TestFullPPAStory:
    def test_plan_deploy_fail_tentative_recover(self, pipeline):
        topology, rates = pipeline
        plan = StructureAwarePlanner().plan(topology, rates, budget=5)
        predicted = worst_case_fidelity(topology, rates, plan.replicated)
        assert predicted > 0.0

        config = EngineConfig(
            checkpoint_interval=4.0, heartbeat_interval=2.0,
            tentative_outputs=True, recovery_enabled=True,
        )
        engine = StreamEngine(topology, _logic(), config, plan=plan.replicated)
        victims = [t for t in topology.tasks() if t not in plan.replicated]
        engine.schedule_task_failure(12.0, victims)
        engine.run(40.0)

        # 1. Active replicas recovered fast, passive tasks recovered too.
        modes = {r.task: r.mode for r in engine.metrics.recoveries}
        assert set(modes) == set(victims)
        assert all(m is RecoveryMode.CHECKPOINT for m in modes.values())
        assert engine.all_recovered()

        # 2. Tentative outputs flowed during the outage.
        tentative = engine.metrics.sink_outputs(tentative=True)
        assert tentative

        # 3. The tentative data volume matches the predicted fidelity: only
        #    the replicated subtree's share of the stream survives.
        expected_share = predicted  # selectivity 1: share of sources alive
        for record in tentative:
            share = len(record.tuples) / (4 * 30)
            assert share == pytest.approx(expected_share, abs=0.05)

        # 4. Complete outputs resumed after recovery.
        last_tentative = max(r.index for r in tentative)
        resumed = [
            r for r in engine.metrics.sink_records
            if r.complete and r.index > last_tentative
        ]
        assert resumed

    def test_predicted_vs_observed_fidelity_across_budgets(self, pipeline):
        topology, rates = pipeline
        for budget in (3, 6, 9):
            plan = StructureAwarePlanner().plan(topology, rates, budget)
            predicted = worst_case_fidelity(topology, rates, plan.replicated)
            config = EngineConfig(
                checkpoint_interval=None, tentative_outputs=True,
                recovery_enabled=False,
            )
            engine = StreamEngine(topology, _logic(), config,
                                  plan=plan.replicated)
            victims = [t for t in topology.tasks() if t not in plan.replicated]
            if victims:
                engine.schedule_task_failure(10.0, victims)
            engine.run(30.0)
            records = [r for r in engine.metrics.sink_records
                       if 24 <= r.index <= 27]
            if predicted == 0.0:
                # No complete MC-tree: the sink is dead or starved.
                total = sum(len(r.tuples) for r in records)
                assert total == 0
            else:
                assert records
                for record in records:
                    share = len(record.tuples) / (4 * 30)
                    assert share == pytest.approx(predicted, abs=0.05)

"""Passive recovery: checkpoint restore, replay, synchronisation, equivalence.

The strongest test here is *output equivalence*: with deterministic sources
and logic, a run that fails and recovers a task must eventually produce
exactly the same sink output as a failure-free run (no tentative mode, so
nothing is skipped — the batch protocol just stalls and catches up).
"""

import pytest

from repro.engine import (
    EngineConfig,
    PassiveStrategy,
    RecoveryMode,
    TaskStatus,
)
from repro.topology import TaskId

from tests.engine_helpers import build_engine, sink_outputs


def _run_pair(config, victims, fail_time=12.0, duration=20.0, **kwargs):
    baseline = build_engine(config, **kwargs)
    baseline.run(duration)
    failed = build_engine(config, **kwargs)
    failed.schedule_task_failure(fail_time, victims)
    failed.run(duration)
    return baseline, failed


class TestSingleFailureCheckpoint:
    CONFIG = EngineConfig(checkpoint_interval=4.0, heartbeat_interval=2.0)

    def test_recovery_record_created(self):
        _b, failed = _run_pair(self.CONFIG, [TaskId("L0", 1)])
        records = failed.metrics.recoveries
        assert len(records) == 1
        assert records[0].mode is RecoveryMode.CHECKPOINT
        assert records[0].task == TaskId("L0", 1)

    def test_detection_happens_at_next_heartbeat(self):
        _b, failed = _run_pair(self.CONFIG, [TaskId("L0", 1)])
        record = failed.metrics.recoveries[0]
        assert record.fail_time == 12.0
        assert 12.0 <= record.detect_time <= 12.0 + 2.0

    def test_recovery_completes_with_positive_latency(self):
        _b, failed = _run_pair(self.CONFIG, [TaskId("L0", 1)])
        record = failed.metrics.recoveries[0]
        assert record.recovered_time is not None
        assert record.latency > 0.0

    def test_task_running_again_after_recovery(self):
        _b, failed = _run_pair(self.CONFIG, [TaskId("L0", 1)])
        assert failed.runtime(TaskId("L0", 1)).status is TaskStatus.RUNNING

    def test_sink_output_equals_failure_free_run(self):
        baseline, failed = _run_pair(self.CONFIG, [TaskId("L0", 1)])
        assert sink_outputs(failed) == sink_outputs(baseline)

    def test_source_failure_recovers_and_backfills(self):
        baseline, failed = _run_pair(self.CONFIG, [TaskId("S", 0)])
        assert sink_outputs(failed) == sink_outputs(baseline)
        assert failed.all_recovered()

    def test_sink_failure_recovers(self):
        baseline, failed = _run_pair(self.CONFIG, [TaskId("L1", 0)])
        outs_b, outs_f = sink_outputs(baseline), sink_outputs(failed)
        # Batches the sink never saw while dead are replayed afterwards.
        assert outs_f == outs_b

    def test_progress_vector_catches_up_to_pre_failure(self):
        _b, failed = _run_pair(self.CONFIG, [TaskId("L0", 1)])
        rt = failed.runtime(TaskId("L0", 1))
        assert rt.caught_up()


class TestCorrelatedFailureCheckpoint:
    CONFIG = EngineConfig(checkpoint_interval=4.0, heartbeat_interval=2.0)

    def test_all_tasks_recover(self):
        victims = [TaskId("L0", 0), TaskId("L0", 1), TaskId("L1", 0)]
        _b, failed = _run_pair(self.CONFIG, victims, duration=25.0)
        assert failed.all_recovered()
        assert len(failed.metrics.recoveries) == 3

    def test_output_equivalence_despite_synchronisation(self):
        victims = [TaskId("L0", 0), TaskId("L0", 1), TaskId("L1", 0)]
        baseline, failed = _run_pair(self.CONFIG, victims, duration=25.0)
        assert sink_outputs(failed) == sink_outputs(baseline)

    def test_correlated_slower_than_single(self):
        victims_all = [TaskId("L0", 0), TaskId("L0", 1), TaskId("L1", 0)]
        _b, correlated = _run_pair(self.CONFIG, victims_all, duration=30.0)
        _b2, single = _run_pair(self.CONFIG, [TaskId("L0", 0)], duration=30.0)
        assert (
            correlated.metrics.max_recovery_latency()
            >= single.metrics.max_recovery_latency()
        )


class TestRecoveryDisabled:
    def test_task_stays_failed(self):
        config = EngineConfig(checkpoint_interval=4.0, heartbeat_interval=2.0,
                              recovery_enabled=False)
        failed = build_engine(config)
        failed.schedule_task_failure(6.0, [TaskId("L0", 1)])
        failed.run(12.0)
        assert failed.runtime(TaskId("L0", 1)).status is TaskStatus.FAILED
        record = failed.metrics.recoveries[0]
        assert record.recovered_time is None
        assert record.latency is None


class TestStormSourceReplay:
    CONFIG = EngineConfig(checkpoint_interval=None, heartbeat_interval=2.0,
                          passive_strategy=PassiveStrategy.SOURCE_REPLAY)

    def test_recovery_mode_recorded(self):
        _b, failed = _run_pair(self.CONFIG, [TaskId("L0", 1)], window=6.0)
        assert failed.metrics.recoveries[0].mode is RecoveryMode.SOURCE_REPLAY

    def test_recovers_by_reprocessing_window(self):
        _b, failed = _run_pair(self.CONFIG, [TaskId("L0", 1)], window=6.0)
        assert failed.all_recovered()
        rt = failed.runtime(TaskId("L0", 1))
        assert rt.status is TaskStatus.RUNNING

    def test_replay_charges_cpu_on_upstream_chain(self):
        _b, failed = _run_pair(self.CONFIG, [TaskId("L1", 0)], window=6.0)
        # L1's inputs were trimmed (storm acks), so L0 recomputed them.
        replay = sum(
            failed.metrics.cpu_of(TaskId("L0", i)).replay for i in range(2)
        )
        assert replay > 0.0

    def test_longer_window_recovers_slower(self):
        _b, short = _run_pair(self.CONFIG, [TaskId("L1", 0)], window=4.0,
                              duration=24.0)
        _b2, long = _run_pair(self.CONFIG, [TaskId("L1", 0)], window=12.0,
                              duration=24.0)
        assert (
            long.metrics.max_recovery_latency()
            > short.metrics.max_recovery_latency()
        )

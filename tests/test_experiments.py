"""Smoke tests for the experiment harness (small scales, real pipelines)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    AccuracySettings,
    FigureResult,
    Technique,
    TechniqueKind,
    checkpoint_cpu_ratio,
    correlated_failure_latency,
    fig9,
    format_table,
    half_subtree_plan,
    measured_accuracy,
    q1_bundle,
    run_baseline,
    settings_for,
    single_failure_latency,
    sweep_planner_fidelity,
    tentative_speedup,
)
from repro.experiments.bundles import fig6_bundle, q2_bundle
from repro.experiments.random_topologies import BASE_SPEC, fig14
from repro.topology import TaskId


class TestTables:
    def test_format_table_aligns_columns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_none_renders_as_dash(self):
        text = format_table(["x"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_figure_result_render_includes_notes(self):
        result = FigureResult("Fig. X", ["a"], [[1.0]], notes="hello")
        assert "Fig. X" in result.render()
        assert "hello" in result.render()


class TestBundles:
    def test_fig6_bundle_matches_paper_shape(self):
        bundle = fig6_bundle(1000.0, 30.0)
        parallelism = [
            bundle.topology.operator(n).parallelism
            for n in ("S", "O1", "O2", "O3", "O4")
        ]
        assert parallelism == [16, 8, 4, 2, 1]
        assert len(bundle.synthetic_tasks) == 15

    def test_q1_bundle_has_accuracy_support(self):
        bundle = q1_bundle(window_seconds=10.0)
        assert bundle.accuracy_fn is not None
        assert bundle.sink_task == TaskId("O3", 0)
        assert bundle.window_seconds == 10.0

    def test_q2_bundle_join_operator(self):
        bundle = q2_bundle(window_seconds=10.0)
        assert bundle.topology.operator("O3").is_correlated

    def test_tuple_scale_preserves_planner_rates(self):
        a = q1_bundle(tuple_scale=2.0)
        b = q1_bundle(tuple_scale=8.0)
        task = a.topology.source_tasks()[0]
        assert a.rates.output_rate(task) == b.rates.output_rate(task)


class TestRecoveryHarness:
    TECH = Technique("Checkpoint-5s", TechniqueKind.CHECKPOINT, 5.0)

    def test_single_failure_latency_positive(self):
        value = single_failure_latency(
            self.TECH, window=10.0, rate=500.0,
            positions=(TaskId("O2", 0),), tuple_scale=32.0,
        )
        assert value > 0.0

    def test_correlated_latency_exceeds_single(self):
        single = single_failure_latency(
            self.TECH, window=10.0, rate=500.0,
            positions=(TaskId("O2", 0),), tuple_scale=32.0,
        )
        correlated = correlated_failure_latency(
            self.TECH, window=10.0, rate=500.0, tuple_scale=32.0,
        )
        assert correlated >= single

    def test_half_subtree_plan_is_complete_subtree(self):
        bundle = fig6_bundle(500.0, 10.0, tuple_scale=32.0)
        plan = half_subtree_plan(bundle)
        assert len(plan) == 8
        assert TaskId("O4", 0) in plan


class TestCheckpointCost:
    def test_ratio_decreases_with_interval(self):
        short = checkpoint_cpu_ratio(500.0, 1.0, duration=20.0, tuple_scale=32.0)
        long = checkpoint_cpu_ratio(500.0, 10.0, duration=20.0, tuple_scale=32.0)
        assert short > long > 0.0

    def test_fig9_rows_cover_grid(self):
        result = fig9(intervals=(2.0, 8.0), rates=(500.0,), duration=20.0,
                      tuple_scale=32.0)
        assert len(result.rows) == 2
        assert len(result.rows[0]) == 2


class TestAccuracyHarness:
    def test_settings_for_derives_from_window(self):
        bundle = q1_bundle(window_seconds=20.0)
        settings = settings_for(bundle, fail_time=50.0)
        assert settings.measure_from == 80.0
        assert settings.duration > settings.measure_from

    def test_settings_validation(self):
        with pytest.raises(ExperimentError):
            AccuracySettings(fail_time=10.0, measure_from=5.0, duration=20.0)

    def test_full_plan_keeps_accuracy_perfect(self):
        bundle = q1_bundle(window_seconds=8.0, pages=100, rate_per_source=200.0,
                           tuple_scale=4.0)
        settings = AccuracySettings(fail_time=20.0, measure_from=30.0,
                                    duration=45.0)
        baseline = run_baseline(bundle, settings)
        accuracy = measured_accuracy(
            bundle, bundle.topology.tasks(), baseline, settings
        )
        assert accuracy == pytest.approx(1.0)

    def test_empty_plan_gives_zero_accuracy(self):
        bundle = q1_bundle(window_seconds=8.0, pages=100, rate_per_source=200.0,
                           tuple_scale=4.0)
        settings = AccuracySettings(fail_time=20.0, measure_from=30.0,
                                    duration=45.0)
        baseline = run_baseline(bundle, settings)
        accuracy = measured_accuracy(bundle, (), baseline, settings)
        assert accuracy == 0.0


class TestRandomTopologyHarness:
    def test_sweep_returns_series_per_fraction(self):
        sa, greedy = sweep_planner_fidelity(
            BASE_SPEC, fractions=(0.3, 0.7), n_topologies=4
        )
        assert len(sa) == len(greedy) == 2
        assert all(0.0 <= v <= 1.0 for v in sa + greedy)

    def test_sa_dominates_in_aggregate(self):
        sa, greedy = sweep_planner_fidelity(
            BASE_SPEC, fractions=(0.3,), n_topologies=6
        )
        assert sa[0] >= greedy[0] - 0.02

    def test_fig14_unknown_variant_rejected(self):
        with pytest.raises(ExperimentError):
            fig14("z", n_topologies=1)

    def test_fig14_builds_table(self):
        result = fig14("a", fractions=(0.4,), n_topologies=2)
        assert len(result.rows) == 1
        assert len(result.headers) == 5  # fraction + 2 specs x 2 planners


class TestClaims:
    def test_tentative_speedup_meaningful(self):
        speedup = tentative_speedup(rate=500.0, checkpoint_interval=15.0,
                                    window=10.0, tuple_scale=32.0)
        assert speedup > 1.5

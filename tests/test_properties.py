"""Property-based tests (hypothesis) for the core invariants.

These exercise the metric/planner layer on randomly generated topologies and
failure sets, checking the invariants the algorithms rely on:

* losses and fidelities stay in [0, 1];
* OF is antitone in the failed set (more failures never help);
* worst-case OF is monotone in the plan (more replicas never hurt);
* planners never exceed their budget and are deterministic;
* partitioning weight maps are well-formed for arbitrary legal sizes.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import (
    GreedyPlanner,
    StructureAwarePlanner,
    enumerate_mc_trees,
    output_fidelity,
    propagate_information_loss,
    worst_case_fidelity,
)
from repro.topology import (
    OperatorKind,
    OperatorSpec,
    Partitioning,
    TaskId,
    TopologySpec,
    WeightSkew,
    generate_source_rates,
    generate_topology,
    propagate_rates,
    substream_weights,
)

topology_seeds = st.integers(min_value=0, max_value=10_000)
specs = st.sampled_from([
    TopologySpec(n_operators=(2, 5), parallelism=(1, 4)),
    TopologySpec(n_operators=(2, 5), parallelism=(1, 4), join_fraction=0.5),
    TopologySpec(n_operators=(2, 4), parallelism=(2, 5),
                 weight_skew=WeightSkew.ZIPF, zipf_s=0.5),
])


def _instance(spec: TopologySpec, seed: int):
    topology = generate_topology(spec, seed)
    rates = propagate_rates(topology, generate_source_rates(topology, seed))
    return topology, rates


def _failure_set(topology, seed: int, fraction: float):
    tasks = sorted(topology.tasks())
    count = int(len(tasks) * fraction)
    # Deterministic pseudo-random subset derived from the seed.
    return frozenset(tasks[(seed + 3 * i) % len(tasks)] for i in range(count))


class TestLossInvariants:
    @given(specs, topology_seeds, st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_losses_within_unit_interval(self, spec, seed, fraction):
        topology, rates = _instance(spec, seed)
        failed = _failure_set(topology, seed, fraction)
        loss = propagate_information_loss(topology, rates, failed)
        assert all(0.0 <= v <= 1.0 for v in loss.values())

    @given(specs, topology_seeds)
    @settings(max_examples=40, deadline=None)
    def test_failed_tasks_have_total_loss(self, spec, seed):
        topology, rates = _instance(spec, seed)
        failed = _failure_set(topology, seed, 0.4)
        loss = propagate_information_loss(topology, rates, failed)
        assert all(loss[t] == 1.0 for t in failed)

    @given(specs, topology_seeds)
    @settings(max_examples=30, deadline=None)
    def test_fidelity_antitone_in_failures(self, spec, seed):
        topology, rates = _instance(spec, seed)
        small = _failure_set(topology, seed, 0.2)
        large = small | _failure_set(topology, seed + 1, 0.3)
        assert output_fidelity(topology, rates, large) <= (
            output_fidelity(topology, rates, small) + 1e-9
        )


class TestFidelityInvariants:
    @given(specs, topology_seeds)
    @settings(max_examples=30, deadline=None)
    def test_worst_case_bounds(self, spec, seed):
        topology, rates = _instance(spec, seed)
        assert worst_case_fidelity(topology, rates, topology.tasks()) == 1.0
        assert worst_case_fidelity(topology, rates, ()) == 0.0

    @given(specs, topology_seeds)
    @settings(max_examples=30, deadline=None)
    def test_worst_case_monotone_in_plan(self, spec, seed):
        topology, rates = _instance(spec, seed)
        tasks = sorted(topology.tasks())
        half = frozenset(tasks[: len(tasks) // 2])
        more = half | {tasks[-1]}
        assert worst_case_fidelity(topology, rates, more) >= (
            worst_case_fidelity(topology, rates, half) - 1e-9
        )


class TestPlannerInvariants:
    @given(specs, topology_seeds, st.floats(0.1, 0.9))
    @settings(max_examples=25, deadline=None)
    def test_plans_respect_budget(self, spec, seed, fraction):
        topology, rates = _instance(spec, seed)
        budget = max(1, int(topology.num_tasks * fraction))
        for planner in (GreedyPlanner(), StructureAwarePlanner()):
            plan = planner.plan(topology, rates, budget)
            assert plan.usage <= budget
            assert plan.replicated <= set(topology.tasks())

    @given(specs, topology_seeds)
    @settings(max_examples=15, deadline=None)
    def test_planners_deterministic(self, spec, seed):
        topology, rates = _instance(spec, seed)
        budget = max(1, topology.num_tasks // 3)
        for planner_cls in (GreedyPlanner, StructureAwarePlanner):
            a = planner_cls().plan(topology, rates, budget)
            b = planner_cls().plan(topology, rates, budget)
            assert a.replicated == b.replicated

    @given(specs, topology_seeds)
    @settings(max_examples=15, deadline=None)
    def test_sa_trajectory_values_monotone(self, spec, seed):
        topology, rates = _instance(spec, seed)
        trajectory = StructureAwarePlanner().plan_trajectory(
            topology, rates, topology.num_tasks
        )
        values = [
            worst_case_fidelity(topology, rates, p.replicated) for p in trajectory
        ]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


class TestMCTreeInvariants:
    @given(topology_seeds)
    @settings(max_examples=20, deadline=None)
    def test_trees_span_source_to_sink(self, seed):
        spec = TopologySpec(n_operators=(2, 4), parallelism=(1, 3))
        topology, rates = _instance(spec, seed)
        sources = set(topology.source_tasks())
        sinks = set(topology.sink_tasks())
        for tree in enumerate_mc_trees(topology, limit=5000):
            assert tree & sources
            assert tree & sinks
            assert worst_case_fidelity(topology, rates, tree) > 0.0


class TestPartitioningProperties:
    @given(st.integers(1, 12), st.integers(1, 12),
           st.sampled_from(list(Partitioning)))
    @settings(max_examples=60, deadline=None)
    def test_weights_partition_upstream_output(self, n_up, n_down, pattern):
        if pattern is Partitioning.ONE_TO_ONE and n_up != n_down:
            return
        if pattern is Partitioning.SPLIT and n_down <= n_up:
            return
        if pattern is Partitioning.MERGE and n_up <= n_down:
            return
        up = OperatorSpec("U", n_up, OperatorKind.SOURCE)
        down = OperatorSpec("D", n_down, OperatorKind.INDEPENDENT)
        weights = substream_weights(up, down, pattern)
        for i in range(n_up):
            total = sum(w for (u, _d), w in weights.items() if u == i)
            assert abs(total - 1.0) < 1e-9
        covered = {j for (_u, j) in weights}
        assert covered == set(range(n_down))

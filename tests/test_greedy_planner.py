"""Tests for Algorithm 2 (the structure-agnostic greedy planner)."""

import pytest

from repro.core import GreedyPlanner, IC_OBJECTIVE, worst_case_fidelity
from repro.topology import TaskId


class TestRanking:
    def test_most_critical_task_first(self, chain_topology, chain_rates):
        ranked = GreedyPlanner().rank_tasks(chain_topology, chain_rates)
        # C[0] is the single sink: its failure zeroes the output.
        assert ranked[0][1] == TaskId("C", 0)
        assert ranked[0][0] == 0.0

    def test_ranking_is_ascending_in_damage_value(self, chain_topology, chain_rates):
        values = [v for v, _t in GreedyPlanner().rank_tasks(chain_topology, chain_rates)]
        assert values == sorted(values)

    def test_ranking_covers_all_tasks(self, chain_topology, chain_rates):
        ranked = GreedyPlanner().rank_tasks(chain_topology, chain_rates)
        assert len(ranked) == chain_topology.num_tasks


class TestPlan:
    def test_respects_budget(self, chain_topology, chain_rates):
        plan = GreedyPlanner().plan(chain_topology, chain_rates, 5)
        assert plan.usage == 5

    def test_budget_larger_than_topology_is_clamped(self, chain_topology,
                                                    chain_rates):
        plan = GreedyPlanner().plan(chain_topology, chain_rates, 99)
        assert plan.usage == chain_topology.num_tasks

    def test_greedy_ignores_tree_structure(self, chain_topology, chain_rates):
        """The paper's criticism: small greedy plans form no complete MC-tree."""
        plan = GreedyPlanner().plan(chain_topology, chain_rates, 4)
        assert worst_case_fidelity(chain_topology, chain_rates, plan.replicated) == 0.0

    def test_full_budget_reaches_perfect_fidelity(self, chain_topology, chain_rates):
        plan = GreedyPlanner().plan(chain_topology, chain_rates,
                                    chain_topology.num_tasks)
        assert worst_case_fidelity(
            chain_topology, chain_rates, plan.replicated
        ) == 1.0

    def test_deterministic(self, chain_topology, chain_rates):
        a = GreedyPlanner().plan(chain_topology, chain_rates, 6)
        b = GreedyPlanner().plan(chain_topology, chain_rates, 6)
        assert a.replicated == b.replicated

    def test_ic_objective_changes_ranking(self, join_topology, join_rates):
        of_plan = GreedyPlanner().plan(join_topology, join_rates, 4)
        ic_plan = GreedyPlanner(IC_OBJECTIVE).plan(join_topology, join_rates, 4)
        assert of_plan.usage == ic_plan.usage == 4


class TestTrajectory:
    def test_prefixes_of_ranking(self, chain_topology, chain_rates):
        trajectory = GreedyPlanner().plan_trajectory(chain_topology, chain_rates, 5)
        assert [p.usage for p in trajectory] == list(range(6))
        for smaller, larger in zip(trajectory, trajectory[1:]):
            assert smaller.replicated < larger.replicated

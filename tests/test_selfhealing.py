"""Self-healing behaviour: worker reconnects, client retries, degradation.

Covers the resilience layer *applied* — tests/test_resilience.py proves
the policies themselves; this file proves the fabric actually uses them:

* a ``worker --connect`` facing a protocol-mismatched coordinator exits
  non-zero immediately with an actionable message (never retried);
* the sweep client's retry policy reconnects-and-resends a submit whose
  connection died between jobs, and its circuit breaker fails fast on a
  repeatedly unreachable server;
* a cluster backend whose fleet dies mid-grid degrades to its
  in-process fallback, finishes cleanly, and surfaces the degraded
  cells on the report and in the sweep service's status counters.
"""

import dataclasses
import json
import socket
import threading
import time

import pytest

from test_cluster import KILL_SEED, kill_once_cluster_runner

from repro.cluster.backend import ClusterBackend
from repro.errors import ServiceError
from repro.resilience import CircuitBreaker, RetryPolicy
from repro.scenarios import (
    GridSession,
    Scenario,
    ScenarioCache,
    ScenarioResult,
    run_scenario_prebuilt,
    scenario_digest,
)
from repro.service.broker import SweepBroker
from repro.service.client import SweepClient
from repro.service.server import SweepServer


def cell(seed: int) -> Scenario:
    """A fast scenario whose digest is distinct per seed."""
    return Scenario(name=f"cell-{seed}", seed=seed, duration=5.0,
                    planner="none",
                    workload_params={"window_seconds": 5.0,
                                     "rate_per_source": 50.0})


def dead_address() -> tuple[str, int]:
    """A loopback port that was just closed: connections are refused."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return ("127.0.0.1", port)


# ---------------------------------------------------------------------------
# Worker versus a protocol-mismatched coordinator
# ---------------------------------------------------------------------------

class FakeMismatchCoordinator:
    """Accepts workers and rejects every register with protocol-mismatch."""

    def __init__(self):
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(4)
        self.address = "127.0.0.1:%d" % self._listener.getsockname()[1]
        self.rejections = 0
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                return
            with conn:
                conn.makefile("r").readline()   # the register attempt
                conn.sendall((json.dumps(
                    {"type": "error", "op": "register",
                     "code": "protocol-mismatch",
                     "message": "protocol 1 unsupported (coordinator "
                                "speaks 99)"}) + "\n").encode())
                self.rejections += 1

    def close(self):
        self._listener.close()


class TestProtocolMismatch:
    def test_worker_cli_exits_2_with_actionable_message(self, capsys):
        from repro.experiments.cli import main

        fake = FakeMismatchCoordinator()
        try:
            started = time.monotonic()
            # --reconnect 30 must NOT make it retry for 30s: version skew
            # is permanent, so the agent gives up on the first rejection.
            code = main(["worker", "--connect", fake.address,
                         "--reconnect", "30"])
            elapsed = time.monotonic() - started
        finally:
            fake.close()
        err = capsys.readouterr().err
        assert code == 2
        assert elapsed < 5.0
        assert fake.rejections == 1
        assert "different cluster protocol" in err
        assert "CLUSTER_PROTOCOL_VERSION" in err
        assert "update this host's repro checkout" in err


# ---------------------------------------------------------------------------
# Sweep client self-healing
# ---------------------------------------------------------------------------

class TestSweepClientHealing:
    def test_submit_reconnects_and_resends_after_a_dropped_wire(
            self, tmp_path):
        server = SweepServer(cache=ScenarioCache(tmp_path / "cache")).start()
        try:
            client = SweepClient(
                server.address, client_id="healer",
                retry=RetryPolicy(max_attempts=3, base_delay=0.05,
                                  jitter="none"))
            with client:
                job = client.submit([cell(1)])
                outcome = client.wait(job)
                assert isinstance(outcome.outcomes[0], ScenarioResult)
                # The wire dies between jobs (a server bounce, a cut
                # VPN): the next submit must heal, not raise.
                client._sock.shutdown(socket.SHUT_RDWR)
                job = client.submit([cell(2)])
                outcome = client.wait(job)
            assert isinstance(outcome.outcomes[0], ScenarioResult)
            assert client.reconnects == 1
        finally:
            server.stop()

    def test_submit_without_retry_policy_stays_fail_fast(self, tmp_path):
        server = SweepServer(cache=ScenarioCache(tmp_path / "cache")).start()
        try:
            client = SweepClient(server.address, client_id="brittle")
            with client:
                client._sock.shutdown(socket.SHUT_RDWR)
                with pytest.raises(ServiceError):
                    client.submit([cell(3)])
            assert client.reconnects == 0
        finally:
            server.stop()

    def test_breaker_fails_fast_on_a_repeatedly_dead_server(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
        address = dead_address()
        with pytest.raises(ServiceError, match="cannot connect"):
            SweepClient(address, breaker=breaker)
        # The circuit is open now: no second dial is even attempted.
        with pytest.raises(ServiceError, match="circuit open"):
            SweepClient(address, breaker=breaker)


# ---------------------------------------------------------------------------
# Cluster backend graceful degradation
# ---------------------------------------------------------------------------

class TestGracefulDegradation:
    def test_dead_fleet_degrades_to_fallback_and_reports_it(
            self, tmp_path, monkeypatch):
        flag = tmp_path / "killed.flag"
        monkeypatch.setenv("REPRO_TEST_CLUSTER_KILL_FLAG", str(flag))
        grid = [cell(i) for i in range(6)]
        grid[2] = dataclasses.replace(grid[2], seed=KILL_SEED)

        backend = ClusterBackend(local_workers=1, respawn=0,
                                 fallback="processes",
                                 degrade_after=0.5,
                                 heartbeat_timeout=2.0)
        try:
            report = GridSession(backend, runner=kill_once_cluster_runner,
                                 retries=1).run(grid)
        finally:
            backend.close()
        assert flag.exists()             # the whole fleet really died
        assert report.errors == 0        # and the grid still finished
        assert report.degraded > 0       # on the in-process fallback
        assert len(backend.degraded_positions) == report.degraded
        for scenario, outcome in zip(grid, report.outcomes):
            assert isinstance(outcome, ScenarioResult)
            assert outcome.scenario == scenario

    def test_no_fallback_means_fail_hard(self):
        backend = ClusterBackend(local_workers=1, fallback=None)
        assert backend.fallback is None


# ---------------------------------------------------------------------------
# Degraded cells in the sweep service's accounting
# ---------------------------------------------------------------------------

class TestDegradedCounters:
    def test_broker_counts_degraded_completions_per_client(self):
        broker = SweepBroker(publish=lambda client, message: None)
        scenarios = [cell(1), cell(2)]
        broker.submit("alice", scenarios, job="a")
        taken = dict(broker.take(5))
        for i, scenario in enumerate(scenarios):
            digest = scenario_digest(scenario)
            assert digest in taken
            broker.complete(digest, run_scenario_prebuilt(scenario),
                            attempts=1, degraded=(i == 0))
        assert broker.totals.degraded == 1
        assert broker.per_client["alice"].degraded == 1
        assert broker.totals.to_dict()["degraded"] == 1

    def test_status_payload_and_rendering_carry_degraded(self, tmp_path,
                                                         capsys):
        from repro.service.cli import _print_status

        server = SweepServer(cache=ScenarioCache(tmp_path / "cache")).start()
        try:
            with SweepClient(server.address, client_id="ops") as client:
                job = client.submit([cell(7)])
                client.wait(job)
                status = client.status()
        finally:
            server.stop()
        assert status["totals"]["degraded"] == 0
        assert status["clients"]["ops"]["degraded"] == 0

        # The operator-facing rendering spells the counter out, per
        # client, even when (as here) nothing degraded.
        _print_status(status, as_json=False)
        out = capsys.readouterr().out
        assert "0 degraded" in out
        assert "  ops: " in out

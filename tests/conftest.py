"""Shared fixtures: canonical topologies from the paper's figures."""

from __future__ import annotations

import pytest

from repro.topology import (
    Partitioning,
    SourceRates,
    TopologyBuilder,
    propagate_rates,
    uniform_source_rates,
)


@pytest.fixture
def fig2_topology():
    """The illustrating topology of Fig. 2: O1, O2 feeding O3 (join).

    Source output rates are chosen so the paper's worked example holds:
    stream 1 (from O1) carries rate 3, stream 2 (from O2) rates 3 + 2; when
    t22 fails, ``IL_out(t31) = 2/5`` for a correlated-input O3 and ``1/4``
    for an independent-input one.
    """
    return (
        TopologyBuilder()
        .source("O1", 2, task_weights=(2.0, 1.0))
        .source("O2", 2, task_weights=(3.0, 2.0))
        .join("O3", 1)
        .connect("O1", "O3", Partitioning.FULL)
        .connect("O2", "O3", Partitioning.FULL)
        .build()
    )


@pytest.fixture
def fig2_rates(fig2_topology):
    from repro.topology import TaskId

    return propagate_rates(fig2_topology, SourceRates(per_task={
        TaskId("O1", 0): 2.0, TaskId("O1", 1): 1.0,
        TaskId("O2", 0): 3.0, TaskId("O2", 1): 2.0,
    }))


@pytest.fixture
def fig2_independent():
    """Fig. 2 variant where O3 is an independent-input operator."""
    return (
        TopologyBuilder()
        .source("O1", 2, task_weights=(2.0, 1.0))
        .source("O2", 2, task_weights=(3.0, 2.0))
        .operator("O3", 1)
        .connect("O1", "O3", Partitioning.FULL)
        .connect("O2", "O3", Partitioning.FULL)
        .build()
    )


@pytest.fixture
def fig2_independent_rates(fig2_independent):
    from repro.topology import TaskId

    return propagate_rates(fig2_independent, SourceRates(per_task={
        TaskId("O1", 0): 2.0, TaskId("O1", 1): 1.0,
        TaskId("O2", 0): 3.0, TaskId("O2", 1): 2.0,
    }))


@pytest.fixture
def chain_topology():
    """A 4-operator full-partitioned chain: S(4) -> A(4) -> B(2) -> C(1)."""
    return (
        TopologyBuilder()
        .source("S", 4)
        .operator("A", 4, selectivity=0.5)
        .operator("B", 2, selectivity=0.5)
        .operator("C", 1, selectivity=0.5)
        .chain("S", "A", "B", "C", pattern=Partitioning.FULL)
        .build()
    )


@pytest.fixture
def chain_rates(chain_topology):
    return propagate_rates(chain_topology, uniform_source_rates(chain_topology, 100.0))


@pytest.fixture
def merge_tree_topology():
    """A binary merge tree: S(8) -> A(4) -> B(2) -> C(1), all merge edges."""
    return (
        TopologyBuilder()
        .source("S", 8)
        .operator("A", 4)
        .operator("B", 2)
        .operator("C", 1)
        .chain("S", "A", "B", "C", pattern=Partitioning.MERGE)
        .build()
    )


@pytest.fixture
def merge_tree_rates(merge_tree_topology):
    return propagate_rates(
        merge_tree_topology, uniform_source_rates(merge_tree_topology, 100.0)
    )


@pytest.fixture
def join_topology():
    """Two branches joined: Sa(2)->A(2), Sb(2)->B(2), join J(2), sink K(1)."""
    return (
        TopologyBuilder()
        .source("Sa", 2)
        .source("Sb", 2)
        .operator("A", 2)
        .operator("B", 2)
        .join("J", 2)
        .operator("K", 1)
        .connect("Sa", "A", Partitioning.ONE_TO_ONE)
        .connect("Sb", "B", Partitioning.ONE_TO_ONE)
        .connect("A", "J", Partitioning.FULL)
        .connect("B", "J", Partitioning.FULL)
        .connect("J", "K", Partitioning.FULL)
        .build()
    )


@pytest.fixture
def join_rates(join_topology):
    return propagate_rates(join_topology, uniform_source_rates(join_topology, 10.0))

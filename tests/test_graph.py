"""Unit tests for the topology DAG."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    OperatorKind,
    OperatorSpec,
    Partitioning,
    StreamEdge,
    TaskId,
    Topology,
    TopologyBuilder,
    linear_chain,
)


def _spec(name, parallelism, kind=OperatorKind.INDEPENDENT):
    return OperatorSpec(name, parallelism, kind)


class TestValidation:
    def test_rejects_duplicate_operator_names(self):
        with pytest.raises(TopologyError, match="duplicate operator"):
            Topology([_spec("A", 1, OperatorKind.SOURCE), _spec("A", 2)], [])

    def test_rejects_unknown_edge_endpoint(self):
        with pytest.raises(TopologyError, match="unknown operator"):
            Topology([_spec("A", 1, OperatorKind.SOURCE)],
                     [StreamEdge("A", "B", Partitioning.FULL)])

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError, match="itself"):
            StreamEdge("A", "A", Partitioning.FULL)

    def test_rejects_duplicate_edges(self):
        specs = [_spec("A", 1, OperatorKind.SOURCE), _spec("B", 1)]
        edges = [StreamEdge("A", "B", Partitioning.FULL)] * 2
        with pytest.raises(TopologyError, match="duplicate edge"):
            Topology(specs, edges)

    def test_rejects_cycles(self):
        specs = [_spec("S", 1, OperatorKind.SOURCE), _spec("A", 1), _spec("B", 1)]
        edges = [
            StreamEdge("S", "A", Partitioning.FULL),
            StreamEdge("A", "B", Partitioning.FULL),
            StreamEdge("B", "A", Partitioning.FULL),
        ]
        with pytest.raises(TopologyError, match="cycle"):
            Topology(specs, edges)

    def test_rejects_source_with_upstream(self):
        specs = [_spec("S", 1, OperatorKind.SOURCE), _spec("T", 1, OperatorKind.SOURCE)]
        with pytest.raises(TopologyError, match="source operator"):
            Topology(specs, [StreamEdge("S", "T", Partitioning.FULL)])

    def test_rejects_non_source_without_upstream(self):
        with pytest.raises(TopologyError, match="no upstream"):
            Topology([_spec("A", 1)], [])

    def test_rejects_unreachable_operator(self):
        # B -> C exists but B is itself a source-less island.
        specs = [_spec("S", 1, OperatorKind.SOURCE), _spec("C", 1)]
        with pytest.raises(TopologyError):
            Topology(specs, [])

    def test_rejects_empty_topology(self):
        with pytest.raises(TopologyError):
            Topology([], [])


class TestAccessors:
    def test_topological_order_sources_first(self, chain_topology):
        order = chain_topology.topological_order()
        assert order[0] == "S"
        assert order.index("A") < order.index("B") < order.index("C")

    def test_tasks_count(self, chain_topology):
        assert chain_topology.num_tasks == 4 + 4 + 2 + 1

    def test_sources_and_sinks(self, chain_topology):
        assert [s.name for s in chain_topology.sources()] == ["S"]
        assert [s.name for s in chain_topology.sinks()] == ["C"]

    def test_sink_tasks(self, chain_topology):
        assert chain_topology.sink_tasks() == (TaskId("C", 0),)

    def test_upstream_and_downstream_of(self, chain_topology):
        assert chain_topology.upstream_of("B") == ("A",)
        assert chain_topology.downstream_of("A") == ("B",)
        assert chain_topology.upstream_of("S") == ()

    def test_unknown_operator_raises(self, chain_topology):
        with pytest.raises(TopologyError):
            chain_topology.operator("nope")

    def test_edge_lookup(self, chain_topology):
        assert chain_topology.edge("S", "A").pattern is Partitioning.FULL
        assert chain_topology.has_edge("A", "B")
        assert not chain_topology.has_edge("B", "A")
        with pytest.raises(TopologyError):
            chain_topology.edge("B", "A")


class TestTaskAdjacency:
    def test_input_streams_grouped_per_upstream_operator(self, join_topology):
        streams = join_topology.input_streams(TaskId("J", 0))
        assert [s.upstream_operator for s in streams] == ["A", "B"]
        assert len(streams[0].substreams) == 2  # full from A(2)

    def test_output_substreams_full(self, chain_topology):
        outs = chain_topology.output_substreams(TaskId("A", 0))
        assert [dst for dst, _w in outs] == [TaskId("B", 0), TaskId("B", 1)]

    def test_substream_weight_disconnected_is_zero(self, chain_topology):
        assert chain_topology.substream_weight(TaskId("S", 0), TaskId("C", 0)) == 0.0

    def test_substream_weights_out_of_task_sum_to_one(self, chain_topology):
        for task in chain_topology.tasks():
            outs = chain_topology.output_substreams(task)
            if outs:
                assert sum(w for _d, w in outs) == pytest.approx(1.0)

    def test_upstream_tasks_of_sink(self, chain_topology):
        ups = chain_topology.upstream_tasks(TaskId("C", 0))
        assert set(ups) == {TaskId("B", 0), TaskId("B", 1)}

    def test_input_streams_of_unknown_task_raises(self, chain_topology):
        with pytest.raises(TopologyError):
            chain_topology.input_streams(TaskId("Z", 0))


class TestLinearChain:
    def test_builds_expected_shape(self):
        topo = linear_chain([2, 4, 1])
        assert topo.operator_names == ("S", "O1", "O2")
        assert topo.num_tasks == 7

    def test_requires_two_levels(self):
        with pytest.raises(TopologyError):
            linear_chain([3])


class TestBuilder:
    def test_duplicate_declaration_rejected(self):
        builder = TopologyBuilder().source("S", 1)
        with pytest.raises(TopologyError):
            builder.source("S", 2)

    def test_connect_requires_declared_operators(self):
        builder = TopologyBuilder().source("S", 1)
        with pytest.raises(TopologyError):
            builder.connect("S", "X")

    def test_chain_requires_two_names(self):
        builder = TopologyBuilder().source("S", 1)
        with pytest.raises(TopologyError):
            builder.chain("S")

    def test_describe_mentions_all_operators(self, join_topology):
        text = join_topology.describe()
        for name in join_topology.operator_names:
            assert name in text

"""Engine edge cases: early failures, repeated failures, odd configurations."""

import pytest

from repro.engine import Cluster, EngineConfig, StreamEngine, TaskStatus
from repro.topology import TaskId

from tests.engine_helpers import build_engine, sink_outputs, small_logic, small_topology


class TestEarlyFailure:
    def test_failure_before_first_checkpoint_cold_restarts(self):
        config = EngineConfig(checkpoint_interval=30.0, heartbeat_interval=2.0)
        baseline = build_engine(config)
        baseline.run(20.0)
        failed = build_engine(config)
        failed.schedule_task_failure(3.0, [TaskId("L0", 1)])
        failed.run(20.0)
        assert failed.all_recovered()
        assert sink_outputs(failed) == sink_outputs(baseline)

    def test_failure_at_time_zero_batch(self):
        config = EngineConfig(checkpoint_interval=10.0, heartbeat_interval=2.0)
        engine = build_engine(config)
        engine.schedule_task_failure(0.5, [TaskId("L0", 0)])
        engine.run(15.0)
        assert engine.all_recovered()


class TestRepeatedFailures:
    def test_second_failure_of_same_node_is_noop(self):
        config = EngineConfig(checkpoint_interval=4.0, heartbeat_interval=2.0)
        engine = build_engine(config)
        names = engine.cluster.nodes_hosting([TaskId("L0", 1)])
        engine.schedule_node_failure(6.0, names)
        engine.schedule_node_failure(6.5, names)
        engine.run(18.0)
        assert len(engine.metrics.recoveries) == 1

    def test_sequential_failures_of_different_tasks(self):
        config = EngineConfig(checkpoint_interval=4.0, heartbeat_interval=2.0)
        baseline = build_engine(config)
        baseline.run(30.0)
        engine = build_engine(config)
        engine.schedule_task_failure(6.0, [TaskId("L0", 0)])
        engine.schedule_task_failure(14.0, [TaskId("L0", 1)])
        engine.run(30.0)
        assert len(engine.metrics.recoveries) == 2
        assert engine.all_recovered()
        assert sink_outputs(engine) == sink_outputs(baseline)


class TestClusterVariants:
    def test_multiple_tasks_per_node_fail_together(self):
        topology = small_topology()
        cluster = Cluster(n_workers=2, n_standby=2)
        cluster.place_round_robin(topology)
        config = EngineConfig(checkpoint_interval=4.0, heartbeat_interval=2.0)
        engine = StreamEngine(topology, small_logic(), config, cluster=cluster)
        engine.schedule_node_failure(8.0, ["worker-0"])
        engine.run(25.0)
        # worker-0 hosts several tasks under 2-node placement.
        assert len(engine.metrics.recoveries) >= 2
        assert engine.all_recovered()

    def test_default_cluster_isolates_tasks(self):
        engine = build_engine(EngineConfig(checkpoint_interval=None))
        assert len(engine.cluster.workers) == engine.topology.num_tasks


class TestRunSemantics:
    def test_settle_false_leaves_recovery_pending(self):
        config = EngineConfig(checkpoint_interval=4.0, heartbeat_interval=2.0)
        engine = build_engine(config)
        engine.schedule_task_failure(9.5, [TaskId("L0", 1)])
        engine.run(10.0, settle=False)
        assert not engine.all_recovered() or not engine.metrics.recoveries

    def test_failure_after_end_time_is_not_processed(self):
        config = EngineConfig(checkpoint_interval=4.0, heartbeat_interval=2.0)
        engine = build_engine(config)
        engine.schedule_task_failure(50.0, [TaskId("L0", 1)])
        engine.run(10.0, settle=False)
        assert engine.runtime(TaskId("L0", 1)).status is TaskStatus.RUNNING

    def test_zero_duration_run_is_empty_but_valid(self):
        engine = build_engine(EngineConfig(checkpoint_interval=None))
        metrics = engine.run(0.0)
        assert metrics.batches_processed == 0


class TestSelectivityPipelines:
    def test_low_selectivity_still_emits_punctuations(self):
        # With selectivity 0.1 many batches are empty, but the protocol must
        # keep batch indices flowing to the sink.
        engine = build_engine(EngineConfig(checkpoint_interval=None),
                              selectivity=0.1)
        engine.run(10.0)
        outs = sink_outputs(engine)
        assert sorted(outs) == list(range(10))

"""Tests for the Internal Completeness baseline metric."""

import pytest

from repro.core import (
    internal_completeness,
    output_fidelity,
    worst_case_completeness,
)
from repro.core.completeness import single_failure_completeness
from repro.topology import TaskId


class TestInternalCompleteness:
    def test_no_failure_is_perfect(self, chain_topology, chain_rates):
        assert internal_completeness(chain_topology, chain_rates, frozenset()) == 1.0

    def test_all_failed_is_zero(self, chain_topology, chain_rates):
        assert internal_completeness(
            chain_topology, chain_rates, frozenset(chain_topology.tasks())
        ) == 0.0

    def test_within_unit_interval(self, join_topology, join_rates):
        value = internal_completeness(join_topology, join_rates, {TaskId("A", 0)})
        assert 0.0 <= value <= 1.0

    def test_ignores_join_correlation(self, join_topology, join_rates):
        """Losing one whole join branch: OF says all output lost, IC does not."""
        failed = {TaskId("Sb", 0), TaskId("Sb", 1), TaskId("B", 0), TaskId("B", 1)}
        of = output_fidelity(join_topology, join_rates, failed)
        ic = internal_completeness(join_topology, join_rates, failed)
        assert of == 0.0
        assert ic > 0.0

    def test_sink_failure_hurts_ic_less_than_of(self, chain_topology, chain_rates):
        """IC weighs all tasks' input, so a dead sink is not total loss."""
        failed = {TaskId("C", 0)}
        of = output_fidelity(chain_topology, chain_rates, failed)
        ic = internal_completeness(chain_topology, chain_rates, failed)
        assert of == 0.0
        assert ic > 0.0

    def test_worst_case_uses_complement_of_plan(self, chain_topology, chain_rates):
        full = worst_case_completeness(
            chain_topology, chain_rates, chain_topology.tasks()
        )
        nothing = worst_case_completeness(chain_topology, chain_rates, ())
        assert full == 1.0
        assert nothing == 0.0

    def test_single_failure_value(self, chain_topology, chain_rates):
        value = single_failure_completeness(
            chain_topology, chain_rates, TaskId("A", 0)
        )
        assert 0.0 < value < 1.0

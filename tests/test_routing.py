"""Unit tests for key-based tuple routing."""

import pytest

from repro.engine import Router, stable_hash
from repro.topology import Partitioning, TaskId, TopologyBuilder, linear_chain


def _topology(pattern, n_up, n_down):
    return (
        TopologyBuilder()
        .source("U", n_up)
        .operator("D", n_down)
        .connect("U", "D", pattern)
        .build()
    )


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("page-1") == stable_hash("page-1")

    def test_spreads_keys(self):
        buckets = {stable_hash(f"k{i}") % 4 for i in range(100)}
        assert buckets == {0, 1, 2, 3}


class TestRouting:
    def test_one_to_one_keeps_index(self):
        router = Router(_topology(Partitioning.ONE_TO_ONE, 3, 3))
        out = router.distribute(TaskId("U", 1), [("a", 1), ("b", 2)])
        assert sorted(out) == [TaskId("D", 1)]
        assert len(out[TaskId("D", 1)]) == 2

    def test_merge_sends_to_single_target(self):
        router = Router(_topology(Partitioning.MERGE, 4, 2))
        out = router.distribute(TaskId("U", 3), [("a", 1)])
        assert list(out) == [TaskId("D", 1)]

    def test_split_stays_within_group(self):
        router = Router(_topology(Partitioning.SPLIT, 2, 6))
        out = router.distribute(TaskId("U", 0), [(f"k{i}", i) for i in range(50)])
        # Upstream 0's group is downstream {0, 1, 2}.
        targets = {dst for dst, tuples in out.items() if tuples}
        assert targets <= {TaskId("D", 0), TaskId("D", 1), TaskId("D", 2)}

    def test_full_partitions_by_key_hash(self):
        router = Router(_topology(Partitioning.FULL, 2, 3))
        out = router.distribute(TaskId("U", 0), [(f"k{i}", i) for i in range(60)])
        non_empty = [dst for dst, tuples in out.items() if tuples]
        assert len(non_empty) == 3  # enough keys to hit every task

    def test_same_key_same_destination_across_upstreams(self):
        router = Router(_topology(Partitioning.FULL, 2, 3))
        a = router.distribute(TaskId("U", 0), [("hot", 1)])
        b = router.distribute(TaskId("U", 1), [("hot", 2)])
        dst_a = [d for d, t in a.items() if t]
        dst_b = [d for d, t in b.items() if t]
        assert dst_a[0].index == dst_b[0].index

    def test_every_downstream_gets_punctuation_entry(self):
        router = Router(_topology(Partitioning.FULL, 1, 4))
        out = router.distribute(TaskId("U", 0), [])
        assert sorted(out) == [TaskId("D", i) for i in range(4)]
        assert all(t == [] for t in out.values())

    def test_multi_hop_chain_routes_everywhere(self):
        topo = linear_chain([2, 2, 2])
        router = Router(topo)
        out = router.distribute(TaskId("O1", 0), [(f"k{i}", i) for i in range(20)])
        assert sum(len(t) for t in out.values()) == 20

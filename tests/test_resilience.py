"""Unit tests for the shared resilience policies (repro.resilience)."""

import random

import pytest

from repro.resilience import (
    CircuitBreaker,
    Deadline,
    ResilienceError,
    RetryPolicy,
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_unjittered_delays_are_capped_exponential(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.5, max_delay=3.0,
                             multiplier=2.0, jitter="none")
        assert list(policy.delays()) == [0.5, 1.0, 2.0, 3.0]

    def test_single_attempt_policy_never_sleeps(self):
        policy = RetryPolicy(max_attempts=1, jitter="none")
        assert list(policy.delays()) == []
        assert list(policy.attempts(sleep=lambda s: pytest.fail(
            "should not sleep"))) == [1]

    def test_full_jitter_draws_from_zero_to_backoff(self):
        policy = RetryPolicy(max_attempts=50, base_delay=1.0, max_delay=4.0,
                             jitter="full")
        rng = random.Random(7)
        delays = []
        for attempt, delay in enumerate(policy.delays(rng), start=1):
            assert 0.0 <= delay <= policy.backoff(attempt)
            delays.append(delay)
        # Same seed, same schedule: the chaos-determinism contract.
        assert delays == list(policy.delays(random.Random(7)))

    def test_attempts_respects_max_attempts(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter="none")
        slept = []
        tries = list(policy.attempts(sleep=slept.append))
        assert tries == [1, 2, 3]
        assert slept == [0.01, 0.02]

    def test_deadline_stops_unbounded_policy(self):
        import time

        policy = RetryPolicy(max_attempts=None, base_delay=10.0,
                             jitter="none", deadline=0.05)
        slept = []

        def sleep(seconds):
            slept.append(seconds)
            time.sleep(seconds)

        started = time.monotonic()
        tries = list(policy.attempts(sleep=sleep))
        assert tries[0] == 1          # the first try is always granted
        assert len(tries) <= 2        # then the deadline cuts it off
        # Sleeps are clamped to the remaining budget, never the raw 10s.
        assert all(s <= 0.05 for s in slept)
        assert time.monotonic() - started < 5.0

    def test_call_returns_first_success(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0, jitter="none")
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        assert policy.call(flaky, retry_on=(OSError,),
                           sleep=lambda s: None) == "ok"
        assert len(calls) == 3

    def test_call_reraises_after_budget(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter="none")
        seen = []
        with pytest.raises(OSError, match="always"):
            policy.call(lambda: (_ for _ in ()).throw(OSError("always")),
                        retry_on=(OSError,), sleep=lambda s: None,
                        on_retry=lambda attempt, exc: seen.append(attempt))
        assert seen == [1, 2]

    def test_call_does_not_swallow_unlisted_exceptions(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0, jitter="none")

        def boom():
            raise ValueError("permanent")

        with pytest.raises(ValueError):
            policy.call(boom, retry_on=(OSError,), sleep=lambda s: None)

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"max_attempts": None},                     # unbounded, no deadline
        {"base_delay": -1.0},
        {"multiplier": 0.5},
        {"jitter": "half"},
        {"deadline": 0.0},
    ])
    def test_invalid_configuration_raises(self, kwargs):
        with pytest.raises(ResilienceError):
            RetryPolicy(**kwargs)


# ---------------------------------------------------------------------------
# Deadline
# ---------------------------------------------------------------------------

class TestDeadline:
    def test_none_never_expires(self):
        deadline = Deadline(None)
        assert deadline.remaining() is None
        assert not deadline.expired
        assert deadline.clamp(42.0) == 42.0

    def test_counts_down_on_the_injected_clock(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        assert deadline.remaining() == 5.0
        clock.advance(3.0)
        assert deadline.remaining() == 2.0
        assert deadline.clamp(10.0) == 2.0
        assert deadline.clamp(1.0) == 1.0
        clock.advance(3.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ResilienceError):
            Deadline(-1.0)


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0,
                                 clock=clock)
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=10.0,
                                 clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_lets_exactly_one_probe_through(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == "half-open"
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # but only one

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_for_a_full_window(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0,
                                 clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()     # the probe failed
        assert breaker.state == "open"
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()

    def test_invalid_configuration_raises(self):
        with pytest.raises(ResilienceError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ResilienceError):
            CircuitBreaker(reset_timeout=0.0)

"""Tests for the pluggable grid-execution layer.

Covers the backend × sink matrix (byte-identical outputs), the
content-addressed scenario cache (hits skip the engine), resume, the
structured per-cell error paths (timeout, worker death, runner errors),
result round-trips, the rack-correlated failure model and the deprecated
``workers=`` shim.
"""

import importlib.util
import json
import os
import time

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    EXECUTION_BACKENDS,
    FAILURE_MODELS,
    RESULT_SINKS,
    CellError,
    EdgeDef,
    ExecutionBackend,
    FailureSpec,
    GridSession,
    JsonlSink,
    MemorySink,
    OperatorDef,
    ProcessBackend,
    Scenario,
    ScenarioCache,
    ScenarioResult,
    SqliteSink,
    ThreadBackend,
    TopologyRecipe,
    expand_grid,
    run_grid,
    prebuilt_workload,
    run_scenario,
    run_scenario_prebuilt,
    run_scenarios,
    scenario_digest,
    sink_for_path,
    workload_key,
)
from repro.scenarios import prebuilt
from repro.scenarios.runner import RecoveryOutcome
from repro.topology import TaskId


def tiny_recipe() -> TopologyRecipe:
    return TopologyRecipe(
        operators=(
            OperatorDef("S", 2, kind="source"),
            OperatorDef("A", 2, selectivity=0.5),
            OperatorDef("B", 1, selectivity=0.5),
        ),
        edges=(
            EdgeDef("S", "A", "one-to-one"),
            EdgeDef("A", "B", "merge"),
        ),
    )


def tiny_scenario(**overrides) -> Scenario:
    defaults = dict(
        name="tiny",
        workload="custom",
        topology=tiny_recipe(),
        workload_params={"source_rate": 20.0, "window_seconds": 5.0},
        planner="greedy",
        budget=2,
        engine={"checkpoint_interval": 5.0},
        failures=(FailureSpec("single-task", at=8.0, params={"operator": "A"}),),
        duration=16.0,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


def tiny_grid() -> list[Scenario]:
    return expand_grid(tiny_scenario(), {"budget": [0, 1, 2],
                                         "engine.checkpoint_interval": [4.0, 8.0]})


# ----------------------------------------------------------------------
# Module-level runners: picklable for the processes backend (fork start
# method inherits this module; pickling resolves them by qualified name).
# ----------------------------------------------------------------------

_CALLS = {"count": 0}

#: Sentinel seed marking the cell that misbehaves in the fault-path tests.
MARKED_SEED = 424242


def counting_runner(scenario):
    _CALLS["count"] += 1
    return run_scenario(scenario)


def sleepy_runner(scenario):
    if scenario.seed == MARKED_SEED:
        time.sleep(2.0)
    return run_scenario(scenario)


def killer_runner(scenario):
    if scenario.seed == MARKED_SEED:
        os._exit(3)
    return run_scenario(scenario)


def failing_runner(scenario):
    raise ValueError("boom")


# ----------------------------------------------------------------------
class TestResultRoundTrip:
    def test_full_round_trip_including_plan_and_recoveries(self):
        result = run_scenario(tiny_scenario())
        rebuilt = ScenarioResult.from_dict(result.to_dict())
        assert rebuilt == result
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.plan.planner == "Greedy"
        assert rebuilt.plan.replicated == result.plan.replicated
        assert rebuilt.recoveries == result.recoveries

    def test_round_trip_through_json_text(self):
        result = run_scenario(tiny_scenario())
        rebuilt = ScenarioResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt == result

    def test_missing_required_field_names_key(self):
        data = run_scenario(tiny_scenario()).to_dict()
        del data["plan"]
        with pytest.raises(ScenarioError, match="'plan'"):
            ScenarioResult.from_dict(data)

    def test_unknown_field_rejected(self):
        data = run_scenario(tiny_scenario()).to_dict()
        data["fidelity"] = 1.0
        with pytest.raises(ScenarioError, match="fidelity"):
            ScenarioResult.from_dict(data)

    def test_malformed_task_reference_names_key(self):
        data = run_scenario(tiny_scenario()).to_dict()
        data["failed_tasks"] = ["A-0"]
        with pytest.raises(ScenarioError, match="'failed_tasks'.*A-0"):
            ScenarioResult.from_dict(data)

    def test_malformed_plan_reference_names_key(self):
        data = run_scenario(tiny_scenario()).to_dict()
        data["plan"]["replicated"] = [42]
        with pytest.raises(ScenarioError, match="plan.replicated"):
            ScenarioResult.from_dict(data)

    def test_malformed_numeric_field_names_key(self):
        data = run_scenario(tiny_scenario()).to_dict()
        data["worst_case_fidelity"] = "high"
        with pytest.raises(ScenarioError, match="'worst_case_fidelity'"):
            ScenarioResult.from_dict(data)

    def test_explicit_null_rejected_where_meaningless(self):
        data = run_scenario(tiny_scenario()).to_dict()
        data["batches_processed"] = None
        with pytest.raises(ScenarioError, match="'batches_processed'.*null"):
            ScenarioResult.from_dict(data)

    def test_malformed_plan_budget_names_key(self):
        data = run_scenario(tiny_scenario()).to_dict()
        data["plan"]["budget"] = "lots"
        with pytest.raises(ScenarioError, match="plan.budget"):
            ScenarioResult.from_dict(data)

    def test_null_recovery_mode_rejected(self):
        outcome = RecoveryOutcome(TaskId("A", 1), "active", 8.0, 10.0, None)
        data = outcome.to_dict()
        data["mode"] = None
        with pytest.raises(ScenarioError, match="'mode'.*null"):
            RecoveryOutcome.from_dict(data)
        # while a null recovered_time is meaningful (recovery unfinished)
        assert RecoveryOutcome.from_dict(outcome.to_dict()) == outcome

    def test_recovery_outcome_round_trip(self):
        outcome = RecoveryOutcome(TaskId("A", 1), "active", 8.0, 10.0, 11.5)
        assert RecoveryOutcome.from_dict(outcome.to_dict()) == outcome

    def test_recovery_outcome_rejects_unknown_field(self):
        with pytest.raises(ScenarioError, match="unknown recovery field"):
            RecoveryOutcome.from_dict({"task": "A[0]", "mode": "active",
                                       "fail_time": 1.0, "detect_time": 2.0,
                                       "recovered_time": None, "speed": 9})


# ----------------------------------------------------------------------
class TestBackendSinkMatrix:
    """Every backend x sink combination matches the serial/memory baseline."""

    BACKENDS = ("serial", "threads", "processes")

    @pytest.fixture(scope="class")
    def grid(self):
        return tiny_grid()

    @pytest.fixture(scope="class")
    def baseline_jsonl(self, grid, tmp_path_factory):
        path = tmp_path_factory.mktemp("baseline") / "serial.jsonl"
        report = GridSession("serial", sink=JsonlSink(path)).run(grid)
        assert report.errors == 0
        return path.read_bytes()

    @pytest.fixture(scope="class")
    def baseline_dicts(self, grid):
        report = GridSession("serial").run(grid)
        return [r.to_dict() for r in report.results()]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_memory_sink_matches_baseline(self, backend, grid, baseline_dicts):
        sink = MemorySink()
        report = GridSession(backend, sink=sink).run(grid)
        assert report.errors == 0
        assert [r.to_dict() for r in sink.results] == baseline_dicts
        assert [r.to_dict() for r in report.results()] == baseline_dicts

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_jsonl_sink_byte_identical(self, backend, grid, baseline_jsonl,
                                       tmp_path):
        path = tmp_path / f"{backend}.jsonl"
        report = GridSession(backend, sink=JsonlSink(path)).run(grid)
        assert report.errors == 0
        assert path.read_bytes() == baseline_jsonl

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sqlite_sink_matches_baseline(self, backend, grid, baseline_dicts,
                                          tmp_path):
        path = tmp_path / f"{backend}.sqlite"
        report = GridSession(backend, sink=SqliteSink(path)).run(grid)
        assert report.errors == 0
        loaded = SqliteSink.load(path)
        assert [r.to_dict() for r in loaded] == baseline_dicts

    def test_jsonl_reload_round_trips(self, grid, baseline_jsonl, tmp_path):
        path = tmp_path / "reload.jsonl"
        path.write_bytes(baseline_jsonl)
        outcomes = JsonlSink.load(path)
        assert len(outcomes) == len(grid)
        assert all(isinstance(o, ScenarioResult) for o in outcomes)

    def test_registries_expose_backends_and_sinks(self):
        assert {"serial", "threads", "processes"} <= set(EXECUTION_BACKENDS.names())
        assert {"memory", "jsonl", "sqlite"} <= set(RESULT_SINKS.names())

    def test_sink_for_path_maps_extensions(self, tmp_path):
        assert isinstance(sink_for_path(tmp_path / "x.jsonl"), JsonlSink)
        assert isinstance(sink_for_path(tmp_path / "x.sqlite"), SqliteSink)
        with pytest.raises(ScenarioError, match="cannot infer"):
            sink_for_path(tmp_path / "x.csv")


# ----------------------------------------------------------------------
class TestPrebuiltWorkloads:
    """The prebuilt-worker fast path: one build per distinct workload."""

    def test_prebuilt_runner_matches_plain_runner(self):
        scenario = tiny_scenario()
        assert (run_scenario_prebuilt(scenario).to_dict()
                == run_scenario(scenario).to_dict())

    def test_workload_key_ignores_non_workload_fields(self):
        base = tiny_scenario()
        assert workload_key(base) == workload_key(
            base.with_overrides(budget=0, duration=8.0, failures=[],
                                name="other"))
        assert workload_key(base) != workload_key(base.with_overrides(
            **{"workload_params.source_rate": 21.0}))

    def test_memo_reuses_bundle_and_router_across_cells(self):
        prebuilt.clear()
        base = tiny_scenario()
        bundle_a, router_a, caches_a = prebuilt_workload(base)
        bundle_b, router_b, caches_b = prebuilt_workload(
            base.with_overrides(budget=0))
        assert bundle_a is bundle_b and router_a is router_b
        assert caches_a is caches_b
        assert router_a.topology is bundle_a.topology
        bundle_c, _router_c, _caches_c = prebuilt_workload(
            base.with_overrides(**{"workload_params.window_seconds": 4.0}))
        assert bundle_c is not bundle_a

    def test_workload_caches_fill_and_reuse(self):
        prebuilt.clear()
        base = tiny_scenario()
        for budget in (0, 1, 1):  # repeated budget hits the plan memo
            run_scenario_prebuilt(base.with_overrides(budget=budget))
        _bundle, _router, caches = prebuilt_workload(base)
        assert len(caches.plans) == 2
        assert caches.objective_values  # OF values memoized
        assert caches.source_memos      # shared source batches

    def test_memo_capacity_is_bounded(self, monkeypatch):
        prebuilt.clear()
        monkeypatch.setattr(prebuilt, "CACHE_CAPACITY", 2)
        base = tiny_scenario()
        for rate in (30.0, 31.0, 32.0):
            prebuilt_workload(base.with_overrides(
                **{"workload_params.source_rate": rate}))
        assert prebuilt.cache_info()["entries"] == 2
        prebuilt.clear()
        assert prebuilt.cache_info()["entries"] == 0

    def test_reregistered_workload_invalidates_the_memo(self):
        """register(overwrite=True) must not serve bundles of the old factory."""
        from repro.scenarios import WORKLOADS, make_bundle

        def v1(**params):
            return make_bundle("custom", recipe=tiny_recipe().to_dict(),
                               source_rate=10.0)

        def v2(**params):
            return make_bundle("custom", recipe=tiny_recipe().to_dict(),
                               source_rate=30.0)

        WORKLOADS.register("prebuilt-test", overwrite=True)(v1)
        try:
            scenario = tiny_scenario(workload="prebuilt-test", topology=None,
                                     workload_params={}, failures=())
            first = run_scenario_prebuilt(scenario)
            WORKLOADS.register("prebuilt-test", overwrite=True)(v2)
            second = run_scenario_prebuilt(scenario)
            assert second.tuples_processed > first.tuples_processed
        finally:
            WORKLOADS.unregister("prebuilt-test")
            prebuilt.clear()

    def test_warm_payload_covers_distinct_workloads_once(self):
        grid = tiny_grid()  # six cells, one distinct workload
        payload = prebuilt.warm_payload(grid)
        assert len(payload) == 1
        prebuilt.clear()
        prebuilt.warm_from_payload(payload)
        assert prebuilt.cache_info()["entries"] == 1
        assert prebuilt.warm(grid) == 1  # idempotent: still one workload

    @pytest.mark.parametrize("start_method", ["fork", "forkserver"])
    def test_prebuilt_pool_matches_serial(self, start_method):
        import multiprocessing

        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable on this platform")
        grid = tiny_grid()
        baseline = [r.to_dict() for r in run_scenarios(grid, backend="serial")]
        backend = ProcessBackend(max_workers=2, start_method=start_method)
        results = run_scenarios(grid, backend=backend)
        assert [r.to_dict() for r in results] == baseline

    def test_prebuild_false_still_matches_serial(self):
        grid = tiny_grid()[:3]
        baseline = [r.to_dict() for r in run_scenarios(grid, backend="serial")]
        backend = ProcessBackend(max_workers=2, prebuild=False)
        assert [r.to_dict()
                for r in run_scenarios(grid, backend=backend)] == baseline

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ScenarioError, match="start method"):
            ProcessBackend(start_method="teleport")


# ----------------------------------------------------------------------
class TestProfileSinkRoundTrip:
    """ScenarioResult.profile persists and reloads losslessly (JSONL/SQLite)."""

    @pytest.fixture(scope="class")
    def profiled(self):
        return run_scenario(tiny_scenario(duration=8.0, failures=()),
                            profile=True)

    @pytest.mark.parametrize("sink_cls", [JsonlSink, SqliteSink],
                             ids=["jsonl", "sqlite"])
    def test_profile_round_trips_through_file_sinks(self, sink_cls, tmp_path,
                                                    profiled):
        assert profiled.profile  # the fixture really carried a profile
        path = tmp_path / f"profiled.{sink_cls.name}"
        digest = scenario_digest(profiled.scenario)
        with sink_cls(path) as sink:
            sink.write(0, digest, profiled)
        [reloaded] = sink_cls.load(path)
        assert isinstance(reloaded, ScenarioResult)
        assert reloaded.profile == profiled.profile
        assert reloaded == profiled
        assert reloaded.to_dict() == profiled.to_dict()

    @pytest.mark.parametrize("sink_cls", [JsonlSink, SqliteSink],
                             ids=["jsonl", "sqlite"])
    def test_unprofiled_rows_reload_without_profile(self, sink_cls, tmp_path):
        result = run_scenario(tiny_scenario(duration=8.0, failures=()))
        path = tmp_path / f"plain.{sink_cls.name}"
        with sink_cls(path) as sink:
            sink.write(0, scenario_digest(result.scenario), result)
        [reloaded] = sink_cls.load(path)
        assert reloaded.profile is None
        assert reloaded == result

    def test_profile_survives_a_resumed_grid_session(self, tmp_path, profiled):
        """A profiled row persisted earlier is reported back on resume."""
        scenario = profiled.scenario
        path = tmp_path / "resume.jsonl"
        with JsonlSink(path) as sink:
            sink.write(0, scenario_digest(scenario), profiled)
        report = GridSession(sink=JsonlSink(path), resume=True).run([scenario])
        assert report.resumed == 1 and report.executed == 0
        [outcome] = report.outcomes
        assert outcome.profile == profiled.profile


# ----------------------------------------------------------------------
class TestScenarioCache:
    def test_digest_ignores_name_only(self):
        a, b = tiny_scenario(name="x"), tiny_scenario(name="y")
        assert scenario_digest(a) == scenario_digest(b)
        assert scenario_digest(a) != scenario_digest(tiny_scenario(seed=1))

    def test_cache_hit_skips_engine_run_counter(self, tmp_path):
        grid = tiny_grid()
        cache = ScenarioCache(tmp_path / "cache")
        _CALLS["count"] = 0
        first = GridSession(cache=cache, runner=counting_runner).run(grid)
        assert first.executed == len(grid)
        assert _CALLS["count"] == len(grid)

        second = GridSession(cache=cache, runner=counting_runner).run(grid)
        assert _CALLS["count"] == len(grid)  # engine never ran again
        assert second.executed == 0
        assert second.cache_hits == len(grid)
        assert ([r.to_dict() for r in second.results()]
                == [r.to_dict() for r in first.results()])

    def test_acceptance_processes_jsonl_cache_matches_serial(self, tmp_path):
        """The ISSUE acceptance criterion, verbatim."""
        base, axes = tiny_scenario(), {"budget": [0, 1, 2],
                                       "engine.checkpoint_interval": [4.0, 8.0]}
        serial = run_grid(base, axes)

        path = tmp_path / "out.jsonl"
        cache = ScenarioCache(tmp_path / "cache")
        results = run_grid(base, axes, backend="processes",
                           sink=JsonlSink(path), cache=cache)
        assert [r.to_dict() for r in results] == [r.to_dict() for r in serial]
        first_bytes = path.read_bytes()

        # Second invocation: zero engine executions, identical output.
        _CALLS["count"] = 0
        session = GridSession("processes", sink=JsonlSink(path), cache=cache,
                              runner=counting_runner)
        report = session.run(expand_grid(base, axes))
        assert report.executed == 0 and _CALLS["count"] == 0
        assert report.cache_hits == len(serial)
        assert path.read_bytes() == first_bytes

    def test_identical_cells_deduplicated_within_one_grid(self):
        _CALLS["count"] = 0
        cells = [tiny_scenario(name=f"copy-{i}") for i in range(4)]
        report = GridSession(runner=counting_runner).run(cells)
        assert _CALLS["count"] == 1
        assert report.executed == 1 and report.deduped == 3
        names = [r.scenario.name for r in report.results()]
        assert names == [f"copy-{i}" for i in range(4)]  # labels restored

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        digest = scenario_digest(tiny_scenario())
        cache.path_for(digest).write_text("{not json")
        assert cache.get(digest) is None
        assert cache.misses == 1


# ----------------------------------------------------------------------
class TestResume:
    def test_resume_skips_persisted_cells(self, tmp_path):
        grid = tiny_grid()
        path = tmp_path / "out.jsonl"
        GridSession(sink=JsonlSink(path)).run(grid)
        before = path.read_bytes()

        _CALLS["count"] = 0
        report = GridSession(sink=JsonlSink(path), resume=True,
                             runner=counting_runner).run(grid)
        assert _CALLS["count"] == 0
        assert report.resumed == len(grid) and report.executed == 0
        assert path.read_bytes() == before  # nothing re-appended

    def test_resume_runs_only_new_cells(self, tmp_path):
        grid = tiny_grid()
        path = tmp_path / "out.jsonl"
        GridSession(sink=JsonlSink(path)).run(grid[:3])
        report = GridSession(sink=JsonlSink(path), resume=True).run(grid)
        assert report.resumed == 3 and report.executed == 3
        outcomes = JsonlSink.load(path)
        assert len(outcomes) == len(grid)

    def test_sqlite_resume(self, tmp_path):
        grid = tiny_grid()
        path = tmp_path / "out.sqlite"
        GridSession(sink=SqliteSink(path)).run(grid[:2])
        report = GridSession(sink=SqliteSink(path), resume=True).run(grid)
        assert report.resumed == 2 and report.executed == 4
        assert len(SqliteSink.load(path)) == len(grid)

    @pytest.mark.parametrize("sink_cls", [JsonlSink, SqliteSink])
    def test_resume_with_reordered_grid_keeps_old_rows(self, sink_cls, tmp_path):
        # A cell prepended between runs shifts every index; persisted rows
        # are keyed by digest, so nothing is overwritten or shadowed.
        a, b = tiny_scenario(name="a", seed=1), tiny_scenario(name="b", seed=2)
        c = tiny_scenario(name="c", seed=3)
        path = tmp_path / ("out.jsonl" if sink_cls is JsonlSink else "out.sqlite")
        GridSession(sink=sink_cls(path)).run([a, b])
        report = GridSession(sink=sink_cls(path), resume=True).run([c, a, b])
        assert report.resumed == 2 and report.executed == 1
        loaded = sink_cls.load(path)
        assert sorted(r.scenario.name for r in loaded) == ["a", "b", "c"]


# ----------------------------------------------------------------------
class TestStructuredErrors:
    def scenarios(self):
        # Distinct seeds keep digests distinct (no dedup); the marked cell
        # carries the sentinel seed the faulty runners look for.
        cells = [tiny_scenario(name=f"cell-{i}", seed=i) for i in range(3)]
        marked = tiny_scenario(name="marked", seed=MARKED_SEED)
        return [cells[0], marked, cells[1], cells[2]]

    @pytest.mark.parametrize("backend_factory", [
        lambda: ProcessBackend(max_workers=2),
        lambda: ThreadBackend(max_workers=2),
    ])
    def test_timeout_surfaces_as_cell_error(self, backend_factory):
        cells = self.scenarios()
        report = GridSession(backend_factory(), timeout=0.75,
                             runner=sleepy_runner).run(cells)
        kinds = [getattr(o, "kind", "ok") for o in report.outcomes]
        assert kinds == ["ok", "timeout", "ok", "ok"]
        assert report.errors == 1
        error = report.cell_errors()[0]
        assert error.scenario.name == "marked"
        assert "timeout" in error.message

    def test_thread_timeout_does_not_cascade(self):
        # One hung cell must not consume the only worker slot for good:
        # the pool is replaced, so later fast cells still finish in time.
        cells = self.scenarios()
        report = GridSession(ThreadBackend(max_workers=1), timeout=0.75,
                             runner=sleepy_runner).run(cells)
        kinds = [getattr(o, "kind", "ok") for o in report.outcomes]
        assert kinds == ["ok", "timeout", "ok", "ok"]

    def test_serial_flags_timeout_after_the_fact(self):
        marked = tiny_scenario(name="marked", seed=MARKED_SEED)
        report = GridSession("serial", timeout=0.5,
                             runner=sleepy_runner).run([marked])
        assert report.errors == 1
        assert report.cell_errors()[0].kind == "timeout"

    def test_worker_death_retries_once_then_reports(self):
        cells = self.scenarios()
        report = GridSession(ProcessBackend(max_workers=1), retries=1,
                             runner=killer_runner).run(cells)
        kinds = [getattr(o, "kind", "ok") for o in report.outcomes]
        assert kinds == ["ok", "worker-death", "ok", "ok"]
        error = report.cell_errors()[0]
        assert error.attempts == 2  # first run + one retry
        assert error.scenario.name == "marked"

    def test_runner_exception_becomes_error_outcome(self):
        report = GridSession(runner=failing_runner).run([tiny_scenario()])
        error = report.cell_errors()[0]
        assert error.kind == "error" and "boom" in error.message

    def test_strict_facade_raises_on_cell_error(self):
        with pytest.raises(ScenarioError, match="workload='custom'"):
            run_scenarios([tiny_scenario(workload="synthetic")])

    def test_non_strict_facade_returns_cell_errors(self):
        outcomes = run_scenarios([tiny_scenario(workload="synthetic")],
                                 strict=False)
        assert isinstance(outcomes[0], CellError)

    def test_error_rows_persist_and_reload(self, tmp_path):
        path = tmp_path / "errors.jsonl"
        GridSession(sink=JsonlSink(path),
                    runner=failing_runner).run([tiny_scenario()])
        outcomes = JsonlSink.load(path)
        assert isinstance(outcomes[0], CellError)
        assert outcomes[0].kind == "error"

    def test_resumed_run_retries_error_rows(self, tmp_path):
        path = tmp_path / "retry.jsonl"
        GridSession(sink=JsonlSink(path),
                    runner=failing_runner).run([tiny_scenario()])
        report = GridSession(sink=JsonlSink(path), resume=True).run(
            [tiny_scenario()])
        assert report.resumed == 0 and report.executed == 1
        outcomes = JsonlSink.load(path)
        assert isinstance(outcomes[0], ScenarioResult)

    def test_cell_error_round_trips(self):
        error = CellError(tiny_scenario(), "timeout", "too slow", attempts=2)
        assert CellError.from_dict(error.to_dict()) == error


# ----------------------------------------------------------------------
class TestProgressAndReport:
    def test_progress_events_cover_every_cell(self):
        events = []
        grid = tiny_grid()
        GridSession("threads", progress=events.append).run(grid)
        assert len(events) == len(grid)
        assert {e.done for e in events} == set(range(1, len(grid) + 1))
        assert all(e.total == len(grid) and e.ok for e in events)
        assert {e.source for e in events} == {"executed"}

    def test_progress_reports_cache_source(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        GridSession(cache=cache).run([tiny_scenario()])
        events = []
        GridSession(cache=cache, progress=events.append).run([tiny_scenario()])
        assert [e.source for e in events] == ["cache"]

    def test_collect_false_streams_to_sink_only(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        report = GridSession(sink=JsonlSink(path), collect=False).run(tiny_grid())
        assert report.outcomes is None
        with pytest.raises(ScenarioError, match="collect=False"):
            report.results()
        assert len(JsonlSink.load(path)) == report.total


# ----------------------------------------------------------------------
class TestRackCorrelated:
    def topology(self):
        return tiny_recipe().build()

    def params(self):
        # Round-robin over (n0, n1, n2): S[0]->n0, S[1]->n1, A[0]->n2,
        # A[1]->n0, B[0]->n1.
        return {"n0": "rack-a", "n1": "rack-a", "n2": "rack-b"}

    def test_rack_failure_kills_its_tasks(self):
        model = FAILURE_MODELS.get("rack-correlated")
        victims = model(self.topology(), frozenset(), seed=0,
                        placement=self.params(), racks=["rack-b"])
        assert set(victims) == {TaskId("A", 0)}

    def test_whole_rack_with_sources(self):
        model = FAILURE_MODELS.get("rack-correlated")
        victims = model(self.topology(), frozenset(), seed=0,
                        placement=self.params(), rack="rack-a")
        assert set(victims) == {TaskId("S", 0), TaskId("S", 1),
                                TaskId("A", 1), TaskId("B", 0)}

    def test_include_sources_false_spares_sources(self):
        model = FAILURE_MODELS.get("rack-correlated")
        victims = model(self.topology(), frozenset(), seed=0,
                        placement=self.params(), rack="rack-a",
                        include_sources=False)
        assert set(victims) == {TaskId("A", 1), TaskId("B", 0)}

    def test_explicit_assignment_overrides_round_robin(self):
        model = FAILURE_MODELS.get("rack-correlated")
        victims = model(self.topology(), frozenset(), seed=0,
                        placement=self.params(), racks=["rack-b"],
                        assignment={"B[0]": "n2", "A[0]": "n0"})
        assert set(victims) == {TaskId("B", 0)}

    def test_unknown_rack_rejected(self):
        model = FAILURE_MODELS.get("rack-correlated")
        with pytest.raises(ScenarioError, match="unknown rack"):
            model(self.topology(), frozenset(), seed=0,
                  placement=self.params(), rack="rack-z")

    def test_empty_placement_rejected(self):
        model = FAILURE_MODELS.get("rack-correlated")
        with pytest.raises(ScenarioError, match="placement"):
            model(self.topology(), frozenset(), seed=0, placement={},
                  rack="rack-a")

    def test_missing_racks_rejected(self):
        model = FAILURE_MODELS.get("rack-correlated")
        with pytest.raises(ScenarioError, match="racks"):
            model(self.topology(), frozenset(), seed=0,
                  placement=self.params())

    def test_underscore_alias_registered(self):
        assert "rack_correlated" in FAILURE_MODELS
        assert (FAILURE_MODELS.get("rack_correlated")
                is FAILURE_MODELS.get("rack-correlated"))

    def test_end_to_end_scenario_run(self):
        result = run_scenario(tiny_scenario(failures=(
            FailureSpec("rack-correlated", at=8.0,
                        params={"placement": self.params(),
                                "racks": ["rack-b"]}),
        )))
        assert result.failed_tasks == (TaskId("A", 0),)
        assert result.all_recovered


# ----------------------------------------------------------------------
class TestWorkersShim:
    def test_workers_validated_before_empty_early_return(self):
        with pytest.raises(ScenarioError, match="workers"):
            run_scenarios([], workers=0)

    def test_workers_deprecated_but_equivalent(self):
        scenarios = [tiny_scenario(seed=s, duration=12.0) for s in (0, 1, 2)]
        serial = run_scenarios(scenarios)
        with pytest.deprecated_call():
            shimmed = run_scenarios(scenarios, workers=2)
        assert [r.to_dict() for r in shimmed] == [r.to_dict() for r in serial]

    def test_workers_and_backend_are_exclusive(self):
        with pytest.raises(ScenarioError, match="not both"):
            run_scenarios([tiny_scenario()], workers=2, backend="serial")

    def test_workers_rejects_new_api_keywords_loudly(self, tmp_path):
        with pytest.raises(ScenarioError, match="does not support sink"):
            run_scenarios([tiny_scenario()], workers=2,
                          sink=JsonlSink(tmp_path / "x.jsonl"))
        with pytest.raises(ScenarioError, match="does not support cache"):
            run_scenarios([tiny_scenario()], workers=2,
                          cache=ScenarioCache(tmp_path))


class TestCacheEviction:
    def _fill(self, cache, n, start=0):
        digests = []
        for i in range(start, start + n):
            result = run_scenario(tiny_scenario(budget=i % 3, seed=i,
                                                duration=8.0))
            digest = scenario_digest(result.scenario)
            cache.put(digest, result)
            digests.append(digest)
        return digests

    def test_put_prunes_to_max_entries(self, tmp_path):
        cache = ScenarioCache(tmp_path, max_entries=3)
        digests = self._fill(cache, 5)
        assert len(cache) == 3
        assert cache.evictions == 2
        # The survivors are the most recently written entries.
        for digest in digests[-3:]:
            assert digest in cache

    def test_get_touches_entry_so_hits_survive_pruning(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        digests = self._fill(cache, 4)
        # Age the entries explicitly (mtime granularity is too coarse to
        # rely on write order), oldest first.
        for age, digest in enumerate(digests):
            os.utime(cache.path_for(digest), (1_000_000 + age,
                                              1_000_000 + age))
        assert cache.get(digests[0]) is not None  # LRU touch: now youngest
        removed = cache.prune(2)
        assert removed == 2
        assert digests[0] in cache and digests[3] in cache
        assert digests[1] not in cache and digests[2] not in cache

    def test_prune_noop_when_unlimited_or_within_bounds(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        self._fill(cache, 2)
        assert cache.prune() == 0          # no limit configured
        assert cache.prune(10) == 0        # within bounds
        assert len(cache) == 2

    def test_prune_validates_limit(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        with pytest.raises(ScenarioError, match="max_entries"):
            cache.prune(0)
        with pytest.raises(ScenarioError, match="max_entries"):
            ScenarioCache(tmp_path, max_entries=0)

    def test_stats_reports_entries_and_bytes(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        assert cache.stats().entries == 0
        self._fill(cache, 2)
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0
        assert stats.oldest_used is not None
        assert "entries:     2" in stats.render()

    def test_bounded_cache_still_serves_grid_hits(self, tmp_path):
        cache = ScenarioCache(tmp_path, max_entries=8)
        scenarios = [tiny_scenario(budget=b, duration=8.0) for b in (0, 1, 2)]
        first = run_scenarios(scenarios, cache=cache)
        again = run_scenarios(scenarios, cache=cache)
        assert [r.to_dict() for r in again] == [r.to_dict() for r in first]
        assert cache.hits >= 3


# ----------------------------------------------------------------------
class TestRetriesSurfacing:
    """Worker-death retries flow through events and the report."""

    def test_worker_death_retry_counts_in_report_and_events(self):
        events = []
        cells = [tiny_scenario(name="ok-cell", seed=1),
                 tiny_scenario(name="marked", seed=MARKED_SEED)]
        report = GridSession(ProcessBackend(max_workers=1), retries=1,
                             runner=killer_runner,
                             progress=events.append).run(cells)
        assert report.retries == 1  # one restart before giving up
        by_name = {e.scenario.name: e for e in events}
        assert by_name["marked"].retries == 1
        assert not by_name["marked"].ok
        assert by_name["ok-cell"].retries == 0
        assert "1 retries" in by_name["marked"].render()
        assert "retries" not in by_name["ok-cell"].render()

    def test_duplicates_report_the_representative_retry_count(self):
        events = []
        cells = [tiny_scenario(name="twin-a", seed=MARKED_SEED),
                 tiny_scenario(name="twin-b", seed=MARKED_SEED)]
        report = GridSession(ProcessBackend(max_workers=1), retries=1,
                             runner=killer_runner,
                             progress=events.append).run(cells)
        # Charged once in the report, surfaced on every duplicate's event.
        assert report.retries == 1
        assert report.deduped == 1 and report.executed == 1
        assert [e.retries for e in events] == [1, 1]

    def test_clean_run_reports_zero_retries(self):
        report = GridSession().run([tiny_scenario()])
        assert report.retries == 0


# ----------------------------------------------------------------------
class TestCacheConcurrency:
    """The shared cache under concurrent readers, writers and pruners."""

    def test_concurrent_put_get_prune_never_corrupts(self, tmp_path):
        import threading

        cache = ScenarioCache(tmp_path)
        result = run_scenario(tiny_scenario(duration=8.0))
        digests = [scenario_digest(tiny_scenario(seed=i)) for i in range(24)]
        failures = []

        def writer(offset):
            try:
                for turn in range(3):
                    for digest in digests[offset:] + digests[:offset]:
                        cache.put(digest, result)
            except Exception as exc:  # pragma: no cover - the assertion
                failures.append(exc)

        def reader():
            try:
                for _turn in range(60):
                    for digest in digests:
                        hit = cache.get(digest)
                        assert hit is None or isinstance(hit, ScenarioResult)
            except Exception as exc:  # pragma: no cover - the assertion
                failures.append(exc)

        def pruner():
            try:
                for _turn in range(20):
                    cache.prune(8)
            except Exception as exc:  # pragma: no cover - the assertion
                failures.append(exc)

        threads = [threading.Thread(target=writer, args=(i * 6,))
                   for i in range(3)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        threads.append(threading.Thread(target=pruner))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
            assert not thread.is_alive()
        assert failures == []
        # Whatever survived on disk is a complete, parseable document.
        for path in tmp_path.glob("*.json"):
            ScenarioResult.from_dict(json.loads(path.read_text()))
        assert not list(tmp_path.glob("*.tmp"))

    def test_prune_sweeps_abandoned_tmp_but_spares_fresh_ones(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        stale = tmp_path / "dead-writer.tmp"
        stale.write_text("half a docum")
        os.utime(stale, (1_000_000, 1_000_000))
        fresh = tmp_path / "live-writer.tmp"
        fresh.write_text("still being writt")
        assert cache.prune(1) == 0
        assert not stale.exists()       # abandoned: swept
        assert fresh.exists()           # younger than the grace period
        assert cache.clear() == 0       # clear() sweeps too, spares fresh
        assert fresh.exists()

    def test_put_recreates_a_deleted_directory(self, tmp_path):
        import shutil

        cache = ScenarioCache(tmp_path / "cache")
        result = run_scenario(tiny_scenario(duration=8.0))
        digest = scenario_digest(tiny_scenario())
        shutil.rmtree(tmp_path / "cache")
        cache.put(digest, result)
        assert digest in cache
        assert cache.get(digest) is not None


# ----------------------------------------------------------------------
class _LegacyPairBackend(ExecutionBackend):
    """An external-style backend yielding bare ``(index, outcome)`` pairs.

    Backends written against the pre-triple contract never report an
    attempts count; the session (and the sweep dispatcher) must fall back
    to the attempt record on the outcome itself.
    """

    name = "legacy-pairs"

    def execute(self, scenarios, runner, *, timeout=None, retries=1):
        for index, scenario in enumerate(scenarios):
            try:
                yield index, runner(scenario)
            except Exception as exc:
                yield index, CellError(scenario, "error", str(exc),
                                       attempts=retries + 1)


class TestLegacyPairBackends:
    """Bare-pair backends flow through GridSession unchanged."""

    def test_pairs_match_the_serial_baseline(self, tmp_path):
        grid = tiny_grid()
        baseline = tmp_path / "serial.jsonl"
        GridSession("serial", sink=JsonlSink(baseline)).run(grid)
        legacy = tmp_path / "legacy.jsonl"
        report = GridSession(_LegacyPairBackend(),
                             sink=JsonlSink(legacy)).run(grid)
        assert report.errors == 0
        assert report.retries == 0  # pairs without errors imply attempts=1
        assert legacy.read_bytes() == baseline.read_bytes()

    def test_attempts_on_the_outcome_itself_still_count(self):
        report = GridSession(_LegacyPairBackend(), runner=failing_runner,
                             retries=1).run([tiny_scenario()])
        assert report.errors == 1
        # attempts=2 rode on the CellError, so one retry surfaces.
        assert report.retries == 1
        assert isinstance(report.outcomes[0], CellError)


# ----------------------------------------------------------------------
_HAS_PYARROW = importlib.util.find_spec("pyarrow") is not None


class TestParquetSink:
    """The pyarrow-gated sink: registered always, usable when installed."""

    def test_registered_and_extension_mapped(self):
        assert "parquet" in RESULT_SINKS.names()

    @pytest.mark.skipif(_HAS_PYARROW, reason="pyarrow is installed")
    def test_missing_pyarrow_fails_with_actionable_error(self, tmp_path):
        with pytest.raises(ScenarioError, match="pyarrow"):
            RESULT_SINKS.get("parquet")(tmp_path / "x.parquet")
        with pytest.raises(ScenarioError) as excinfo:
            sink_for_path(tmp_path / "x.parquet")
        # The error names both the missing dependency and a way out.
        assert "pip install pyarrow" in str(excinfo.value)
        assert "jsonl" in str(excinfo.value)

    @pytest.mark.skipif(not _HAS_PYARROW, reason="pyarrow not installed")
    def test_round_trips_a_grid(self, tmp_path):
        pytest.importorskip("pyarrow")
        from repro.scenarios import ParquetSink

        grid = tiny_grid()
        baseline = GridSession("serial").run(grid)
        path = tmp_path / "grid.parquet"
        sink = sink_for_path(path)
        assert isinstance(sink, ParquetSink)
        report = GridSession("serial", sink=sink).run(grid)
        assert report.errors == 0
        loaded = ParquetSink.load(path)
        assert [r.to_dict() for r in loaded] == \
            [r.to_dict() for r in baseline.results()]

"""Tests for dynamic plan adaptation (Sec. V-C, implemented as an extension)."""

import pytest

from repro.core import StructureAwarePlanner, worst_case_fidelity
from repro.core.adaptation import DynamicPlanAdapter, PlanTransition
from repro.errors import PlanningError
from repro.topology import (
    Partitioning,
    SourceRates,
    TaskId,
    TopologyBuilder,
    propagate_rates,
)


@pytest.fixture
def two_branch_topology():
    """Two parallel source->worker branches merging into one sink."""
    return (
        TopologyBuilder()
        .source("S", 2)
        .operator("W", 2)
        .operator("K", 1)
        .connect("S", "W", Partitioning.ONE_TO_ONE)
        .connect("W", "K", Partitioning.MERGE)
        .build()
    )


def _rates(topology, left, right):
    return propagate_rates(topology, SourceRates(per_task={
        TaskId("S", 0): left, TaskId("S", 1): right,
    }))


class TestPlanTransition:
    def test_activate_and_deactivate_sets(self):
        a, b = TaskId("A", 0), TaskId("A", 1)
        transition = PlanTransition(frozenset({a}), frozenset({b}))
        assert transition.deactivate == {a}
        assert transition.activate == {b}
        assert transition.churn == 2
        assert not transition.is_noop

    def test_noop(self):
        a = TaskId("A", 0)
        transition = PlanTransition(frozenset({a}), frozenset({a}))
        assert transition.is_noop and transition.churn == 0


class TestDynamicPlanAdapter:
    def test_bootstrap_adopts_initial_plan(self, two_branch_topology):
        rates = _rates(two_branch_topology, 100.0, 10.0)
        adapter = DynamicPlanAdapter(StructureAwarePlanner(), budget=3)
        plan = adapter.bootstrap(two_branch_topology, rates)
        assert adapter.current_plan == plan.replicated
        # The heavy left branch is the one worth replicating.
        assert TaskId("S", 0) in adapter.current_plan

    def test_adapts_when_skew_flips(self, two_branch_topology):
        adapter = DynamicPlanAdapter(StructureAwarePlanner(), budget=3)
        adapter.bootstrap(two_branch_topology, _rates(two_branch_topology, 100.0, 10.0))
        flipped = _rates(two_branch_topology, 10.0, 100.0)
        decision = adapter.update(two_branch_topology, flipped)
        assert decision.applied
        assert TaskId("S", 1) in adapter.current_plan
        assert TaskId("S", 0) in decision.transition.deactivate

    def test_stable_rates_cause_no_churn(self, two_branch_topology):
        rates = _rates(two_branch_topology, 100.0, 10.0)
        adapter = DynamicPlanAdapter(StructureAwarePlanner(), budget=3)
        adapter.bootstrap(two_branch_topology, rates)
        decision = adapter.update(two_branch_topology, rates)
        assert not decision.applied
        assert decision.transition.is_noop
        assert adapter.total_churn() == 0

    def test_hysteresis_suppresses_marginal_switches(self, two_branch_topology):
        adapter = DynamicPlanAdapter(StructureAwarePlanner(), budget=3,
                                     min_gain_per_change=0.05)
        adapter.bootstrap(two_branch_topology, _rates(two_branch_topology, 100.0, 90.0))
        before = adapter.current_plan
        # A tiny flip: 90/100 instead of 100/90 -> gain below threshold.
        decision = adapter.update(
            two_branch_topology, _rates(two_branch_topology, 90.0, 100.0)
        )
        assert not decision.applied
        assert adapter.current_plan == before

    def test_large_shift_clears_hysteresis(self, two_branch_topology):
        adapter = DynamicPlanAdapter(StructureAwarePlanner(), budget=3,
                                     min_gain_per_change=0.05)
        adapter.bootstrap(two_branch_topology, _rates(two_branch_topology, 100.0, 10.0))
        decision = adapter.update(
            two_branch_topology, _rates(two_branch_topology, 5.0, 200.0)
        )
        assert decision.applied
        assert decision.gain > 0.0

    def test_adapted_plan_beats_stale_plan(self, two_branch_topology):
        stale = DynamicPlanAdapter(StructureAwarePlanner(), budget=3)
        stale.bootstrap(two_branch_topology, _rates(two_branch_topology, 100.0, 10.0))
        flipped = _rates(two_branch_topology, 10.0, 100.0)
        adaptive = DynamicPlanAdapter(StructureAwarePlanner(), budget=3)
        adaptive.bootstrap(two_branch_topology, _rates(two_branch_topology, 100.0, 10.0))
        adaptive.update(two_branch_topology, flipped)
        stale_value = worst_case_fidelity(
            two_branch_topology, flipped, stale.current_plan
        )
        adaptive_value = worst_case_fidelity(
            two_branch_topology, flipped, adaptive.current_plan
        )
        assert adaptive_value > stale_value

    def test_history_records_every_round(self, two_branch_topology):
        rates = _rates(two_branch_topology, 100.0, 10.0)
        adapter = DynamicPlanAdapter(StructureAwarePlanner(), budget=3)
        adapter.bootstrap(two_branch_topology, rates)
        adapter.update(two_branch_topology, rates)
        adapter.update(two_branch_topology, rates)
        assert len(adapter.history) == 2

    def test_rejects_bad_arguments(self):
        with pytest.raises(PlanningError):
            DynamicPlanAdapter(StructureAwarePlanner(), budget=-1)
        with pytest.raises(PlanningError):
            DynamicPlanAdapter(StructureAwarePlanner(), budget=1,
                               min_gain_per_change=-0.1)

"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.engine import Simulator
from repro.errors import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(2.0, lambda: log.append("b"))
        sim.at(1.0, lambda: log.append("a"))
        sim.run_until(3.0)
        assert log == ["a", "b"]

    def test_simultaneous_events_fire_in_scheduling_order(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append(1))
        sim.at(1.0, lambda: log.append(2))
        sim.run_until(1.0)
        assert log == [1, 2]

    def test_priority_breaks_ties(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append("late"), priority=1)
        sim.at(1.0, lambda: log.append("early"), priority=-1)
        sim.run_until(1.0)
        assert log == ["early", "late"]

    def test_after_is_relative_to_now(self):
        sim = Simulator()
        times = []
        sim.at(5.0, lambda: sim.after(2.0, lambda: times.append(sim.now)))
        sim.run_until(10.0)
        assert times == [7.0]

    def test_clock_advances_to_run_until_bound(self):
        sim = Simulator()
        sim.run_until(4.2)
        assert sim.now == 4.2

    def test_events_beyond_bound_stay_queued(self):
        sim = Simulator()
        log = []
        sim.at(5.0, lambda: log.append("x"))
        sim.run_until(4.0)
        assert log == []
        sim.run_until(5.0)
        assert log == ["x"]

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.run_until(2.0)
        with pytest.raises(SimulationError):
            sim.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().after(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        log = []
        handle = sim.at(1.0, lambda: log.append("x"))
        handle.cancel()
        sim.run_until(2.0)
        assert log == []

    def test_handle_reports_time(self):
        sim = Simulator()
        assert sim.at(3.5, lambda: None).time == 3.5


class TestDrain:
    def test_drain_runs_everything(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: sim.after(1.0, lambda: log.append("chained")))
        sim.drain()
        assert log == ["chained"]
        assert sim.now == 2.0

    def test_drain_detects_runaway_chains(self):
        sim = Simulator()

        def reschedule():
            sim.after(0.1, reschedule)

        sim.after(0.1, reschedule)
        with pytest.raises(SimulationError):
            sim.drain(max_events=100)

    def test_processed_event_count(self):
        sim = Simulator()
        for t in (1.0, 2.0):
            sim.at(t, lambda: None)
        sim.run_until(5.0)
        assert sim.processed_events == 2

    def test_drain_allows_exactly_max_events(self):
        """Regression: draining an emptying queue of exactly ``max_events``
        events must succeed — the budget only applies while events remain."""
        sim = Simulator()
        log = []
        for t in (1.0, 2.0, 3.0):
            sim.at(t, lambda: log.append(sim.now))
        sim.drain(max_events=3)
        assert log == [1.0, 2.0, 3.0]

    def test_drain_raises_only_when_live_events_remain(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0, 4.0):
            sim.at(t, lambda: None)
        with pytest.raises(SimulationError):
            sim.drain(max_events=3)

    def test_drain_budget_ignores_cancelled_events(self):
        sim = Simulator()
        executed = []
        handles = [sim.at(float(t), lambda: None) for t in range(1, 4)]
        for handle in handles:
            handle.cancel()
        sim.at(5.0, lambda: executed.append(True))
        sim.drain(max_events=1)  # three cancelled + one live event
        assert executed == [True]


class TestCallbackArgs:
    def test_at_passes_args(self):
        sim = Simulator()
        log = []
        sim.at(1.0, log.append, args=("payload",))
        sim.run_until(1.0)
        assert log == ["payload"]

    def test_after_passes_args(self):
        sim = Simulator()
        log = []
        sim.after(0.5, lambda a, b: log.append(a + b), args=(1, 2))
        sim.drain()
        assert log == [3]

"""Unit tests for the query operator library (Q1, Q2, synthetic, windows)."""

import pytest

from repro.queries import (
    GlobalTopKOperator,
    IncidentAggregateOperator,
    IncidentCombineOperator,
    MergeAggregateOperator,
    SegmentSpeedOperator,
    SliceAggregateOperator,
    SlidingWindow,
    SpeedIncidentJoinOperator,
    WindowedSelectivityOperator,
    incident_accuracy,
    incident_result_set,
    topk_accuracy,
    topk_result_set,
)
from repro.topology import TaskId

T = TaskId("X", 0)
UP_A, UP_B = TaskId("U", 0), TaskId("U", 1)


class TestSlidingWindow:
    def test_eviction_by_horizon(self):
        window = SlidingWindow(5.0)
        window.add(1.0, "a")
        window.add(4.0, "b")
        assert window.evict(7.0) == 1
        assert list(window.items()) == ["b"]

    def test_boundary_is_inclusive_for_eviction(self):
        window = SlidingWindow(5.0)
        window.add(2.0, "a")
        window.evict(7.0)  # 7 - 5 = 2 -> evicted
        assert len(window) == 0

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            SlidingWindow(0.0)

    def test_bool_and_len(self):
        window = SlidingWindow(5.0)
        assert not window
        window.add(1.0, "a")
        assert window and len(window) == 1


class TestWindowedSelectivity:
    def test_selectivity_one_passes_everything(self):
        op = WindowedSelectivityOperator(10.0, 1.0)
        out = op.process_batch(T, 1.0, {UP_A: [("k", 1), ("k", 2)]})
        assert len(out) == 2

    def test_selectivity_half_passes_half(self):
        op = WindowedSelectivityOperator(10.0, 0.5)
        out = op.process_batch(T, 1.0, {UP_A: [("k", i) for i in range(10)]})
        assert len(out) == 5

    def test_state_size_tracks_window(self):
        op = WindowedSelectivityOperator(3.0, 1.0)
        op.process_batch(T, 1.0, {UP_A: [("k", 1)] * 4})
        op.process_batch(T, 2.0, {UP_A: [("k", 2)] * 4})
        assert op.state_size() == 8
        # At t=4 the horizon is 1.0 (inclusive): batch-1 tuples evict.
        op.process_batch(T, 4.0, {UP_A: []})
        assert op.state_size() == 4

    def test_snapshot_restore_roundtrip(self):
        op = WindowedSelectivityOperator(10.0, 0.5)
        op.process_batch(T, 1.0, {UP_A: [("k", i) for i in range(5)]})
        snap = op.snapshot()
        clone = WindowedSelectivityOperator(10.0, 0.5)
        clone.restore(snap)
        a = op.process_batch(T, 2.0, {UP_A: [("k", 9)] * 4})
        b = clone.process_batch(T, 2.0, {UP_A: [("k", 9)] * 4})
        assert a == b
        assert op.state_size() == clone.state_size()

    def test_rejects_bad_selectivity(self):
        with pytest.raises(ValueError):
            WindowedSelectivityOperator(10.0, 1.5)


class TestTopK:
    def test_slice_counts_per_key(self):
        op = SliceAggregateOperator()
        out = op.process_batch(T, 1.0, {UP_A: [("p1", 0), ("p1", 0), ("p2", 0)]})
        assert out == [("p1", 2), ("p2", 1)]

    def test_merge_accumulates_over_window(self):
        op = MergeAggregateOperator(window_seconds=10.0)
        op.process_batch(T, 1.0, {UP_A: [("p1", 2)]})
        out = op.process_batch(T, 2.0, {UP_A: [("p1", 3)]})
        assert ("p1", 5) in out

    def test_merge_expires_old_partials(self):
        op = MergeAggregateOperator(window_seconds=2.0)
        op.process_batch(T, 1.0, {UP_A: [("p1", 2)]})
        out = op.process_batch(T, 4.0, {UP_A: [("p2", 1)]})
        assert out == [("p2", 1)]

    def test_global_topk_sums_partials_across_upstreams(self):
        op = GlobalTopKOperator(k=2, window_seconds=10.0)
        out = op.process_batch(T, 1.0, {
            UP_A: [("p1", 5), ("p2", 1)],
            UP_B: [("p1", 4), ("p3", 7)],
        })
        top = topk_result_set(out)
        assert top == {"p1", "p3"}  # p1: 5+4=9, p3: 7, p2: 1

    def test_global_topk_expires_stale_upstream_contributions(self):
        op = GlobalTopKOperator(k=1, window_seconds=2.0)
        op.process_batch(T, 1.0, {UP_A: [("p1", 10)]})
        out = op.process_batch(T, 4.0, {UP_B: [("p2", 1)]})
        assert topk_result_set(out) == {"p2"}

    def test_topk_accuracy_is_overlap_fraction(self):
        accurate = [("top-k", ("a", "b", "c", "d"))]
        tentative = [("top-k", ("a", "b", "x", "y"))]
        assert topk_accuracy(tentative, accurate) == 0.5

    def test_topk_accuracy_empty_accurate_is_perfect(self):
        assert topk_accuracy([], []) == 1.0

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            GlobalTopKOperator(k=0)


class TestIncidents:
    def test_segment_speed_averages_per_segment(self):
        op = SegmentSpeedOperator()
        out = op.process_batch(T, 1.0, {UP_A: [("s1", 10.0), ("s1", 30.0)]})
        assert out == [("s1", 20.0)]

    def test_incident_combine_dedups_reports(self):
        op = IncidentCombineOperator(window_seconds=10.0)
        out = op.process_batch(T, 1.0, {
            UP_A: [("s1", "inc-1"), ("s1", "inc-1"), ("s2", "inc-2")]
        })
        assert out == [("s1", "inc-1"), ("s2", "inc-2")]
        again = op.process_batch(T, 2.0, {UP_A: [("s1", "inc-1")]})
        assert again == []

    def test_incident_combine_forgets_expired(self):
        op = IncidentCombineOperator(window_seconds=2.0)
        op.process_batch(T, 1.0, {UP_A: [("s1", "inc-1")]})
        out = op.process_batch(T, 5.0, {UP_A: [("s1", "inc-1")]})
        assert out == [("s1", "inc-1")]  # expired, so reported again

    def test_join_matches_incident_with_slow_segment(self):
        op = SpeedIncidentJoinOperator(window_seconds=10.0, jam_speed=20.0)
        out = op.process_batch(T, 1.0, {
            UP_A: [("s1", 5.0), ("s2", 50.0)],
            UP_B: [("s1", "inc-1"), ("s2", "inc-2")],
        })
        assert out == [("s1", "inc-1")]

    def test_join_needs_both_sides(self):
        op = SpeedIncidentJoinOperator(window_seconds=10.0, jam_speed=20.0)
        out = op.process_batch(T, 1.0, {UP_B: [("s1", "inc-1")]})
        assert out == []

    def test_join_window_carries_context_across_batches(self):
        op = SpeedIncidentJoinOperator(window_seconds=10.0, jam_speed=20.0)
        op.process_batch(T, 1.0, {UP_A: [("s1", 5.0)]})
        out = op.process_batch(T, 2.0, {UP_B: [("s1", "inc-1")]})
        assert out == [("s1", "inc-1")]

    def test_aggregate_collects_distinct_incidents(self):
        op = IncidentAggregateOperator(window_seconds=10.0)
        out = op.process_batch(T, 1.0, {
            UP_A: [("s1", "inc-1")], UP_B: [("s2", "inc-2")],
        })
        assert incident_result_set(out) == {"inc-1", "inc-2"}

    def test_incident_accuracy(self):
        accurate = [("jam-incidents", frozenset({"a", "b"}))]
        tentative = [("jam-incidents", frozenset({"a"}))]
        assert incident_accuracy(tentative, accurate) == 0.5

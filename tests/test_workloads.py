"""Unit tests for workload generators (purity, rates, distributions)."""

import pytest

from repro.errors import WorkloadError
from repro.topology import TaskId
from repro.workloads import (
    IncidentReportSource,
    IncidentSchedule,
    UniformRateSource,
    UserLocationSource,
    WorldCupAccessLog,
    batch_rng,
    sample_zipf,
    zipf_probabilities,
)

S0, S1 = TaskId("S", 0), TaskId("S", 1)


class TestZipfUtilities:
    def test_probabilities_sum_to_one(self):
        probs = zipf_probabilities(100, 0.8)
        assert probs.sum() == pytest.approx(1.0)

    def test_probabilities_decrease_with_rank(self):
        probs = zipf_probabilities(10, 1.0)
        assert all(probs[i] > probs[i + 1] for i in range(9))

    def test_zero_exponent_is_uniform(self):
        probs = zipf_probabilities(4, 0.0)
        assert probs == pytest.approx([0.25] * 4)

    def test_rejects_bad_arguments(self):
        with pytest.raises(WorkloadError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(WorkloadError):
            zipf_probabilities(5, -1.0)

    def test_batch_rng_is_pure(self):
        a = batch_rng(7, "x", S0, 3).random()
        b = batch_rng(7, "x", S0, 3).random()
        assert a == b

    def test_batch_rng_varies_with_components(self):
        assert batch_rng(7, "x", S0, 3).random() != batch_rng(7, "x", S0, 4).random()

    def test_sample_zipf_counts(self):
        rng = batch_rng(1, "s")
        probs = zipf_probabilities(10, 0.5)
        assert len(sample_zipf(rng, probs, 25)) == 25
        assert len(sample_zipf(rng, probs, 0)) == 0


class TestUniformRateSource:
    def test_rate_times_interval_tuples(self):
        source = UniformRateSource(50.0, batch_interval=1.0)
        assert len(source.tuples_for_batch(S0, 0)) == 50

    def test_pure_in_task_and_batch(self):
        source = UniformRateSource(10.0)
        assert source.tuples_for_batch(S0, 2) == source.tuples_for_batch(S0, 2)
        assert source.tuples_for_batch(S0, 2) != source.tuples_for_batch(S1, 2)

    def test_keys_bounded_by_key_space(self):
        source = UniformRateSource(100.0, key_space=8)
        keys = {k for k, _v in source.tuples_for_batch(S0, 0)}
        assert len(keys) <= 8

    def test_rejects_negative_rate(self):
        with pytest.raises(WorkloadError):
            UniformRateSource(-1.0)


class TestWorldCup:
    def test_rotation_gives_servers_distinct_hot_pages(self):
        log = WorldCupAccessLog(1000.0, pages=800, servers=8)
        assert log.page_for_rank(0, 0) != log.page_for_rank(4, 0)

    def test_popular_pages_dominate(self):
        log = WorldCupAccessLog(2000.0, pages=100, servers=1, zipf_s=1.0)
        tuples = log.tuples_for_batch(S0, 0)
        counts = {}
        for key, _v in tuples:
            counts[key] = counts.get(key, 0) + 1
        top = max(counts.values())
        assert top > len(tuples) / 20  # rank-1 page stands out

    def test_purity(self):
        log = WorldCupAccessLog(100.0, pages=50)
        assert log.tuples_for_batch(S0, 5) == log.tuples_for_batch(S0, 5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(WorkloadError):
            WorldCupAccessLog(-1.0)
        with pytest.raises(WorkloadError):
            WorldCupAccessLog(10.0, pages=0)


class TestTraffic:
    @pytest.fixture
    def schedule(self):
        return IncidentSchedule(segments=50, users=5000, horizon=60.0,
                                incident_interval=2.0, incident_duration=10.0,
                                seed=3)

    def test_incidents_scheduled_on_interval(self, schedule):
        times = [i.start_time for i in schedule.incidents]
        assert times == sorted(times)
        assert times[0] == pytest.approx(2.0)

    def test_active_segments_during_incident(self, schedule):
        incident = schedule.incidents[0]
        active = schedule.active_segments(incident.start_time + 1.0)
        assert incident.segment in active
        later = schedule.active_segments(incident.start_time + 11.0)
        assert incident.incident_id not in {
            i.incident_id for i in schedule.incidents if i.segment in later
            and i.active_at(incident.start_time + 11.0)
        } or True

    def test_location_speeds_drop_on_incident_segments(self, schedule):
        source = UserLocationSource(schedule, 500.0, free_flow_speed=60.0,
                                    jam_speed=10.0)
        incident = schedule.incidents[0]
        batch_time = int(incident.start_time) + 1
        tuples = source.tuples_for_batch(S0, batch_time)
        jam_key = f"seg-{incident.segment:04d}"
        jam_speeds = [v for k, v in tuples if k == jam_key]
        free_speeds = [v for k, v in tuples if k != jam_key]
        if jam_speeds and free_speeds:
            assert max(jam_speeds) < min(free_speeds)

    def test_reports_emitted_at_incident_start(self, schedule):
        source = IncidentReportSource(schedule, parallelism=1)
        incident = schedule.incidents[0]
        batch = int(incident.start_time)
        tuples = source.tuples_for_batch(S0, batch)
        assert any(v == incident.incident_id for _k, v in tuples)

    def test_reports_sharded_across_tasks(self, schedule):
        # Individual report tuples are indistinguishable (same segment and
        # incident id), so sharding splits the report *count* across tasks.
        sharded = IncidentReportSource(schedule, parallelism=2)
        whole = IncidentReportSource(schedule, parallelism=1)
        incident = schedule.incidents[0]
        batch = int(incident.start_time)
        a = sharded.tuples_for_batch(TaskId("S", 0), batch)
        b = sharded.tuples_for_batch(TaskId("S", 1), batch)
        total = whole.tuples_for_batch(TaskId("S", 0), batch)
        assert len(a) + len(b) == len(total)

    def test_rejects_bad_parallelism(self, schedule):
        with pytest.raises(WorkloadError):
            IncidentReportSource(schedule, parallelism=0)

    def test_schedule_rejects_bad_interval(self):
        with pytest.raises(WorkloadError):
            IncidentSchedule(incident_interval=0.0)


class TestSquareWaveSource:
    def _source(self, **kw):
        from repro.workloads import SquareWaveSource

        defaults = dict(high_rate=30.0, low_rate=10.0, period_batches=10,
                        duty=0.5)
        defaults.update(kw)
        return SquareWaveSource(**defaults)

    def test_burst_and_trough_counts(self):
        src = self._source()
        assert len(src.tuples_for_batch(S0, 0)) == 30   # burst phase
        assert len(src.tuples_for_batch(S0, 5)) == 10   # trough phase
        assert src.is_burst(0) and not src.is_burst(5)
        assert src.is_burst(10)  # periodic

    def test_mean_rate_is_duty_weighted(self):
        assert self._source().mean_rate() == pytest.approx(20.0)

    def test_deterministic_and_replay_safe(self):
        src = self._source()
        assert src.tuples_for_batch(S0, 7) == src.tuples_for_batch(S0, 7)

    def test_tuple_ids_are_contiguous_across_phases(self):
        src = self._source()
        seen = [t for b in range(12) for _, t in src.tuples_for_batch(S0, b)]
        assert [i for _, i in seen] == list(range(len(seen)))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            self._source(high_rate=-1.0)
        with pytest.raises(WorkloadError):
            self._source(period_batches=1)
        with pytest.raises(WorkloadError):
            self._source(duty=1.0)
        with pytest.raises(WorkloadError):
            self._source(key_space=0)


class TestBurstyWorkload:
    def test_wraps_synthetic_bundle_with_square_wave_sources(self):
        from repro.scenarios import make_bundle
        from repro.workloads import SquareWaveSource

        bundle = make_bundle("bursty", base="synthetic",
                             rate_per_source=200.0, window_seconds=5.0,
                             tuple_scale=16.0, period_seconds=10.0)
        assert bundle.name.startswith("bursty(")
        factory = bundle.make_logic()
        source = factory.source_for(TaskId("S", 0))
        assert isinstance(source, SquareWaveSource)
        # Symmetric default factors keep the long-run mean at the base rate.
        assert source.mean_rate() == pytest.approx(200.0 / 16.0)
        # The planning rate model still carries the base (mean) rates.
        assert bundle.rates is not None

    def test_recovery_latency_burst_vs_trough(self):
        from repro.scenarios import FailureSpec, Scenario, run_scenario

        def run(fail_at):
            return run_scenario(Scenario(
                workload="bursty",
                workload_params={"base": "synthetic",
                                 "rate_per_source": 2000.0,
                                 "window_seconds": 10.0, "tuple_scale": 8.0,
                                 "period_seconds": 20.0, "high_factor": 1.9,
                                 "low_factor": 0.1},
                planner="none",
                engine={"checkpoint_interval": 5.0},
                failures=(FailureSpec("single-task", at=fail_at,
                                      params={"operator": "O2"}),),
                duration=60.0,
            ))

        # Period 20s, duty .5: 40-50s is a burst, 50-60s a trough.  What
        # drives recovery cost is the backlog the restored task replays, so
        # fail late in each phase: at t=48 the replayed window is mostly
        # burst-rate data, at t=58 mostly trough-rate data.
        burst = run(48.0)
        trough = run(58.0)
        assert burst.all_recovered and trough.all_recovered
        assert burst.max_recovery_latency > trough.max_recovery_latency

    def test_bursty_rejects_bad_parameters(self):
        from repro.errors import ScenarioError
        from repro.scenarios import make_bundle

        with pytest.raises(ScenarioError, match="cannot wrap itself"):
            make_bundle("bursty", base="bursty")
        with pytest.raises(ScenarioError, match="duty"):
            make_bundle("bursty", duty=0.0)
        with pytest.raises(ScenarioError, match="period_seconds"):
            make_bundle("bursty", period_seconds=0.0)

    def test_bursty_rejects_non_uniform_base(self):
        from repro.errors import ScenarioError
        from repro.scenarios import make_bundle

        bundle = make_bundle("bursty", base="worldcup", pages=50)
        with pytest.raises(ScenarioError, match="uniform-rate"):
            bundle.make_logic()

"""Tests for the experiments CLI (figures, scenario and grid subcommands)."""

import json

import pytest

from repro.experiments.cli import RUNNERS, main


def tiny_scenario_dict() -> dict:
    return {
        "name": "cli-tiny",
        "workload": "custom",
        "topology": {
            "operators": [
                {"name": "S", "parallelism": 2, "kind": "source"},
                {"name": "A", "parallelism": 2, "selectivity": 0.5},
                {"name": "B", "parallelism": 1, "selectivity": 0.5},
            ],
            "edges": [
                {"upstream": "S", "downstream": "A", "pattern": "one-to-one"},
                {"upstream": "A", "downstream": "B", "pattern": "merge"},
            ],
        },
        "workload_params": {"source_rate": 20.0, "window_seconds": 5.0},
        "planner": "greedy",
        "budget": 2,
        "engine": {"checkpoint_interval": 5.0},
        "failures": [{"model": "correlated", "at": 8.0}],
        "duration": 16.0,
    }


class TestRunnerRegistry:
    def test_all_figures_registered(self):
        assert set(RUNNERS) == {
            "fig7", "fig8", "fig9", "fig10", "fig12", "fig13", "fig14",
            "claims", "schemes",
        }

    def test_runners_are_callables(self):
        assert all(callable(fn) for fn in RUNNERS.values())


class TestArgumentParsing:
    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig99"])
        assert excinfo.value.code != 0

    def test_requires_at_least_one_figure(self):
        with pytest.raises(SystemExit):
            main([])

    def test_fast_claims_runs_end_to_end(self, capsys):
        # claims is the cheapest full pipeline: engine run + planner sweep.
        assert main(["claims", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Headline claims" in out
        assert "claims done" in out


class TestScenarioSubcommand:
    def test_runs_correlated_scenario_from_json_file(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(tiny_scenario_dict()))
        assert main(["scenario", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ScenarioResult: cli-tiny" in out
        assert "tasks killed" in out

    def test_json_output_parses(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(tiny_scenario_dict()))
        assert main(["scenario", str(path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scenario"]["name"] == "cli-tiny"
        assert data["all_recovered"] is True

    def test_missing_file_reports_error(self, tmp_path, capsys):
        assert main(["scenario", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_array_document_reports_error(self, tmp_path, capsys):
        path = tmp_path / "array.json"
        path.write_text(json.dumps([tiny_scenario_dict()]))
        assert main(["scenario", str(path)]) == 2
        assert "must be an object" in capsys.readouterr().err

    def test_malformed_scenario_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"planner": "bogus-planner",
                                    "duration": 5.0}))
        assert main(["scenario", str(path)]) == 2
        assert "unknown planner" in capsys.readouterr().err


class TestGridSubcommand:
    def test_expands_base_and_axes(self, tmp_path, capsys):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({
            "base": tiny_scenario_dict(),
            "axes": {"planner": ["none", "greedy"], "budget": [1, 2]},
        }))
        assert main(["grid", str(path)]) == 0
        out = capsys.readouterr().out
        assert "grid: 4 scenarios" in out

    def test_explicit_scenario_list(self, tmp_path, capsys):
        spec = tiny_scenario_dict()
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"scenarios": [spec, spec]}))
        assert main(["grid", str(path), "--workers", "2"]) == 0
        assert "grid: 2 scenarios" in capsys.readouterr().out

    def test_document_without_base_rejected(self, tmp_path, capsys):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"axes": {"budget": [1]}}))
        assert main(["grid", str(path)]) == 2
        assert "'scenarios' or 'base'" in capsys.readouterr().err

    def test_backend_output_resume_cache_round_trip(self, tmp_path, capsys):
        grid_path = tmp_path / "grid.json"
        grid_path.write_text(json.dumps({
            "base": tiny_scenario_dict(),
            "axes": {"budget": [0, 1, 2]},
        }))
        out = tmp_path / "out.jsonl"
        args = ["grid", str(grid_path), "--backend", "processes",
                "--output", str(out), "--resume",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "3 executed" in err
        first_bytes = out.read_bytes()
        assert len(first_bytes.splitlines()) == 3

        # Second invocation resumes: nothing re-runs, the file is unchanged.
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "0 executed" in err and "3 resumed" in err
        assert out.read_bytes() == first_bytes

    def test_max_workers_on_serial_backend_rejected_cleanly(self, tmp_path,
                                                           capsys):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"base": tiny_scenario_dict()}))
        assert main(["grid", str(path), "--backend", "serial",
                     "--max-workers", "2"]) == 2
        assert "does not take --max-workers" in capsys.readouterr().err

    def test_resume_without_output_rejected(self, tmp_path, capsys):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"base": tiny_scenario_dict()}))
        assert main(["grid", str(path), "--resume"]) == 2
        assert "--resume needs --output" in capsys.readouterr().err

    def test_progress_lines_on_stderr(self, tmp_path, capsys):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"base": tiny_scenario_dict()}))
        assert main(["grid", str(path), "--progress"]) == 0
        assert "[1/1]" in capsys.readouterr().err


class TestRecoveryFlag:
    def test_scenario_recovery_override(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(tiny_scenario_dict()))
        assert main(["scenario", str(path), "--recovery", "active-standby",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scenario"]["recovery"] == "active-standby"
        assert all(r["mode"] == "active" for r in data["recoveries"])

    def test_scenario_unknown_recovery_reports_error(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(tiny_scenario_dict()))
        assert main(["scenario", str(path), "--recovery", "bogus"]) == 2
        assert "registered schemes" in capsys.readouterr().err

    def test_recovery_flag_overrides_engine_dict_spelling(self, tmp_path,
                                                          capsys):
        spec = tiny_scenario_dict()
        spec["engine"]["recovery_scheme"] = "ppa"
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(spec))
        assert main(["scenario", str(path), "--recovery", "source-replay",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scenario"]["recovery"] == "source-replay"
        assert "recovery_scheme" not in data["scenario"]["engine"]

    def test_grid_single_recovery_overrides_all_cells(self, tmp_path, capsys):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"base": tiny_scenario_dict(),
                                    "axes": {"budget": [0, 2]}}))
        assert main(["grid", str(path), "--recovery", "source-replay",
                     "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 2
        assert all(r["scenario"]["recovery"] == "source-replay" for r in rows)

    def test_grid_multiple_recoveries_add_an_axis(self, tmp_path, capsys):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"base": tiny_scenario_dict()}))
        assert main(["grid", str(path), "--recovery", "ppa",
                     "checkpoint-replay", "active-standby"]) == 0
        out = capsys.readouterr().out
        assert "grid: 3 scenarios" in out
        assert "cli-tiny/recovery=active-standby" in out


class TestNameValidation:
    """Unknown scheme/model names must fail upfront and list the choices."""

    def test_scenario_unknown_failure_model_lists_models(self, tmp_path,
                                                         capsys):
        spec = tiny_scenario_dict()
        spec["failures"] = [{"model": "meteor-strike", "at": 8.0}]
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(spec))
        assert main(["scenario", str(path)]) == 2
        err = capsys.readouterr().err
        assert "'meteor-strike'" in err
        assert "registered models" in err
        for name in ("flapping", "detection-jitter", "rack-correlated"):
            assert name in err

    def test_grid_unknown_failure_model_fails_before_running(self, tmp_path,
                                                             capsys):
        base = tiny_scenario_dict()
        bad = dict(base, failures=[{"model": "nope", "at": 8.0}])
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"scenarios": [base, bad]}))
        assert main(["grid", str(path)]) == 2
        captured = capsys.readouterr()
        assert "registered models" in captured.err
        assert "grid:" not in captured.out, "no cell may run on bad input"

    def test_grid_unknown_recovery_flag_lists_schemes(self, tmp_path, capsys):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"base": tiny_scenario_dict()}))
        assert main(["grid", str(path), "--recovery", "ppa", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "'bogus'" in err
        assert "registered schemes" in err
        for name in ("approximate-ft", "k-safe", "adaptive-checkpoint"):
            assert name in err

    def test_recovery_override_drops_stale_scheme_params(self, tmp_path,
                                                         capsys):
        spec = tiny_scenario_dict()
        spec["recovery"] = "approximate-ft"
        spec["recovery_params"] = {"fidelity_bound": 0.5}
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(spec))
        # Overriding to a scheme that doesn't know fidelity_bound must not
        # forward the stale params to it.
        assert main(["scenario", str(path), "--recovery", "active-standby",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scenario"]["recovery"] == "active-standby"
        assert "recovery_params" not in data["scenario"]
        # Re-selecting the scheme the params were written for keeps them.
        assert main(["scenario", str(path), "--recovery", "approximate-ft",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scenario"]["recovery_params"] == {"fidelity_bound": 0.5}

    def test_scenario_new_schemes_accepted(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(tiny_scenario_dict()))
        for scheme in ("approximate-ft", "k-safe", "adaptive-checkpoint"):
            assert main(["scenario", str(path), "--recovery", scheme,
                         "--json"]) == 0
            data = json.loads(capsys.readouterr().out)
            assert data["scenario"]["recovery"] == scheme
            assert data["all_recovered"]


class TestCacheSubcommand:
    def _populated_cache(self, tmp_path, capsys, n_budgets=3):
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps({
            "base": tiny_scenario_dict(),
            "axes": {"budget": list(range(n_budgets))},
        }))
        cache_dir = tmp_path / "cache"
        assert main(["grid", str(grid), "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        return cache_dir

    def test_stats_reports_entries(self, tmp_path, capsys):
        cache_dir = self._populated_cache(tmp_path, capsys)
        assert main(["cache", "stats", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries:     3" in out
        assert "disk usage" in out

    def test_prune_evicts_to_limit(self, tmp_path, capsys):
        cache_dir = self._populated_cache(tmp_path, capsys)
        assert main(["cache", "prune", str(cache_dir),
                     "--max-entries", "1"]) == 0
        assert "pruned 2 entries; 1 remain" in capsys.readouterr().out
        assert len(list(cache_dir.glob("*.json"))) == 1

    def test_prune_requires_max_entries(self, tmp_path, capsys):
        cache_dir = self._populated_cache(tmp_path, capsys)
        assert main(["cache", "prune", str(cache_dir)]) == 2
        assert "--max-entries" in capsys.readouterr().err

    def test_missing_directory_reports_error(self, tmp_path, capsys):
        assert main(["cache", "stats", str(tmp_path / "nope")]) == 2
        assert "not a directory" in capsys.readouterr().err

"""Tests for the experiments CLI (parsing and runner registry)."""

import pytest

from repro.experiments.cli import RUNNERS, main


class TestRunnerRegistry:
    def test_all_figures_registered(self):
        assert set(RUNNERS) == {
            "fig7", "fig8", "fig9", "fig10", "fig12", "fig13", "fig14",
            "claims",
        }

    def test_runners_are_callables(self):
        assert all(callable(fn) for fn in RUNNERS.values())


class TestArgumentParsing:
    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig99"])
        assert excinfo.value.code != 0

    def test_requires_at_least_one_figure(self):
        with pytest.raises(SystemExit):
            main([])

    def test_fast_claims_runs_end_to_end(self, capsys):
        # claims is the cheapest full pipeline: engine run + planner sweep.
        assert main(["claims", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Headline claims" in out
        assert "claims done" in out

"""Tests for MC-tree enumeration (Definition 1)."""

import pytest

from repro.core import count_mc_tree_derivations, enumerate_mc_trees
from repro.core.mc_trees import minimum_tree_size, tree_is_replicated
from repro.errors import MCTreeExplosionError, TopologyError
from repro.topology import (
    Partitioning,
    TaskId,
    TopologyBuilder,
    linear_chain,
)


class TestChainEnumeration:
    def test_full_chain_count_is_product_of_parallelism(self):
        """Sec. IV-C: a full topology of k operators has Π M_i MC-trees."""
        topo = linear_chain([2, 3, 2])
        trees = enumerate_mc_trees(topo)
        assert len(trees) == 2 * 3 * 2

    def test_tree_has_one_task_per_operator_in_full_chain(self):
        topo = linear_chain([2, 2, 2])
        for tree in enumerate_mc_trees(topo):
            assert len(tree) == 3
            assert {t.operator for t in tree} == {"S", "O1", "O2"}

    def test_one_to_one_chain_has_parallelism_trees(self):
        topo = linear_chain([3, 3, 3], pattern=Partitioning.ONE_TO_ONE)
        trees = enumerate_mc_trees(topo)
        assert len(trees) == 3
        assert frozenset({TaskId("S", 1), TaskId("O1", 1), TaskId("O2", 1)}) in trees

    def test_merge_tree_count_equals_source_count(self, merge_tree_topology):
        # Each source defines exactly one path to the single sink.
        trees = enumerate_mc_trees(merge_tree_topology)
        assert len(trees) == 8


class TestJoinEnumeration:
    def test_join_combines_one_tree_per_input_stream(self, join_topology):
        trees = enumerate_mc_trees(join_topology)
        # Per J task: 2 A-paths x 2 B-paths; 2 J tasks; single sink task K.
        assert len(trees) == 8
        for tree in trees:
            operators = {t.operator for t in tree}
            assert {"Sa", "A", "Sb", "B", "J", "K"} == operators

    def test_independent_variant_uses_single_branch(self):
        topo = (
            TopologyBuilder()
            .source("Sa", 2)
            .source("Sb", 2)
            .operator("U", 1)
            .connect("Sa", "U", Partitioning.FULL)
            .connect("Sb", "U", Partitioning.FULL)
            .build()
        )
        trees = enumerate_mc_trees(topo)
        assert len(trees) == 4
        assert all(len(tree) == 2 for tree in trees)


class TestRestriction:
    def test_within_restricts_to_unit(self, join_topology):
        segments = enumerate_mc_trees(join_topology, within={"A", "J"})
        # J task + one of its two A-substreams: 2 J tasks x 2 = 4 segments.
        assert len(segments) == 4
        assert all(
            {t.operator for t in segment} == {"A", "J"} for segment in segments
        )

    def test_restricted_sources_are_boundary_tasks(self, chain_topology):
        segments = enumerate_mc_trees(chain_topology, within={"B", "C"})
        assert all(any(t.operator == "B" for t in s) for s in segments)

    def test_sink_outside_restriction_rejected(self, chain_topology):
        with pytest.raises(TopologyError):
            enumerate_mc_trees(chain_topology, within={"A"},
                               sink_tasks=[TaskId("C", 0)])


class TestLimits:
    def test_limit_guards_explosion(self):
        topo = linear_chain([4, 4, 4, 4])
        with pytest.raises(MCTreeExplosionError):
            enumerate_mc_trees(topo, limit=10)

    def test_limit_none_disables_guard(self):
        topo = linear_chain([3, 3])
        assert len(enumerate_mc_trees(topo, limit=None)) == 9


class TestDerivationCount:
    def test_matches_enumeration_on_chain(self):
        topo = linear_chain([3, 2, 4])
        assert count_mc_tree_derivations(topo) == len(enumerate_mc_trees(topo))

    def test_matches_enumeration_on_join(self, join_topology):
        assert count_mc_tree_derivations(join_topology) == (
            len(enumerate_mc_trees(join_topology))
        )

    def test_fast_on_large_full_topology(self):
        topo = linear_chain([10, 10, 10, 10, 10])
        assert count_mc_tree_derivations(topo) == 10 ** 5


class TestHelpers:
    def test_tree_is_replicated(self, chain_topology):
        tree = frozenset({TaskId("S", 0), TaskId("A", 0)})
        assert tree_is_replicated(tree, {TaskId("S", 0), TaskId("A", 0), TaskId("B", 0)})
        assert not tree_is_replicated(tree, {TaskId("S", 0)})

    def test_minimum_tree_size(self):
        trees = [frozenset({TaskId("A", 0)}),
                 frozenset({TaskId("A", 0), TaskId("B", 0)})]
        assert minimum_tree_size(trees) == 1

    def test_minimum_tree_size_empty_raises(self):
        with pytest.raises(TopologyError):
            minimum_tree_size([])

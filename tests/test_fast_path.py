"""Data-plane fast-path guarantees: routing parity, physical trimming, profile.

The fast path (table-driven routing, physically trimmed output buffers,
memoized source batches, slimmed event queue) must be *invisible* in every
measured metric.  These tests pin that down:

* the table-driven ``Router.distribute`` matches the per-tuple reference
  implementation on randomized topologies across all four partitioning
  patterns;
* physically trimming output history does not change recovery
  classification, latencies, CPU accounting or sink output — byte-for-byte
  against a run with trimming disabled;
* trimmed source batches are regenerated exactly; trimmed non-source
  batches fail loudly instead of replaying wrong data;
* long runs keep bounded physical history, and the engine-throughput
  profile reaches :class:`ScenarioResult` and survives JSON round-trips.
"""

from __future__ import annotations

import random

import pytest

from repro.engine import EngineConfig, Router, StreamEngine
from repro.engine.config import PassiveStrategy
from repro.engine.logic import MemoizedSource
from repro.errors import ScenarioError, SimulationError
from repro.scenarios import Scenario, run_scenario
from repro.topology import Partitioning, TaskId, TopologyBuilder
from repro.topology.operators import OperatorKind, OperatorSpec
from repro.topology.graph import StreamEdge, Topology
from repro.workloads import UniformRateSource

from tests.engine_helpers import build_engine, metrics_fingerprint

# ---------------------------------------------------------------------------
# Router: table-driven fast path == per-tuple reference
# ---------------------------------------------------------------------------

def _legal_parallelisms(rng: random.Random, pattern: Partitioning) -> tuple[int, int]:
    if pattern is Partitioning.ONE_TO_ONE:
        n = rng.randint(1, 6)
        return n, n
    if pattern is Partitioning.SPLIT:
        n_up = rng.randint(1, 4)
        return n_up, n_up + rng.randint(1, 6)
    if pattern is Partitioning.MERGE:
        n_down = rng.randint(1, 4)
        return n_down + rng.randint(1, 6), n_down
    return rng.randint(1, 6), rng.randint(1, 6)


def _random_two_op_topology(rng: random.Random, pattern: Partitioning) -> Topology:
    n_up, n_down = _legal_parallelisms(rng, pattern)
    return Topology(
        [OperatorSpec("U", n_up, OperatorKind.SOURCE),
         OperatorSpec("D", n_down, OperatorKind.INDEPENDENT)],
        [StreamEdge("U", "D", pattern)],
    )


class TestRouterParity:
    """Property-style: distribute == distribute_reference on random inputs."""

    @pytest.mark.parametrize("pattern", list(Partitioning))
    @pytest.mark.parametrize("seed", range(8))
    def test_single_edge_parity(self, pattern, seed):
        rng = random.Random(hash((pattern.value, seed)) & 0xFFFFFFFF)
        topology = _random_two_op_topology(rng, pattern)
        router = Router(topology)
        keys = [f"key-{rng.randint(0, 40)}" for _ in range(rng.randint(0, 120))]
        tuples = [(k, i) for i, k in enumerate(keys)]
        for src in topology.tasks_of("U"):
            fast = router.distribute(src, list(tuples))
            reference = router.distribute_reference(src, list(tuples))
            assert fast == reference

    @pytest.mark.parametrize("seed", range(6))
    def test_random_dag_parity(self, seed):
        """A random multi-operator DAG: every task's fan-out matches."""
        rng = random.Random(1000 + seed)
        builder = TopologyBuilder().source("S", rng.randint(1, 3))
        names = ["S"]
        for pos in range(rng.randint(1, 3)):
            name = f"O{pos}"
            builder.operator(name, rng.randint(1, 5))
            # Connect to every previous operator where FULL is always legal.
            builder.connect(names[-1], name, Partitioning.FULL)
            if len(names) > 1 and rng.random() < 0.5:
                builder.connect(names[-2], name, Partitioning.FULL)
            names.append(name)
        topology = builder.build()
        router = Router(topology)
        tuples = [(f"k{rng.randint(0, 30)}", i) for i in range(80)]
        for task in topology.tasks():
            assert (router.distribute(task, list(tuples))
                    == router.distribute_reference(task, list(tuples)))

    def test_repeated_keys_hit_the_memo_table(self):
        topology = _random_two_op_topology(random.Random(7), Partitioning.FULL)
        router = Router(topology)
        src = topology.tasks_of("U")[0]
        first = router.distribute(src, [("hot", 1)])
        second = router.distribute(src, [("hot", 2)])
        (dst_a,) = [d for d, t in first.items() if t]
        (dst_b,) = [d for d, t in second.items() if t]
        assert dst_a == dst_b
        # The memo table is per full-edge and now knows the key.
        plan = router._plans[src][0]
        assert "hot" in plan.key_table


# ---------------------------------------------------------------------------
# Physical trimming: byte-identical metrics, bounded memory, loud failures
# ---------------------------------------------------------------------------

_TRIM_SCENARIOS = {
    "checkpoint": EngineConfig(checkpoint_interval=4.0, heartbeat_interval=2.0),
    "storm": EngineConfig(checkpoint_interval=None, heartbeat_interval=2.0,
                          passive_strategy=PassiveStrategy.SOURCE_REPLAY),
}


def _run_failure_engine(config: EngineConfig, *, retention: int | None = None,
                        plan=()) -> StreamEngine:
    engine = build_engine(config, plan=plan, rate=40.0, window=6.0)
    if retention is not None:
        engine._retention_batches = retention
    engine.schedule_task_failure(12.0, [TaskId("L0", 0)])
    engine.run(24.0)
    return engine


class TestPhysicalTrimParity:
    @pytest.mark.parametrize("mode", sorted(_TRIM_SCENARIOS))
    def test_pruned_replay_classification_unchanged(self, mode):
        """Trimming on vs off: recovery records and metrics byte-identical."""
        config = _TRIM_SCENARIOS[mode]
        trimmed = _run_failure_engine(config)
        retained = _run_failure_engine(config, retention=10_000_000)
        assert (metrics_fingerprint(trimmed.metrics)
                == metrics_fingerprint(retained.metrics))
        # The retained run really kept everything; the trimmed one did not.
        floors = [rt.history_floor for rt in trimmed.runtimes.values()]
        assert max(floors) > 0
        assert all(rt.history_floor == 0 for rt in retained.runtimes.values())

    def test_replay_modes_still_classified(self):
        trimmed = _run_failure_engine(_TRIM_SCENARIOS["storm"])
        assert [r.mode.value for r in trimmed.metrics.recoveries] == ["source-replay"]
        assert trimmed.all_recovered()

    def test_bounded_history_on_long_run(self):
        engine = build_engine(EngineConfig(checkpoint_interval=5.0),
                              rate=20.0, window=5.0)
        engine.run(120.0)
        assert engine.metrics.batches_processed >= 300
        # 120 emitted batches per task, but only the replay window is held.
        assert 0 < engine.metrics.peak_history_batches <= 40

    def test_trimmed_source_batch_regenerates_exactly(self):
        engine = build_engine(EngineConfig(checkpoint_interval=None),
                              rate=20.0, window=5.0)
        engine.run(20.0)
        src = engine.runtime(TaskId("S", 0))
        dst = TaskId("L0", 0)
        original = src.history[5][dst]
        src.trim_history(10)
        regenerated = engine._replay_batch(src, dst, 5)
        assert regenerated == original

    def test_trimmed_non_source_batch_raises(self):
        engine = build_engine(EngineConfig(checkpoint_interval=None),
                              rate=20.0, window=5.0)
        engine.run(20.0)
        mid = engine.runtime(TaskId("L0", 0))
        assert mid.history, "mid-topology task should have emitted output"
        mid.trim_history(max(mid.history))
        with pytest.raises(SimulationError, match="physically trimmed"):
            engine._replay_batch(mid, TaskId("L1", 0), max(mid.output_sizes))


class TestMemoizedSource:
    def test_batches_are_cached_and_pure(self):
        inner = UniformRateSource(10.0, key_space=4)
        task = TaskId("S", 0)
        memo = MemoizedSource(inner, task, capacity=4)
        first = memo.tuples_for_batch(task, 3)
        assert memo.tuples_for_batch(task, 3) is first
        assert first == inner.tuples_for_batch(task, 3)

    def test_capacity_evicts_oldest(self):
        memo = MemoizedSource(UniformRateSource(10.0), TaskId("S", 0), capacity=2)
        task = TaskId("S", 0)
        for index in range(4):
            memo.tuples_for_batch(task, index)
        assert sorted(memo._batches) == [2, 3]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            MemoizedSource(UniformRateSource(10.0), TaskId("S", 0), capacity=0)


# ---------------------------------------------------------------------------
# Profile plumbing: MetricsCollector -> ScenarioResult -> JSON
# ---------------------------------------------------------------------------

_PROFILE_SCENARIO = {
    "workload": "synthetic",
    "workload_params": {"rate_per_source": 200.0, "window_seconds": 5.0,
                        "tuple_scale": 4.0},
    "planner": "none",
    "duration": 8.0,
}


class TestProfilePlumbing:
    def test_engine_metrics_carry_profile(self):
        engine = build_engine(EngineConfig(), rate=20.0, window=5.0)
        engine.run(10.0)
        profile = engine.metrics.profile()
        assert profile["processed_events"] == engine.sim.processed_events > 0
        assert profile["simulated_seconds"] >= 10.0
        assert profile["wall_seconds"] > 0
        assert profile["sim_seconds_per_wall_second"] > 0
        assert profile["peak_history_batches"] > 0

    def test_scenario_result_profile_is_opt_in(self):
        scenario = Scenario.from_dict(dict(_PROFILE_SCENARIO))
        plain = run_scenario(scenario)
        assert plain.profile is None
        assert "profile" not in plain.to_dict()
        profiled = run_scenario(scenario, profile=True)
        assert profiled.profile is not None
        assert profiled.to_dict()["profile"]["processed_events"] > 0

    def test_profile_round_trips_and_old_documents_load(self):
        from repro.scenarios import ScenarioResult

        profiled = run_scenario(Scenario.from_dict(dict(_PROFILE_SCENARIO)),
                                profile=True)
        rebuilt = ScenarioResult.from_dict(profiled.to_dict())
        assert rebuilt.profile == profiled.profile
        legacy = profiled.to_dict()
        del legacy["profile"]
        assert ScenarioResult.from_dict(legacy).profile is None

    def test_malformed_profile_rejected(self):
        from repro.scenarios import ScenarioResult

        data = run_scenario(Scenario.from_dict(dict(_PROFILE_SCENARIO))).to_dict()
        data["profile"] = "not-an-object"
        with pytest.raises(ScenarioError, match="profile"):
            ScenarioResult.from_dict(data)

"""Unit tests for the four partitioning patterns (Sec. II-A)."""

import pytest

from repro.errors import TopologyError
from repro.topology import OperatorKind, OperatorSpec, Partitioning, substream_weights
from repro.topology.partitioning import (
    downstream_targets,
    upstream_feeders,
    validate_pattern,
)


def _op(name, parallelism, weights=None):
    return OperatorSpec(name, parallelism, OperatorKind.INDEPENDENT,
                        task_weights=tuple(weights or ()))


class TestValidation:
    def test_one_to_one_requires_equal_parallelism(self):
        with pytest.raises(TopologyError):
            validate_pattern(_op("U", 2), _op("D", 3), Partitioning.ONE_TO_ONE)

    def test_split_requires_growth(self):
        with pytest.raises(TopologyError):
            validate_pattern(_op("U", 4), _op("D", 4), Partitioning.SPLIT)

    def test_merge_requires_shrink(self):
        with pytest.raises(TopologyError):
            validate_pattern(_op("U", 2), _op("D", 2), Partitioning.MERGE)

    def test_full_accepts_any_sizes(self):
        validate_pattern(_op("U", 1), _op("D", 7), Partitioning.FULL)
        validate_pattern(_op("U", 7), _op("D", 1), Partitioning.FULL)


class TestOneToOne:
    def test_identity_mapping(self):
        weights = substream_weights(_op("U", 3), _op("D", 3), Partitioning.ONE_TO_ONE)
        assert weights == {(0, 0): 1.0, (1, 1): 1.0, (2, 2): 1.0}


class TestMerge:
    def test_each_upstream_has_single_target(self):
        weights = substream_weights(_op("U", 4), _op("D", 2), Partitioning.MERGE)
        for i in range(4):
            targets = downstream_targets(weights, i)
            assert len(targets) == 1
            assert weights[(i, targets[0])] == 1.0

    def test_downstream_receives_multiple_feeders(self):
        weights = substream_weights(_op("U", 4), _op("D", 2), Partitioning.MERGE)
        assert upstream_feeders(weights, 0) == [0, 1]
        assert upstream_feeders(weights, 1) == [2, 3]

    def test_uneven_merge_covers_all_upstreams(self):
        weights = substream_weights(_op("U", 5), _op("D", 2), Partitioning.MERGE)
        assert sorted({i for i, _j in weights}) == list(range(5))


class TestSplit:
    def test_each_downstream_has_single_feeder(self):
        weights = substream_weights(_op("U", 2), _op("D", 6), Partitioning.SPLIT)
        for j in range(6):
            assert len(upstream_feeders(weights, j)) == 1

    def test_upstream_output_shares_sum_to_one(self):
        weights = substream_weights(_op("U", 2), _op("D", 6), Partitioning.SPLIT)
        for i in range(2):
            total = sum(w for (u, _d), w in weights.items() if u == i)
            assert total == pytest.approx(1.0)

    def test_split_respects_downstream_weights(self):
        down = _op("D", 4, weights=(1.0, 3.0, 1.0, 1.0))
        weights = substream_weights(_op("U", 2), down, Partitioning.SPLIT)
        # Upstream 0 feeds downstream {0, 1}: shares proportional to 1:3.
        assert weights[(0, 0)] == pytest.approx(0.25)
        assert weights[(0, 1)] == pytest.approx(0.75)


class TestFull:
    def test_every_pair_connected(self):
        weights = substream_weights(_op("U", 2), _op("D", 3), Partitioning.FULL)
        assert set(weights) == {(i, j) for i in range(2) for j in range(3)}

    def test_weights_follow_downstream_key_shares(self):
        down = _op("D", 2, weights=(1.0, 3.0))
        weights = substream_weights(_op("U", 2), down, Partitioning.FULL)
        assert weights[(0, 0)] == pytest.approx(0.25)
        assert weights[(0, 1)] == pytest.approx(0.75)

    def test_upstream_output_shares_sum_to_one(self):
        weights = substream_weights(_op("U", 3), _op("D", 5), Partitioning.FULL)
        for i in range(3):
            total = sum(w for (u, _d), w in weights.items() if u == i)
            assert total == pytest.approx(1.0)

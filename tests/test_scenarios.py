"""Tests for the declarative scenario API: spec, registries, runner, grid."""

import json

import pytest

from repro.core.plans import ReplicationPlan
from repro.engine.config import EngineConfig
from repro.engine.engine import StreamEngine
from repro.engine.logic import LogicFactory
from repro.errors import ScenarioError
from repro.queries.synthetic import WindowedSelectivityOperator
from repro.scenarios import (
    FAILURE_MODELS,
    PLANNERS,
    WORKLOADS,
    EdgeDef,
    FailureSpec,
    OperatorDef,
    Scenario,
    ScenarioRunner,
    TopologyRecipe,
    expand_grid,
    generic_bundle,
    run_grid,
    run_scenario,
    run_scenarios,
)
from repro.topology import TaskId, uniform_source_rates
from repro.workloads.sources import UniformRateSource


def tiny_recipe() -> TopologyRecipe:
    """S(2) -> A(2) -> B(1), cheap enough for many engine runs per test."""
    return TopologyRecipe(
        operators=(
            OperatorDef("S", 2, kind="source"),
            OperatorDef("A", 2, selectivity=0.5),
            OperatorDef("B", 1, selectivity=0.5),
        ),
        edges=(
            EdgeDef("S", "A", "one-to-one"),
            EdgeDef("A", "B", "merge"),
        ),
    )


def tiny_scenario(**overrides) -> Scenario:
    defaults = dict(
        name="tiny",
        workload="custom",
        topology=tiny_recipe(),
        workload_params={"source_rate": 20.0, "window_seconds": 5.0},
        planner="greedy",
        budget=2,
        engine={"checkpoint_interval": 5.0},
        failures=(FailureSpec("single-task", at=8.0, params={"operator": "A"}),),
        duration=16.0,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestScenarioSerialization:
    def test_round_trip_identity(self):
        s = tiny_scenario()
        assert Scenario.from_dict(s.to_dict()) == s

    def test_round_trip_through_json_text(self):
        s = tiny_scenario()
        assert Scenario.from_json(json.dumps(s.to_dict())) == s
        assert Scenario.from_json(s.to_json()) == s

    def test_round_trip_defaults_only(self):
        s = Scenario()
        assert Scenario.from_dict(s.to_dict()) == s

    def test_round_trip_with_every_field(self):
        s = Scenario(
            name="full", workload="custom", topology=tiny_recipe(),
            workload_params={"source_rate": 10.0},
            planner="fixed", planner_params={"tasks": [["A", 0]]},
            objective="IC", budget=3,
            engine={"checkpoint_interval": None, "tentative_outputs": True,
                    "costs": {"restart_delay": 1.0}},
            failures=(FailureSpec("correlated", at=5.0),
                      FailureSpec("random-k", at=9.0, params={"k": 1, "seed": 3})),
            duration=12.0, seed=42,
        )
        assert Scenario.from_dict(s.to_dict()) == s

    def test_params_normalised_to_json_types(self):
        # Tuples in params become lists so equality survives JSON transport.
        s = Scenario(workload_params={"xs": (1, 2)})
        assert s.workload_params == {"xs": [1, 2]}
        assert Scenario.from_json(s.to_json()) == s

    def test_unknown_scenario_field_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario field"):
            Scenario.from_dict({"planner": "dp", "bugdet": 3})

    def test_unknown_failure_field_rejected(self):
        with pytest.raises(ScenarioError, match="unknown failure field"):
            FailureSpec.from_dict({"model": "correlated", "when": 4.0})

    def test_budget_and_fraction_are_exclusive(self):
        with pytest.raises(ScenarioError, match="not both"):
            Scenario(budget=2, budget_fraction=0.5)

    def test_objective_validated(self):
        with pytest.raises(ScenarioError, match="objective"):
            Scenario(objective="accuracy")

    def test_non_serializable_param_rejected(self):
        with pytest.raises(ScenarioError, match="JSON-serializable"):
            Scenario(workload_params={"fn": object()})

    def test_explicit_topology_defaults_to_custom_workload(self):
        s = Scenario(topology=tiny_recipe())
        assert s.workload == "custom"

    def test_default_workload_is_synthetic_without_topology(self):
        assert Scenario().workload == "synthetic"

    def test_named_workload_with_topology_fails_loudly(self):
        # An explicitly named non-custom workload is never silently
        # rewritten; the contradiction is rejected at run time.
        s = Scenario(workload="synthetic", topology=tiny_recipe(),
                     planner="none", duration=5.0)
        assert s.workload == "synthetic"
        with pytest.raises(ScenarioError, match="workload='custom'"):
            run_scenario(s)

    def test_recipe_round_trip_and_build(self):
        recipe = tiny_recipe()
        rebuilt = TopologyRecipe.from_dict(recipe.to_dict())
        assert rebuilt == recipe
        topo = rebuilt.build()
        assert topo.num_tasks == 5
        assert TopologyRecipe.from_topology(topo).build().num_tasks == 5

    def test_recipe_rejects_bad_kind_and_pattern(self):
        with pytest.raises(ScenarioError, match="unknown kind"):
            TopologyRecipe((OperatorDef("S", 1, kind="sauce"),), ()).build()
        bad_edge = TopologyRecipe(
            (OperatorDef("S", 1, kind="source"), OperatorDef("A", 1)),
            (EdgeDef("S", "A", "diagonal"),),
        )
        with pytest.raises(ScenarioError, match="unknown pattern"):
            bad_edge.build()


class TestRegistries:
    def test_unknown_planner_lists_known_names(self):
        with pytest.raises(ScenarioError) as excinfo:
            run_scenario(tiny_scenario(planner="simulated-annealing"))
        message = str(excinfo.value)
        assert "unknown planner 'simulated-annealing'" in message
        assert "'structure-aware'" in message and "'dp'" in message

    def test_unknown_workload_lists_known_names(self):
        with pytest.raises(ScenarioError) as excinfo:
            run_scenario(Scenario(workload="wordcup"))
        message = str(excinfo.value)
        assert "unknown workload 'wordcup'" in message
        assert "'worldcup'" in message

    def test_unknown_failure_model_lists_known_names(self):
        scenario = tiny_scenario(failures=(FailureSpec("asteroid", at=1.0),))
        with pytest.raises(ScenarioError) as excinfo:
            run_scenario(scenario)
        message = str(excinfo.value)
        assert "unknown failure model 'asteroid'" in message
        assert "'correlated'" in message

    def test_required_names_are_registered(self):
        assert {"dp", "greedy", "structured", "full",
                "structure-aware", "none"} <= set(PLANNERS.names())
        assert {"worldcup", "traffic", "synthetic", "zipf"} <= set(WORKLOADS.names())
        assert {"single-task", "correlated", "random-k"} <= set(FAILURE_MODELS.names())

    def test_bad_workload_params_raise_scenario_error(self):
        # Every registered workload, including zipf/custom, reports parameter
        # mismatches as ScenarioError (which the CLI renders as a clean error).
        for workload in ("synthetic", "zipf"):
            with pytest.raises(ScenarioError, match=f"workload '{workload}'"):
                run_scenario(Scenario(workload=workload,
                                      workload_params={"warp_factor": 9}))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ScenarioError, match="already registered"):
            PLANNERS.register("greedy")(object)

    def test_external_workload_plugs_in(self):
        @WORKLOADS.register("test-tiny")
        def _tiny_bundle(source_rate: float = 20.0):
            topo = tiny_recipe().build()
            return generic_bundle("test-tiny", topo,
                                  uniform_source_rates(topo, source_rate),
                                  window_seconds=5.0, tuple_scale=1.0)

        try:
            result = run_scenario(Scenario(workload="test-tiny",
                                           planner="none", duration=6.0))
            assert result.batches_processed > 0
        finally:
            WORKLOADS.unregister("test-tiny")
        assert "test-tiny" not in WORKLOADS


class TestFailureModels:
    TOPO = None

    def topology(self):
        if TestFailureModels.TOPO is None:
            TestFailureModels.TOPO = tiny_recipe().build()
        return TestFailureModels.TOPO

    def test_single_task(self):
        model = FAILURE_MODELS.get("single-task")
        assert model(self.topology(), frozenset(), seed=0,
                     operator="A", index=1) == (TaskId("A", 1),)

    def test_correlated_defaults_to_non_sources(self):
        model = FAILURE_MODELS.get("correlated")
        victims = model(self.topology(), frozenset(), seed=0)
        assert set(victims) == {TaskId("A", 0), TaskId("A", 1), TaskId("B", 0)}

    def test_correlated_operator_subset(self):
        model = FAILURE_MODELS.get("correlated")
        victims = model(self.topology(), frozenset(), seed=0, operators=["A"])
        assert set(victims) == {TaskId("A", 0), TaskId("A", 1)}

    def test_random_k_deterministic_in_seed(self):
        model = FAILURE_MODELS.get("random-k")
        first = model(self.topology(), frozenset(), seed=7, k=2)
        second = model(self.topology(), frozenset(), seed=7, k=2)
        assert first == second and len(first) == 2
        all_draws = {model(self.topology(), frozenset(), seed=s, k=2)
                     for s in range(8)}
        assert len(all_draws) > 1  # the seed actually matters

    def test_random_k_bounds_checked(self):
        model = FAILURE_MODELS.get("random-k")
        with pytest.raises(ScenarioError, match="random-k"):
            model(self.topology(), frozenset(), seed=0, k=99)

    def test_unreplicated_excludes_plan(self):
        model = FAILURE_MODELS.get("unreplicated")
        plan = frozenset({TaskId("A", 0), TaskId("B", 0)})
        assert set(model(self.topology(), plan, seed=0)) == {TaskId("A", 1)}

    def test_explicit_tasks_accepts_both_spellings(self):
        model = FAILURE_MODELS.get("tasks")
        victims = model(self.topology(), frozenset(), seed=0,
                        tasks=[["A", 0], "B[0]"])
        assert set(victims) == {TaskId("A", 0), TaskId("B", 0)}

    def test_explicit_tasks_rejects_unknown_task(self):
        model = FAILURE_MODELS.get("tasks")
        with pytest.raises(ScenarioError, match="unknown task"):
            model(self.topology(), frozenset(), seed=0, tasks=[["A", 9]])

    def test_explicit_tasks_rejects_non_integer_index(self):
        model = FAILURE_MODELS.get("tasks")
        for ref in (["A", "zero"], "A[zero]"):
            with pytest.raises(ScenarioError, match="malformed task reference"):
                model(self.topology(), frozenset(), seed=0, tasks=[ref])


class TestRunner:
    def test_runs_end_to_end_with_provenance(self):
        result = run_scenario(tiny_scenario())
        assert result.plan.planner == "Greedy"
        assert result.plan.budget == 2
        assert 0.0 <= result.worst_case_fidelity <= 1.0
        assert 0.0 <= result.failure_fidelity <= 1.0
        assert result.failed_tasks == (TaskId("A", 0),)
        assert result.all_recovered
        assert result.mean_recovery_latency is not None
        assert result.max_recovery_latency >= result.mean_recovery_latency

    def test_budget_fraction_resolves_against_topology(self):
        runner = ScenarioRunner(tiny_scenario(budget=None, budget_fraction=0.4))
        assert runner.resolve_budget(runner.bundle()) == 2  # 0.4 * 5 tasks

    def test_failure_after_duration_rejected(self):
        scenario = tiny_scenario(
            failures=(FailureSpec("correlated", at=100.0),), duration=16.0
        )
        with pytest.raises(ScenarioError, match="after the run ends"):
            run_scenario(scenario)

    def test_fixed_planner_replays_task_list(self):
        result = run_scenario(tiny_scenario(
            planner="fixed", planner_params={"tasks": [["A", 0], ["B", 0]]},
            budget=None,
        ))
        assert result.plan.replicated == frozenset({TaskId("A", 0), TaskId("B", 0)})

    def test_engine_overrides_reach_the_config(self):
        runner = ScenarioRunner(tiny_scenario(
            engine={"checkpoint_interval": None, "tentative_outputs": True,
                    "passive_strategy": "source-replay",
                    "costs": {"restart_delay": 0.5}},
        ))
        config = runner.engine_config(runner.bundle())
        assert config.checkpoint_interval is None
        assert config.tentative_outputs is True
        assert config.passive_strategy.value == "source-replay"
        assert config.costs.restart_delay == 0.5

    def test_bad_engine_key_raises_scenario_error(self):
        runner = ScenarioRunner(tiny_scenario(engine={"checkpoint_every": 5.0}))
        with pytest.raises(ScenarioError, match="engine config"):
            runner.engine_config(runner.bundle())

    def test_result_to_dict_is_json_serializable(self):
        result = run_scenario(tiny_scenario())
        text = json.dumps(result.to_dict())
        data = json.loads(text)
        assert data["scenario"]["name"] == "tiny"
        assert data["plan"]["planner"] == "Greedy"
        assert data["all_recovered"] is True

    def test_render_mentions_plan_and_failures(self):
        text = run_scenario(tiny_scenario()).render()
        assert "ScenarioResult" in text
        assert "Greedy" in text
        assert "tasks killed" in text


class TestEnginePlanArgument:
    def make_engine(self, plan):
        topo = tiny_recipe().build()
        logic = LogicFactory()
        logic.register_source("S", UniformRateSource(10.0))
        for name in ("A", "B"):
            logic.register_operator(
                name, lambda: WindowedSelectivityOperator(5.0, 0.5)
            )
        return StreamEngine(topo, logic, EngineConfig(), plan=plan)

    def test_accepts_replication_plan_directly(self):
        plan = ReplicationPlan(frozenset({TaskId("A", 0)}), planner="SA", budget=1)
        engine = self.make_engine(plan)
        assert engine.plan is plan
        assert engine.replicated == plan.replicated
        assert engine.metrics.plan is plan  # provenance rides on the metrics

    def test_still_accepts_bare_task_iterable(self):
        engine = self.make_engine([TaskId("A", 0)])
        assert engine.replicated == frozenset({TaskId("A", 0)})
        assert engine.metrics.plan == ReplicationPlan(frozenset({TaskId("A", 0)}))


class TestGrid:
    AXES = {
        "planner": ["none", "greedy", "structure-aware"],
        "budget": [1, 2],
        "engine.checkpoint_interval": [4.0, 8.0],
    }

    def test_expansion_is_deterministic_and_complete(self):
        base = tiny_scenario()
        first = expand_grid(base, self.AXES)
        second = expand_grid(base, self.AXES)
        assert first == second
        assert len(first) == 12
        assert len({s.name for s in first}) == 12  # distinct labels

    def test_dotted_axis_reaches_engine_dict(self):
        base = tiny_scenario()
        grid = expand_grid(base, {"engine.checkpoint_interval": [2.0]})
        assert grid[0].engine["checkpoint_interval"] == 2.0
        # the rest of the engine dict is preserved (nothing else in base's)
        assert set(grid[0].engine) == set(base.engine)

    def test_plain_and_dotted_override_of_same_field_compose(self):
        # The plain dict is the new base; dotted keys apply on top of it.
        s = tiny_scenario().with_overrides(
            engine={"tentative_outputs": True},
            **{"engine.checkpoint_interval": 5.0},
        )
        assert s.engine == {"tentative_outputs": True,
                            "checkpoint_interval": 5.0}

    def test_unknown_axis_rejected(self):
        with pytest.raises(ScenarioError, match="invalid scenario override"):
            expand_grid(tiny_scenario(), {"bugdet": [1]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ScenarioError, match="empty"):
            expand_grid(tiny_scenario(), {"budget": []})

    def test_grid_deterministic_across_backends(self):
        base = tiny_scenario(duration=12.0)
        serial = run_grid(base, self.AXES)
        parallel = run_grid(base, self.AXES, backend="processes")
        assert len(serial) == len(parallel) == 12
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in parallel]

    def test_deprecated_workers_shim_still_works(self):
        base = tiny_scenario(duration=12.0)
        serial = run_grid(base, self.AXES)
        with pytest.deprecated_call():
            shimmed = run_grid(base, self.AXES, workers=2)
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in shimmed]

    def test_run_grid_without_axes_runs_base(self):
        results = run_grid(tiny_scenario())
        assert len(results) == 1

    def test_run_scenarios_preserves_order(self):
        scenarios = [tiny_scenario(name=f"s{i}", budget=i) for i in (0, 1, 2)]
        results = run_scenarios(scenarios)
        assert [r.scenario.name for r in results] == ["s0", "s1", "s2"]

"""Tests for Output Fidelity (Eq. 4) and the worst-case plan evaluation."""

import pytest

from repro.core import (
    output_fidelity,
    single_failure_fidelity,
    worst_case_fidelity,
)
from repro.errors import PlanningError
from repro.topology import (
    Partitioning,
    SourceRates,
    TaskId,
    TopologyBuilder,
    propagate_rates,
)


class TestOutputFidelity:
    def test_no_failure_is_perfect(self, chain_topology, chain_rates):
        assert output_fidelity(chain_topology, chain_rates, frozenset()) == 1.0

    def test_sink_failure_is_zero(self, chain_topology, chain_rates):
        assert output_fidelity(chain_topology, chain_rates, {TaskId("C", 0)}) == 0.0

    def test_one_source_of_four_costs_a_quarter(self, chain_topology, chain_rates):
        of = output_fidelity(chain_topology, chain_rates, {TaskId("S", 0)})
        assert of == pytest.approx(0.75)

    def test_fig2_correlated(self, fig2_topology, fig2_rates):
        of = output_fidelity(fig2_topology, fig2_rates, {TaskId("O2", 1)})
        assert of == pytest.approx(1.0 - 2.0 / 5.0)

    def test_fig2_independent(self, fig2_independent, fig2_independent_rates):
        of = output_fidelity(fig2_independent, fig2_independent_rates,
                             {TaskId("O2", 1)})
        assert of == pytest.approx(0.75)

    def test_sink_rates_weigh_multiple_sinks(self):
        # Two sinks; the heavy one failing costs more fidelity.
        topo = (
            TopologyBuilder()
            .source("S", 2)
            .operator("A", 1)
            .operator("B", 1)
            .connect("S", "A", Partitioning.FULL)
            .connect("S", "B", Partitioning.FULL)
            .build()
        )
        rates = propagate_rates(topo, SourceRates(per_operator={"S": 100.0}))
        heavy = output_fidelity(topo, rates, {TaskId("A", 0)})
        assert heavy == pytest.approx(0.5)

    def test_custom_sink_tasks(self, chain_topology, chain_rates):
        of = output_fidelity(chain_topology, chain_rates, {TaskId("B", 0)},
                             sink_tasks=[TaskId("B", 0), TaskId("B", 1)])
        assert of == pytest.approx(0.5)

    def test_empty_sink_list_raises(self, chain_topology, chain_rates):
        with pytest.raises(PlanningError):
            output_fidelity(chain_topology, chain_rates, frozenset(), sink_tasks=[])


class TestWorstCaseFidelity:
    def test_full_plan_is_perfect(self, chain_topology, chain_rates):
        assert worst_case_fidelity(
            chain_topology, chain_rates, chain_topology.tasks()
        ) == 1.0

    def test_empty_plan_is_zero(self, chain_topology, chain_rates):
        assert worst_case_fidelity(chain_topology, chain_rates, ()) == 0.0

    def test_complete_tree_gives_positive_fidelity(self, chain_topology, chain_rates):
        tree = {TaskId("S", 0), TaskId("A", 0), TaskId("B", 0), TaskId("C", 0)}
        assert worst_case_fidelity(chain_topology, chain_rates, tree) > 0.0

    def test_incomplete_tree_gives_zero(self, chain_topology, chain_rates):
        # No source replicated: nothing can flow.
        partial = {TaskId("A", 0), TaskId("B", 0), TaskId("C", 0)}
        assert worst_case_fidelity(chain_topology, chain_rates, partial) == 0.0

    def test_monotone_in_plan(self, chain_topology, chain_rates):
        plan = {TaskId("S", 0), TaskId("A", 0), TaskId("B", 0), TaskId("C", 0)}
        base = worst_case_fidelity(chain_topology, chain_rates, plan)
        bigger = worst_case_fidelity(
            chain_topology, chain_rates, plan | {TaskId("S", 1)}
        )
        assert bigger >= base

    def test_join_plan_needs_both_branches(self, join_topology, join_rates):
        one_branch = {TaskId("Sa", 0), TaskId("A", 0), TaskId("J", 0), TaskId("K", 0)}
        assert worst_case_fidelity(join_topology, join_rates, one_branch) == 0.0
        both = one_branch | {TaskId("Sb", 0), TaskId("B", 0)}
        assert worst_case_fidelity(join_topology, join_rates, both) > 0.0


class TestSingleFailureFidelity:
    def test_matches_direct_evaluation(self, chain_topology, chain_rates):
        task = TaskId("B", 0)
        assert single_failure_fidelity(chain_topology, chain_rates, task) == (
            output_fidelity(chain_topology, chain_rates, {task})
        )

    def test_sink_is_most_critical(self, chain_topology, chain_rates):
        values = {
            t: single_failure_fidelity(chain_topology, chain_rates, t)
            for t in chain_topology.tasks()
        }
        assert min(values, key=values.get) == TaskId("C", 0)

"""Tests for unit splitting (Sec. IV-C.1) and topology decomposition (IV-C.3)."""

import pytest

from repro.core import SubTopology, decompose, split_into_units, unit_neighbours
from repro.core.decompose import is_full_subtopology
from repro.topology import (
    Partitioning,
    TopologyBuilder,
    TopologyClass,
    linear_chain,
)


def _fig3a_topology():
    """Fig. 3(a): S -> O1 -merge-> O2 -split-> O3 (merge into split)."""
    return (
        TopologyBuilder()
        .source("S", 4)
        .operator("O1", 4)
        .operator("O2", 2)
        .operator("O3", 4)
        .connect("S", "O1", Partitioning.ONE_TO_ONE)
        .connect("O1", "O2", Partitioning.MERGE)
        .connect("O2", "O3", Partitioning.SPLIT)
        .build()
    )


def _fig3b_topology():
    """Fig. 3(b): a join O3 with a merge input from O1."""
    return (
        TopologyBuilder()
        .source("S1", 4)
        .source("S2", 2)
        .operator("O1", 4)
        .operator("O2", 2)
        .join("O3", 2)
        .connect("S1", "O1", Partitioning.ONE_TO_ONE)
        .connect("S2", "O2", Partitioning.ONE_TO_ONE)
        .connect("O1", "O3", Partitioning.MERGE)
        .connect("O2", "O3", Partitioning.ONE_TO_ONE)
        .build()
    )


class TestUnitSplitting:
    def test_fig3a_boundary_between_merge_and_split(self):
        topo = _fig3a_topology()
        units = split_into_units(topo, topo.operator_names)
        by_op = {op: unit for unit in units for op in unit}
        # The paper sets a boundary between O1 and O2 (merge feeding a split).
        assert by_op["O1"] != by_op["O2"]
        assert by_op["S"] == by_op["O1"]
        assert by_op["O2"] == by_op["O3"]

    def test_fig3b_boundary_before_join_with_merge_input(self):
        topo = _fig3b_topology()
        units = split_into_units(topo, topo.operator_names)
        by_op = {op: unit for unit in units for op in unit}
        assert by_op["O1"] != by_op["O3"]
        # The one-to-one input of the join does not force a boundary.
        assert by_op["O2"] == by_op["O3"]

    def test_stacked_merges_are_cut(self, merge_tree_topology):
        units = split_into_units(merge_tree_topology,
                                 merge_tree_topology.operator_names)
        by_op = {op: unit for unit in units for op in unit}
        # S-A merge and A-B merge cannot share a unit (segment blowup).
        assert by_op["A"] != by_op["B"]

    def test_full_edges_are_boundaries(self, chain_topology):
        units = split_into_units(chain_topology, chain_topology.operator_names)
        assert len(units) == 4  # every operator alone

    def test_one_to_one_chain_is_one_unit(self):
        topo = linear_chain([3, 3, 3], pattern=Partitioning.ONE_TO_ONE)
        units = split_into_units(topo, topo.operator_names)
        assert len(units) == 1

    def test_units_partition_the_operator_set(self, join_topology):
        units = split_into_units(join_topology, join_topology.operator_names)
        seen = [op for unit in units for op in unit]
        assert sorted(seen) == sorted(join_topology.operator_names)

    def test_neighbours_reflect_edges(self, chain_topology):
        units = split_into_units(chain_topology, chain_topology.operator_names)
        neighbours = unit_neighbours(chain_topology, units)
        # A chain of singleton units: each inner unit touches two others.
        degrees = sorted(len(v) for v in neighbours.values())
        assert degrees == [1, 1, 2, 2]


class TestDecomposition:
    def test_full_chain_splits_into_full_singletons(self, chain_topology):
        subs = decompose(chain_topology)
        assert len(subs) == 4
        assert all(s.kind is TopologyClass.FULL for s in subs)
        assert all(len(s.ops) == 1 for s in subs)

    def test_one_to_one_chain_is_one_structured_subtopology(self):
        topo = linear_chain([3, 3, 3], pattern=Partitioning.ONE_TO_ONE)
        subs = decompose(topo)
        assert len(subs) == 1
        assert subs[0].kind is TopologyClass.STRUCTURED

    def test_mixed_topology_splits_at_full_edges(self):
        # Structured island feeding full stages (like Fig. 4).
        topo = (
            TopologyBuilder()
            .source("S", 4)
            .operator("A", 4)
            .operator("B", 2)
            .operator("C", 2)
            .operator("D", 1)
            .connect("S", "A", Partitioning.ONE_TO_ONE)
            .connect("A", "B", Partitioning.MERGE)
            .connect("B", "C", Partitioning.FULL)
            .connect("C", "D", Partitioning.FULL)
            .build()
        )
        subs = decompose(topo)
        kinds = {frozenset(s.ops): s.kind for s in subs}
        assert kinds[frozenset({"S", "A", "B"})] is TopologyClass.STRUCTURED
        assert kinds[frozenset({"C"})] is TopologyClass.FULL
        assert kinds[frozenset({"D"})] is TopologyClass.FULL

    def test_boundaries_are_full_edges_only(self, join_topology):
        """The paper's independence requirement: neighbouring sub-topologies
        are connected by full partitioning."""
        subs = decompose(join_topology)
        op_to_sub = {op: i for i, sub in enumerate(subs) for op in sub.ops}
        for edge in join_topology.edges():
            crossing = op_to_sub[edge.upstream] != op_to_sub[edge.downstream]
            if crossing:
                assert edge.pattern is Partitioning.FULL

    def test_every_operator_assigned_exactly_once(self, join_topology):
        subs = decompose(join_topology)
        seen = [op for sub in subs for op in sub.ops]
        assert sorted(seen) == sorted(join_topology.operator_names)

    def test_subtopology_membership_helper(self):
        sub = SubTopology(frozenset({"A"}), TopologyClass.FULL)
        assert "A" in sub
        assert "B" not in sub

    def test_is_full_subtopology(self, chain_topology):
        assert is_full_subtopology(chain_topology, frozenset({"S", "A"}))
        assert is_full_subtopology(chain_topology, frozenset({"S"}))

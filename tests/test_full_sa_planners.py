"""Tests for Algorithm 4 (full-topology) and Algorithm 5 (structure-aware)."""

import pytest

from repro.core import (
    FullTopologyPlanner,
    GreedyPlanner,
    PlanningContext,
    StructureAwarePlanner,
    worst_case_fidelity,
)
from repro.topology import (
    Partitioning,
    SourceRates,
    TaskId,
    TopologyBuilder,
    TopologySpec,
    generate_source_rates,
    generate_topology,
    linear_chain,
    propagate_rates,
    uniform_source_rates,
)


class TestFullTopologyPlanner:
    def test_base_plan_one_task_per_operator(self, chain_topology, chain_rates):
        ctx = PlanningContext(chain_topology, chain_rates)
        base = FullTopologyPlanner().base_plan(ctx)
        assert base is not None
        assert len(base) == 4
        assert {t.operator for t in base} == {"S", "A", "B", "C"}

    def test_base_plan_yields_positive_fidelity(self, chain_topology, chain_rates):
        base = FullTopologyPlanner().base_plan(
            PlanningContext(chain_topology, chain_rates)
        )
        assert worst_case_fidelity(chain_topology, chain_rates, base) > 0.0

    def test_base_picks_heaviest_tasks(self):
        topo = (
            TopologyBuilder()
            .source("S", 2, task_weights=(1.0, 1.0))
            .operator("A", 3, task_weights=(1.0, 5.0, 1.0))
            .operator("B", 1)
            .chain("S", "A", "B", pattern=Partitioning.FULL)
            .build()
        )
        rates = propagate_rates(topo, uniform_source_rates(topo, 10.0))
        base = FullTopologyPlanner().base_plan(PlanningContext(topo, rates))
        assert TaskId("A", 1) in base  # the 5x key-share task

    def test_extend_adds_single_best_task(self, chain_topology, chain_rates):
        planner = FullTopologyPlanner()
        ctx = PlanningContext(chain_topology, chain_rates)
        base = planner.base_plan(ctx)
        ext = planner.extend(ctx, base, 3)
        assert ext is not None and len(ext) == 1
        assert not ext & base

    def test_extend_zero_budget_returns_none(self, chain_topology, chain_rates):
        planner = FullTopologyPlanner()
        ctx = PlanningContext(chain_topology, chain_rates)
        assert planner.extend(ctx, frozenset(), 0) is None

    def test_plan_budget_below_operator_count_is_empty(self, chain_topology,
                                                       chain_rates):
        plan = FullTopologyPlanner().plan(chain_topology, chain_rates, 3)
        assert plan.usage == 0

    def test_plan_monotone_in_budget(self, chain_topology, chain_rates):
        planner = FullTopologyPlanner()
        values = [
            worst_case_fidelity(
                chain_topology, chain_rates,
                planner.plan(chain_topology, chain_rates, b).replicated,
            )
            for b in (4, 6, 8, 11)
        ]
        assert values == sorted(values)
        assert values[-1] == 1.0


class TestStructureAwarePlanner:
    def test_delegates_to_full_on_full_chain(self, chain_topology, chain_rates):
        sa = StructureAwarePlanner().plan(chain_topology, chain_rates, 6)
        full = FullTopologyPlanner().plan(chain_topology, chain_rates, 6)
        sa_value = worst_case_fidelity(chain_topology, chain_rates, sa.replicated)
        full_value = worst_case_fidelity(chain_topology, chain_rates, full.replicated)
        assert sa_value == pytest.approx(full_value)

    def test_handles_mixed_topology(self):
        topo = (
            TopologyBuilder()
            .source("S", 4)
            .operator("A", 4)
            .operator("B", 2)
            .operator("C", 2)
            .operator("D", 1)
            .connect("S", "A", Partitioning.ONE_TO_ONE)
            .connect("A", "B", Partitioning.MERGE)
            .connect("B", "C", Partitioning.FULL)
            .connect("C", "D", Partitioning.FULL)
            .build()
        )
        rates = propagate_rates(topo, uniform_source_rates(topo, 10.0))
        plan = StructureAwarePlanner().plan(topo, rates, 8)
        assert plan.usage <= 8
        assert worst_case_fidelity(topo, rates, plan.replicated) > 0.0

    def test_empty_when_budget_below_bases(self, join_topology, join_rates):
        plan = StructureAwarePlanner().plan(join_topology, join_rates, 2)
        assert plan.usage == 0

    def test_trajectory_is_monotone(self, join_topology, join_rates):
        trajectory = StructureAwarePlanner().plan_trajectory(
            join_topology, join_rates, join_topology.num_tasks
        )
        usages = [p.usage for p in trajectory]
        assert usages == sorted(usages)
        values = [
            worst_case_fidelity(join_topology, join_rates, p.replicated)
            for p in trajectory
        ]
        assert values == sorted(values)

    def test_beats_greedy_on_random_topologies_in_aggregate(self):
        """The Fig. 14 headline: SA > Greedy on average at small budgets.

        Per-instance SA may lose a little (Algorithm 5 only spends budget on
        complete MC-trees, so leftover units can go unused), but the mean
        over topologies must favour SA clearly.
        """
        spec = TopologySpec(n_operators=(4, 6), parallelism=(2, 4))
        sa_values, greedy_values = [], []
        for seed in range(12):
            topo = generate_topology(spec, seed)
            rates = propagate_rates(topo, generate_source_rates(topo, seed))
            budget = max(1, topo.num_tasks // 4)
            sa = StructureAwarePlanner().plan(topo, rates, budget)
            greedy = GreedyPlanner().plan(topo, rates, budget)
            sa_values.append(worst_case_fidelity(topo, rates, sa.replicated))
            greedy_values.append(worst_case_fidelity(topo, rates, greedy.replicated))
        sa_mean = sum(sa_values) / len(sa_values)
        greedy_mean = sum(greedy_values) / len(greedy_values)
        assert sa_mean > greedy_mean
        wins = sum(s > g + 1e-9 for s, g in zip(sa_values, greedy_values))
        losses = sum(s < g - 1e-9 for s, g in zip(sa_values, greedy_values))
        assert wins > losses

    def test_deterministic(self, join_topology, join_rates):
        a = StructureAwarePlanner().plan(join_topology, join_rates, 8)
        b = StructureAwarePlanner().plan(join_topology, join_rates, 8)
        assert a.replicated == b.replicated

    def test_full_budget_reaches_full_fidelity(self, join_topology, join_rates):
        plan = StructureAwarePlanner().plan(
            join_topology, join_rates, join_topology.num_tasks
        )
        assert worst_case_fidelity(
            join_topology, join_rates, plan.replicated
        ) == pytest.approx(1.0)

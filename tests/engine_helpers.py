"""Shared builders for engine tests: a tiny deterministic pipeline."""

from __future__ import annotations

import hashlib

from repro.engine import EngineConfig, LogicFactory, MetricsCollector, StreamEngine
from repro.queries import WindowedSelectivityOperator
from repro.topology import Partitioning, TopologyBuilder
from repro.workloads import UniformRateSource


def small_topology(source_parallelism: int = 2, depth_parallelism=(2, 1)):
    """S(n) -> A(...) -> B(...) with merge/full edges, selectivity 1."""
    builder = TopologyBuilder().source("S", source_parallelism)
    names = ["S"]
    for pos, par in enumerate(depth_parallelism):
        name = f"L{pos}"
        builder.operator(name, par)
        names.append(name)
    for up, down in zip(names, names[1:]):
        builder.connect(up, down, Partitioning.FULL)
    return builder.build()


def small_logic(rate: float = 20.0, window: float = 10.0,
                selectivity: float = 1.0, key_space: int = 16) -> LogicFactory:
    factory = LogicFactory()
    factory.register_source("S", UniformRateSource(rate, key_space=key_space))
    for name in ("L0", "L1", "L2", "L3"):
        factory.register_operator(
            name, lambda: WindowedSelectivityOperator(window, selectivity)
        )
    return factory


def build_engine(config: EngineConfig | None = None, *, plan=(),
                 source_parallelism: int = 2, depth_parallelism=(2, 1),
                 rate: float = 20.0, window: float = 10.0,
                 selectivity: float = 1.0) -> StreamEngine:
    topology = small_topology(source_parallelism, depth_parallelism)
    logic = small_logic(rate, window, selectivity)
    return StreamEngine(
        topology, logic, config or EngineConfig(), plan=plan,
        source_replay_window_batches=round(window),
    )


def sink_outputs(engine: StreamEngine) -> dict[int, tuple]:
    """Sink tuples by batch index (single-sink topologies)."""
    return {r.index: r.tuples for r in engine.metrics.sink_records}


def run_scenario_engine(scenario) -> StreamEngine:
    """Run ``scenario`` through a directly constructed engine.

    Mirrors :class:`repro.scenarios.runner.ScenarioRunner` but returns the
    engine itself, so parity tests can fingerprint the raw
    :class:`MetricsCollector` (per-task CPU, recovery records, sink log)
    rather than the distilled :class:`ScenarioResult`.
    """
    from repro.scenarios.runner import ScenarioRunner

    runner = ScenarioRunner(scenario)
    bundle = runner.bundle()
    plan = runner.plan(bundle)
    config = runner.engine_config(bundle)
    kwargs = {}
    replay_window = scenario.engine.get("source_replay_window_batches")
    if replay_window is not None:
        kwargs["source_replay_window_batches"] = int(replay_window)
    engine = StreamEngine(bundle.topology, bundle.make_logic(), config,
                          plan=plan, **kwargs)
    for spec in scenario.failures:
        for wave in runner.failure_waves(spec, bundle, plan):
            at = spec.at + wave.offset
            if wave.tasks:
                engine.schedule_task_failure(at, wave.tasks,
                                             detect_delay=wave.detect_delay)
            if wave.restores:
                engine.schedule_task_restore(at, wave.restores)
    engine.run(scenario.duration)
    return engine


def metrics_fingerprint(metrics: MetricsCollector) -> dict:
    """A JSON-native, byte-stable digest of everything a run measured.

    Floats survive a JSON round-trip exactly (``json`` serialises via
    ``repr``), so two fingerprints compare equal iff the runs produced
    identical metrics: recovery records, per-task CPU split, counters,
    tentative-output counts, and a hash over the full sink output log.
    """
    sink_log = "\n".join(
        f"{r.task}|{r.index}|{r.complete}|{r.emitted_at!r}|{r.tuples!r}"
        for r in metrics.sink_records
    )
    return {
        "recoveries": [
            [str(r.task), r.mode.value, r.fail_time, r.detect_time,
             r.recovered_time]
            for r in metrics.recoveries
        ],
        "cpu": {
            str(task): [cpu.process, cpu.checkpoint, cpu.replay]
            for task, cpu in sorted(metrics.cpu.items())
        },
        "checkpoint_cpu_ratio": metrics.checkpoint_cpu_ratio(),
        "batches_processed": metrics.batches_processed,
        "tuples_processed": metrics.tuples_processed,
        "checkpoints_taken": metrics.checkpoints_taken,
        "batches_forged": metrics.batches_forged,
        "complete_sink_batches": len(metrics.sink_outputs(tentative=False)),
        "tentative_sink_batches": len(metrics.sink_outputs(tentative=True)),
        "sink_sha256": hashlib.sha256(sink_log.encode()).hexdigest(),
    }

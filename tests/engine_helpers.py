"""Shared builders for engine tests: a tiny deterministic pipeline."""

from __future__ import annotations

from repro.engine import EngineConfig, LogicFactory, StreamEngine
from repro.queries import WindowedSelectivityOperator
from repro.topology import Partitioning, TopologyBuilder
from repro.workloads import UniformRateSource


def small_topology(source_parallelism: int = 2, depth_parallelism=(2, 1)):
    """S(n) -> A(...) -> B(...) with merge/full edges, selectivity 1."""
    builder = TopologyBuilder().source("S", source_parallelism)
    names = ["S"]
    for pos, par in enumerate(depth_parallelism):
        name = f"L{pos}"
        builder.operator(name, par)
        names.append(name)
    for up, down in zip(names, names[1:]):
        builder.connect(up, down, Partitioning.FULL)
    return builder.build()


def small_logic(rate: float = 20.0, window: float = 10.0,
                selectivity: float = 1.0, key_space: int = 16) -> LogicFactory:
    factory = LogicFactory()
    factory.register_source("S", UniformRateSource(rate, key_space=key_space))
    for name in ("L0", "L1", "L2", "L3"):
        factory.register_operator(
            name, lambda: WindowedSelectivityOperator(window, selectivity)
        )
    return factory


def build_engine(config: EngineConfig | None = None, *, plan=(),
                 source_parallelism: int = 2, depth_parallelism=(2, 1),
                 rate: float = 20.0, window: float = 10.0,
                 selectivity: float = 1.0) -> StreamEngine:
    topology = small_topology(source_parallelism, depth_parallelism)
    logic = small_logic(rate, window, selectivity)
    return StreamEngine(
        topology, logic, config or EngineConfig(), plan=plan,
        source_replay_window_batches=round(window),
    )


def sink_outputs(engine: StreamEngine) -> dict[int, tuple]:
    """Sink tuples by batch index (single-sink topologies)."""
    return {r.index: r.tuples for r in engine.metrics.sink_records}

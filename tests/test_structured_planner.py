"""Tests for Algorithm 3 (structured planner) and MC-tree completion."""

import pytest

from repro.core import (
    PlanningContext,
    StructuredTopologyPlanner,
    complete_tree,
    worst_case_fidelity,
)
from repro.topology import (
    Partitioning,
    TaskId,
    TopologyBuilder,
    linear_chain,
    propagate_rates,
    uniform_source_rates,
)


@pytest.fixture
def one_to_one_chain():
    topo = linear_chain([3, 3, 3], pattern=Partitioning.ONE_TO_ONE)
    return topo, propagate_rates(topo, uniform_source_rates(topo, 10.0))


class TestCompleteTree:
    def test_completes_seed_to_full_path(self, one_to_one_chain):
        topo, rates = one_to_one_chain
        ctx = PlanningContext(topo, rates)
        seed = frozenset({TaskId("O1", 1)})
        tree = complete_tree(ctx, seed, frozenset())
        assert tree == {TaskId("S", 1), TaskId("O1", 1), TaskId("O2", 1)}

    def test_prefers_already_replicated_tasks(self, merge_tree_topology,
                                              merge_tree_rates):
        ctx = PlanningContext(merge_tree_topology, merge_tree_rates)
        current = frozenset({TaskId("B", 1), TaskId("C", 0)})
        tree = complete_tree(ctx, frozenset({TaskId("A", 3)}), current)
        # Downstream closure should reuse B[1] and C[0] instead of B[0].
        assert TaskId("B", 1) in tree
        assert TaskId("C", 0) in tree
        assert TaskId("B", 0) not in tree

    def test_join_requirements_pull_both_branches(self, join_topology, join_rates):
        ctx = PlanningContext(join_topology, join_rates)
        tree = complete_tree(ctx, frozenset({TaskId("J", 0)}), frozenset())
        operators = {t.operator for t in tree}
        assert operators == {"Sa", "A", "Sb", "B", "J", "K"}

    def test_completed_tree_yields_positive_fidelity(self, join_topology,
                                                     join_rates):
        ctx = PlanningContext(join_topology, join_rates)
        tree = complete_tree(ctx, frozenset({TaskId("J", 1)}), frozenset())
        assert worst_case_fidelity(join_topology, join_rates, tree) > 0.0

    def test_respects_mask_boundary(self, chain_topology, chain_rates):
        ctx = PlanningContext(chain_topology, chain_rates,
                              ops=frozenset({"B", "C"}))
        tree = complete_tree(ctx, frozenset({TaskId("B", 0)}), frozenset())
        assert all(t.operator in {"B", "C"} for t in tree)


class TestStructuredPlanner:
    def test_base_plan_is_complete_tree(self, one_to_one_chain):
        topo, rates = one_to_one_chain
        planner = StructuredTopologyPlanner()
        base = planner.base_plan(PlanningContext(topo, rates))
        assert base is not None
        assert worst_case_fidelity(topo, rates, base) > 0.0

    def test_plan_respects_budget(self, one_to_one_chain):
        topo, rates = one_to_one_chain
        plan = StructuredTopologyPlanner().plan(topo, rates, 6)
        assert plan.usage <= 6

    def test_plan_improves_with_budget(self, one_to_one_chain):
        topo, rates = one_to_one_chain
        planner = StructuredTopologyPlanner()
        values = [
            worst_case_fidelity(topo, rates,
                                planner.plan(topo, rates, b).replicated)
            for b in (3, 6, 9)
        ]
        assert values == sorted(values)
        assert values[0] > 0.0
        assert values[-1] == 1.0

    def test_skewed_weights_prioritise_heavy_path(self):
        topo = (
            TopologyBuilder()
            .source("S", 3, task_weights=(6.0, 1.0, 1.0))
            .operator("A", 3, task_weights=(6.0, 1.0, 1.0))
            .operator("B", 1)
            .connect("S", "A", Partitioning.ONE_TO_ONE)
            .connect("A", "B", Partitioning.MERGE)
            .build()
        )
        rates = propagate_rates(topo, uniform_source_rates(topo, 10.0))
        plan = StructuredTopologyPlanner().plan(topo, rates, 3)
        # All sources emit at the same rate here, so any path is equal value;
        # bump the rate of S[0] to make path 0 strictly better.
        from repro.topology import SourceRates

        skewed_rates = propagate_rates(topo, SourceRates(per_task={
            TaskId("S", 0): 60.0, TaskId("S", 1): 10.0, TaskId("S", 2): 10.0,
        }))
        plan = StructuredTopologyPlanner().plan(topo, skewed_rates, 3)
        assert TaskId("S", 0) in plan.replicated
        assert TaskId("A", 0) in plan.replicated

    def test_merge_tree_builds_disjoint_paths(self, merge_tree_topology,
                                              merge_tree_rates):
        plan = StructuredTopologyPlanner().plan(
            merge_tree_topology, merge_tree_rates, 8
        )
        value = worst_case_fidelity(merge_tree_topology, merge_tree_rates,
                                    plan.replicated)
        assert value > 0.0
        assert plan.usage <= 8

    def test_extend_returns_none_when_saturated(self, one_to_one_chain):
        topo, rates = one_to_one_chain
        planner = StructuredTopologyPlanner()
        ctx = PlanningContext(topo, rates)
        full = frozenset(topo.tasks())
        assert planner.extend(ctx, full, 5) is None

    def test_extend_respects_max_new_tasks(self, one_to_one_chain):
        topo, rates = one_to_one_chain
        planner = StructuredTopologyPlanner()
        ctx = PlanningContext(topo, rates)
        assert planner.extend(ctx, frozenset(), 2) is None  # tree needs 3
        ext = planner.extend(ctx, frozenset(), 3)
        assert ext is not None and len(ext) == 3

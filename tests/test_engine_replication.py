"""Active replication: failover, takeover latency, output continuity."""

import pytest

from repro.engine import EngineConfig, RecoveryMode, TaskStatus
from repro.topology import TaskId

from tests.engine_helpers import build_engine, sink_outputs


def _active_config(sync=4.0):
    return EngineConfig(checkpoint_interval=None, heartbeat_interval=2.0,
                        sync_interval=sync)


class TestFailover:
    def test_replicated_task_enters_failover_not_failed(self):
        engine = build_engine(_active_config(), plan=[TaskId("L0", 1)])
        engine.schedule_task_failure(6.0, [TaskId("L0", 1)])
        engine.sim.at(6.5, lambda: None)
        engine.run(7.0, settle=False)
        assert engine.runtime(TaskId("L0", 1)).status in (
            TaskStatus.FAILOVER, TaskStatus.RUNNING
        )

    def test_recovery_mode_is_active(self):
        engine = build_engine(_active_config(), plan=[TaskId("L0", 1)])
        engine.schedule_task_failure(6.0, [TaskId("L0", 1)])
        engine.run(16.0)
        record = engine.metrics.recoveries[0]
        assert record.mode is RecoveryMode.ACTIVE
        assert record.recovered_time is not None

    def test_active_faster_than_checkpoint(self):
        active = build_engine(_active_config(), plan=[TaskId("L0", 1)])
        active.schedule_task_failure(6.0, [TaskId("L0", 1)])
        active.run(20.0)
        passive = build_engine(
            EngineConfig(checkpoint_interval=8.0, heartbeat_interval=2.0)
        )
        passive.schedule_task_failure(6.0, [TaskId("L0", 1)])
        passive.run(20.0)
        assert (
            active.metrics.max_recovery_latency()
            < passive.metrics.max_recovery_latency()
        )

    def test_longer_sync_interval_slower_takeover(self):
        fast = build_engine(_active_config(sync=1.0), plan=[TaskId("L0", 1)],
                            rate=200.0)
        fast.schedule_task_failure(9.0, [TaskId("L0", 1)])
        fast.run(16.0)
        slow = build_engine(_active_config(sync=8.0), plan=[TaskId("L0", 1)],
                            rate=200.0)
        slow.schedule_task_failure(9.0, [TaskId("L0", 1)])
        slow.run(16.0)
        assert (
            slow.metrics.max_recovery_latency()
            > fast.metrics.max_recovery_latency()
        )

    def test_no_output_loss_through_failover(self):
        baseline = build_engine(_active_config())
        baseline.run(18.0)
        failed = build_engine(_active_config(), plan=[TaskId("L0", 1)])
        failed.schedule_task_failure(6.0, [TaskId("L0", 1)])
        failed.run(18.0)
        assert sink_outputs(failed) == sink_outputs(baseline)

    def test_correlated_failure_with_full_plan_recovers_fast(self):
        victims = [TaskId("L0", 0), TaskId("L0", 1), TaskId("L1", 0)]
        engine = build_engine(_active_config(), plan=victims)
        engine.schedule_task_failure(6.0, victims)
        engine.run(20.0)
        assert engine.all_recovered()
        assert all(
            r.mode is RecoveryMode.ACTIVE for r in engine.metrics.recoveries
        )
        assert engine.metrics.max_recovery_latency() < 5.0

    def test_replica_sync_positions_advance(self):
        engine = build_engine(_active_config(sync=2.0), plan=[TaskId("L0", 0)])
        engine.run(10.0)
        assert engine.runtime(TaskId("L0", 0)).replica_synced >= 6

    def test_mixed_plan_recovers_by_both_paths(self):
        config = EngineConfig(checkpoint_interval=4.0, heartbeat_interval=2.0)
        victims = [TaskId("L0", 0), TaskId("L0", 1)]
        engine = build_engine(config, plan=[TaskId("L0", 0)])
        engine.schedule_task_failure(8.0, victims)
        engine.run(20.0)
        modes = {r.task: r.mode for r in engine.metrics.recoveries}
        assert modes[TaskId("L0", 0)] is RecoveryMode.ACTIVE
        assert modes[TaskId("L0", 1)] is RecoveryMode.CHECKPOINT

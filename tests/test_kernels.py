"""Batch-kernel parity: every columnar fast path == its per-tuple reference.

The operator compute plane (``repro.engine.kernels`` plus the kernelized
``process_batch`` implementations in ``repro.queries``) must be byte
identical to the per-tuple ``process_batch_reference`` implementations —
the same contract the routing fast path has with ``distribute_reference``.
These tests pin it down with randomized batch sequences on both kernel
backends (pure python always; numpy when importable):

* the selectivity accumulator kernel matches the reference loop bit-for-bit
  (emitted items *and* the float accumulator) for periodic-dyadic, general
  dyadic and non-dyadic selectivities;
* every query operator produces identical outputs and state sizes under
  randomized multi-upstream batch sequences, including across a mid-run
  snapshot/restore;
* whole engine runs (synthetic, Q1, Q2 — with failures) are fingerprint
  identical when every operator is forced onto its reference path;
* the zero-copy emit contract and MemoizedSource eviction order hold.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.engine import Router, StreamEngine
from repro.engine.config import EngineConfig
from repro.engine.kernels import (
    active_kernel,
    kernel_backend,
    numpy_available,
    set_kernel_backend,
)
from repro.engine.logic import LogicFactory, MemoizedSource, OperatorLogic
from repro.queries import (
    GlobalTopKOperator,
    IncidentAggregateOperator,
    IncidentCombineOperator,
    MergeAggregateOperator,
    SegmentSpeedOperator,
    SliceAggregateOperator,
    SlidingWindow,
    SpeedIncidentJoinOperator,
    WindowedSelectivityOperator,
)
from repro.topology.operators import TaskId
from repro.workloads import UniformRateSource
from repro.workloads.bundles import QueryBundle, fig6_bundle, q1_bundle, q2_bundle

from tests.engine_helpers import metrics_fingerprint

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])


@pytest.fixture(params=BACKENDS)
def backend(request):
    """Force one kernel backend for the duration of a test."""
    set_kernel_backend(request.param)
    yield request.param
    set_kernel_backend(None)


class TestBackendSelection:
    def test_backend_forcing_round_trips(self):
        original = kernel_backend()
        set_kernel_backend("python")
        assert kernel_backend() == "python"
        set_kernel_backend(None)
        assert kernel_backend() == original

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            set_kernel_backend("fortran")

    @pytest.mark.skipif(numpy_available(), reason="numpy is importable here")
    def test_numpy_backend_unavailable_raises(self):  # pragma: no cover
        with pytest.raises(ValueError, match="numpy"):
            set_kernel_backend("numpy")


# ---------------------------------------------------------------------------
# The selectivity accumulator kernel
# ---------------------------------------------------------------------------

def _reference_take(items, selectivity, acc):
    """The per-tuple accumulator loop, verbatim from the reference."""
    out = []
    if selectivity >= 1.0:
        return list(items), acc
    for item in items:
        acc += selectivity
        if acc >= 1.0:
            acc -= 1.0
            out.append(item)
    return out, acc


def _bits(value: float) -> bytes:
    return struct.pack("<d", value)


SELECTIVITIES = [0.0, 0.5, 0.25, 0.125, 0.75, 0.375, 1.0, 0.3, 0.7, 1 / 3]


class TestSelectivityKernel:
    @pytest.mark.parametrize("selectivity", SELECTIVITIES)
    def test_randomized_parity_with_carried_accumulator(self, backend,
                                                        selectivity):
        """Chained batches: emitted items and accumulator bit-identical."""
        rng = random.Random(hash((backend, selectivity)) & 0xFFFFFFFF)
        kernel = active_kernel()
        acc_fast = acc_ref = 0.0
        for _round in range(40):
            items = [object() for _ in range(rng.randrange(0, 25))]
            fast, acc_fast = kernel.selectivity_take(items, selectivity,
                                                     acc_fast)
            ref, acc_ref = _reference_take(items, selectivity, acc_ref)
            assert fast == ref
            assert _bits(acc_fast) == _bits(acc_ref)

    def test_emitted_items_are_the_input_objects(self, backend):
        items = [("k", i) for i in range(10)]
        out, _acc = active_kernel().selectivity_take(items, 0.5, 0.0)
        assert all(any(o is i for i in items) for o in out)

    def test_every_other_item_at_half_selectivity(self, backend):
        out, acc = active_kernel().selectivity_take(list(range(10)), 0.5, 0.0)
        assert out == [1, 3, 5, 7, 9]
        assert acc == 0.0

    def test_pass_through_and_zero(self, backend):
        kernel = active_kernel()
        items = list(range(7))
        assert kernel.selectivity_take(items, 1.0, 0.25) == (items, 0.25)
        assert kernel.selectivity_take(items, 0.0, 0.25) == ([], 0.25)
        assert kernel.selectivity_take([], 0.5, 0.25) == ([], 0.25)


# ---------------------------------------------------------------------------
# Query-operator parity on randomized batch sequences
# ---------------------------------------------------------------------------

_UPSTREAMS = (TaskId("U", 0), TaskId("U", 1), TaskId("V", 0))


def _segment(rng):
    return f"s{rng.randrange(6)}"


def _operator_cases():
    """(name, factory, value generator) triples for every kernelized operator."""
    return [
        ("slice-aggregate", SliceAggregateOperator,
         lambda rng: (_segment(rng), rng.random())),
        ("merge-int-counts", lambda: MergeAggregateOperator(3.0),
         lambda rng: (_segment(rng), rng.randrange(1, 5))),
        ("merge-float-counts", lambda: MergeAggregateOperator(3.0),
         lambda rng: (_segment(rng), rng.choice([1, 2, 0.5, 1.25]))),
        ("global-topk", lambda: GlobalTopKOperator(k=3, window_seconds=3.0),
         lambda rng: (_segment(rng), rng.randrange(0, 50))),
        ("segment-speed", SegmentSpeedOperator,
         lambda rng: (_segment(rng), rng.uniform(0.0, 2.0))),
        ("incident-combine", lambda: IncidentCombineOperator(3.0),
         lambda rng: (_segment(rng), f"inc{rng.randrange(12)}")),
        ("speed-incident-join",
         lambda: SpeedIncidentJoinOperator(3.0, jam_speed=1.0),
         lambda rng: (_segment(rng),
                      f"inc{rng.randrange(8)}" if rng.random() < 0.4
                      else rng.uniform(0.0, 2.0))),
        ("incident-aggregate", lambda: IncidentAggregateOperator(3.0),
         lambda rng: (_segment(rng), f"inc{rng.randrange(12)}")),
        ("selectivity-0.5", lambda: WindowedSelectivityOperator(3.0, 0.5),
         lambda rng: (_segment(rng), rng.randrange(100))),
        ("selectivity-0.375", lambda: WindowedSelectivityOperator(3.0, 0.375),
         lambda rng: (_segment(rng), rng.randrange(100))),
        ("selectivity-0.3", lambda: WindowedSelectivityOperator(3.0, 0.3),
         lambda rng: (_segment(rng), rng.randrange(100))),
        ("selectivity-1.0", lambda: WindowedSelectivityOperator(3.0, 1.0),
         lambda rng: (_segment(rng), rng.randrange(100))),
    ]


def _random_inputs(rng, value_fn):
    inputs = {}
    for upstream in _UPSTREAMS:
        if rng.random() < 0.8:
            inputs[upstream] = [value_fn(rng)
                                for _ in range(rng.randrange(0, 18))]
    return inputs


@pytest.mark.parametrize(
    "name,factory,value_fn",
    [pytest.param(*case, id=case[0]) for case in _operator_cases()])
class TestOperatorKernelParity:
    def test_randomized_batch_sequences(self, backend, name, factory, value_fn):
        """Kernel and reference instances stay output- and state-identical."""
        rng = random.Random(hash((backend, name)) & 0xFFFFFFFF)
        fast, ref = factory(), factory()
        task = TaskId("O", 0)
        for index in range(30):
            batch_end = (index + 1) * 1.0
            inputs = _random_inputs(rng, value_fn)
            ref_inputs = {u: list(batch) for u, batch in inputs.items()}
            out_fast = fast.process_batch(task, batch_end, inputs)
            out_ref = ref.process_batch_reference(task, batch_end, ref_inputs)
            assert out_fast == out_ref, f"batch {index} diverged"
            assert fast.state_size() == ref.state_size()

    def test_parity_across_snapshot_restore(self, backend, name, factory,
                                            value_fn):
        """Mid-run checkpoint restore preserves kernel-vs-reference parity."""
        rng = random.Random(hash((backend, name, "restore")) & 0xFFFFFFFF)
        fast, ref = factory(), factory()
        task = TaskId("O", 0)
        for index in range(10):
            inputs = _random_inputs(rng, value_fn)
            fast.process_batch(task, index + 1.0,
                               {u: list(b) for u, b in inputs.items()})
            ref.process_batch_reference(task, index + 1.0, inputs)
        fast2, ref2 = factory(), factory()
        fast2.restore(fast.snapshot())
        ref2.restore(ref.snapshot())
        for index in range(10, 22):
            batch_end = index + 1.0
            inputs = _random_inputs(rng, value_fn)
            out_fast = fast2.process_batch(
                task, batch_end, {u: list(b) for u, b in inputs.items()})
            out_ref = ref2.process_batch_reference(task, batch_end, inputs)
            assert out_fast == out_ref, f"post-restore batch {index} diverged"


# ---------------------------------------------------------------------------
# Whole-engine parity: kernels forced onto the reference path
# ---------------------------------------------------------------------------

_REFERENCE_CLASSES: dict[type, type] = {}


def _reference_class(cls: type) -> type:
    sub = _REFERENCE_CLASSES.get(cls)
    if sub is None:
        sub = type(cls.__name__ + "Reference", (cls,),
                   {"process_batch": cls.process_batch_reference})
        _REFERENCE_CLASSES[cls] = sub
    return sub


def _reference_logic(factory: LogicFactory) -> LogicFactory:
    """A logic factory whose operators all run their reference path."""

    def wrap(build):
        def build_reference():
            logic: OperatorLogic = build()
            logic.__class__ = _reference_class(type(logic))
            return logic
        return build_reference

    wrapped = LogicFactory()
    for name, build in factory._operators.items():
        wrapped.register_operator(name, wrap(build))
    for name, source in factory._sources.items():
        wrapped.register_source(name, source)
    return wrapped


def _bundle_fingerprint(bundle: QueryBundle, *, reference: bool,
                        duration: float) -> str:
    logic = bundle.make_logic()
    if reference:
        logic = _reference_logic(logic)
    config = EngineConfig(checkpoint_interval=6.0, heartbeat_interval=2.0,
                          costs=bundle.costs)
    engine = StreamEngine(bundle.topology, logic, config)
    victims = [t for t in bundle.synthetic_tasks if t.operator != "O4"][:2]
    engine.schedule_task_failure(duration / 2, victims)
    engine.run(duration)
    return metrics_fingerprint(engine.metrics)


_BUNDLES = {
    "synthetic": lambda: fig6_bundle(200.0, 6.0, tuple_scale=8.0),
    "q1-topk": lambda: q1_bundle(200.0, tuple_scale=8.0, pages=60,
                                 window_seconds=8.0, k=10),
    "q2-incidents": lambda: q2_bundle(2000.0, tuple_scale=40.0,
                                      window_seconds=8.0, horizon=30.0),
}


@pytest.mark.parametrize("workload", sorted(_BUNDLES))
def test_engine_runs_match_reference_path(backend, workload):
    """Kernelized and reference-only engine runs are fingerprint identical."""
    make = _BUNDLES[workload]
    fast = _bundle_fingerprint(make(), reference=False, duration=20.0)
    ref = _bundle_fingerprint(make(), reference=True, duration=20.0)
    assert fast == ref


# ---------------------------------------------------------------------------
# SlidingWindow bulk operations
# ---------------------------------------------------------------------------

class TestSlidingWindowBulk:
    def test_extend_matches_per_item_add(self):
        bulk, single = SlidingWindow(5.0), SlidingWindow(5.0)
        rng = random.Random(5)
        for step in range(20):
            items = [rng.randrange(100) for _ in range(rng.randrange(0, 9))]
            bulk.extend(float(step), items)
            for item in items:
                single.add(float(step), item)
            bulk.evict(float(step))
            single.evict(float(step))
            assert list(bulk.items()) == list(single.items())
            assert list(bulk.timestamped()) == list(single.timestamped())
            assert len(bulk) == len(single) and bool(bulk) == bool(single)

    def test_evict_collect_returns_exactly_the_evicted_items(self):
        window = SlidingWindow(2.0)
        window.extend(1.0, ["a", "b"])
        window.add(2.0, "c")
        window.extend(3.0, ["d"])
        assert window.evict_collect(4.0) == ["a", "b", "c"]
        assert list(window.items()) == ["d"]
        assert window.evict_collect(4.0) == []

    def test_extend_accepts_any_iterable_and_skips_empty(self):
        window = SlidingWindow(2.0)
        window.extend(1.0, (x for x in range(3)))
        window.extend(1.0, [])
        assert list(window.items()) == [0, 1, 2]
        assert len(window._blocks) == 1


# ---------------------------------------------------------------------------
# Zero-copy emit and MemoizedSource eviction order
# ---------------------------------------------------------------------------

class TestZeroCopyContract:
    def test_single_destination_bucket_is_the_input_list(self):
        from repro.topology import Partitioning, TopologyBuilder

        topology = (TopologyBuilder().source("S", 2).operator("A", 1)
                    .connect("S", "A", Partitioning.MERGE).build())
        router = Router(topology)
        src = topology.tasks_of("S")[0]
        tuples = [("k", 1), ("k", 2)]
        out = router.distribute(src, tuples)
        assert out[TaskId("A", 0)] is tuples

    def test_engine_batches_share_router_buckets(self):
        from tests.engine_helpers import build_engine

        engine = build_engine(EngineConfig(), rate=20.0, window=5.0)
        engine.run(6.0)
        src = engine.runtime(TaskId("S", 0))
        history_batch = src.history[2]
        for batch in history_batch.values():
            assert type(batch.tuples) is list  # no re-tupling at emit


class TestMemoizedSourceEviction:
    def test_eviction_order_is_oldest_inserted_first(self):
        task = TaskId("S", 0)
        memo = MemoizedSource(UniformRateSource(10.0), task, capacity=3)
        # Out-of-order inserts: dict order is insertion order, not index
        # order — eviction must follow insertion (oldest first).
        for index in (5, 1, 9):
            memo.tuples_for_batch(task, index)
        memo.tuples_for_batch(task, 7)   # evicts 5 (oldest inserted)
        assert sorted(memo._batches) == [1, 7, 9]
        memo.tuples_for_batch(task, 2)   # evicts 1
        assert sorted(memo._batches) == [2, 7, 9]
        memo.tuples_for_batch(task, 9)   # hit: no eviction
        assert sorted(memo._batches) == [2, 7, 9]

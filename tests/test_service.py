"""Tests for the sweep service: protocol, journal, broker, server, client.

The broker is exercised socket-free (dedup, fair scheduling, counters,
fan-out); the server/client pairs run real TCP connections on loopback
with OS-assigned ports.  The end-to-end cases mirror the service's
acceptance contract: two concurrent clients with 50 %-overlapping grids
execute each unique digest exactly once while both receive complete,
correctly-ordered streams; a worker killed mid-grid is retried and shows
up in the retry counters; a drain journals the queue and a restarted
server resumes it into the shared cache.
"""

import os
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.scenarios import (
    CellError,
    ProcessBackend,
    Scenario,
    ScenarioCache,
    ScenarioResult,
    scenario_digest,
)
from repro.scenarios.runner import run_scenario
from repro.service import (
    JOURNAL_CLIENT,
    SweepBroker,
    SweepClient,
    SweepJournal,
    SweepServer,
    dump_message,
    outcome_from_wire,
    outcome_to_wire,
    parse_message,
)


def cell(seed: int, name: str | None = None) -> Scenario:
    """A fast scenario whose digest is distinct per seed."""
    return Scenario(name=name or f"cell-{seed}", seed=seed, duration=5.0,
                    planner="none",
                    workload_params={"window_seconds": 5.0,
                                     "rate_per_source": 50.0})


# ----------------------------------------------------------------------
# Module-level runners: picklable for the processes backend.
# ----------------------------------------------------------------------

_EXECUTIONS: list[str] = []
_EXECUTIONS_LOCK = threading.Lock()


def recording_runner(scenario):
    with _EXECUTIONS_LOCK:
        _EXECUTIONS.append(scenario_digest(scenario))
    return run_scenario(scenario)


def slow_runner(scenario):
    time.sleep(0.25)
    return run_scenario(scenario)


def kill_once_runner(scenario):
    """Die on the first attempt (flag file absent), succeed on the retry."""
    flag = os.environ["REPRO_TEST_KILL_FLAG"]
    if not os.path.exists(flag):
        with open(flag, "w") as handle:
            handle.write("died\n")
        os._exit(3)
    return run_scenario(scenario)


@pytest.fixture(autouse=True)
def _reset_executions():
    with _EXECUTIONS_LOCK:
        _EXECUTIONS.clear()
    yield


# ----------------------------------------------------------------------
class TestProtocol:
    def test_message_round_trip(self):
        message = {"op": "submit", "scenarios": [cell(1).to_dict()]}
        line = dump_message(message)
        assert line.endswith("\n") and "\n" not in line[:-1]
        assert parse_message(line) == message

    def test_non_object_rejected(self):
        with pytest.raises(ServiceError, match="JSON object"):
            parse_message("[1, 2]")
        with pytest.raises(ServiceError, match="undecodable"):
            parse_message("{nope")

    def test_outcome_round_trip(self):
        result = run_scenario(cell(7))
        assert outcome_from_wire(outcome_to_wire(result)) == result
        error = CellError(cell(7), "timeout", "too slow", attempts=2)
        assert outcome_from_wire(outcome_to_wire(error)) == error

    def test_outcome_envelope_rejects_garbage(self):
        with pytest.raises(ServiceError, match="neither"):
            outcome_from_wire({"bogus": 1})


# ----------------------------------------------------------------------
class TestJournal:
    def test_pending_is_queued_minus_done(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        a, b = cell(1), cell(2)
        journal.record_queued(scenario_digest(a), a)
        journal.record_queued(scenario_digest(b), b)
        journal.record_done(scenario_digest(a))
        journal.close()

        fresh = SweepJournal(tmp_path / "j.jsonl")
        pending = fresh.load_pending()
        assert [digest for digest, _ in pending] == [scenario_digest(b)]
        assert pending[0][1] == b

    def test_load_compacts_the_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        for i in range(5):
            journal.record_queued(scenario_digest(cell(i)), cell(i))
            journal.record_done(scenario_digest(cell(i)))
        journal.close()
        assert len(path.read_text().splitlines()) == 10
        assert SweepJournal(path).load_pending() == []
        assert path.read_text() == ""

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.record_queued(scenario_digest(cell(1)), cell(1))
        journal.close()
        with open(path, "a") as handle:
            handle.write('{"event": "queued", "digest": "abc", "scen')
        fresh = SweepJournal(path)
        pending = fresh.load_pending()
        assert [digest for digest, _ in pending] == [scenario_digest(cell(1))]
        assert fresh.corrupt_records == 1

    def test_load_pending_refused_after_writes(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record_queued(scenario_digest(cell(1)), cell(1))
        with pytest.raises(ServiceError, match="before"):
            journal.load_pending()


# ----------------------------------------------------------------------
class TestBroker:
    def make(self, **kwargs):
        log: list[tuple[str, dict]] = []
        broker = SweepBroker(publish=lambda client, message:
                             log.append((client, message)), **kwargs)
        return broker, log

    def test_round_robin_across_clients(self):
        broker, _log = self.make()
        broker.submit("alice", [cell(i) for i in range(4)])
        broker.submit("bob", [cell(i) for i in range(10, 12)])
        batch = broker.take(10)
        owners = []
        for digest, _scenario in batch:
            owners.append("alice" if digest in
                          {scenario_digest(cell(i)) for i in range(4)}
                          else "bob")
        # One cell per client per turn until bob's queue empties.
        assert owners == ["alice", "bob", "alice", "bob", "alice", "alice"]

    def test_dedup_attaches_subscriber_and_fans_out(self):
        broker, log = self.make()
        broker.submit("alice", [cell(1)], job="a")
        broker.submit("bob", [cell(1, name="other-label")], job="b")
        assert broker.totals.deduped == 1
        (digest, scenario), = broker.take(5)
        result = run_scenario(scenario)
        broker.complete(digest, result, attempts=1)

        by_client = {}
        for client, message in log:
            by_client.setdefault(client, []).append(message)
        for client, label in (("alice", "cell-1"), ("bob", "other-label")):
            kinds = [m["type"] for m in by_client[client]]
            assert kinds == ["accepted", "progress", "result", "job-done"]
            # Each subscriber's copy carries its own submitted label.
            wire = by_client[client][2]["outcome"]["result"]
            assert wire["scenario"]["name"] == label
        assert by_client["alice"][1]["source"] == "executed"
        assert by_client["bob"][1]["source"] == "deduped"

    def test_cache_hit_completes_without_queueing(self, tmp_path):
        cache = ScenarioCache(tmp_path)
        result = run_scenario(cell(3))
        cache.put(scenario_digest(cell(3)), result)
        broker, log = self.make(cache=cache)
        broker.submit("alice", [cell(3)], job="a")
        kinds = [m["type"] for _c, m in log]
        assert kinds == ["accepted", "progress", "result", "job-done"]
        assert log[1][1]["source"] == "cache"
        assert broker.idle()

    def test_failed_outcome_counts_and_job_done_tally(self):
        broker, log = self.make()
        broker.submit("alice", [cell(1), cell(2)], job="a")
        for digest, scenario in broker.take(5):
            broker.complete(
                digest, CellError(scenario, "error", "boom"), attempts=2)
        assert broker.totals.failed == 2
        assert broker.totals.retried == 2
        done = [m for _c, m in log if m["type"] == "job-done"]
        assert done[0]["errors"] == 2 and done[0]["retries"] == 2

    def test_drain_refuses_submissions_and_keeps_queue(self):
        broker, _log = self.make()
        broker.submit("alice", [cell(1), cell(2)])
        broker.drain()
        assert broker.take(5) is None
        with pytest.raises(ServiceError, match="draining"):
            broker.submit("bob", [cell(3)])
        assert len(broker.pending_scenarios()) == 2

    def test_duplicate_job_id_rejected(self):
        broker, _log = self.make()
        broker.submit("alice", [cell(1)], job="same")
        with pytest.raises(ServiceError, match="active job"):
            broker.submit("alice", [cell(2)], job="same")

    def test_requeue_inflight_restores_cells(self):
        broker, _log = self.make()
        broker.submit("alice", [cell(1)])
        batch = broker.take(5)
        assert not broker.idle()
        broker.requeue_inflight([digest for digest, _s in batch])
        assert [d for d, _s in broker.take(5)] == [d for d, _s in batch]


# ----------------------------------------------------------------------
def overlapping_grids() -> tuple[list[Scenario], list[Scenario]]:
    """Two 8-cell grids sharing 50% of their digests (seeds 4..7)."""
    return ([cell(i) for i in range(0, 8)],
            [cell(i, name=f"b-{i}") for i in range(4, 12)])


class TestServerEndToEnd:
    def test_two_clients_overlap_executes_each_digest_once(self, tmp_path):
        grids_a, grids_b = overlapping_grids()
        server = SweepServer(cache=ScenarioCache(tmp_path / "cache"),
                             runner=recording_runner, batch_cells=2).start()
        try:
            outcomes = {}

            def run_client(name, grid):
                with SweepClient(server.address, client_id=name) as client:
                    job = client.submit(grid)
                    outcomes[name] = client.wait(job)

            threads = [threading.Thread(target=run_client, args=args)
                       for args in (("alice", grids_a), ("bob", grids_b))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
                assert not thread.is_alive()
        finally:
            server.stop()

        # Every unique digest executed exactly once, across both clients.
        unique = {scenario_digest(s) for s in grids_a + grids_b}
        assert len(unique) == 12
        assert sorted(_EXECUTIONS) == sorted(unique)

        for name, grid in (("alice", grids_a), ("bob", grids_b)):
            outcome = outcomes[name]
            # Complete result stream, in input order, correctly labelled.
            assert len(outcome.outcomes) == len(grid)
            for scenario, result in zip(grid, outcome.outcomes):
                assert isinstance(result, ScenarioResult)
                assert result.scenario == scenario
            # Complete, correctly-ordered progress stream.
            assert [e["done"] for e in outcome.events] == \
                list(range(1, len(grid) + 1))
            assert sorted(e["index"] for e in outcome.events) == \
                list(range(len(grid)))
            assert all(e["total"] == len(grid) for e in outcome.events)
            assert outcome.tally["done"] == len(grid)
            assert outcome.tally["errors"] == 0
        # The 4 shared digests were answered by dedup or cache, never re-run.
        shared = sum(outcomes[n].tally["deduped"] +
                     outcomes[n].tally["cache_hits"] for n in outcomes)
        executed = sum(outcomes[n].tally["executed"] for n in outcomes)
        assert shared == 4 and executed == 12

    def test_worker_death_is_retried_and_counted(self, tmp_path, monkeypatch):
        flag = tmp_path / "killed.flag"
        monkeypatch.setenv("REPRO_TEST_KILL_FLAG", str(flag))
        server = SweepServer(backend=ProcessBackend(max_workers=1),
                             cache=ScenarioCache(tmp_path / "cache"),
                             runner=kill_once_runner, retries=1).start()
        try:
            with SweepClient(server.address, client_id="carol") as client:
                job = client.submit([cell(21)])
                outcome = client.wait(job)
        finally:
            server.stop()
        assert flag.exists()  # the worker really died once
        assert isinstance(outcome.outcomes[0], ScenarioResult)
        assert outcome.tally["retries"] == 1
        assert outcome.retries == 1
        assert server.broker.totals.retried == 1

    def test_status_counters_and_client_ids(self, tmp_path):
        server = SweepServer(cache=ScenarioCache(tmp_path / "cache")).start()
        try:
            with SweepClient(server.address, client_id="dora") as client:
                job = client.submit([cell(31), cell(31)])
                client.wait(job)
                status = client.status()
        finally:
            server.stop()
        assert status["totals"]["submitted"] == 2
        assert status["totals"]["executed"] == 1
        assert status["totals"]["deduped"] == 1
        assert status["clients"]["dora"]["submitted"] == 2
        assert status["queued"] == 0 and status["inflight"] == 0

    def test_colliding_client_ids_are_uniquified(self, tmp_path):
        server = SweepServer(cache=ScenarioCache(tmp_path / "cache")).start()
        try:
            with SweepClient(server.address, client_id="twin") as first, \
                    SweepClient(server.address, client_id="twin") as second:
                assert first.client_id == "twin"
                assert second.client_id != "twin"
                assert second.client_id.startswith("twin#")
        finally:
            server.stop()

    def test_progress_only_submission_suppresses_results(self, tmp_path):
        server = SweepServer(cache=ScenarioCache(tmp_path / "cache")).start()
        try:
            with SweepClient(server.address, client_id="eve") as client:
                job = client.submit([cell(41), cell(42)], results=False)
                outcome = client.wait(job)
        finally:
            server.stop()
        assert outcome.outcomes == [None, None]
        assert [e["done"] for e in outcome.events] == [1, 2]
        assert outcome.tally["executed"] == 2

    def test_drain_journals_queue_and_restart_resumes(self, tmp_path):
        cache_dir = tmp_path / "cache"
        journal_path = tmp_path / "journal.jsonl"
        grid = [cell(50 + i) for i in range(5)]

        first = SweepServer(cache=ScenarioCache(cache_dir),
                            journal=SweepJournal(journal_path),
                            runner=slow_runner, batch_cells=1).start()
        events = []
        with SweepClient(first.address, client_id="frank") as client:
            job = client.submit(grid)
            # Wait for the first completion, then pull the plug.
            deadline = time.monotonic() + 30.0
            while not events:
                client._pump()
                state = client._jobs[job]
                events = list(state.events)
                assert time.monotonic() < deadline
            first.drain()
            assert first.wait_drained(30.0)
        first.stop()

        pending = SweepJournal(journal_path).load_pending()
        assert 0 < len(pending) < len(grid)
        done_digests = {scenario_digest(s) for s in grid} \
            - {digest for digest, _ in pending}
        cache = ScenarioCache(cache_dir)
        assert all(digest in cache for digest in done_digests)

        second = SweepServer(cache=ScenarioCache(cache_dir),
                             journal=SweepJournal(journal_path),
                             runner=recording_runner).start()
        try:
            assert second.resumed == len(pending)
            deadline = time.monotonic() + 30.0
            while not second.broker.idle():
                assert time.monotonic() < deadline
                time.sleep(0.05)
            # Journal cells are owned by the journal pseudo-client.
            assert second.broker.per_client[JOURNAL_CLIENT].resumed == \
                len(pending)
        finally:
            second.stop()
        for scenario in grid:
            assert scenario_digest(scenario) in cache
        assert SweepJournal(journal_path).load_pending() == []
        # A resubmitting client now gets pure cache hits.
        third = SweepServer(cache=ScenarioCache(cache_dir)).start()
        try:
            with SweepClient(third.address, client_id="frank") as client:
                outcome = client.wait(client.submit(grid))
        finally:
            third.stop()
        assert outcome.tally["cache_hits"] == len(grid)
        assert outcome.tally["executed"] == 0

    def test_submit_after_drain_is_refused(self, tmp_path):
        server = SweepServer(cache=ScenarioCache(tmp_path / "cache")).start()
        try:
            server.drain()
            with SweepClient(server.address, client_id="late") as client:
                with pytest.raises(ServiceError, match="draining"):
                    client.submit([cell(61)])
        finally:
            server.stop()

    def test_unreachable_server_raises_service_error(self):
        with pytest.raises(ServiceError, match="cannot connect"):
            SweepClient(("127.0.0.1", 1), connect_timeout=1.0)

    def test_hello_is_mandatory(self, tmp_path):
        import socket

        server = SweepServer(cache=ScenarioCache(tmp_path / "cache")).start()
        try:
            with socket.create_connection(server.address, timeout=5.0) as sock:
                sock.sendall(b'{"op": "status"}\n')
                reply = parse_message(
                    sock.makefile("r", encoding="utf-8").readline())
        finally:
            server.stop()
        assert reply["type"] == "error"
        assert "hello" in reply["message"]


# ----------------------------------------------------------------------
class TestDrainCompactsJournal:
    def test_journal_on_disk_is_compacted_at_drain_time(self, tmp_path):
        """The dispatcher compacts when it winds down — before stop()."""
        import json

        journal_path = tmp_path / "journal.jsonl"
        server = SweepServer(journal=SweepJournal(journal_path),
                             runner=slow_runner, batch_cells=1).start()
        grid = [cell(70 + i) for i in range(4)]
        events = []
        with SweepClient(server.address, client_id="gail") as client:
            client.submit(grid)
            deadline = time.monotonic() + 30.0
            while not events:
                client._pump()
                events = [e for state in client._jobs.values()
                          for e in state.events]
                assert time.monotonic() < deadline
            server.drain()
            assert server.wait_drained(30.0)
        try:
            # stop() has not run, yet the file already holds only queued
            # rows for the still-pending cells — no stale queued/done pairs.
            lines = [json.loads(line) for line
                     in journal_path.read_text().splitlines()]
            assert lines, "a drained-with-debt server must keep its queue"
            assert all(line["event"] == "queued" for line in lines)
            assert len(lines) == server.broker.status()["queued"]
        finally:
            server.stop()

    def test_drained_empty_server_leaves_an_empty_journal(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        server = SweepServer(journal=SweepJournal(journal_path)).start()
        with SweepClient(server.address, client_id="hana") as client:
            client.wait(client.submit([cell(80)]))
            server.drain()
            assert server.wait_drained(30.0)
        try:
            assert journal_path.read_text() == ""
        finally:
            server.stop()


# ----------------------------------------------------------------------
class TestStatusWatch:
    def test_watch_polls_until_interrupted(self, capsys, monkeypatch):
        from repro.service import cli as service_cli

        server = SweepServer().start()
        sleeps = []

        def fake_sleep(seconds):
            sleeps.append(seconds)
            if len(sleeps) >= 2:
                raise KeyboardInterrupt

        monkeypatch.setattr(service_cli.time, "sleep", fake_sleep)
        try:
            host, port = server.address
            code = service_cli.status_main([f"{host}:{port}",
                                            "--watch", "0.5"])
        finally:
            server.stop()
        assert code == 0  # Ctrl-C ends a watch cleanly, not as an error
        assert sleeps == [0.5, 0.5]
        out = capsys.readouterr().out
        assert out.count("totals:") == 2  # one status block per poll

    def test_watch_rejects_non_positive_intervals(self):
        from repro.service import cli as service_cli

        with pytest.raises(ServiceError, match="positive"):
            service_cli.status_main(["127.0.0.1:1", "--watch", "0"])
        with pytest.raises(ServiceError, match="positive"):
            service_cli.status_main(["127.0.0.1:1", "--watch", "-2"])

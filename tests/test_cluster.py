"""Unit tests for the cluster / placement model."""

import pytest

from repro.engine import Cluster, NodeKind
from repro.errors import SimulationError
from repro.topology import TaskId, linear_chain


class TestConstruction:
    def test_creates_named_nodes(self):
        cluster = Cluster(n_workers=2, n_standby=1)
        assert cluster.node("worker-0").kind is NodeKind.WORKER
        assert cluster.node("standby-0").kind is NodeKind.STANDBY

    def test_requires_at_least_one_worker(self):
        with pytest.raises(SimulationError):
            Cluster(n_workers=0, n_standby=1)

    def test_unknown_node_raises(self):
        with pytest.raises(SimulationError):
            Cluster(1, 0).node("nope")


class TestPlacement:
    def test_round_robin_spreads_tasks(self):
        topo = linear_chain([2, 2])
        cluster = Cluster(n_workers=2, n_standby=0)
        cluster.place_round_robin(topo)
        hosted = [len(cluster.node(f"worker-{i}").tasks) for i in range(2)]
        assert hosted == [2, 2]

    def test_assign_moves_task(self):
        topo = linear_chain([1, 1])
        cluster = Cluster(n_workers=2, n_standby=0)
        cluster.place_round_robin(topo)
        task = TaskId("S", 0)
        cluster.assign(task, "worker-1")
        assert cluster.primary_node(task).name == "worker-1"
        assert task not in cluster.node("worker-0").tasks

    def test_primaries_must_run_on_workers(self):
        cluster = Cluster(1, 1)
        with pytest.raises(SimulationError):
            cluster.assign(TaskId("S", 0), "standby-0")

    def test_unplaced_task_raises(self):
        with pytest.raises(SimulationError):
            Cluster(1, 0).primary_node(TaskId("S", 0))

    def test_standby_assignment_is_stable(self):
        cluster = Cluster(1, 2)
        task = TaskId("S", 0)
        assert cluster.standby_node(task) is cluster.standby_node(task)

    def test_standby_requires_standby_nodes(self):
        with pytest.raises(SimulationError):
            Cluster(1, 0).standby_node(TaskId("S", 0))


class TestFailures:
    def _placed(self):
        topo = linear_chain([2, 2])
        cluster = Cluster(n_workers=4, n_standby=1)
        cluster.place_round_robin(topo)
        return topo, cluster

    def test_fail_nodes_returns_dead_tasks(self):
        topo, cluster = self._placed()
        died = cluster.fail_nodes(["worker-0"])
        assert died == [TaskId("S", 0)]
        assert cluster.node("worker-0").failed

    def test_fail_nodes_idempotent(self):
        _topo, cluster = self._placed()
        assert cluster.fail_nodes(["worker-0"])
        assert cluster.fail_nodes(["worker-0"]) == []

    def test_restore_node(self):
        _topo, cluster = self._placed()
        cluster.fail_nodes(["worker-0"])
        cluster.restore_node("worker-0")
        assert not cluster.node("worker-0").failed

    def test_nodes_hosting(self):
        topo, cluster = self._placed()
        names = cluster.nodes_hosting([TaskId("S", 0), TaskId("O1", 0)])
        assert names == ["worker-0", "worker-2"]

    def test_failed_tasks_lists_primaries_on_dead_nodes(self):
        topo, cluster = self._placed()
        cluster.fail_nodes(["worker-2"])
        assert cluster.failed_tasks() == [TaskId("O1", 0)]

"""Tests for the two clusters: the placement model and the execution fabric.

The first half covers the *simulated* :class:`repro.engine.Cluster`
(node placement, failures).  The second half covers :mod:`repro.cluster`,
the real multi-host execution fabric: runner wire specs, the socket-free
:class:`CellLedger` state machine, in-process coordinator/worker pairs
over loopback TCP, and the acceptance path — ``backend="cluster"`` over
an auto-spawned two-worker local fleet producing sink output
byte-identical to a serial run, including when a worker dies mid-cell.
"""

import dataclasses
import os
import socket
import threading
import time

import pytest

from repro.cluster import (
    CellLedger,
    ClusterBackend,
    ClusterCoordinator,
    ClusterWorkerAgent,
)
from repro.cluster.protocol import (
    CLUSTER_PROTOCOL_VERSION,
    dump_message,
    parse_message,
    runner_from_wire,
    runner_to_wire,
)
from repro.cluster.worker import parse_address
from repro.engine import Cluster, NodeKind
from repro.errors import ClusterError, SimulationError
from repro.scenarios import (
    EXECUTION_BACKENDS,
    CellError,
    GridSession,
    JsonlSink,
    Scenario,
    ScenarioResult,
    expand_grid,
    resolve_backend,
    run_scenario,
    run_scenario_prebuilt,
)
from repro.topology import TaskId, linear_chain


class TestConstruction:
    def test_creates_named_nodes(self):
        cluster = Cluster(n_workers=2, n_standby=1)
        assert cluster.node("worker-0").kind is NodeKind.WORKER
        assert cluster.node("standby-0").kind is NodeKind.STANDBY

    def test_requires_at_least_one_worker(self):
        with pytest.raises(SimulationError):
            Cluster(n_workers=0, n_standby=1)

    def test_unknown_node_raises(self):
        with pytest.raises(SimulationError):
            Cluster(1, 0).node("nope")


class TestPlacement:
    def test_round_robin_spreads_tasks(self):
        topo = linear_chain([2, 2])
        cluster = Cluster(n_workers=2, n_standby=0)
        cluster.place_round_robin(topo)
        hosted = [len(cluster.node(f"worker-{i}").tasks) for i in range(2)]
        assert hosted == [2, 2]

    def test_assign_moves_task(self):
        topo = linear_chain([1, 1])
        cluster = Cluster(n_workers=2, n_standby=0)
        cluster.place_round_robin(topo)
        task = TaskId("S", 0)
        cluster.assign(task, "worker-1")
        assert cluster.primary_node(task).name == "worker-1"
        assert task not in cluster.node("worker-0").tasks

    def test_primaries_must_run_on_workers(self):
        cluster = Cluster(1, 1)
        with pytest.raises(SimulationError):
            cluster.assign(TaskId("S", 0), "standby-0")

    def test_unplaced_task_raises(self):
        with pytest.raises(SimulationError):
            Cluster(1, 0).primary_node(TaskId("S", 0))

    def test_standby_assignment_is_stable(self):
        cluster = Cluster(1, 2)
        task = TaskId("S", 0)
        assert cluster.standby_node(task) is cluster.standby_node(task)

    def test_standby_requires_standby_nodes(self):
        with pytest.raises(SimulationError):
            Cluster(1, 0).standby_node(TaskId("S", 0))


class TestFailures:
    def _placed(self):
        topo = linear_chain([2, 2])
        cluster = Cluster(n_workers=4, n_standby=1)
        cluster.place_round_robin(topo)
        return topo, cluster

    def test_fail_nodes_returns_dead_tasks(self):
        topo, cluster = self._placed()
        died = cluster.fail_nodes(["worker-0"])
        assert died == [TaskId("S", 0)]
        assert cluster.node("worker-0").failed

    def test_fail_nodes_idempotent(self):
        _topo, cluster = self._placed()
        assert cluster.fail_nodes(["worker-0"])
        assert cluster.fail_nodes(["worker-0"]) == []

    def test_restore_node(self):
        _topo, cluster = self._placed()
        cluster.fail_nodes(["worker-0"])
        cluster.restore_node("worker-0")
        assert not cluster.node("worker-0").failed

    def test_nodes_hosting(self):
        topo, cluster = self._placed()
        names = cluster.nodes_hosting([TaskId("S", 0), TaskId("O1", 0)])
        assert names == ["worker-0", "worker-2"]

    def test_failed_tasks_lists_primaries_on_dead_nodes(self):
        topo, cluster = self._placed()
        cluster.fail_nodes(["worker-2"])
        assert cluster.failed_tasks() == [TaskId("O1", 0)]


# ======================================================================
# The distributed execution fabric (repro.cluster)
# ======================================================================

def cell(seed: int) -> Scenario:
    """A fast scenario whose digest is distinct per seed."""
    return Scenario(name=f"cell-{seed}", seed=seed, duration=5.0,
                    planner="none",
                    workload_params={"window_seconds": 5.0,
                                     "rate_per_source": 50.0})


#: Sentinel seed marking the cell that kills its worker.
KILL_SEED = 424242


def kill_once_cluster_runner(scenario):
    """Take the whole worker process down on first sight of the marked cell.

    Importable by name (``test_cluster:kill_once_cluster_runner``) on the
    fleet's workers because :class:`LocalFleet` exports the parent's
    ``sys.path`` as ``PYTHONPATH``.
    """
    if scenario.seed == KILL_SEED:
        flag = os.environ["REPRO_TEST_CLUSTER_KILL_FLAG"]
        if not os.path.exists(flag):
            with open(flag, "w") as handle:
                handle.write("died\n")
            os._exit(3)
    return run_scenario_prebuilt(scenario)


class TestRunnerWireSpecs:
    def test_prebuilt_runner_travels_as_none(self):
        assert runner_to_wire(run_scenario_prebuilt) is None
        assert runner_from_wire(None) is run_scenario_prebuilt

    def test_module_level_runner_round_trips(self):
        spec = runner_to_wire(run_scenario)
        assert spec == "repro.scenarios.runner:run_scenario"
        assert runner_from_wire(spec) is run_scenario

    def test_lambda_rejected(self):
        with pytest.raises(ClusterError, match="module-level"):
            runner_to_wire(lambda scenario: None)

    def test_closure_rejected(self):
        def make():
            def inner(scenario):
                return None
            return inner
        with pytest.raises(ClusterError, match="module-level"):
            runner_to_wire(make())

    def test_malformed_spec_rejected(self):
        with pytest.raises(ClusterError, match="malformed runner spec"):
            runner_from_wire("no-colon-here")

    def test_unknown_module_rejected(self):
        with pytest.raises(ClusterError, match="cannot import"):
            runner_from_wire("repro.no_such_module:thing")

    def test_unknown_attribute_rejected(self):
        with pytest.raises(ClusterError, match="does not resolve"):
            runner_from_wire("repro.scenarios.runner:no_such_runner")

    def test_non_callable_rejected(self):
        with pytest.raises(ClusterError, match="non-callable"):
            runner_from_wire("repro.cluster.protocol:CLUSTER_PROTOCOL_VERSION")

    def test_parse_address(self):
        assert parse_address("localhost:7070") == ("localhost", 7070)
        assert parse_address(("10.0.0.1", 9)) == ("10.0.0.1", 9)
        for bad in ("nope", ":7070", "host:", "host:seventy"):
            with pytest.raises(ClusterError, match="malformed address"):
                parse_address(bad)


class TestCellLedger:
    def make(self, **kwargs):
        leases: list[tuple[str, dict]] = []
        ledger = CellLedger(lambda worker, message:
                            leases.append((worker, message)), **kwargs)
        return ledger, leases

    def test_duplicate_worker_id_rejected(self):
        ledger, _leases = self.make()
        ledger.register_worker("w", 1)
        with pytest.raises(ClusterError, match="already registered"):
            ledger.register_worker("w", 1)

    def test_bad_capacity_rejected(self):
        ledger, _leases = self.make()
        with pytest.raises(ClusterError, match="capacity"):
            ledger.register_worker("w", 0)

    def test_leases_spread_round_robin(self):
        ledger, leases = self.make()
        ledger.register_worker("a", 2)
        ledger.register_worker("b", 2)
        ledger.submit([cell(i) for i in range(4)])
        owners = sorted(worker for worker, _m in leases)
        assert owners == ["a", "a", "b", "b"]
        for _worker, message in leases:
            assert message["type"] == "cell"
            assert message["runner"] is None
            Scenario.from_dict(message["scenario"])  # well-formed payload

    def test_capacity_limits_inflight(self):
        ledger, leases = self.make()
        ledger.register_worker("a", 1)
        ledger.submit([cell(1), cell(2)])
        assert len(leases) == 1  # second cell waits for a free slot
        worker, message = leases[0]
        ledger.complete(worker, message["cell"], run_scenario(cell(1)))
        assert len(leases) == 2  # completion freed the slot

    def test_complete_yields_triple_and_first_wins(self):
        ledger, leases = self.make()
        ledger.register_worker("a", 1)
        ledger.submit([cell(1)])
        result = run_scenario(cell(1))
        cell_id = leases[0][1]["cell"]
        assert ledger.complete("a", cell_id, result) is True
        assert ledger.complete("a", cell_id, result) is False  # stale
        index, outcome, attempts = ledger.next_outcome(timeout=1.0)
        assert (index, outcome, attempts) == (0, result, 1)
        assert ledger.outstanding() == 0

    def test_worker_death_requeues_with_attempt_charged(self):
        ledger, leases = self.make()
        ledger.register_worker("a", 1)
        ledger.submit([cell(1)], retries=1)
        ledger.remove_worker("a", reason="test")
        ledger.register_worker("b", 1)
        assert [w for w, _m in leases] == ["a", "b"]
        cell_id = leases[1][1]["cell"]
        ledger.complete("b", cell_id, run_scenario(cell(1)))
        _index, outcome, attempts = ledger.next_outcome(timeout=1.0)
        assert isinstance(outcome, ScenarioResult)
        assert attempts == 2  # the death charged an attempt

    def test_retry_budget_exhaustion_reports_worker_death(self):
        ledger, leases = self.make()
        ledger.submit([cell(1)], retries=1)
        for name in ("a", "b"):
            ledger.register_worker(name, 1)
            ledger.remove_worker(name, reason="test")
        index, outcome, attempts = ledger.next_outcome(timeout=1.0)
        assert index == 0 and attempts == 2
        assert isinstance(outcome, CellError)
        assert outcome.kind == "worker-death"
        assert outcome.attempts == 2
        assert "died mid-cell" in outcome.message

    def test_lease_expiry_requeues_then_times_out(self):
        # Huge heartbeat window: only the *lease* deadline may fire here.
        ledger, leases = self.make(heartbeat_timeout=1000.0)
        ledger.register_worker("a", 2)
        ledger.submit([cell(1)], timeout=5.0, retries=1)
        now = time.monotonic()
        assert ledger.tick(now + 6.0) == []  # expired: requeued, re-leased
        assert [m["cell"] for _w, m in leases] == [1, 1]
        ledger.tick(now + 20.0)  # second expiry exhausts the budget
        _index, outcome, _attempts = ledger.next_outcome(timeout=1.0)
        assert isinstance(outcome, CellError)
        assert outcome.kind == "timeout"
        assert outcome.attempts == 2

    def test_silent_worker_declared_dead_by_tick(self):
        ledger, leases = self.make(heartbeat_timeout=5.0)
        ledger.register_worker("quiet", 1)
        ledger.submit([cell(1)], retries=0)
        assert ledger.tick(time.monotonic() + 60.0) == ["quiet"]
        assert ledger.worker_count() == 0
        _index, outcome, _attempts = ledger.next_outcome(timeout=1.0)
        assert isinstance(outcome, CellError)
        assert outcome.kind == "worker-death"
        assert "no heartbeat" in outcome.message

    def test_heartbeat_keeps_worker_alive(self):
        ledger, _leases = self.make(heartbeat_timeout=5.0)
        ledger.register_worker("chatty", 1)
        later = time.monotonic() + 60.0
        ledger._workers["chatty"].last_seen = later  # beacon "arrived"
        assert ledger.tick(later + 1.0) == []
        assert ledger.worker_count() == 1

    def test_one_batch_at_a_time(self):
        ledger, _leases = self.make()
        ledger.submit([cell(1)])
        with pytest.raises(ClusterError, match="one grid at a time"):
            ledger.submit([cell(2)])

    def test_abandon_clears_the_batch(self):
        ledger, leases = self.make()
        ledger.register_worker("a", 1)
        ledger.submit([cell(1), cell(2)])
        ledger.abandon()
        assert ledger.outstanding() == 0
        ledger.submit([cell(3)])  # accepted: the old batch is gone
        # A late result for the abandoned batch's lease is ignored.
        assert ledger.complete("a", leases[0][1]["cell"], "stale") is False

    def test_worker_reported_attempts_rewritten_by_ledger(self):
        ledger, leases = self.make()
        ledger.register_worker("a", 1)
        ledger.register_worker("b", 1)
        ledger.submit([cell(1)], retries=2)
        ledger.remove_worker("a", reason="test")  # requeue: attempt 2 on b
        error = CellError(cell(1), "error", "boom", attempts=1)
        ledger.complete("b", leases[-1][1]["cell"], error)
        _index, outcome, attempts = ledger.next_outcome(timeout=1.0)
        assert attempts == 2
        assert outcome.attempts == 2  # ledger count, not the worker's 1


class TestClusterEndToEnd:
    """In-process coordinator + worker agents over loopback TCP."""

    def run_agents(self, coordinator, count=2, capacity=2, name="agent"):
        agents, threads = [], []
        for i in range(count):
            agent = ClusterWorkerAgent(coordinator.address,
                                       name=f"{name}-{i}", capacity=capacity)
            thread = threading.Thread(target=agent.run, daemon=True)
            thread.start()
            agents.append(agent)
            threads.append(thread)
        deadline = time.monotonic() + 10.0
        while coordinator.worker_count() < count:
            assert time.monotonic() < deadline, "agents never registered"
            time.sleep(0.02)
        return agents, threads

    def collect(self, coordinator, total, timeout=60.0):
        triples = []
        deadline = time.monotonic() + timeout
        while len(triples) < total:
            assert time.monotonic() < deadline, "grid timed out"
            item = coordinator.ledger.next_outcome(timeout=0.5)
            if item is not None:
                triples.append(item)
        return triples

    def test_two_agents_run_a_grid_to_completion(self):
        coordinator = ClusterCoordinator(port=0).start()
        try:
            _agents, threads = self.run_agents(coordinator)
            grid = [cell(i) for i in range(6)]
            coordinator.submit(grid, runner=None, retries=1)
            triples = self.collect(coordinator, len(grid))
        finally:
            coordinator.stop()
        for thread in threads:
            thread.join(timeout=10.0)
            assert not thread.is_alive()  # shutdown reached every agent
        assert sorted(i for i, _o, _a in triples) == list(range(6))
        assert all(a == 1 for _i, _o, a in triples)
        by_index = {i: outcome for i, outcome, _a in triples}
        for index, scenario in enumerate(grid):
            outcome = by_index[index]
            assert isinstance(outcome, ScenarioResult)
            # Wire round trip is lossless: identical to an in-process run.
            assert outcome == run_scenario_prebuilt(scenario)

    def test_colliding_agent_names_are_uniquified(self):
        coordinator = ClusterCoordinator(port=0).start()
        try:
            agents, _threads = self.run_agents(coordinator, count=2,
                                               name="twin")
            # Both asked for "twin-0"-style names; re-request one of them.
            clone = ClusterWorkerAgent(coordinator.address, name="twin-0")
            thread = threading.Thread(target=clone.run, daemon=True)
            thread.start()
            deadline = time.monotonic() + 10.0
            while coordinator.worker_count() < 3:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            ids = {agent.worker_id for agent in agents} | {clone.worker_id}
            assert len(ids) == 3
            assert clone.worker_id.startswith("twin-0#")
        finally:
            coordinator.stop()

    def test_first_message_must_be_register(self):
        coordinator = ClusterCoordinator(port=0).start()
        try:
            with socket.create_connection(coordinator.address,
                                          timeout=5.0) as sock:
                sock.sendall(b'{"op": "heartbeat"}\n')
                reply = parse_message(
                    sock.makefile("r", encoding="utf-8").readline())
        finally:
            coordinator.stop()
        assert reply["type"] == "error"
        assert "register" in reply["message"]

    def test_protocol_version_mismatch_rejected(self):
        coordinator = ClusterCoordinator(port=0).start()
        try:
            with socket.create_connection(coordinator.address,
                                          timeout=5.0) as sock:
                sock.sendall(dump_message(
                    {"op": "register", "worker": "old", "capacity": 1,
                     "protocol": CLUSTER_PROTOCOL_VERSION + 1}
                ).encode("utf-8"))
                reply = parse_message(
                    sock.makefile("r", encoding="utf-8").readline())
        finally:
            coordinator.stop()
        assert reply["type"] == "error"
        assert "unsupported" in reply["message"]

    def test_worker_runner_exception_is_an_error_outcome(self):
        coordinator = ClusterCoordinator(port=0).start()
        try:
            self.run_agents(coordinator, count=1)
            coordinator.submit(
                [cell(1)], runner="test_cluster:always_raises", retries=1)
            index, outcome, attempts = self.collect(coordinator, 1)[0]
        finally:
            coordinator.stop()
        # A runner exception is worker-side "error", not a worker death:
        # it is NOT retried, exactly like the pool backends.
        assert index == 0 and attempts == 1
        assert isinstance(outcome, CellError)
        assert outcome.kind == "error"
        assert "boom" in outcome.message


def always_raises(scenario):
    raise ValueError("boom")


class TestClusterBackend:
    """The acceptance path: ``backend="cluster"`` over a real local fleet."""

    GRID_AXES = {"seed": [1, 2, 3, 4, 5, 6]}

    def grid(self):
        return expand_grid(cell(0), self.GRID_AXES)

    def test_registered_and_resolvable_by_name(self):
        assert "cluster" in EXECUTION_BACKENDS.names()
        backend = resolve_backend("cluster")
        assert isinstance(backend, ClusterBackend)
        assert backend.name == "cluster"

    def test_bad_topology_knobs_rejected(self):
        with pytest.raises(ClusterError, match="local_workers"):
            ClusterBackend(local_workers=-1)
        with pytest.raises(ClusterError, match="worker_capacity"):
            ClusterBackend(worker_capacity=0)
        with pytest.raises(ClusterError, match="lease_timeout"):
            ClusterBackend(lease_timeout=0.0)

    def test_lambda_runner_rejected_before_any_spawn(self):
        backend = ClusterBackend(local_workers=1)
        with pytest.raises(ClusterError, match="module-level"):
            list(backend.execute([cell(1)], lambda s: None))
        assert backend.address is None  # nothing was started

    def test_local_fleet_output_is_digest_identical_to_serial(self, tmp_path):
        grid = self.grid()
        serial = tmp_path / "serial.jsonl"
        report = GridSession("serial", sink=JsonlSink(serial)).run(grid)
        assert report.errors == 0

        clustered = tmp_path / "cluster.jsonl"
        backend = ClusterBackend(local_workers=2)
        try:
            report = GridSession(backend,
                                 sink=JsonlSink(clustered)).run(grid)
        finally:
            backend.close()
        assert report.errors == 0
        assert report.retries == 0
        assert clustered.read_bytes() == serial.read_bytes()

    def test_worker_death_mid_cell_is_retried_elsewhere(self, tmp_path,
                                                        monkeypatch):
        flag = tmp_path / "killed.flag"
        monkeypatch.setenv("REPRO_TEST_CLUSTER_KILL_FLAG", str(flag))
        grid = self.grid()
        grid[2] = dataclasses.replace(grid[2], seed=KILL_SEED)

        backend = ClusterBackend(local_workers=2)
        try:
            report = GridSession(backend, runner=kill_once_cluster_runner,
                                 retries=1).run(grid)
        finally:
            backend.close()
        assert flag.exists()  # a worker really died
        assert report.errors == 0
        assert report.retries >= 1  # the death surfaced in the report
        for scenario, outcome in zip(grid, report.outcomes):
            assert isinstance(outcome, ScenarioResult)
            assert outcome.scenario == scenario

    def test_zero_workers_fails_loudly(self):
        backend = ClusterBackend(local_workers=0, startup_timeout=0.3)
        try:
            with pytest.raises(ClusterError, match="no cluster worker"):
                list(backend.execute([cell(1)], run_scenario_prebuilt))
        finally:
            backend.close()

    def test_close_is_idempotent_and_restartable(self):
        backend = ClusterBackend(local_workers=1)
        try:
            first = list(backend.execute([cell(1)], run_scenario_prebuilt))
            backend.close()
            backend.close()  # idempotent
            second = list(backend.execute([cell(1)], run_scenario_prebuilt))
        finally:
            backend.close()
        assert first[0][1] == second[0][1]

"""Tentative outputs: forged punctuations, taint propagation, resumption."""

import pytest

from repro.engine import EngineConfig, TaskStatus
from repro.topology import TaskId

from tests.engine_helpers import build_engine, sink_outputs


def _tentative_config(recovery=False):
    return EngineConfig(
        checkpoint_interval=4.0, heartbeat_interval=2.0,
        tentative_outputs=True, recovery_enabled=recovery,
    )


class TestForging:
    def test_sink_keeps_producing_after_upstream_death(self):
        engine = build_engine(_tentative_config())
        engine.schedule_task_failure(6.0, [TaskId("L0", 1)])
        engine.run(16.0)
        outs = sink_outputs(engine)
        assert max(outs) >= 12  # batches continue past the failure

    def test_outputs_after_failure_are_tentative(self):
        engine = build_engine(_tentative_config())
        engine.schedule_task_failure(6.0, [TaskId("L0", 1)])
        engine.run(16.0)
        tentative = engine.metrics.sink_outputs(tentative=True)
        assert tentative
        # The failure at t=6 hits batch 5 (stream interval [5, 6)) onwards.
        assert all(r.index >= 5 for r in tentative)

    def test_forged_batches_counted(self):
        engine = build_engine(_tentative_config())
        engine.schedule_task_failure(6.0, [TaskId("L0", 1)])
        engine.run(16.0)
        assert engine.metrics.batches_forged > 0

    def test_without_tentative_mode_sink_stalls(self):
        config = EngineConfig(checkpoint_interval=4.0, heartbeat_interval=2.0,
                              tentative_outputs=False, recovery_enabled=False)
        engine = build_engine(config)
        engine.schedule_task_failure(6.0, [TaskId("L0", 1)])
        engine.run(16.0)
        outs = sink_outputs(engine)
        assert max(outs) <= 7  # blocked waiting for the dead task's batches

    def test_tentative_data_loses_dead_share(self):
        baseline = build_engine(EngineConfig(checkpoint_interval=None))
        baseline.run(16.0)
        engine = build_engine(_tentative_config())
        engine.schedule_task_failure(6.0, [TaskId("L0", 1)])
        engine.run(16.0)
        base_outs = sink_outputs(baseline)
        tent_outs = sink_outputs(engine)
        late = [i for i in range(10, 14)]
        assert all(len(tent_outs[i]) < len(base_outs[i]) for i in late)


class TestResumption:
    def test_accurate_outputs_resume_after_recovery(self):
        engine = build_engine(_tentative_config(recovery=True))
        engine.schedule_task_failure(6.0, [TaskId("L0", 1)])
        engine.run(25.0)
        assert engine.all_recovered()
        records = engine.metrics.sink_records
        last_tentative = max((r.index for r in records if r.tentative), default=-1)
        complete_after = [
            r.index for r in records if r.complete and r.index > last_tentative
        ]
        assert complete_after  # complete outputs resume eventually

    def test_forging_stops_after_recovery(self):
        engine = build_engine(_tentative_config(recovery=True))
        engine.schedule_task_failure(6.0, [TaskId("L0", 1)])
        engine.run(25.0)
        rt = engine.runtime(TaskId("L0", 1))
        assert rt.status is TaskStatus.RUNNING

    def test_correlated_failure_with_partial_plan_yields_tentative(self):
        plan = [TaskId("S", 0), TaskId("L0", 0), TaskId("L1", 0)]
        engine = build_engine(_tentative_config(), plan=plan)
        victims = [t for t in engine.topology.tasks() if t not in plan]
        engine.schedule_task_failure(6.0, victims)
        engine.run(16.0)
        tentative = engine.metrics.sink_outputs(tentative=True)
        assert tentative
        # Only the replicated source's data flows.
        for record in tentative:
            assert all(value[0] == 0 for _key, value in record.tuples)

"""Tests for plans, objectives and the planning context."""

import pytest

from repro.core import (
    IC_OBJECTIVE,
    OF_OBJECTIVE,
    PlanningContext,
    ReplicationPlan,
    budget_from_fraction,
)
from repro.errors import PlanningError
from repro.topology import TaskId


class TestReplicationPlan:
    def test_usage_counts_tasks(self):
        plan = ReplicationPlan(frozenset({TaskId("A", 0), TaskId("A", 1)}))
        assert plan.usage == 2

    def test_contains(self):
        plan = ReplicationPlan(frozenset({TaskId("A", 0)}))
        assert TaskId("A", 0) in plan
        assert TaskId("A", 1) not in plan

    def test_union_preserves_provenance(self):
        plan = ReplicationPlan(frozenset(), planner="X", budget=3)
        grown = plan.union({TaskId("A", 0)})
        assert grown.usage == 1
        assert grown.planner == "X"
        assert grown.budget == 3

    def test_value_uses_worst_case(self, chain_topology, chain_rates):
        full = ReplicationPlan(frozenset(chain_topology.tasks()))
        assert full.value(chain_topology, chain_rates) == 1.0


class TestObjectives:
    def test_of_objective_plan_value(self, chain_topology, chain_rates):
        value = OF_OBJECTIVE.plan_value(chain_topology, chain_rates, frozenset())
        assert value == 0.0

    def test_ic_objective_differs_on_joins(self, join_topology, join_rates):
        plan = frozenset({
            TaskId("Sa", 0), TaskId("A", 0), TaskId("J", 0), TaskId("K", 0)
        })
        of = OF_OBJECTIVE.plan_value(join_topology, join_rates, plan)
        ic = IC_OBJECTIVE.plan_value(join_topology, join_rates, plan)
        assert of == 0.0  # the join is starved of its B-side stream
        assert ic > 0.0

    def test_single_failure_value(self, chain_topology, chain_rates):
        value = OF_OBJECTIVE.single_failure_value(
            chain_topology, chain_rates, TaskId("C", 0)
        )
        assert value == 0.0

    def test_masked_plan_value_assumes_outside_alive(self, chain_topology,
                                                     chain_rates):
        mask = frozenset(chain_topology.tasks_of("A"))
        value = OF_OBJECTIVE.plan_value(
            chain_topology, chain_rates, frozenset({TaskId("A", 0)}), mask=mask
        )
        # Only A's other three tasks fail; S, B, C stay alive.
        assert value == pytest.approx(0.25)


class TestPlanningContext:
    def test_default_mask_covers_all_tasks(self, chain_topology, chain_rates):
        ctx = PlanningContext(chain_topology, chain_rates)
        assert ctx.mask_tasks == frozenset(chain_topology.tasks())

    def test_restricted_mask(self, chain_topology, chain_rates):
        ctx = PlanningContext(chain_topology, chain_rates, ops=frozenset({"A"}))
        assert ctx.mask_tasks == frozenset(chain_topology.tasks_of("A"))

    def test_value_with_restricted_mask(self, chain_topology, chain_rates):
        ctx = PlanningContext(chain_topology, chain_rates, ops=frozenset({"A"}))
        assert ctx.value(frozenset(chain_topology.tasks_of("A"))) == 1.0
        assert ctx.value(frozenset()) == 0.0


class TestBudgetFromFraction:
    def test_rounds_to_nearest_task(self, chain_topology):
        assert budget_from_fraction(chain_topology, 0.5) == round(0.5 * 11)

    def test_zero_and_one(self, chain_topology):
        assert budget_from_fraction(chain_topology, 0.0) == 0
        assert budget_from_fraction(chain_topology, 1.0) == chain_topology.num_tasks

    @pytest.mark.parametrize("fraction", [-0.1, 1.1])
    def test_rejects_out_of_range(self, chain_topology, fraction):
        with pytest.raises(PlanningError):
            budget_from_fraction(chain_topology, fraction)

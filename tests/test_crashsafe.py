"""Crash-safety tests: the coordinator WAL, replay, and restart semantics.

Covers the durable-coordinator tentpole end to end, socket-free where
possible (journal + ledger) and over real loopback TCP for the
SIGKILL-equivalent coordinator restart:

* journal edge cases — torn final line, duplicate completion records,
  replay-before-write discipline, reset-on-retire;
* ledger restore — re-admission with attempt counts, re-emission of
  undrained outcomes, batch adoption on identical resubmit, and
  first-completion-wins across a restart (the late-result race, both
  the heartbeat-staleness flavour and the restart flavour);
* a live coordinator crash mid-grid with a self-healing worker that
  redials, resumes its id, and finishes the batch on the successor.
"""

import threading
import time

import pytest

from repro.cluster import CellLedger, ClusterCoordinator, ClusterWorkerAgent
from repro.cluster.journal import LedgerJournal
from repro.errors import ClusterError
from repro.resilience import RetryPolicy
from repro.scenarios import (
    CellError,
    Scenario,
    ScenarioResult,
    run_scenario_prebuilt,
)


def cell(seed: int) -> Scenario:
    """A fast scenario whose digest is distinct per seed."""
    return Scenario(name=f"cell-{seed}", seed=seed, duration=5.0,
                    planner="none",
                    workload_params={"window_seconds": 5.0,
                                     "rate_per_source": 50.0})


def slow_runner(scenario):
    """Importable runner that stretches cells so crashes land mid-grid."""
    time.sleep(0.15)
    return run_scenario_prebuilt(scenario)


# ---------------------------------------------------------------------------
# LedgerJournal
# ---------------------------------------------------------------------------

class TestLedgerJournal:
    def test_round_trips_batch_leases_and_done(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = LedgerJournal(path)
        journal.record_batch([(1, 0, cell(0)), (2, 1, cell(1))],
                             runner=None, timeout=4.5, retries=2)
        journal.record_lease(1, "w1")
        journal.record_lease(2, "w1")
        journal.record_lease(1, "w2")      # a requeue: second attempt
        journal.record_done(2, 1, 1, {"error": {
            "scenario": cell(1).to_dict(), "kind": "error",
            "message": "boom", "attempts": 1}})
        journal.close()

        replay = LedgerJournal(path).replay()
        assert replay.timeout == 4.5 and replay.retries == 2
        assert replay.cells[1].attempts == 2
        assert replay.cells[2].done
        pending = replay.pending
        assert [c.cell_id for c in pending] == [1]
        assert pending[0].scenario.to_dict() == cell(0).to_dict()
        assert [(index, attempts) for index, attempts, _w in replay.outcomes] \
            == [(1, 1)]

    def test_torn_final_line_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = LedgerJournal(path)
        journal.record_batch([(1, 0, cell(0)), (2, 1, cell(1))],
                             runner=None, timeout=None, retries=1)
        journal.record_lease(1, "w1")
        journal.close()
        # A SIGKILL mid-write leaves a torn, newline-less tail.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event":"done","cell":1,"index":0,"att')

        fresh = LedgerJournal(path)
        replay = fresh.replay()
        assert fresh.corrupt_records == 1
        # The torn 'done' never happened: cell 1 is still pending.
        assert [c.cell_id for c in replay.pending] == [1, 2]
        assert replay.cells[1].attempts == 1

    def test_duplicate_done_records_keep_the_first(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = LedgerJournal(path)
        journal.record_batch([(1, 0, cell(0))],
                             runner=None, timeout=None, retries=1)
        journal.record_lease(1, "w1")
        first = {"error": {"scenario": cell(0).to_dict(), "kind": "timeout",
                           "message": "first", "attempts": 1}}
        second = {"error": {"scenario": cell(0).to_dict(), "kind": "error",
                            "message": "second", "attempts": 2}}
        journal.record_done(1, 0, 1, first)
        journal.record_done(1, 0, 2, second)   # a replayed-life duplicate
        journal.close()

        replay = LedgerJournal(path).replay()
        assert len(replay.outcomes) == 1
        index, attempts, wire = replay.outcomes[0]
        assert (index, attempts) == (0, 1)
        assert wire["error"]["message"] == "first"

    def test_replay_refuses_to_run_after_writes(self, tmp_path):
        journal = LedgerJournal(tmp_path / "wal.jsonl")
        journal.record_lease(1, "w1")
        with pytest.raises(ClusterError, match="before"):
            journal.replay()

    def test_missing_file_replays_empty(self, tmp_path):
        replay = LedgerJournal(tmp_path / "nope.jsonl").replay()
        assert replay.empty

    def test_new_batch_resets_the_file(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = LedgerJournal(path)
        journal.record_batch([(1, 0, cell(0))],
                             runner=None, timeout=None, retries=1)
        journal.record_lease(1, "w1")
        journal.record_batch([(2, 0, cell(9))],
                             runner=None, timeout=None, retries=1)
        journal.close()
        replay = LedgerJournal(path).replay()
        assert list(replay.cells) == [2]
        assert replay.cells[2].attempts == 0   # the old lease died with it


# ---------------------------------------------------------------------------
# CellLedger + journal: crash/restore, socket-free
# ---------------------------------------------------------------------------

class RecordingPublish:
    def __init__(self):
        self.messages: list[tuple[str, dict]] = []

    def __call__(self, worker_id: str, message: dict) -> None:
        self.messages.append((worker_id, dict(message)))

    def leases(self) -> list[dict]:
        return [m for _w, m in self.messages if m.get("type") == "cell"]


def drain(ledger: CellLedger) -> list[tuple[int, object, int]]:
    items = []
    while True:
        item = ledger.next_outcome(timeout=0.05)
        if item is None:
            return items
        items.append(item)


class TestLedgerRestore:
    def make(self, path, **kwargs):
        publish = RecordingPublish()
        ledger = CellLedger(publish, journal=LedgerJournal(path), **kwargs)
        return ledger, publish

    def test_restore_reemits_done_and_readmits_pending(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        led1, pub1 = self.make(path)
        led1.register_worker("w1", 1)
        led1.submit([cell(0), cell(1), cell(2)], retries=1)
        lease = pub1.leases()[0]
        result = run_scenario_prebuilt(cell(0))
        assert led1.complete("w1", lease["cell"], result)
        led1.journal.close()   # the SIGKILL: nothing else is torn down

        led2, pub2 = self.make(path)
        restored = led2.restore_from_journal()
        assert restored == 2
        # The completed-but-undrained outcome is re-emitted...
        emitted = drain(led2)
        assert [(i, a) for i, _o, a in emitted] == [(0, 1)]
        assert isinstance(emitted[0][1], ScenarioResult)
        # ...and a worker registering now is leased both pending cells
        # under their original ids (so pre-crash stragglers still count).
        led2.register_worker("w2", 2)
        new_leases = {m["cell"]: m["attempt"] for m in pub2.leases()}
        assert len(new_leases) == 2
        done_id = pub1.leases()[0]["cell"]
        leased_id = pub1.leases()[1]["cell"]
        assert done_id not in new_leases
        # The cell that was in flight at the crash had its lease charged
        # by replay (attempt 2); the never-leased one starts fresh.
        assert new_leases[leased_id] == 2
        assert {new_leases[c] for c in new_leases if c != leased_id} == {1}

    def test_identical_resubmit_adopts_the_restored_batch(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        grid = [cell(0), cell(1)]
        led1, pub1 = self.make(path)
        led1.register_worker("w1", 2)
        led1.submit(grid, retries=1)
        led1.journal.close()

        led2, pub2 = self.make(path)
        assert led2.restore_from_journal() == 2
        assert led2.submit(grid, retries=1) == 2   # adopted, not re-admitted
        assert led2.outstanding() == 2
        led2.register_worker("w2", 2)
        for lease in pub2.leases():
            led2.complete("w2", lease["cell"],
                          run_scenario_prebuilt(cell(0)))
        assert {i for i, _o, _a in drain(led2)} == {0, 1}

    def test_different_resubmit_discards_the_remnant(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        led1, _pub1 = self.make(path)
        led1.register_worker("w1", 2)
        led1.submit([cell(0), cell(1)], retries=1)
        led1.journal.close()

        led2, pub2 = self.make(path)
        assert led2.restore_from_journal() == 2
        led2.register_worker("w2", 4)
        assert led2.submit([cell(7)], retries=1) == 1
        assert led2.outstanding() == 1
        # Only the new batch's cell is leased after the discard.
        lease = pub2.leases()[-1]
        assert lease["scenario"] == cell(7).to_dict()

    def test_late_result_beats_requeue_across_restart(self, tmp_path):
        """Satellite: a pre-crash worker's result races the requeue."""
        path = tmp_path / "wal.jsonl"
        led1, pub1 = self.make(path)
        led1.register_worker("w1", 1)
        led1.submit([cell(0)], retries=3)
        cell_id = pub1.leases()[0]["cell"]
        led1.journal.close()

        led2, pub2 = self.make(path)
        assert led2.restore_from_journal() == 1
        led2.register_worker("w2", 1)          # requeued: leased to w2
        assert pub2.leases()[0]["cell"] == cell_id
        # The OLD worker (still running its executor) reports first.
        late = run_scenario_prebuilt(cell(0))
        assert led2.complete("w1", cell_id, late) is True
        # w2's duplicate completion is stale traffic, not an error.
        assert led2.complete("w2", cell_id,
                             run_scenario_prebuilt(cell(0))) is False
        emitted = drain(led2)
        assert len(emitted) == 1
        index, outcome, attempts = emitted[0]
        assert index == 0 and outcome is late
        assert attempts == 2                   # both lives' leases charged

    def test_heartbeat_staleness_requeue_races_late_result(self, tmp_path):
        """Satellite: same race inside one life, via the liveness sweep."""
        path = tmp_path / "wal.jsonl"
        ledger, publish = self.make(path, heartbeat_timeout=0.2)
        ledger.register_worker("w1", 1)
        ledger.submit([cell(0)], retries=3)
        cell_id = publish.leases()[0]["cell"]
        ledger.register_worker("w2", 1)
        ledger.heartbeat("w2")
        # w1 goes silent past the heartbeat window; its lease requeues
        # and immediately re-leases to w2 (attempt 2).
        time.sleep(0.3)
        ledger.heartbeat("w2")
        assert ledger.tick() == ["w1"]
        release = publish.leases()[-1]
        assert (release["cell"], release["attempt"]) == (cell_id, 2)
        # w1 was only *slow*: its result arrives after the requeue and
        # still wins; w2's later one is ignored.
        late = run_scenario_prebuilt(cell(0))
        assert ledger.complete("w1", cell_id, late) is True
        assert ledger.complete("w2", cell_id,
                               run_scenario_prebuilt(cell(0))) is False
        (index, outcome, attempts), = drain(ledger)
        assert index == 0 and outcome is late and attempts == 2

    def test_journal_resets_once_batch_retires_and_drains(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        ledger, publish = self.make(path)
        ledger.register_worker("w1", 2)
        ledger.submit([cell(0), cell(1)], retries=1)
        for lease in publish.leases():
            ledger.complete("w1", lease["cell"],
                            run_scenario_prebuilt(cell(0)))
        assert len(drain(ledger)) == 2
        ledger.journal.close()
        # Fully retired and fully drained: the WAL is empty again.
        assert LedgerJournal(path).replay().empty

    def test_worker_death_error_attempts_survive_restart(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        led1, pub1 = self.make(path)
        led1.register_worker("w1", 1)
        led1.submit([cell(0)], retries=1)
        led1.journal.close()

        led2, _pub2 = self.make(path)
        led2.restore_from_journal()
        led2.register_worker("w2", 1)   # attempt 2 (the budget's last)
        led2.remove_worker("w2", reason="died")
        (index, outcome, attempts), = drain(led2)
        assert isinstance(outcome, CellError)
        assert outcome.kind == "worker-death"
        assert index == 0 and attempts == 2


# ---------------------------------------------------------------------------
# Live coordinator crash + self-healing worker over loopback TCP
# ---------------------------------------------------------------------------

class TestCoordinatorCrashRestart:
    def test_sigkilled_coordinator_restarts_and_finishes_the_grid(
            self, tmp_path):
        journal = str(tmp_path / "wal.jsonl")
        grid = [cell(i) for i in range(6)]
        coordinator = ClusterCoordinator(
            heartbeat_timeout=5.0, journal=journal).start()
        agent = ClusterWorkerAgent(
            coordinator.address, name="healer", capacity=1,
            heartbeat_interval=0.1,
            reconnect=RetryPolicy(max_attempts=None, base_delay=0.05,
                                  max_delay=0.2, deadline=15.0))
        thread = threading.Thread(target=agent.run, daemon=True)
        thread.start()
        successor = None
        try:
            coordinator.submit(grid, runner="test_crashsafe:slow_runner",
                               retries=2)
            outcomes = {}
            while len(outcomes) < 2:       # let some cells finish first
                item = coordinator.ledger.next_outcome(timeout=5.0)
                assert item is not None, "grid stalled before the crash"
                outcomes[item[0]] = item[1]

            coordinator.crash()            # SIGKILL-equivalent teardown
            host, port = coordinator.address
            successor = ClusterCoordinator(
                host, port, heartbeat_timeout=5.0, journal=journal).start()
            assert successor.restored_cells >= 1

            deadline = time.monotonic() + 30.0
            while len(outcomes) < len(grid):
                assert time.monotonic() < deadline, "restart never finished"
                item = successor.ledger.next_outcome(timeout=5.0)
                if item is not None:
                    # First completion wins across the restart; replayed
                    # duplicates for already-drained indices are fine.
                    outcomes.setdefault(item[0], item[1])
        finally:
            (successor or coordinator).stop()
            thread.join(timeout=10.0)

        assert sorted(outcomes) == list(range(6))
        assert all(isinstance(o, ScenarioResult) for o in outcomes.values())
        # The worker reconnected (session 2+) under its original id.
        assert agent.sessions >= 2
        # The successor's WAL is empty once everything drained.
        assert LedgerJournal(journal).replay().empty

"""Regenerate the recovery-parity golden fixture.

Usage::

    PYTHONPATH=src:. python tests/golden/make_recovery_parity.py

The fixture pins the exact :class:`MetricsCollector` output of the engine's
built-in fault-tolerance protocols on fixed scenarios, so the registry-backed
recovery schemes (``ppa``, ``checkpoint-replay``, ``source-replay``) can be
proven byte-identical to the monolithic engine they were extracted from.
It was generated *before* the extraction (PR 3) and should only be
regenerated when the simulation itself intentionally changes.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.scenarios import Scenario, scenario_digest

from tests.engine_helpers import metrics_fingerprint, run_scenario_engine

#: A tiny fixed topology shared by the custom-workload golden scenarios.
_RECIPE = {
    "operators": [
        {"name": "S", "parallelism": 2, "kind": "source"},
        {"name": "A", "parallelism": 2, "selectivity": 0.5},
        {"name": "B", "parallelism": 1, "selectivity": 0.5},
    ],
    "edges": [
        {"upstream": "S", "downstream": "A", "pattern": "one-to-one"},
        {"upstream": "A", "downstream": "B", "pattern": "merge"},
    ],
}

_CUSTOM_PARAMS = {"source_rate": 40.0, "window_seconds": 6.0, "tuple_scale": 1.0}

#: key -> (scheme name the refactored engine must select, scenario dict).
GOLDEN_SCENARIOS: dict[str, tuple[str, dict]] = {
    # Partially-active replication: a mixed plan, so the correlated failure
    # exercises replica takeover AND checkpoint restore in one run.
    "ppa-mixed": ("ppa", {
        "name": "golden/ppa-mixed",
        "workload": "custom",
        "topology": _RECIPE,
        "workload_params": _CUSTOM_PARAMS,
        "planner": "fixed",
        "planner_params": {"tasks": [["A", 0], ["B", 0]]},
        "engine": {"checkpoint_interval": 4.0, "heartbeat_interval": 2.0,
                   "sync_interval": 4.0},
        "failures": [{"model": "correlated", "at": 12.0}],
        "duration": 24.0,
    }),
    # Pure passive checkpoint/replay (Spark-Streaming style): no replicas.
    "checkpoint-replay": ("checkpoint-replay", {
        "name": "golden/checkpoint-replay",
        "workload": "custom",
        "topology": _RECIPE,
        "workload_params": _CUSTOM_PARAMS,
        "planner": "none",
        "engine": {"checkpoint_interval": 4.0, "heartbeat_interval": 2.0},
        "failures": [{"model": "correlated", "at": 12.0}],
        "duration": 24.0,
    }),
    # Vanilla Storm: no checkpoints, state rebuilt by source replay.
    "source-replay": ("source-replay", {
        "name": "golden/source-replay",
        "workload": "custom",
        "topology": _RECIPE,
        "workload_params": _CUSTOM_PARAMS,
        "planner": "none",
        "engine": {"checkpoint_interval": None, "heartbeat_interval": 2.0,
                   "passive_strategy": "source-replay",
                   "source_replay_window_batches": 6},
        "failures": [{"model": "correlated", "at": 12.0}],
        "duration": 24.0,
    }),
    # The paper's Fig. 6 workload under a half-budget PPA plan with forging
    # enabled, covering tentative outputs and the structure-aware planner.
    "ppa-synthetic": ("ppa", {
        "name": "golden/ppa-synthetic",
        "workload": "synthetic",
        "workload_params": {"rate_per_source": 600.0, "window_seconds": 10.0,
                            "tuple_scale": 16.0},
        "planner": "structure-aware",
        "budget_fraction": 0.5,
        "engine": {"checkpoint_interval": 5.0, "sync_interval": 5.0,
                   "tentative_outputs": True},
        "failures": [{"model": "correlated", "at": 15.0}],
        "duration": 30.0,
    }),
}


def main() -> None:
    out: dict[str, dict] = {}
    for key, (scheme, data) in GOLDEN_SCENARIOS.items():
        scenario = Scenario.from_dict(data)
        engine = run_scenario_engine(scenario)
        out[key] = {
            "scheme": scheme,
            "scenario": data,
            "digest": scenario_digest(scenario),
            "fingerprint": metrics_fingerprint(engine.metrics),
        }
        print(f"{key}: {len(engine.metrics.recoveries)} recoveries, "
              f"digest {out[key]['digest'][:12]}")
    path = Path(__file__).with_name("recovery_parity.json")
    path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()

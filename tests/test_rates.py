"""Unit tests for stream-rate propagation."""

import pytest

from repro.errors import RateError
from repro.topology import (
    Partitioning,
    SourceRates,
    TaskId,
    TopologyBuilder,
    propagate_rates,
    uniform_source_rates,
)


class TestSourceRates:
    def test_per_task_overrides_operator_rate(self, chain_topology):
        sources = SourceRates(per_operator={"S": 400.0},
                              per_task={TaskId("S", 0): 10.0})
        assert sources.rate_of(chain_topology, TaskId("S", 0)) == 10.0
        assert sources.rate_of(chain_topology, TaskId("S", 1)) == pytest.approx(100.0)

    def test_missing_rate_raises(self, chain_topology):
        with pytest.raises(RateError):
            SourceRates().rate_of(chain_topology, TaskId("S", 0))

    def test_uniform_rates_cover_all_sources(self, chain_topology):
        rates = uniform_source_rates(chain_topology, 5.0)
        assert all(
            rates.per_task[t] == 5.0 for t in chain_topology.source_tasks()
        )

    def test_uniform_rates_reject_non_positive(self, chain_topology):
        with pytest.raises(RateError):
            uniform_source_rates(chain_topology, 0.0)


class TestPropagation:
    def test_source_rates_taken_verbatim(self, chain_topology):
        rates = propagate_rates(chain_topology, uniform_source_rates(chain_topology, 100.0))
        assert rates.output_rate(TaskId("S", 0)) == 100.0

    def test_independent_output_is_selectivity_times_sum(self, chain_topology):
        rates = propagate_rates(chain_topology, uniform_source_rates(chain_topology, 100.0))
        # A has 4 tasks; full partitioning splits 400 source tuples evenly,
        # and selectivity 0.5 halves them.
        assert rates.output_rate(TaskId("A", 0)) == pytest.approx(50.0)

    def test_sink_rate_accumulates_chain_selectivity(self, chain_topology):
        rates = propagate_rates(chain_topology, uniform_source_rates(chain_topology, 100.0))
        # 400 total * 0.5^3 through three operators.
        assert rates.output_rate(TaskId("C", 0)) == pytest.approx(50.0)

    def test_input_stream_rate_sums_substreams(self, chain_topology):
        rates = propagate_rates(chain_topology, uniform_source_rates(chain_topology, 100.0))
        assert rates.input_stream_rate(TaskId("A", 0), "S") == pytest.approx(100.0)

    def test_substream_rate_of_disconnected_pair_is_zero(self, chain_topology):
        rates = propagate_rates(chain_topology, uniform_source_rates(chain_topology, 100.0))
        assert rates.substream_rate(TaskId("S", 0), TaskId("C", 0)) == 0.0

    def test_unknown_task_rate_raises(self, chain_topology):
        rates = propagate_rates(chain_topology, uniform_source_rates(chain_topology, 100.0))
        with pytest.raises(RateError):
            rates.output_rate(TaskId("Z", 9))

    def test_correlated_rate_is_product_of_streams(self):
        topo = (
            TopologyBuilder()
            .source("A", 1)
            .source("B", 1)
            .join("J", 1, selectivity=0.5)
            .connect("A", "J", Partitioning.FULL)
            .connect("B", "J", Partitioning.FULL)
            .build()
        )
        rates = propagate_rates(topo, SourceRates(per_operator={"A": 10.0, "B": 20.0}))
        assert rates.output_rate(TaskId("J", 0)) == pytest.approx(0.5 * 10.0 * 20.0)

    def test_merge_keeps_rates_on_single_target(self, merge_tree_topology):
        rates = propagate_rates(
            merge_tree_topology, uniform_source_rates(merge_tree_topology, 100.0)
        )
        # Each A task merges exactly two sources.
        assert rates.input_stream_rate(TaskId("A", 0), "S") == pytest.approx(200.0)

    def test_fig2_stream_rates(self, fig2_topology, fig2_rates):
        """The Fig. 2 caption: λ_in(31,1) = 3 and λ_in(31,2) = 5."""
        t31 = TaskId("O3", 0)
        assert fig2_rates.input_stream_rate(t31, "O1") == pytest.approx(3.0)
        assert fig2_rates.input_stream_rate(t31, "O2") == pytest.approx(5.0)

"""The pluggable recovery-scheme API: parity, registry, new schemes.

The golden tests are the contract of the extraction: the refactored
``ppa`` / ``checkpoint-replay`` / ``source-replay`` schemes must reproduce
the *pre-refactor* engine's MetricsCollector output byte-for-byte
(``tests/golden/recovery_parity.json`` was generated before the recovery
protocols left ``StreamEngine``; see ``tests/golden/make_recovery_parity.py``).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.engine import (
    RECOVERY_SCHEMES,
    EngineConfig,
    RecoveryMode,
    RecoveryScheme,
    StreamEngine,
    TaskStatus,
    create_scheme,
)
from repro.errors import ScenarioError, SimulationError
from repro.scenarios import (
    FailureSpec,
    FailureWave,
    Scenario,
    ScenarioRunner,
    as_waves,
    run_scenario,
    run_scenarios,
    scenario_digest,
)
from repro.topology import TaskId

from tests.engine_helpers import (
    build_engine,
    metrics_fingerprint,
    run_scenario_engine,
    small_logic,
    small_topology,
)

GOLDEN = json.loads(
    (Path(__file__).parent / "golden" / "recovery_parity.json").read_text()
)

_RECIPE = {
    "operators": [
        {"name": "S", "parallelism": 2, "kind": "source"},
        {"name": "A", "parallelism": 2, "selectivity": 0.5},
        {"name": "B", "parallelism": 1, "selectivity": 0.5},
    ],
    "edges": [
        {"upstream": "S", "downstream": "A", "pattern": "one-to-one"},
        {"upstream": "A", "downstream": "B", "pattern": "merge"},
    ],
}


def _tiny_scenario(**overrides) -> Scenario:
    base = {
        "workload": "custom",
        "topology": _RECIPE,
        "workload_params": {"source_rate": 40.0, "window_seconds": 6.0},
        "planner": "none",
        "engine": {"checkpoint_interval": 4.0, "heartbeat_interval": 2.0},
        "failures": [{"model": "correlated", "at": 12.0}],
        "duration": 24.0,
    }
    base.update(overrides)
    return Scenario.from_dict(base)


class TestGoldenParity:
    """The refactored built-ins are byte-identical to the monolithic engine."""

    @pytest.mark.parametrize("key", sorted(GOLDEN))
    def test_default_scheme_matches_pre_refactor_metrics(self, key):
        entry = GOLDEN[key]
        scenario = Scenario.from_dict(entry["scenario"])
        engine = run_scenario_engine(scenario)
        assert metrics_fingerprint(engine.metrics) == entry["fingerprint"]

    @pytest.mark.parametrize("key", sorted(GOLDEN))
    def test_explicit_scheme_matches_pre_refactor_metrics(self, key):
        entry = GOLDEN[key]
        scenario = Scenario.from_dict(entry["scenario"]).with_overrides(
            recovery=entry["scheme"]
        )
        engine = run_scenario_engine(scenario)
        assert engine.scheme.name == entry["scheme"]
        assert metrics_fingerprint(engine.metrics) == entry["fingerprint"]

    @pytest.mark.parametrize("key", sorted(GOLDEN))
    def test_default_scenario_digest_unchanged(self, key):
        """Cache compatibility: scheme-less scenarios keep their digest."""
        entry = GOLDEN[key]
        scenario = Scenario.from_dict(entry["scenario"])
        assert scenario_digest(scenario) == entry["digest"]

    def test_explicit_scheme_changes_digest(self):
        s = _tiny_scenario()
        assert scenario_digest(s) != scenario_digest(
            s.with_overrides(recovery="active-standby")
        )


class TestRegistry:
    def test_builtin_schemes_registered(self):
        for name in ("ppa", "checkpoint-replay", "source-replay",
                     "active-standby"):
            assert name in RECOVERY_SCHEMES
            assert create_scheme(name).name == name

    def test_unknown_scheme_raises_listing_known(self):
        with pytest.raises(SimulationError, match="active-standby"):
            create_scheme("nope")

    def test_unknown_scheme_in_engine_config(self):
        with pytest.raises(SimulationError, match="recovery scheme"):
            build_engine(EngineConfig(recovery_scheme="nope"))

    def test_unknown_scheme_in_scenario(self):
        with pytest.raises(ScenarioError, match="registered schemes"):
            run_scenario(_tiny_scenario(recovery="nope"))

    def test_conflicting_scenario_and_engine_spelling(self):
        scenario = _tiny_scenario(
            recovery="ppa",
            engine={"recovery_scheme": "source-replay"},
        )
        with pytest.raises(ScenarioError, match="pick one spelling"):
            ScenarioRunner(scenario).run()

    def test_engine_dict_spelling_works_alone(self):
        scenario = _tiny_scenario(engine={
            "checkpoint_interval": 4.0, "heartbeat_interval": 2.0,
            "recovery_scheme": "active-standby",
        })
        result = run_scenario(scenario)
        assert {r.mode for r in result.recoveries} == {"active"}

    def test_custom_scheme_plugs_in(self):
        @RECOVERY_SCHEMES.register("sinks-active")
        class SinksActive(RecoveryScheme):
            name = "sinks-active"

            def replicated_tasks(self, topology, planned):
                return frozenset(topology.sink_tasks())

        try:
            engine = build_engine(EngineConfig(
                checkpoint_interval=4.0, heartbeat_interval=2.0,
                recovery_scheme="sinks-active"))
            engine.schedule_task_failure(12.0, [TaskId("L1", 0),
                                                TaskId("L0", 0)])
            engine.run(20.0)
            modes = {r.task: r.mode for r in engine.metrics.recoveries}
            assert modes[TaskId("L1", 0)] is RecoveryMode.ACTIVE
            assert modes[TaskId("L0", 0)] is RecoveryMode.CHECKPOINT
        finally:
            RECOVERY_SCHEMES.unregister("sinks-active")


class TestActiveStandby:
    CONFIG = EngineConfig(checkpoint_interval=4.0, heartbeat_interval=2.0,
                          recovery_scheme="active-standby")

    def test_every_task_is_replicated_regardless_of_plan(self):
        engine = build_engine(self.CONFIG)  # empty plan
        assert engine.replicated == frozenset(engine.topology.tasks())
        assert all(rt.replicated for rt in engine.runtimes.values())

    def test_all_recoveries_are_takeovers(self):
        engine = build_engine(self.CONFIG)
        engine.schedule_task_failure(
            12.0, [TaskId("S", 0), TaskId("L0", 1), TaskId("L1", 0)])
        engine.run(20.0)
        assert engine.all_recovered()
        assert {r.mode for r in engine.metrics.recoveries} == {
            RecoveryMode.ACTIVE}
        assert all(rt.status is TaskStatus.RUNNING
                   for rt in engine.runtimes.values())

    def test_output_equivalence_with_failure_free_run(self):
        from tests.engine_helpers import sink_outputs

        baseline = build_engine(self.CONFIG)
        baseline.run(20.0)
        failed = build_engine(self.CONFIG)
        failed.schedule_task_failure(
            12.0, [TaskId("S", 0), TaskId("L0", 1), TaskId("L1", 0)])
        failed.run(20.0)
        assert sink_outputs(failed) == sink_outputs(baseline)

    def test_upper_bound_beats_passive_recovery(self):
        passive = run_scenario(_tiny_scenario(recovery="checkpoint-replay"))
        active = run_scenario(_tiny_scenario(recovery="active-standby"))
        assert active.max_recovery_latency < passive.max_recovery_latency


class TestSchemeGridSweep:
    """The CI smoke matrix: every registered scheme × two failure models."""

    def test_all_schemes_times_two_failure_models(self):
        scenarios = [
            _tiny_scenario(
                name=f"{scheme}/{model}", recovery=scheme,
                failures=[{"model": model, "at": 10.0,
                           "params": params}],
            )
            for scheme in RECOVERY_SCHEMES.names()
            for model, params in (
                ("correlated", {}),
                ("rolling-restart", {"stagger": 2.0}),
            )
        ]
        results = run_scenarios(scenarios, backend="serial")
        assert len(results) == 2 * len(RECOVERY_SCHEMES)
        for result in results:
            assert result.all_recovered, result.scenario.name
            assert result.recoveries, result.scenario.name


class TestScenarioRecoveryField:
    def test_round_trip_and_default_omission(self):
        s = _tiny_scenario()
        assert "recovery" not in s.to_dict()
        assert Scenario.from_dict(s.to_dict()) == s
        t = s.with_overrides(recovery="source-replay")
        assert t.to_dict()["recovery"] == "source-replay"
        assert Scenario.from_dict(t.to_dict()) == t

    def test_non_string_recovery_rejected(self):
        with pytest.raises(ScenarioError, match="recovery"):
            Scenario(recovery=3)  # type: ignore[arg-type]

    def test_grid_axis_over_recovery(self):
        from repro.scenarios import expand_grid

        grid = expand_grid(_tiny_scenario(), {
            "recovery": ["ppa", "active-standby"]})
        assert [s.recovery for s in grid] == ["ppa", "active-standby"]
        assert len({scenario_digest(s) for s in grid}) == 2


class TestRollingRestart:
    def test_staggered_fail_times(self):
        scenario = _tiny_scenario(failures=[{
            "model": "rolling-restart", "at": 6.0,
            "params": {"stagger": 4.0}}])
        result = run_scenario(scenario)
        observed = {str(r.task): r.fail_time for r in result.recoveries}
        assert observed == {"A[0]": 6.0, "A[1]": 10.0, "B[0]": 14.0}
        assert result.all_recovered

    def test_explicit_task_order_preserved(self):
        scenario = _tiny_scenario(failures=[{
            "model": "rolling-restart", "at": 5.0,
            "params": {"stagger": 3.0, "tasks": [["B", 0], ["A", 1]]}}])
        result = run_scenario(scenario)
        observed = {str(r.task): r.fail_time for r in result.recoveries}
        assert observed == {"B[0]": 5.0, "A[1]": 8.0}

    def test_schedule_past_duration_rejected(self):
        scenario = _tiny_scenario(failures=[{
            "model": "rolling-restart", "at": 20.0,
            "params": {"stagger": 10.0}}])
        with pytest.raises(ScenarioError, match="after the run ends"):
            run_scenario(scenario)

    def test_waves_normalisation(self):
        waves = as_waves([TaskId("A", 0), TaskId("A", 1)])
        assert waves == (FailureWave(0.0, (TaskId("A", 0), TaskId("A", 1))),)
        staggered = as_waves([FailureWave(5.0, (TaskId("A", 1),)),
                              FailureWave(0.0, (TaskId("A", 0),))])
        assert [w.offset for w in staggered] == [0.0, 5.0]
        with pytest.raises(ScenarioError, match="mixture"):
            as_waves([FailureWave(0.0, (TaskId("A", 0),)), TaskId("A", 1)])
        with pytest.raises(ScenarioError, match="offset"):
            FailureWave(-1.0, (TaskId("A", 0),))

    def test_model_validation(self):
        runner = ScenarioRunner(_tiny_scenario(failures=[{
            "model": "rolling-restart", "at": 1.0,
            "params": {"stagger": -2.0}}]))
        bundle = runner.bundle()
        plan = runner.plan(bundle)
        with pytest.raises(ScenarioError, match="stagger"):
            runner.failure_waves(runner.scenario.failures[0], bundle, plan)


class TestEngineSchemeSelection:
    def test_default_config_uses_ppa(self):
        engine = StreamEngine(small_topology(), small_logic())
        assert engine.scheme.name == "ppa"
        assert engine.replicated == frozenset()

    def test_ppa_replicates_exactly_the_plan(self):
        engine = StreamEngine(small_topology(), small_logic(),
                              plan=[TaskId("L1", 0)])
        assert engine.replicated == frozenset({TaskId("L1", 0)})

    def test_pure_passive_schemes_ignore_the_plan(self):
        for name in ("checkpoint-replay", "source-replay"):
            engine = StreamEngine(
                small_topology(), small_logic(),
                EngineConfig(recovery_scheme=name),
                plan=[TaskId("L1", 0)])
            assert engine.replicated == frozenset()

    def test_empty_scheme_name_rejected(self):
        with pytest.raises(SimulationError, match="recovery_scheme"):
            EngineConfig(recovery_scheme="")

"""Tests for Algorithm 1 (dynamic programming) and the brute-force oracle."""

import pytest

from repro.core import (
    BruteForcePlanner,
    DynamicProgrammingPlanner,
    GreedyPlanner,
    worst_case_fidelity,
)
from repro.errors import PlanningError
from repro.topology import (
    Partitioning,
    TopologyBuilder,
    linear_chain,
    propagate_rates,
    uniform_source_rates,
)


def _small_cases():
    """Small topologies where the brute force oracle is affordable."""
    chain = linear_chain([2, 2, 1])
    skewed = (
        TopologyBuilder()
        .source("S", 2, task_weights=(3.0, 1.0))
        .operator("A", 2, task_weights=(1.0, 2.0))
        .operator("B", 1)
        .chain("S", "A", "B", pattern=Partitioning.FULL)
        .build()
    )
    join = (
        TopologyBuilder()
        .source("Sa", 2)
        .source("Sb", 1)
        .join("J", 2)
        .operator("K", 1)
        .connect("Sa", "J", Partitioning.FULL)
        .connect("Sb", "J", Partitioning.FULL)
        .connect("J", "K", Partitioning.FULL)
        .build()
    )
    return [chain, skewed, join]


class TestOptimality:
    @pytest.mark.parametrize("case", range(3))
    @pytest.mark.parametrize("budget", [2, 3, 4, 5])
    def test_dp_matches_brute_force_value(self, case, budget):
        topology = _small_cases()[case]
        rates = propagate_rates(topology, uniform_source_rates(topology, 10.0))
        dp = DynamicProgrammingPlanner().plan(topology, rates, budget)
        oracle = BruteForcePlanner().plan(topology, rates, budget)
        dp_value = worst_case_fidelity(topology, rates, dp.replicated)
        oracle_value = worst_case_fidelity(topology, rates, oracle.replicated)
        assert dp_value == pytest.approx(oracle_value)

    @pytest.mark.parametrize("budget", [3, 4, 5, 6])
    def test_dp_never_below_greedy(self, chain_topology, chain_rates, budget):
        dp = DynamicProgrammingPlanner().plan(chain_topology, chain_rates, budget)
        greedy = GreedyPlanner().plan(chain_topology, chain_rates, budget)
        assert worst_case_fidelity(chain_topology, chain_rates, dp.replicated) >= (
            worst_case_fidelity(chain_topology, chain_rates, greedy.replicated)
        )


class TestMechanics:
    def test_respects_budget(self, chain_topology, chain_rates):
        for budget in range(0, 8):
            plan = DynamicProgrammingPlanner().plan(chain_topology, chain_rates, budget)
            assert plan.usage <= budget

    def test_zero_budget_gives_empty_plan(self, chain_topology, chain_rates):
        plan = DynamicProgrammingPlanner().plan(chain_topology, chain_rates, 0)
        assert plan.usage == 0

    def test_budget_below_tree_size_gives_empty_plan(self, chain_topology,
                                                     chain_rates):
        # Smallest MC-tree needs 4 tasks (one per operator).
        plan = DynamicProgrammingPlanner().plan(chain_topology, chain_rates, 3)
        assert plan.usage == 0

    def test_plans_are_unions_of_mc_trees(self, chain_topology, chain_rates):
        plan = DynamicProgrammingPlanner().plan(chain_topology, chain_rates, 6)
        assert worst_case_fidelity(chain_topology, chain_rates, plan.replicated) > 0.0

    def test_negative_budget_rejected(self, chain_topology, chain_rates):
        with pytest.raises(PlanningError):
            DynamicProgrammingPlanner().plan(chain_topology, chain_rates, -1)

    def test_deterministic(self, chain_topology, chain_rates):
        a = DynamicProgrammingPlanner().plan(chain_topology, chain_rates, 6)
        b = DynamicProgrammingPlanner().plan(chain_topology, chain_rates, 6)
        assert a.replicated == b.replicated

    def test_theorem1_prefers_fewer_tasks_on_ties(self):
        """Theorem 1: among equal-OF plans the DP uses minimal resources."""
        topo = linear_chain([2, 2, 2], pattern=Partitioning.ONE_TO_ONE)
        rates = propagate_rates(topo, uniform_source_rates(topo, 10.0))
        plan = DynamicProgrammingPlanner().plan(topo, rates, 4)
        # MC-trees are disjoint 3-task paths; a 4th task buys nothing, so the
        # optimal plan keeps usage at 3.
        assert plan.usage == 3

    def test_overlapping_trees_share_replicated_tasks(self, merge_tree_topology,
                                                      merge_tree_rates):
        """In a merge tree, one extra task can complete a second MC-tree."""
        planner = DynamicProgrammingPlanner()
        four = planner.plan(merge_tree_topology, merge_tree_rates, 4)
        five = planner.plan(merge_tree_topology, merge_tree_rates, 5)
        v4 = worst_case_fidelity(merge_tree_topology, merge_tree_rates,
                                 four.replicated)
        v5 = worst_case_fidelity(merge_tree_topology, merge_tree_rates,
                                 five.replicated)
        assert v4 == pytest.approx(1 / 8)
        assert v5 == pytest.approx(2 / 8)  # the second tree reuses A, B, C

    def test_beam_restricts_search_but_stays_feasible(self, chain_topology,
                                                      chain_rates):
        plan = DynamicProgrammingPlanner(beam=2).plan(chain_topology, chain_rates, 8)
        assert plan.usage <= 8

    def test_value_increases_with_budget(self, merge_tree_topology,
                                         merge_tree_rates):
        planner = DynamicProgrammingPlanner()
        values = []
        for budget in (4, 8, 12):
            plan = planner.plan(merge_tree_topology, merge_tree_rates, budget)
            values.append(worst_case_fidelity(
                merge_tree_topology, merge_tree_rates, plan.replicated
            ))
        assert values == sorted(values)
        assert values[0] > 0.0

"""Packaging for the PPA reproduction.

``pip install -e .`` works on any normal machine.  This machine has no
network access and no ``wheel`` distribution, so PEP 660 editable wheels
cannot be built here; the legacy editable path works instead:

    python setup.py develop        # then: pyenv rehash (pyenv setups)

Installing (editable or not) provides the ``repro-experiments`` console
script, the CLI behind ``python -m repro.experiments`` (paper figures plus
the ``scenario``/``grid`` subcommands of the declarative scenario API).
"""

from pathlib import Path

from setuptools import find_packages, setup

_ROOT = Path(__file__).resolve().parent
_README = _ROOT / "README.md"

setup(
    name="repro-ppa",
    version="1.1.0",
    description=(
        "Reproduction of 'Tolerating Correlated Failures in Massively "
        "Parallel Stream Processing Engines' (ICDE 2016): Output Fidelity, "
        "PPA replication planners, and a deterministic simulated MPSPE "
        "behind a declarative scenario API."
    ),
    long_description=_README.read_text(encoding="utf-8") if _README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro-experiments = repro.experiments.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Distributed Computing",
    ],
)

"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on this machine has no network access and no ``wheel``
distribution, so PEP 660 editable wheels cannot be built; this shim lets the
legacy ``setup.py develop`` editable path work instead:

    pip install -e . --no-build-isolation --no-use-pep517

All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

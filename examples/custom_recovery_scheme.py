"""Plug a custom fault-tolerance scheme into the engine in ~10 lines.

The engine resolves its recovery protocol through the RECOVERY_SCHEMES
registry, so a new scheme is a subclass + a decorator — no engine edits.
This one ("tiered") hot-replicates only the *deep* half of the topology
(operators far from the sources, whose state is the most expensive to
rebuild by replay) and lets the shallow half recover from checkpoints:
a middle ground between the paper's PPA plans and full active-standby.

The scheme then composes with everything built on the engine: scenarios
select it by name via `recovery=`, grids sweep it against the built-ins,
and the content-addressed cache keys on it automatically.

Run:  python examples/custom_recovery_scheme.py
"""

from repro import RECOVERY_SCHEMES, FailureSpec, RecoveryScheme, Scenario, run_scenarios


# The whole plug-in: which tasks get a hot replica.  Takeover, checkpoint
# restore, replay and forging are inherited from the base machinery.
@RECOVERY_SCHEMES.register("tiered")
class TieredScheme(RecoveryScheme):
    """Active replicas for the deeper half of the dataflow, passive rest."""

    name = "tiered"

    def replicated_tasks(self, topology, planned):
        depth = {}
        for name in topology.topological_order():
            ups = topology.upstream_of(name)
            depth[name] = 1 + max((depth[u] for u in ups), default=-1)
        cutoff = max(depth.values()) / 2
        return frozenset(t for t in topology.tasks()
                         if depth[t.operator] > cutoff)


def main():
    scenarios = [
        Scenario(
            name=scheme,
            workload="synthetic",
            workload_params={"rate_per_source": 1000.0, "window_seconds": 10.0,
                             "tuple_scale": 16.0},
            planner="none",
            engine={"checkpoint_interval": 15.0},
            recovery=scheme,
            failures=(FailureSpec("correlated", at=45.0),),
            duration=60.0,
        )
        for scheme in ("checkpoint-replay", "tiered", "active-standby")
    ]
    print("correlated failure of all 15 operator tasks, Fig. 6 workload:\n")
    for result in run_scenarios(scenarios):
        modes = sorted({r.mode for r in result.recoveries})
        print(f"  {result.scenario.name:18s} max latency "
              f"{result.max_recovery_latency:6.2f}s  modes={modes}")
    print("\n'tiered' recovers the deep tasks by takeover and the shallow "
          "ones\nfrom checkpoints - between the two built-in extremes.")


if __name__ == "__main__":
    main()

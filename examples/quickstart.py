"""Quickstart: declare a scenario, run it, see what active replication buys.

Declares a small aggregation topology as a serializable recipe, compares the
greedy and structure-aware planners on it via a scenario grid, then runs the
structure-aware plan through the engine with everything outside the plan
killed — tentative outputs keep flowing from the replicated subtree.

The whole pipeline (topology -> rates -> planner -> engine -> failure
injection) is driven by `repro.run_scenario`; no hand-wiring.

Run:  python examples/quickstart.py
"""

import json

import repro


def build_recipe() -> repro.TopologyRecipe:
    """Four sensor sources feeding a two-level aggregation with one sink."""
    return repro.TopologyRecipe(
        operators=(
            repro.OperatorDef("sensors", 4, kind="source"),
            repro.OperatorDef("preagg", 4, selectivity=0.5),
            repro.OperatorDef("merge", 2, selectivity=0.5),
            repro.OperatorDef("report", 1),
        ),
        edges=(
            repro.EdgeDef("sensors", "preagg", "one-to-one"),
            repro.EdgeDef("preagg", "merge", "merge"),
            repro.EdgeDef("merge", "report", "merge"),
        ),
    )


def main():
    recipe = build_recipe()
    topology = recipe.build()
    print(topology.describe())

    # One declarative scenario: the custom topology, a 40% replication
    # budget, and a failure killing every task outside the plan while
    # recovery stays off — the Fig. 12/13 tentative-output situation.
    base = repro.Scenario(
        workload="custom",
        topology=recipe,
        workload_params={"source_rate": 50.0, "window_seconds": 10.0},
        budget_fraction=0.4,
        engine={"checkpoint_interval": None, "tentative_outputs": True,
                "recovery_enabled": False},
        failures=(repro.FailureSpec("unreplicated", at=10.0),),
        duration=20.0,
    )
    print(f"\nScenario JSON round-trips: "
          f"{repro.Scenario.from_json(base.to_json()) == base}")

    budget = repro.budget_from_fraction(topology, 0.4)
    print(f"Replication budget: {budget} of {topology.num_tasks} tasks (40%)\n")

    # Grids run through a pluggable execution backend ("serial", "threads",
    # or "processes" for real parallelism); results are deterministic and
    # identical whichever backend executes them.
    results = repro.run_grid(base, {"planner": ["greedy", "structure-aware"]},
                             backend="threads")
    for result in results:
        tasks = ", ".join(str(t) for t in sorted(result.plan.replicated))
        print(f"{result.plan.planner:>7}: OF = {result.worst_case_fidelity:.3f}"
              f"  plan = [{tasks}]")

    sa = results[-1]
    print(f"\nEngine run ({sa.plan.planner} plan): "
          f"{sa.complete_sink_batches} complete output batches, "
          f"{sa.tentative_sink_batches} tentative ones after the failure "
          f"({sa.batches_forged} forged punctuations).")
    if sa.tentative_sink_batches:
        print("Tentative batches keep flowing — computed from the replicated "
              "MC-trees only.")

    # Scenarios are plain data: this is exactly what
    # `python -m repro.experiments scenario <file.json>` consumes.
    print("\nScenario document:")
    print(json.dumps(base.to_dict(), indent=2)[:400] + " ...")


if __name__ == "__main__":
    main()

"""Quickstart: plan active replication for a topology and see what it buys.

Builds a small aggregation topology, computes Output Fidelity under the
worst-case correlated failure for plans produced by the greedy and the
structure-aware planners, then actually runs the topology on the simulated
engine, kills everything outside the SA plan, and shows tentative outputs
flowing.

Run:  python examples/quickstart.py
"""

from repro.core import (
    GreedyPlanner,
    StructureAwarePlanner,
    budget_from_fraction,
    worst_case_fidelity,
)
from repro.engine import EngineConfig, LogicFactory, StreamEngine
from repro.queries import WindowedSelectivityOperator
from repro.topology import (
    Partitioning,
    TopologyBuilder,
    propagate_rates,
    uniform_source_rates,
)
from repro.workloads import UniformRateSource


def build_topology():
    """Four sources feeding a two-level aggregation with a single sink."""
    return (
        TopologyBuilder()
        .source("sensors", 4)
        .operator("preagg", 4, selectivity=0.5)
        .operator("merge", 2, selectivity=0.5)
        .operator("report", 1)
        .connect("sensors", "preagg", Partitioning.ONE_TO_ONE)
        .connect("preagg", "merge", Partitioning.MERGE)
        .connect("merge", "report", Partitioning.MERGE)
        .build()
    )


def main():
    topology = build_topology()
    print(topology.describe())
    rates = propagate_rates(topology, uniform_source_rates(topology, 100.0))

    budget = budget_from_fraction(topology, 0.4)
    print(f"\nReplication budget: {budget} of {topology.num_tasks} tasks (40%)\n")

    for planner in (GreedyPlanner(), StructureAwarePlanner()):
        plan = planner.plan(topology, rates, budget)
        fidelity = worst_case_fidelity(topology, rates, plan.replicated)
        tasks = ", ".join(str(t) for t in sorted(plan.replicated))
        print(f"{planner.name:>7}: OF = {fidelity:.3f}  plan = [{tasks}]")

    # Run the SA plan on the engine and kill everything else.
    plan = StructureAwarePlanner().plan(topology, rates, budget)
    logic = LogicFactory()
    logic.register_source("sensors", UniformRateSource(50.0))
    for name in ("preagg", "merge", "report"):
        logic.register_operator(name, lambda: WindowedSelectivityOperator(10.0, 1.0))

    config = EngineConfig(checkpoint_interval=None, tentative_outputs=True,
                          recovery_enabled=False)
    engine = StreamEngine(topology, logic, config, plan=plan.replicated)
    victims = [t for t in topology.tasks() if t not in plan.replicated]
    engine.schedule_task_failure(10.0, victims)
    engine.run(20.0)

    complete = engine.metrics.sink_outputs(tentative=False)
    tentative = engine.metrics.sink_outputs(tentative=True)
    print(f"\nEngine run: {len(complete)} complete output batches, "
          f"{len(tentative)} tentative ones after the correlated failure.")
    if tentative:
        sizes = [len(r.tuples) for r in tentative[-3:]]
        print(f"Tentative batches keep flowing (last sizes: {sizes}) — "
              "computed from the replicated MC-trees only.")


if __name__ == "__main__":
    main()

"""Sweep service quickstart: one broker, two clients, shared work.

Boots a `SweepServer` in-process on a loopback port with a shared
content-addressed cache, then submits two *overlapping* scenario grids
from two `SweepClient`s running concurrently.  The broker dedups the
overlap by digest — each unique simulation executes exactly once, the
outcome fans out to both submitters — and schedules the rest round-robin
so neither client starves the other.  A third submission at the end hits
the cache for every cell without executing anything.

The same server is what `python -m repro.experiments serve` runs as a
long-lived process (plus a SIGTERM drain that journals queued cells for
the next start); `submit` and `status` are the CLI spellings of the
client calls below.

Run:  python examples/serve_quickstart.py
"""

import tempfile
import threading

from repro import Scenario
from repro.service import SweepClient, SweepServer


def sweep(budgets) -> list[Scenario]:
    """One small scenario per replication budget."""
    return [Scenario(name=f"budget-{b}", budget=b, duration=12.0)
            for b in budgets]


def main():
    cache_dir = tempfile.mkdtemp(prefix="repro-sweep-cache-")
    server = SweepServer(cache=cache_dir).start()
    host, port = server.address
    print(f"sweep server on {host}:{port}, cache {cache_dir}\n")

    # Two clients, overlapping grids: budgets 0-3 and 2-5 share 2 cells.
    outcomes = {}

    def submit(name, budgets):
        with SweepClient(server.address, client_id=name) as client:
            job = client.submit(sweep(budgets))
            outcomes[name] = client.wait(
                job,
                progress=lambda e: print(
                    f"  {name} [{e['done']}/{e['total']}] "
                    f"{e['label']}: {e['source']}"))

    threads = [threading.Thread(target=submit, args=("alice", range(0, 4))),
               threading.Thread(target=submit, args=("bob", range(2, 6)))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    for name, outcome in sorted(outcomes.items()):
        tally = outcome.tally
        print(f"\n{name}: {tally['total']} cells — {tally['executed']} "
              f"executed, {tally['deduped']} deduped, "
              f"{tally['cache_hits']} cache hits")
        for result in outcome.results():
            print(f"  {result.scenario.name}: "
                  f"fidelity {result.worst_case_fidelity:.3f}")

    # A latecomer re-running the union pays nothing: all cache hits.
    with SweepClient(server.address, client_id="carol") as carol:
        outcome = carol.wait(carol.submit(sweep(range(0, 6))))
    print(f"\ncarol (re-run of the union): "
          f"{outcome.tally['cache_hits']}/{outcome.tally['total']} "
          f"cache hits, {outcome.tally['executed']} executed")

    server.stop()


if __name__ == "__main__":
    main()

"""Break the cluster fabric on purpose — and watch it finish anyway.

The chaos harness (`repro.chaos`) runs an ordinary scenario grid on a
local cluster fleet while injecting a *seeded, deterministic* fault
schedule: kill a worker mid-cell, SIGKILL-restart the coordinator on its
write-ahead journal, delay and duplicate wire messages.  Every fault
decision is a pure hash of ``(seed, fault kind, message identity)``, so
the same schedule injects the same faults on every run — which is what
makes resilience testable instead of flaky.

The run below schedules real carnage (a worker kill, a coordinator
crash-restart, wire delays and duplicates) and still expects — and
checks — a clean report: every cell executed, zero errors.  The slow
runner stretches the grid so the scheduled events land mid-flight.

The CLI spelling of the same run:

    repro-experiments chaos my_grid.json --seed 7 \
        --kill 0.4:0 --crash 0.9 --delay-ms 25 --delay-fraction 0.5 \
        --duplicate-fraction 0.3 --slow-runner-ms 150 --workers 2

Run:  python examples/chaos_quickstart.py
"""

import json

from repro.chaos import ChaosEvent, ChaosSchedule, run_chaos
from repro.scenarios import FailureSpec, Scenario, expand_grid

base = Scenario(
    name="chaos-demo",
    workload="synthetic",
    workload_params={"rate_per_source": 200.0, "window_seconds": 5.0,
                     "tuple_scale": 16.0},
    planner="structure-aware",
    failures=(FailureSpec("correlated", at=10.0),),
    duration=20.0,
)
grid = expand_grid(base, {"budget_fraction": [0.0, 0.25, 0.5],
                          "seed": [1, 2]})

schedule = ChaosSchedule(
    seed=7,
    events=(
        ChaosEvent(at=0.4, action="kill", slot=0),   # SIGKILL a worker
        ChaosEvent(at=0.9, action="crash"),          # coordinator dies +
    ),                                               #   restarts on its WAL
    delay_ms=25.0, delay_fraction=0.5,               # laggy wire
    duplicate_fraction=0.3,                          # chatty wire
    slow_runner_ms=150.0,                            # stretch the grid so
)                                                    #   the events land


def main():
    # Schedules are values: they JSON-round-trip, so a chaos run is
    # reproducible from one document plus the grid it ran against.
    assert ChaosSchedule.from_dict(
        json.loads(json.dumps(schedule.to_dict()))) == schedule

    report, faults = run_chaos(grid, schedule, local_workers=2)

    injected = ", ".join(f"{n} {kind}" for kind, n
                         in sorted(faults.counts().items()))
    print(f"injected: {injected}")
    print(f"{report.total} cells: {report.executed} executed, "
          f"{report.errors} errors, {report.retries} retries")
    for error in faults.errors:
        print(f"harness: {error}")

    # The whole point: carnage in, clean deterministic results out.
    assert report.errors == 0, "the fabric should have absorbed the faults"
    for result in report.results():
        print(f"  {result.scenario.name} "
              f"(budget={result.scenario.budget_fraction}, "
              f"seed={result.scenario.seed}): "
              f"fidelity {result.worst_case_fidelity:.3f}")


if __name__ == "__main__":
    main()

"""Q1: top-100 hottest pages over a WorldCup-like access log (Sec. VI-B).

Runs the hierarchical top-k query twice — once failure-free, once with a
worst-case correlated failure under a structure-aware PPA plan — and reports
the measured accuracy of the tentative top-k sets against the OF prediction.

Run:  python examples/worldcup_topk.py
"""

from repro.core import StructureAwarePlanner, budget_from_fraction, worst_case_fidelity
from repro.experiments.accuracy import measured_accuracy, run_baseline, settings_for
from repro.experiments.bundles import q1_bundle


def main():
    bundle = q1_bundle(window_seconds=20.0, pages=400, tuple_scale=8.0)
    print(bundle.topology.describe())
    settings = settings_for(bundle)
    print(f"\nFailure at t={settings.fail_time:.0f}s; accuracy measured over "
          f"[{settings.measure_from:.0f}, {settings.duration:.0f}]s\n")

    baseline = run_baseline(bundle, settings)
    planner = StructureAwarePlanner()
    print(f"{'fraction':>8} | {'OF':>6} | {'accuracy':>8}")
    print("-" * 30)
    for fraction in (0.2, 0.4, 0.6, 0.8):
        budget = budget_from_fraction(bundle.topology, fraction)
        plan = planner.plan(bundle.topology, bundle.rates, budget)
        predicted = worst_case_fidelity(bundle.topology, bundle.rates,
                                        plan.replicated)
        actual = measured_accuracy(bundle, plan.replicated, baseline, settings)
        print(f"{fraction:>8.1f} | {predicted:>6.3f} | {actual:>8.3f}")

    print("\nOF tracks the measured top-k accuracy: more replicated "
          "aggregation subtrees keep more of the true top-100 alive.")


if __name__ == "__main__":
    main()

"""Run a parameter grid on the distributed cluster fabric in ~20 lines.

`backend="cluster"` swaps the in-process pool for a coordinator that
leases cells to worker agents over TCP.  Here the backend auto-spawns a
two-worker local fleet on loopback — the full wire path (registration,
leases, heartbeats, result streaming) with zero infrastructure — and the
results come back digest-identical to a serial run: same sink bytes,
same report, same cache keys.

To stretch the same grid across machines, keep the script as is and
point external workers at the printed coordinator address:

    repro-experiments worker --connect HOST:PORT

or let the backend bootstrap them over ssh
(``ClusterBackend(ssh_hosts=["node1", "node2"], host="0.0.0.0")``).

Run:  python examples/cluster_quickstart.py
"""

from repro.cluster import ClusterBackend
from repro.scenarios import FailureSpec, GridSession, Scenario, expand_grid

base = Scenario(
    name="cluster-demo",
    workload="synthetic",
    workload_params={"rate_per_source": 200.0, "window_seconds": 5.0,
                     "tuple_scale": 16.0},
    planner="structure-aware",
    failures=(FailureSpec("correlated", at=10.0),),
    duration=20.0,
)
grid = expand_grid(base, {"budget_fraction": [0.0, 0.25, 0.5],
                          "seed": [1, 2]})


def main():
    # Two local worker agents; the coordinator port is OS-assigned.
    # The same two lines on a multi-host fleet: ssh_hosts=[...], host="0.0.0.0".
    with ClusterBackend(local_workers=2) as backend:
        host, port = backend.address
        print(f"coordinator on {host}:{port}, "
              f"2 local workers — join with: "
              f"repro-experiments worker --connect {host}:{port}\n")
        report = GridSession(
            backend, progress=lambda event: print(event.render())).run(grid)

    print(f"\n{report.total} cells: {report.executed} executed, "
          f"{report.errors} errors, {report.retries} retries")
    for result in report.results():
        label = result.scenario.name
        budget = result.scenario.budget_fraction
        print(f"  {label} (budget={budget}, seed={result.scenario.seed}): "
              f"fidelity {result.worst_case_fidelity:.3f}")


if __name__ == "__main__":
    main()

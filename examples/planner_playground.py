"""Planner playground: DP vs SA vs Greedy across budgets on random topologies.

Generates a random query topology (Sec. VI-C generator), prints it, and
sweeps the replication budget from one task to the whole topology, showing
the worst-case Output Fidelity each planner achieves.

Run:  python examples/planner_playground.py [seed]
"""

import sys

from repro.core import (
    DynamicProgrammingPlanner,
    GreedyPlanner,
    StructureAwarePlanner,
    count_mc_tree_derivations,
    worst_case_fidelity,
)
from repro.errors import MCTreeExplosionError
from repro.topology import (
    TopologySpec,
    WeightSkew,
    generate_source_rates,
    generate_topology,
    propagate_rates,
)


def main(seed: int = 11):
    spec = TopologySpec(n_operators=(4, 6), parallelism=(2, 4),
                        weight_skew=WeightSkew.ZIPF, zipf_s=0.5,
                        join_fraction=0.25)
    topology = generate_topology(spec, seed)
    rates = propagate_rates(topology, generate_source_rates(topology, seed))
    print(topology.describe())
    print(f"\nMC-tree derivations: {count_mc_tree_derivations(topology)}; "
          f"tasks: {topology.num_tasks}\n")

    planners = [GreedyPlanner(), StructureAwarePlanner()]
    try:
        DynamicProgrammingPlanner(tree_limit=2000).plan(topology, rates, 1)
        planners.append(DynamicProgrammingPlanner(tree_limit=2000))
    except MCTreeExplosionError:
        print("(DP skipped: too many MC-trees to enumerate)\n")

    budgets = sorted({
        max(1, topology.num_tasks * pct // 100) for pct in (10, 25, 50, 75, 100)
    })
    header = f"{'budget':>6} | " + " | ".join(f"{p.name:>7}" for p in planners)
    print(header)
    print("-" * len(header))
    for budget in budgets:
        cells = []
        for planner in planners:
            plan = planner.plan(topology, rates, budget)
            cells.append(worst_case_fidelity(topology, rates, plan.replicated))
        print(f"{budget:>6} | " + " | ".join(f"{v:>7.3f}" for v in cells))

    print("\nGreedy replicates individually-critical tasks; SA buys complete "
          "MC-trees, so it\ndominates at small budgets — the gap the paper "
          "reports in Fig. 13 and Fig. 14.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 11)

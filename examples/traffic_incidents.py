"""Q2: traffic-jam incident detection with a stream join (Sec. VI-B).

Demonstrates why the correlation of a join's input streams matters: the same
budget planned under OF (join-aware) and under IC (join-agnostic) yields very
different tentative-output quality during a correlated failure.

Run:  python examples/traffic_incidents.py
"""

from repro.core import (
    IC_OBJECTIVE,
    StructureAwarePlanner,
    budget_from_fraction,
    worst_case_completeness,
    worst_case_fidelity,
)
from repro.experiments.accuracy import measured_accuracy, run_baseline, settings_for
from repro.experiments.bundles import q2_bundle


def main():
    bundle = q2_bundle(window_seconds=20.0, tuple_scale=80.0)
    print(bundle.topology.describe())
    print("\nO3 is a correlated-input operator: an incident only surfaces if "
          "both the\nsegment-speed stream and the incident stream survive "
          "for its segment.\n")

    settings = settings_for(bundle)
    baseline = run_baseline(bundle, settings)
    of_planner = StructureAwarePlanner()
    ic_planner = StructureAwarePlanner(IC_OBJECTIVE)

    header = (f"{'fraction':>8} | {'OF value':>8} {'OF-plan acc':>11} | "
              f"{'IC value':>8} {'IC-plan acc':>11}")
    print(header)
    print("-" * len(header))
    for fraction in (0.4, 0.6, 0.8):
        budget = budget_from_fraction(bundle.topology, fraction)
        of_plan = of_planner.plan(bundle.topology, bundle.rates, budget)
        ic_plan = ic_planner.plan(bundle.topology, bundle.rates, budget)
        of_value = worst_case_fidelity(bundle.topology, bundle.rates,
                                       of_plan.replicated)
        ic_value = worst_case_completeness(bundle.topology, bundle.rates,
                                           ic_plan.replicated)
        of_acc = measured_accuracy(bundle, of_plan.replicated, baseline, settings)
        ic_acc = measured_accuracy(bundle, ic_plan.replicated, baseline, settings)
        print(f"{fraction:>8.1f} | {of_value:>8.3f} {of_acc:>11.3f} | "
              f"{ic_value:>8.3f} {ic_acc:>11.3f}")

    print("\nIC reports optimistic values but its plans replicate tasks that "
          "cannot form\ncomplete joined MC-trees — the OF-planned accuracy is "
          "what users actually see.")


if __name__ == "__main__":
    main()

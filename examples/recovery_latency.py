"""Recovery-latency shootout on the Fig. 6 workload (Sec. VI-A).

Injects a single-task failure and a correlated failure (all 15 operator
tasks at once) under each fault-tolerance technique and reports how long
recovery takes until every task has caught up with its pre-failure progress
vector — the paper's recovery-latency definition.

Each cell is one declarative scenario: the technique maps to a planner name
("all" or "none") plus engine overrides, the failure to a FailureSpec, and
`repro.run_scenarios` fans the whole sweep out over a process pool — the
engine is deterministic, so the results match a serial run exactly.

Run:  python examples/recovery_latency.py
"""

import sys

from repro import FailureSpec, run_scenarios
from repro.experiments.recovery import DEFAULT_TECHNIQUES

WINDOW, RATE, TUPLE_SCALE = 10.0, 1000.0, 16.0


def main():
    print(f"Fig. 6 workload: 16 sources @ {RATE:g} t/s, {WINDOW:g}s windows, "
          "operators 8/4/2/1\n")

    single = FailureSpec("single-task", at=45.0,
                         params={"operator": "O2", "index": 0})
    correlated = FailureSpec("correlated", at=45.0)
    scenarios = [
        technique.scenario(window=WINDOW, rate=RATE, tuple_scale=TUPLE_SCALE,
                           failure=failure)
        for technique in DEFAULT_TECHNIQUES
        for failure in (single, correlated)
    ]
    results = run_scenarios(
        scenarios, backend="processes",
        progress=lambda event: print(event.render(), file=sys.stderr),
    )

    print(f"{'technique':>15} | {'single failure':>14} | {'correlated':>10}")
    print("-" * 47)
    for technique, (single_res, corr_res) in zip(
            DEFAULT_TECHNIQUES,
            zip(results[0::2], results[1::2])):
        assert single_res.all_recovered and corr_res.all_recovered
        print(f"{technique.label:>15} | "
              f"{single_res.mean_recovery_latency:>13.2f}s | "
              f"{corr_res.max_recovery_latency:>9.2f}s")

    print("\nActive replicas recover in roughly constant time; checkpoint "
          "recovery grows\nwith the checkpoint interval; Storm replays whole "
          "windows through the topology\nand pays for upstream "
          "synchronisation on correlated failures.")


if __name__ == "__main__":
    main()

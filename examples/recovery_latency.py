"""Recovery-latency shootout on the Fig. 6 workload (Sec. VI-A).

Injects a correlated failure (all 15 operator tasks at once) under each
fault-tolerance technique and reports how long it takes until every task has
caught up with its pre-failure progress vector — the paper's recovery-latency
definition.

Run:  python examples/recovery_latency.py
"""

from repro.experiments.recovery import (
    DEFAULT_TECHNIQUES,
    correlated_failure_latency,
    single_failure_latency,
)
from repro.topology import TaskId


def main():
    window, rate = 10.0, 1000.0
    print(f"Fig. 6 workload: 16 sources @ {rate:g} t/s, {window:g}s windows, "
          "operators 8/4/2/1\n")

    print(f"{'technique':>15} | {'single failure':>14} | {'correlated':>10}")
    print("-" * 47)
    for technique in DEFAULT_TECHNIQUES:
        single = single_failure_latency(
            technique, window=window, rate=rate,
            positions=(TaskId("O2", 0),), tuple_scale=16.0,
        )
        correlated = correlated_failure_latency(
            technique, window=window, rate=rate, tuple_scale=16.0,
        )
        print(f"{technique.label:>15} | {single:>13.2f}s | {correlated:>9.2f}s")

    print("\nActive replicas recover in roughly constant time; checkpoint "
          "recovery grows\nwith the checkpoint interval; Storm replays whole "
          "windows through the topology\nand pays for upstream "
          "synchronisation on correlated failures.")


if __name__ == "__main__":
    main()

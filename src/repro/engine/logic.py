"""Operator-logic and source protocols implemented by query libraries.

The engine is agnostic to what operators compute — exactly as Storm is: an
operator is a user-defined function (Sec. II-A).  Query implementations in
:mod:`repro.queries` subclass :class:`OperatorLogic`, and workload generators
in :mod:`repro.workloads` subclass :class:`SourceFunction`.

Determinism contract: given the same sequence of ``process_batch`` calls an
implementation must produce the same outputs and snapshots, because replicas
and checkpoint recovery re-execute the same batches.
"""

from __future__ import annotations

import abc
import copy
from typing import Any, Mapping, Sequence

from repro.engine.tuples import KeyedTuple
from repro.topology.operators import TaskId


class OperatorLogic(abc.ABC):
    """Stateful per-task computation; one instance per (task, incarnation)."""

    @abc.abstractmethod
    def process_batch(self, task: TaskId, batch_end_time: float,
                      inputs: Mapping[TaskId, Sequence[KeyedTuple]]
                      ) -> list[KeyedTuple]:
        """Consume one aligned input batch, return the output tuples.

        ``inputs`` maps each upstream task to the tuples it contributed to
        this batch (possibly empty).  Tuples must be processed in the
        deterministic order given (upstream tasks are pre-sorted).
        """

    def process_batch_reference(self, task: TaskId, batch_end_time: float,
                                inputs: Mapping[TaskId, Sequence[KeyedTuple]]
                                ) -> list[KeyedTuple]:
        """Per-tuple executable specification of :meth:`process_batch`.

        Kernelized operators (see :mod:`repro.engine.kernels`) override this
        with the original per-tuple implementation so randomized parity
        tests can pin the batch kernels to it — the same contract as
        :meth:`repro.engine.routing.Router.distribute_reference`.  The two
        paths may maintain differently-shaped internal state, so drive each
        on its own operator instance; for operators without a kernel the
        default simply runs the (single) implementation.
        """
        return self.process_batch(task, batch_end_time, inputs)

    def state_size(self) -> int:
        """Approximate number of tuples held in state (checkpoint cost)."""
        return 0

    def snapshot(self) -> Any:
        """A deep, self-contained copy of the operator state."""
        return copy.deepcopy(self.__dict__)

    def restore(self, snapshot: Any) -> None:
        """Restore state captured by :meth:`snapshot`."""
        self.__dict__.clear()
        self.__dict__.update(copy.deepcopy(snapshot))


class SourceFunction(abc.ABC):
    """Deterministic batch generator for one source task."""

    @abc.abstractmethod
    def tuples_for_batch(self, task: TaskId, batch_index: int) -> list[KeyedTuple]:
        """The tuples task ``task`` emits in batch ``batch_index``.

        Must be pure: the engine re-invokes it when a failed source task is
        recovered or when source data is replayed (Storm mode).
        """


class MemoizedSource(SourceFunction):
    """Bounded per-task memo over a pure :class:`SourceFunction`.

    The engine wraps every source task's function in one of these so replays
    (recovery backfills, physically-trimmed source-log regeneration) reuse
    the generated tuples instead of recomputing them.  Purity makes the memo
    invisible; the bound keeps memory O(window), evicting the oldest batch
    first (replays walk forward from a recent index).
    """

    __slots__ = ("_fn", "_task", "_capacity", "_batches")

    def __init__(self, fn: SourceFunction, task: TaskId, capacity: int = 128):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._fn = fn
        self._task = task
        self._capacity = capacity
        self._batches: dict[int, list[KeyedTuple]] = {}

    def tuples_for_batch(self, task: TaskId, batch_index: int) -> list[KeyedTuple]:
        if task != self._task:  # pragma: no cover - defensive
            return self._fn.tuples_for_batch(task, batch_index)
        batches = self._batches
        cached = batches.get(batch_index)
        if cached is None:
            cached = self._fn.tuples_for_batch(task, batch_index)
            if len(batches) >= self._capacity:
                # Dicts preserve insertion order, so the first key is the
                # oldest-inserted batch — O(1) instead of an O(n) min scan.
                try:
                    del batches[next(iter(batches))]
                except (KeyError, StopIteration, RuntimeError):  # pragma: no cover
                    # Shared memos (grid threads backend) may race on the
                    # eviction — including a concurrent insert between
                    # iter() and next() ("dictionary changed size during
                    # iteration"); purity makes losing the race harmless.
                    pass
            batches[batch_index] = cached
        return cached


class LogicFactory:
    """Maps operators to logic/source constructors for one engine run."""

    def __init__(self,
                 operators: Mapping[str, "type[OperatorLogic] | Any"] | None = None,
                 sources: Mapping[str, SourceFunction] | None = None):
        self._operators = dict(operators or {})
        self._sources = dict(sources or {})

    def register_operator(self, name: str, factory: Any) -> "LogicFactory":
        """Register a zero-argument callable building the logic for ``name``."""
        self._operators[name] = factory
        return self

    def register_source(self, name: str, source: SourceFunction) -> "LogicFactory":
        """Register the (shared, stateless) source function for ``name``."""
        self._sources[name] = source
        return self

    def logic_for(self, task: TaskId) -> OperatorLogic:
        """A fresh logic instance for ``task`` (raises KeyError if missing)."""
        try:
            factory = self._operators[task.operator]
        except KeyError:
            raise KeyError(
                f"no operator logic registered for {task.operator!r}"
            ) from None
        return factory()

    def source_for(self, task: TaskId) -> SourceFunction:
        """The source function of ``task``'s operator (raises if missing)."""
        try:
            return self._sources[task.operator]
        except KeyError:
            raise KeyError(
                f"no source function registered for {task.operator!r}"
            ) from None

    def has_operator(self, name: str) -> bool:
        """Whether operator logic is registered for ``name``."""
        return name in self._operators

    def has_source(self, name: str) -> bool:
        """Whether a source function is registered for ``name``."""
        return name in self._sources

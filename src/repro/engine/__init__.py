"""Simulated MPSPE substrate: the paper's Storm-based system in virtual time.

See DESIGN.md §2 for how this substitutes the paper's EC2 deployment, and
:mod:`repro.engine.engine` for the protocols implemented.
"""

from repro.engine.checkpoint import Checkpoint, CheckpointStore, CheckpointTimings
from repro.engine.cluster import Cluster, Node, NodeKind, placement_node_map
from repro.engine.config import CostModel, EngineConfig, PassiveStrategy
from repro.engine.engine import StreamEngine
from repro.engine.events import EventHandle, Simulator
from repro.engine.kernels import (
    BatchKernel,
    active_kernel,
    kernel_backend,
    numpy_available,
    set_kernel_backend,
)
from repro.engine.logic import (
    LogicFactory,
    MemoizedSource,
    OperatorLogic,
    SourceFunction,
)
from repro.engine.metrics import (
    MetricsCollector,
    RecoveryMode,
    RecoveryRecord,
    TaskCpu,
)
from repro.engine.recovery import (
    RECOVERY_SCHEMES,
    RecoveryContext,
    RecoveryScheme,
    create_scheme,
)
from repro.engine.routing import Router, stable_hash
from repro.engine.tasks import TaskRuntime, TaskStatus
from repro.engine.tuples import Batch, KeyedTuple, SinkRecord, forged_batch

__all__ = [
    "Batch",
    "BatchKernel",
    "Checkpoint",
    "CheckpointStore",
    "CheckpointTimings",
    "Cluster",
    "CostModel",
    "EngineConfig",
    "EventHandle",
    "KeyedTuple",
    "LogicFactory",
    "MemoizedSource",
    "MetricsCollector",
    "Node",
    "NodeKind",
    "OperatorLogic",
    "PassiveStrategy",
    "RECOVERY_SCHEMES",
    "RecoveryContext",
    "RecoveryMode",
    "RecoveryRecord",
    "RecoveryScheme",
    "Router",
    "Simulator",
    "SinkRecord",
    "SourceFunction",
    "StreamEngine",
    "TaskCpu",
    "TaskRuntime",
    "TaskStatus",
    "active_kernel",
    "create_scheme",
    "forged_batch",
    "kernel_backend",
    "numpy_available",
    "placement_node_map",
    "set_kernel_backend",
    "stable_hash",
]

"""The simulated MPSPE: batch dataflow, pluggable fault tolerance, recovery.

:class:`StreamEngine` executes a query topology on a simulated cluster in
virtual time, implementing the data-plane protocols of Sec. V:

* batch processing with batch-over punctuations (a batch message *is* the
  punctuation for its index);
* periodic (staggered) checkpoints of operator state + progress vector,
  with upstream output-buffer trimming;
* failure injection and detection by heartbeat.

What happens *after* a failure is detected — replica takeover, checkpoint
restore + upstream replay, source replay through the whole topology, forged
batch-over punctuations — is delegated to a pluggable
:class:`~repro.engine.recovery.RecoveryScheme` selected by
:attr:`EngineConfig.recovery_scheme <repro.engine.config.EngineConfig>`
(``"ppa"`` by default, the paper's partially-active replication).  Schemes
interact with the run exclusively through a
:class:`~repro.engine.recovery.RecoveryContext` capability object; see
:mod:`repro.engine.recovery` for the strategy protocol and the
:data:`~repro.engine.recovery.RECOVERY_SCHEMES` registry.

Determinism: all scheduling goes through :class:`~repro.engine.events.Simulator`
with stable tie-breaking, keys route via CRC32, and operator logic is
required to be deterministic, so two runs with the same inputs are identical.
"""

from __future__ import annotations

import math
import time
from typing import Iterable, Mapping, Sequence

from repro.core.plans import ReplicationPlan
from repro.engine.checkpoint import Checkpoint, CheckpointStore
from repro.engine.cluster import Cluster
from repro.engine.config import EngineConfig
from repro.engine.events import Simulator
from repro.engine.logic import LogicFactory, MemoizedSource
from repro.engine.metrics import MetricsCollector
from repro.engine.recovery import RecoveryContext, create_scheme
from repro.engine.routing import Router, stable_hash
from repro.engine.tasks import TaskRuntime, TaskStatus
from repro.engine.tuples import Batch, KeyedTuple, SinkRecord
from repro.errors import SimulationError
from repro.topology.graph import Topology
from repro.topology.operators import TaskId


class StreamEngine:
    """One simulated run of a topology under an engine configuration."""

    def __init__(self, topology: Topology, logic: LogicFactory,
                 config: EngineConfig | None = None, *,
                 plan: ReplicationPlan | Iterable[TaskId] = (),
                 cluster: Cluster | None = None,
                 source_replay_window_batches: int = 30,
                 router: Router | None = None,
                 source_memos: "dict[TaskId, MemoizedSource] | None" = None):
        self.topology = topology
        self.logic_factory = logic
        self.config = config or EngineConfig()
        # ``plan`` is either a full ReplicationPlan (keeping planner
        # provenance attached to the run's metrics) or a bare task iterable.
        if isinstance(plan, ReplicationPlan):
            self.plan = plan
        else:
            self.plan = ReplicationPlan(frozenset(plan))
        unknown = self.plan.replicated - set(topology.tasks())
        if unknown:
            raise SimulationError(f"plan references unknown tasks: {sorted(unknown)}")
        self.source_replay_window_batches = source_replay_window_batches
        # Physical output-history retention, in batches: enough for the
        # deepest replay lookback (a Storm-style restart reprocesses the
        # source-replay window, reached heartbeat-detection + restart-delay
        # after the failure), plus slack.  Content older than this AND below
        # the logical trim point can never be replayed again, so it is
        # physically deleted — O(replay window) memory instead of
        # O(duration).
        cfg = self.config
        detection_slack = math.ceil(
            (cfg.heartbeat_interval + cfg.costs.restart_delay)
            / cfg.batch_interval
        )
        self._retention_batches = (
            source_replay_window_batches + detection_slack + 8
        )

        self.sim = Simulator()
        self.metrics = MetricsCollector(plan=self.plan)
        # Routing tables are a pure function of the topology, so repeated
        # runs over one topology (grid cells, prebuilt workers) can share a
        # prebuilt Router — its key memo is content-transparent.
        if router is not None and router.topology is not topology:
            raise SimulationError(
                "router was built for a different topology instance"
            )
        self.router = router if router is not None else Router(topology)
        # Optional cross-run memo of source batches: source functions are
        # pure, so repeated runs over one workload (grid cells) can share
        # the generated tuples instead of regenerating them per run.
        self._source_memos = source_memos
        self.checkpoints = CheckpointStore()
        self.cluster = cluster or self._default_cluster()
        # Node names whose failure the master has not yet noticed.  Keyed on
        # the *kill*, not the current node flag, so a node that flaps back up
        # before the next heartbeat still gets its dead tasks detected.
        self._pending_detection: set[str] = set()
        self._end_time = 0.0
        self._started = False

        # The fault-tolerance scheme decides which tasks get hot replicas
        # and owns everything that happens after a failure is detected.
        self.scheme = create_scheme(self.config.recovery_scheme,
                                    self.config.recovery_params)
        self.scheme.attach(RecoveryContext(self))
        self.replicated = self.scheme.replicated_tasks(
            topology, self.plan.replicated
        )

        self.runtimes: dict[TaskId, TaskRuntime] = {}
        self._build_runtimes()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _default_cluster(self) -> Cluster:
        n = self.topology.num_tasks
        cluster = Cluster(n_workers=n, n_standby=max(1, n))
        cluster.place_round_robin(self.topology)
        return cluster

    def _build_runtimes(self) -> None:
        ckpt_batches = self.config.checkpoint_batches
        for task in self.topology.tasks():
            spec = self.topology.operator(task.operator)
            upstreams = self.topology.upstream_tasks(task)
            is_sink = not self.topology.downstream_tasks(task)
            source_fn = None
            if spec.is_source:
                # Sources are pure, so their batches are memoized: replays
                # and trimmed-log regeneration reuse tuples instead of
                # recomputing them.  A shared memo dict extends the reuse
                # across runs of the same workload.
                memos = self._source_memos
                source_fn = None if memos is None else memos.get(task)
                if source_fn is None:
                    source_fn = MemoizedSource(
                        self.logic_factory.source_for(task), task,
                        capacity=self._retention_batches + 8,
                    )
                    if memos is not None:
                        memos[task] = source_fn
            runtime = TaskRuntime(
                task,
                is_source=spec.is_source,
                is_sink=is_sink,
                expected_upstreams=upstreams,
                replicated=task in self.replicated,
                logic=None if spec.is_source else self.logic_factory.logic_for(task),
                source_fn=source_fn,
            )
            if ckpt_batches is not None and self.config.stagger_checkpoints:
                runtime.checkpoint_phase = stable_hash(str(task)) % ckpt_batches
            self.runtimes[task] = runtime

    def runtime(self, task: TaskId) -> TaskRuntime:
        """Runtime of ``task`` (test/diagnostic access)."""
        try:
            return self.runtimes[task]
        except KeyError:
            raise SimulationError(f"unknown task {task!r}") from None

    # ------------------------------------------------------------------
    # Driving the run
    # ------------------------------------------------------------------
    def schedule_node_failure(self, time: float, node_names: Sequence[str],
                              detect_delay: float = 0.0) -> None:
        """Kill the given nodes at virtual time ``time``.

        ``detect_delay`` adds per-task detection latency on top of the
        heartbeat that notices the failure (the detection-jitter axis).
        """
        names = list(node_names)
        self.sim.at(time, self._fail_nodes, priority=-1,
                    args=(names, detect_delay))

    def schedule_task_failure(self, time: float, tasks: Iterable[TaskId],
                              detect_delay: float = 0.0) -> None:
        """Kill every node hosting one of ``tasks`` at ``time``."""
        names = self.cluster.nodes_hosting(tasks)
        self.schedule_node_failure(time, names, detect_delay)

    def schedule_node_restore(self, time: float,
                              node_names: Sequence[str]) -> None:
        """Bring the given nodes back up at virtual time ``time``.

        Restoring a node makes it eligible to fail again (flapping); it does
        not resurrect the tasks that died on it — those still recover
        through the scheme.  Runs before same-instant kills and heartbeats.
        """
        names = list(node_names)
        self.sim.at(time, self._restore_nodes, priority=-3, args=(names,))

    def schedule_task_restore(self, time: float,
                              tasks: Iterable[TaskId]) -> None:
        """Restore every node hosting one of ``tasks`` at ``time``."""
        names = self.cluster.nodes_hosting(tasks)
        self.schedule_node_restore(time, names)

    def run(self, duration: float, *, settle: bool = True) -> MetricsCollector:
        """Run for ``duration`` virtual seconds of stream input.

        Sources stop emitting at ``duration``; with ``settle=True`` the
        engine then drains remaining events so in-flight recoveries finish
        (the clock advances past ``duration`` as needed).
        """
        if self._started:
            raise SimulationError("an engine instance runs exactly once")
        self._started = True
        self._end_time = duration
        wall_start = time.perf_counter()
        for task in self.topology.source_tasks():
            self._schedule_source_emission(self.runtimes[task], 0)
        self.sim.at(self.config.heartbeat_interval, self._heartbeat, priority=-2)
        self.sim.run_until(duration)
        if settle:
            self.sim.drain()
        metrics = self.metrics
        metrics.wall_seconds = time.perf_counter() - wall_start
        metrics.simulated_seconds = self.sim.now
        metrics.processed_events = self.sim.processed_events
        metrics.peak_history_batches = max(
            (rt.peak_history_batches for rt in self.runtimes.values()),
            default=0,
        )
        return metrics

    # ------------------------------------------------------------------
    # Source emission
    # ------------------------------------------------------------------
    def _schedule_source_emission(self, rt: TaskRuntime, index: int) -> None:
        due = (index + 1) * self.config.batch_interval
        if due > self._end_time + 1e-9:
            return
        self.sim.at(due, self._emit_source, args=(rt, index))

    def _emit_source(self, rt: TaskRuntime, index: int) -> None:
        if rt.status in (TaskStatus.FAILED, TaskStatus.RECOVERING):
            return  # the emission chain is re-armed by recovery
        if index < rt.next_batch:
            # Already emitted (e.g. during a recovery backlog flush).
            self._schedule_source_emission(rt, rt.next_batch)
            return
        self._produce_source_batch(rt, index)
        self._schedule_source_emission(rt, index + 1)

    def _produce_source_batch(self, rt: TaskRuntime, index: int) -> None:
        assert rt.source_fn is not None
        tuples = rt.source_fn.tuples_for_batch(rt.task, index)
        cost = len(tuples) * self.config.costs.per_tuple_process
        rt.busy_until = max(self.sim.now, rt.busy_until) + cost
        self.metrics.cpu_of(rt.task).process += cost
        self.metrics.tuples_processed += len(tuples)
        rt.next_batch = index + 1
        self._emit_outputs(rt, index, tuples, complete=True)
        # The source log is regenerable from the (pure) source function, so
        # its physical buffer only keeps the replay retention window.
        rt.trim_history(index - self._retention_batches)
        self._maybe_checkpoint(rt, index, state_tuples=0, state=None)
        if rt.status is TaskStatus.RECOVERING:  # pragma: no cover - defensive
            self.scheme.check_recovered(rt)

    # ------------------------------------------------------------------
    # Batch processing
    # ------------------------------------------------------------------
    def _emit_outputs(self, rt: TaskRuntime, index: int,
                      tuples: list[KeyedTuple] | tuple[KeyedTuple, ...],
                      complete: bool) -> None:
        # Zero-copy handoff: the router's buckets go into the batches as-is
        # (no per-destination re-tupling), and the same sequence objects are
        # then shared between the output history, the downstream inbox and
        # any operator windows.  Batch tuples are immutable by contract.
        distributed = self.router.distribute(rt.task, tuples)
        per_dst: dict[TaskId, Batch] = {}
        for dst, dst_tuples in distributed.items():
            per_dst[dst] = Batch(
                src=rt.task, dst=dst, index=index,
                tuples=dst_tuples, complete=complete,
            )
        rt.record_output(index, per_dst)
        rt.emitted = max(rt.emitted, index)
        if rt.replicated and (index + 1) % self.config.sync_batches == 0:
            rt.replica_synced = index
        for dst, batch in sorted(per_dst.items()):
            if rt.status is TaskStatus.FAILOVER:
                rt.held_outputs.append((dst, batch))
            else:
                self._send(batch)

    def _send(self, batch: Batch) -> None:
        self.sim.after(self.config.costs.network_delay, self._deliver,
                       args=(batch,))

    def _deliver(self, batch: Batch) -> None:
        rt = self.runtimes[batch.dst]
        if rt.status is TaskStatus.FAILED:
            return  # data sent to a dead, unreplicated task is lost
        if rt.inbox_put(batch):
            self._try_process(rt)

    def _try_process(self, rt: TaskRuntime) -> None:
        if rt.is_source or rt.processing or not rt.alive():
            return
        if rt.status is TaskStatus.FAILOVER:
            pass  # the replica keeps processing during failover
        index = rt.next_batch
        if not rt.inbox_ready(index):
            return
        inputs = rt.take_inbox(index)
        cost = sum(b.size for b in inputs.values()) * self.config.costs.per_tuple_process
        start = max(self.sim.now, rt.busy_until)
        done = start + cost
        rt.busy_until = done
        rt.processing = True
        incarnation = rt.incarnation
        self.sim.at(done, self._process_done,
                    args=(rt, index, inputs, cost, incarnation))

    def _process_done(self, rt: TaskRuntime, index: int,
                      inputs: dict[TaskId, Batch], cost: float,
                      incarnation: int) -> None:
        if rt.incarnation != incarnation or not rt.alive():
            return  # the task died while this batch was in flight
        assert rt.logic is not None
        self.metrics.cpu_of(rt.task).process += cost
        ordered = {u: inputs[u].tuples for u in sorted(inputs)}
        batch_end = (index + 1) * self.config.batch_interval
        outputs = rt.logic.process_batch(rt.task, batch_end, ordered)
        complete = all(b.complete for b in inputs.values())
        for upstream, batch in inputs.items():
            rt.progress[upstream] = max(rt.progress.get(upstream, -1), index)
            if not batch.forged:
                self.metrics.tuples_processed += batch.size
        self.metrics.batches_processed += 1
        rt.processing = False
        rt.next_batch = index + 1

        if rt.is_sink:
            self.metrics.sink_records.append(
                SinkRecord(rt.task, index, tuple(outputs), complete, self.sim.now)
            )
        else:
            self._emit_outputs(rt, index, outputs, complete)

        self._maybe_checkpoint(rt, index, state_tuples=rt.logic.state_size(),
                               state=None)
        if self.config.checkpoint_interval is None:
            self._ack_storm_style(rt, index)
        if rt.status is TaskStatus.RECOVERING:
            self.scheme.check_recovered(rt)
        self._try_process(rt)

    # ------------------------------------------------------------------
    # Checkpoints and trimming
    # ------------------------------------------------------------------
    def _maybe_checkpoint(self, rt: TaskRuntime, index: int, *,
                          state_tuples: int, state: object) -> None:
        period = self.scheme.checkpoint_period(rt)
        if period is None:
            return
        if (index + 1 - rt.checkpoint_phase) % period != 0:
            return
        costs = self.config.costs
        cost = costs.checkpoint_fixed + state_tuples * costs.per_tuple_serialize
        rt.busy_until = max(self.sim.now, rt.busy_until) + cost
        self.metrics.cpu_of(rt.task).checkpoint += cost
        snapshot = rt.logic.snapshot() if rt.logic is not None else None
        self.checkpoints.put(Checkpoint(
            task=rt.task, batch_index=index, state=snapshot,
            progress=rt.snapshot_progress(), state_tuples=state_tuples,
            taken_at=self.sim.now,
        ))
        rt.last_checkpoint_batch = index
        self.metrics.checkpoints_taken += 1
        self.scheme.on_checkpoint(rt, cost)
        self.sim.after(costs.network_delay, self._trim_upstreams,
                       args=(rt, index))

    def _trim_upstreams(self, rt: TaskRuntime, index: int) -> None:
        for upstream in rt.expected_upstreams:
            up = self.runtimes[upstream]
            up.acked[rt.task] = max(up.acked.get(rt.task, -1), index)
            subscribers = self.topology.downstream_tasks(upstream)
            up.trimmed_upto = min(up.acked.get(s, -1) for s in subscribers)
            self._trim_physical(up)

    def _ack_storm_style(self, rt: TaskRuntime, index: int) -> None:
        """Vanilla Storm acks tuples once processed: buffers trim immediately."""
        for upstream in rt.expected_upstreams:
            up = self.runtimes[upstream]
            if up.is_source:
                continue  # the source log remains replayable
            up.acked[rt.task] = max(up.acked.get(rt.task, -1), index)
            subscribers = self.topology.downstream_tasks(upstream)
            up.trimmed_upto = min(up.acked.get(s, -1) for s in subscribers)
            self._trim_physical(up)

    def _trim_physical(self, up: TaskRuntime) -> None:
        """Delete batch content that no replay can reach any more.

        Non-source content above ``trimmed_upto`` is still replayable and is
        always kept; below it, only the retention window (the deepest
        Storm-style recompute lookback) survives.  Cost accounting over the
        deleted range keeps working off the retained size skeleton.
        """
        up.trim_history(min(up.trimmed_upto,
                            up.emitted - self._retention_batches))

    def _replay_batch(self, up: TaskRuntime, sub: TaskId, index: int) -> Batch:
        """The batch ``up`` emitted to ``sub`` at ``index``, for replay resend.

        Physically-retained content is returned as stored.  A trimmed
        *source* batch is regenerated bit-for-bit from the memoized (pure)
        source function and the deterministic router; a trimmed non-source
        batch means the retention window was violated, which is an engine
        bug and raises rather than silently replaying wrong data.
        """
        per_dst = up.history.get(index)
        if per_dst is not None:
            batch = per_dst.get(sub)
            if batch is not None:
                return batch
        if not up.is_source or up.source_fn is None:
            raise SimulationError(
                f"replay of {up.task} batch {index} to {sub} needs physically "
                f"trimmed content (retention window of "
                f"{self._retention_batches} batches was violated)"
            )
        tuples = up.source_fn.tuples_for_batch(up.task, index)
        dst_tuples = self.router.distribute(up.task, tuples)[sub]
        return Batch(src=up.task, dst=sub, index=index,
                     tuples=dst_tuples, complete=True)

    # ------------------------------------------------------------------
    # Failure injection and detection
    # ------------------------------------------------------------------
    def _fail_nodes(self, names: list[str],
                    detect_delay: float = 0.0) -> None:
        fresh = [n for n in names if not self.cluster.node(n).failed]
        died = self.cluster.fail_nodes(names)
        self._pending_detection.update(fresh)
        for task in died:
            rt = self.runtimes[task]
            rt.fail_time = self.sim.now
            rt.detect_extra = detect_delay
            rt.pre_failure_progress = rt.snapshot_progress()
            rt.pre_failure_emitted = rt.emitted
            self.scheme.on_task_failed(rt)

    def _restore_nodes(self, names: list[str]) -> None:
        for name in names:
            self.cluster.restore_node(name)

    def _heartbeat(self) -> None:
        for node in self.cluster.workers:
            if node.name in self._pending_detection:
                self._pending_detection.discard(node.name)
                for task in sorted(node.tasks):
                    rt = self.runtimes[task]
                    if rt.detect_extra > 0.0:
                        self.sim.after(rt.detect_extra,
                                       self._deferred_detection,
                                       args=(rt, rt.incarnation))
                    else:
                        self.scheme.on_failure_detected(rt)
        undetected = bool(self._pending_detection)
        next_beat = self.sim.now + self.config.heartbeat_interval
        if next_beat <= self._end_time + 1e-9 or undetected:
            self.sim.at(next_beat, self._heartbeat, priority=-2)

    def _deferred_detection(self, rt: TaskRuntime, incarnation: int) -> None:
        """Jittered per-task detection; dropped if the task was re-killed."""
        if rt.incarnation != incarnation:
            return
        if rt.status in (TaskStatus.FAILED, TaskStatus.FAILOVER):
            self.scheme.on_failure_detected(rt)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def sink_records(self) -> list[SinkRecord]:
        """All captured sink outputs, in emission order."""
        return list(self.metrics.sink_records)

    def all_recovered(self) -> bool:
        """Whether every detected failure finished recovering."""
        return all(r.recovered_time is not None for r in self.metrics.recoveries)

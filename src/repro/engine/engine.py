"""The simulated MPSPE: batch dataflow, PPA fault tolerance, recovery.

:class:`StreamEngine` executes a query topology on a simulated cluster in
virtual time, implementing the protocols of Sec. V:

* batch processing with batch-over punctuations (a batch message *is* the
  punctuation for its index);
* passive replication — periodic (staggered) checkpoints of operator state +
  progress vector, with upstream output-buffer trimming;
* partially active replication — tasks in the plan keep a hot replica that
  processes the same input; on failure it takes over after resending the
  output buffered since the last primary sync;
* failure detection by heartbeat, and recovery by replica takeover,
  checkpoint restore + upstream replay, or source replay through the whole
  topology (vanilla Storm baseline);
* tentative outputs — the master forges batch-over punctuations for failed
  tasks so downstream tasks keep producing (tainted) output.

Determinism: all scheduling goes through :class:`~repro.engine.events.Simulator`
with stable tie-breaking, keys route via CRC32, and operator logic is
required to be deterministic, so two runs with the same inputs are identical.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.plans import ReplicationPlan
from repro.engine.checkpoint import Checkpoint, CheckpointStore
from repro.engine.cluster import Cluster
from repro.engine.config import EngineConfig, PassiveStrategy
from repro.engine.events import Simulator
from repro.engine.logic import LogicFactory
from repro.engine.metrics import MetricsCollector, RecoveryMode
from repro.engine.routing import Router, stable_hash
from repro.engine.tasks import TaskRuntime, TaskStatus
from repro.engine.tuples import Batch, KeyedTuple, SinkRecord, forged_batch
from repro.errors import SimulationError
from repro.topology.graph import Topology
from repro.topology.operators import TaskId


class StreamEngine:
    """One simulated run of a topology under an engine configuration."""

    def __init__(self, topology: Topology, logic: LogicFactory,
                 config: EngineConfig | None = None, *,
                 plan: ReplicationPlan | Iterable[TaskId] = (),
                 cluster: Cluster | None = None,
                 source_replay_window_batches: int = 30):
        self.topology = topology
        self.logic_factory = logic
        self.config = config or EngineConfig()
        # ``plan`` is either a full ReplicationPlan (keeping planner
        # provenance attached to the run's metrics) or a bare task iterable.
        if isinstance(plan, ReplicationPlan):
            self.plan = plan
        else:
            self.plan = ReplicationPlan(frozenset(plan))
        self.replicated = self.plan.replicated
        unknown = self.replicated - set(topology.tasks())
        if unknown:
            raise SimulationError(f"plan references unknown tasks: {sorted(unknown)}")
        self.source_replay_window_batches = source_replay_window_batches

        self.sim = Simulator()
        self.metrics = MetricsCollector(plan=self.plan)
        self.router = Router(topology)
        self.checkpoints = CheckpointStore()
        self.cluster = cluster or self._default_cluster()
        self._detected_nodes: set[str] = set()
        self._end_time = 0.0
        self._started = False

        self.runtimes: dict[TaskId, TaskRuntime] = {}
        self._build_runtimes()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _default_cluster(self) -> Cluster:
        n = self.topology.num_tasks
        cluster = Cluster(n_workers=n, n_standby=max(1, n))
        cluster.place_round_robin(self.topology)
        return cluster

    def _build_runtimes(self) -> None:
        ckpt_batches = self.config.checkpoint_batches
        for task in self.topology.tasks():
            spec = self.topology.operator(task.operator)
            upstreams = self.topology.upstream_tasks(task)
            is_sink = not self.topology.downstream_tasks(task)
            runtime = TaskRuntime(
                task,
                is_source=spec.is_source,
                is_sink=is_sink,
                expected_upstreams=upstreams,
                replicated=task in self.replicated,
                logic=None if spec.is_source else self.logic_factory.logic_for(task),
                source_fn=self.logic_factory.source_for(task) if spec.is_source else None,
            )
            if ckpt_batches is not None and self.config.stagger_checkpoints:
                runtime.checkpoint_phase = stable_hash(str(task)) % ckpt_batches
            self.runtimes[task] = runtime

    def runtime(self, task: TaskId) -> TaskRuntime:
        """Runtime of ``task`` (test/diagnostic access)."""
        try:
            return self.runtimes[task]
        except KeyError:
            raise SimulationError(f"unknown task {task!r}") from None

    # ------------------------------------------------------------------
    # Driving the run
    # ------------------------------------------------------------------
    def schedule_node_failure(self, time: float, node_names: Sequence[str]) -> None:
        """Kill the given nodes at virtual time ``time``."""
        names = list(node_names)
        self.sim.at(time, lambda: self._fail_nodes(names), priority=-1)

    def schedule_task_failure(self, time: float, tasks: Iterable[TaskId]) -> None:
        """Kill every node hosting one of ``tasks`` at ``time``."""
        names = self.cluster.nodes_hosting(tasks)
        self.schedule_node_failure(time, names)

    def run(self, duration: float, *, settle: bool = True) -> MetricsCollector:
        """Run for ``duration`` virtual seconds of stream input.

        Sources stop emitting at ``duration``; with ``settle=True`` the
        engine then drains remaining events so in-flight recoveries finish
        (the clock advances past ``duration`` as needed).
        """
        if self._started:
            raise SimulationError("an engine instance runs exactly once")
        self._started = True
        self._end_time = duration
        for task in self.topology.source_tasks():
            self._schedule_source_emission(self.runtimes[task], 0)
        self.sim.at(self.config.heartbeat_interval, self._heartbeat, priority=-2)
        self.sim.run_until(duration)
        if settle:
            self.sim.drain()
        return self.metrics

    # ------------------------------------------------------------------
    # Source emission
    # ------------------------------------------------------------------
    def _schedule_source_emission(self, rt: TaskRuntime, index: int) -> None:
        due = (index + 1) * self.config.batch_interval
        if due > self._end_time + 1e-9:
            return
        self.sim.at(due, lambda: self._emit_source(rt, index))

    def _emit_source(self, rt: TaskRuntime, index: int) -> None:
        if rt.status in (TaskStatus.FAILED, TaskStatus.RECOVERING):
            return  # the emission chain is re-armed by recovery
        if index < rt.next_batch:
            # Already emitted (e.g. during a recovery backlog flush).
            self._schedule_source_emission(rt, rt.next_batch)
            return
        self._produce_source_batch(rt, index)
        self._schedule_source_emission(rt, index + 1)

    def _produce_source_batch(self, rt: TaskRuntime, index: int) -> None:
        assert rt.source_fn is not None
        tuples = rt.source_fn.tuples_for_batch(rt.task, index)
        cost = len(tuples) * self.config.costs.per_tuple_process
        rt.busy_until = max(self.sim.now, rt.busy_until) + cost
        self.metrics.cpu_of(rt.task).process += cost
        self.metrics.tuples_processed += len(tuples)
        rt.next_batch = index + 1
        self._emit_outputs(rt, index, tuples, complete=True)
        self._maybe_checkpoint(rt, index, state_tuples=0, state=None)
        if rt.status is TaskStatus.RECOVERING:  # pragma: no cover - defensive
            self._check_recovered(rt)

    # ------------------------------------------------------------------
    # Batch processing
    # ------------------------------------------------------------------
    def _emit_outputs(self, rt: TaskRuntime, index: int,
                      tuples: list[KeyedTuple] | tuple[KeyedTuple, ...],
                      complete: bool) -> None:
        distributed = self.router.distribute(rt.task, list(tuples))
        per_dst: dict[TaskId, Batch] = {}
        for dst, dst_tuples in distributed.items():
            per_dst[dst] = Batch(
                src=rt.task, dst=dst, index=index,
                tuples=tuple(dst_tuples), complete=complete,
            )
        rt.history[index] = per_dst
        rt.emitted = max(rt.emitted, index)
        if rt.replicated and (index + 1) % self.config.sync_batches == 0:
            rt.replica_synced = index
        for dst, batch in sorted(per_dst.items()):
            if rt.status is TaskStatus.FAILOVER:
                rt.held_outputs.append((dst, batch))
            else:
                self._send(batch)

    def _send(self, batch: Batch) -> None:
        self.sim.after(
            self.config.costs.network_delay, lambda: self._deliver(batch)
        )

    def _deliver(self, batch: Batch) -> None:
        rt = self.runtimes[batch.dst]
        if rt.status is TaskStatus.FAILED:
            return  # data sent to a dead, unreplicated task is lost
        if rt.inbox_put(batch):
            self._try_process(rt)

    def _try_process(self, rt: TaskRuntime) -> None:
        if rt.is_source or rt.processing or not rt.alive():
            return
        if rt.status is TaskStatus.FAILOVER:
            pass  # the replica keeps processing during failover
        index = rt.next_batch
        if not rt.inbox_ready(index):
            return
        inputs = rt.take_inbox(index)
        cost = sum(b.size for b in inputs.values()) * self.config.costs.per_tuple_process
        start = max(self.sim.now, rt.busy_until)
        done = start + cost
        rt.busy_until = done
        rt.processing = True
        incarnation = rt.incarnation
        self.sim.at(done, lambda: self._process_done(rt, index, inputs, cost, incarnation))

    def _process_done(self, rt: TaskRuntime, index: int,
                      inputs: dict[TaskId, Batch], cost: float,
                      incarnation: int) -> None:
        if rt.incarnation != incarnation or not rt.alive():
            return  # the task died while this batch was in flight
        assert rt.logic is not None
        self.metrics.cpu_of(rt.task).process += cost
        ordered = {u: inputs[u].tuples for u in sorted(inputs)}
        batch_end = (index + 1) * self.config.batch_interval
        outputs = rt.logic.process_batch(rt.task, batch_end, ordered)
        complete = all(b.complete for b in inputs.values())
        for upstream, batch in inputs.items():
            rt.progress[upstream] = max(rt.progress.get(upstream, -1), index)
            if not batch.forged:
                self.metrics.tuples_processed += batch.size
        self.metrics.batches_processed += 1
        rt.processing = False
        rt.next_batch = index + 1

        if rt.is_sink:
            self.metrics.sink_records.append(
                SinkRecord(rt.task, index, tuple(outputs), complete, self.sim.now)
            )
        else:
            self._emit_outputs(rt, index, outputs, complete)

        self._maybe_checkpoint(rt, index, state_tuples=rt.logic.state_size(),
                               state=None)
        if self.config.checkpoint_interval is None:
            self._ack_storm_style(rt, index)
        if rt.status is TaskStatus.RECOVERING:
            self._check_recovered(rt)
        self._try_process(rt)

    # ------------------------------------------------------------------
    # Checkpoints and trimming
    # ------------------------------------------------------------------
    def _maybe_checkpoint(self, rt: TaskRuntime, index: int, *,
                          state_tuples: int, state: object) -> None:
        period = self.config.checkpoint_batches
        if period is None:
            return
        if (index + 1 - rt.checkpoint_phase) % period != 0:
            return
        costs = self.config.costs
        cost = costs.checkpoint_fixed + state_tuples * costs.per_tuple_serialize
        rt.busy_until = max(self.sim.now, rt.busy_until) + cost
        self.metrics.cpu_of(rt.task).checkpoint += cost
        snapshot = rt.logic.snapshot() if rt.logic is not None else None
        self.checkpoints.put(Checkpoint(
            task=rt.task, batch_index=index, state=snapshot,
            progress=rt.snapshot_progress(), state_tuples=state_tuples,
            taken_at=self.sim.now,
        ))
        rt.last_checkpoint_batch = index
        self.metrics.checkpoints_taken += 1
        self.sim.after(costs.network_delay, lambda: self._trim_upstreams(rt, index))

    def _trim_upstreams(self, rt: TaskRuntime, index: int) -> None:
        for upstream in rt.expected_upstreams:
            up = self.runtimes[upstream]
            up.acked[rt.task] = max(up.acked.get(rt.task, -1), index)
            subscribers = self.topology.downstream_tasks(upstream)
            up.trimmed_upto = min(up.acked.get(s, -1) for s in subscribers)

    def _ack_storm_style(self, rt: TaskRuntime, index: int) -> None:
        """Vanilla Storm acks tuples once processed: buffers trim immediately."""
        for upstream in rt.expected_upstreams:
            up = self.runtimes[upstream]
            if up.is_source:
                continue  # the source log remains replayable
            up.acked[rt.task] = max(up.acked.get(rt.task, -1), index)
            subscribers = self.topology.downstream_tasks(upstream)
            up.trimmed_upto = min(up.acked.get(s, -1) for s in subscribers)

    # ------------------------------------------------------------------
    # Failure injection and detection
    # ------------------------------------------------------------------
    def _fail_nodes(self, names: list[str]) -> None:
        died = self.cluster.fail_nodes(names)
        for task in died:
            rt = self.runtimes[task]
            rt.fail_time = self.sim.now
            rt.pre_failure_progress = rt.snapshot_progress()
            rt.pre_failure_emitted = rt.emitted
            if rt.replicated:
                # The hot replica keeps processing; outputs are held until
                # takeover re-routes subscribers to it.
                rt.status = TaskStatus.FAILOVER
            else:
                rt.status = TaskStatus.FAILED
                rt.incarnation += 1
                rt.processing = False
                rt.inbox.clear()

    def _heartbeat(self) -> None:
        for node in self.cluster.workers:
            if node.failed and node.name not in self._detected_nodes:
                self._detected_nodes.add(node.name)
                for task in sorted(node.tasks):
                    self._on_failure_detected(self.runtimes[task])
        undetected = any(
            n.failed and n.name not in self._detected_nodes
            for n in self.cluster.workers
        )
        next_beat = self.sim.now + self.config.heartbeat_interval
        if next_beat <= self._end_time + 1e-9 or undetected:
            self.sim.at(next_beat, self._heartbeat, priority=-2)

    def _on_failure_detected(self, rt: TaskRuntime) -> None:
        assert rt.fail_time is not None
        if rt.status is TaskStatus.FAILOVER:
            record = self.metrics.record_recovery_start(
                rt.task, RecoveryMode.ACTIVE, rt.fail_time, self.sim.now
            )
            rt.recovery_record = record
            costs = self.config.costs
            resend = rt.buffered_tuples(rt.replica_synced, rt.emitted)
            delay = costs.takeover_fixed + resend * costs.per_tuple_resend
            self.metrics.cpu_of(rt.task).replay += resend * costs.per_tuple_resend
            self.sim.after(delay, lambda: self._complete_takeover(rt))
            return
        if rt.status is not TaskStatus.FAILED:
            return
        mode = (
            RecoveryMode.CHECKPOINT
            if self.config.passive_strategy is PassiveStrategy.CHECKPOINT
            else RecoveryMode.SOURCE_REPLAY
        )
        record = self.metrics.record_recovery_start(
            rt.task, mode, rt.fail_time, self.sim.now
        )
        rt.recovery_record = record
        if self.config.tentative_outputs:
            self._start_forging(rt)
        if self.config.recovery_enabled:
            self.sim.after(
                self.config.costs.restart_delay, lambda: self._restore_task(rt)
            )

    def _complete_takeover(self, rt: TaskRuntime) -> None:
        if rt.status is not TaskStatus.FAILOVER:
            return
        rt.status = TaskStatus.RUNNING
        held, rt.held_outputs = rt.held_outputs, []
        for _dst, batch in held:
            self._send(batch)
        if rt.recovery_record is not None:
            rt.recovery_record.recovered_time = self.sim.now
        self._serve_pending_replays(rt)
        self._try_process(rt)

    # ------------------------------------------------------------------
    # Passive recovery
    # ------------------------------------------------------------------
    def _restore_task(self, rt: TaskRuntime) -> None:
        if rt.status is not TaskStatus.FAILED:
            return
        rt.status = TaskStatus.RECOVERING
        costs = self.config.costs
        checkpoint = (
            self.checkpoints.latest(rt.task)
            if self.config.passive_strategy is PassiveStrategy.CHECKPOINT
            else None
        )
        if rt.is_source:
            self._restore_source(rt, checkpoint)
            return

        rt.logic = self.logic_factory.logic_for(rt.task)
        if checkpoint is not None:
            load = checkpoint.state_tuples * costs.per_tuple_load
            rt.busy_until = self.sim.now + load
            self.metrics.cpu_of(rt.task).replay += load
            if checkpoint.state is not None:
                rt.logic.restore(checkpoint.state)
            rt.next_batch = checkpoint.batch_index + 1
            rt.progress = dict(checkpoint.progress)
            rt.emitted = checkpoint.batch_index
        elif self.config.passive_strategy is PassiveStrategy.CHECKPOINT:
            # The task died before its first checkpoint: cold restart from
            # batch 0. Its upstream buffers are fully retained because it
            # never acknowledged a checkpoint, so replay covers everything.
            rt.next_batch = 0
            rt.progress = {u: -1 for u in rt.expected_upstreams}
            rt.emitted = -1
            rt.busy_until = self.sim.now
        else:
            # Source-replay (Storm) restart: empty state; rebuild the window
            # by reprocessing the last `source_replay_window_batches` batches.
            current = int(self.sim.now / self.config.batch_interval)
            start = max(0, current - self.source_replay_window_batches)
            rt.next_batch = start
            rt.progress = {u: start - 1 for u in rt.expected_upstreams}
            rt.emitted = start - 1
            rt.busy_until = self.sim.now

        for upstream in rt.expected_upstreams:
            self._request_replay(self.runtimes[upstream], rt, rt.next_batch - 1)
        self._serve_pending_replays(rt)
        self._check_recovered(rt)
        self._try_process(rt)

    def _restore_source(self, rt: TaskRuntime, checkpoint: Checkpoint | None) -> None:
        # Sources always resume from their log offset (no data loss): the
        # checkpoint only matters for the progress bookkeeping.
        rt.status = TaskStatus.RECOVERING
        rt.busy_until = self.sim.now
        backlog_start = rt.next_batch
        due = int(self.sim.now / self.config.batch_interval) - 1
        due = min(due, int(self._end_time / self.config.batch_interval) - 1)
        for index in range(backlog_start, due + 1):
            self._produce_source_batch(rt, index)
        self._check_recovered(rt)
        if rt.status is TaskStatus.RECOVERING:
            # Not caught up only if there was nothing to emit yet.
            self._check_recovered(rt)
        self._serve_pending_replays(rt)
        self._schedule_source_emission(rt, rt.next_batch)

    def _check_recovered(self, rt: TaskRuntime) -> None:
        if rt.status is not TaskStatus.RECOVERING:
            return
        if not rt.caught_up():
            return
        rt.status = TaskStatus.RUNNING
        if rt.recovery_record is not None and rt.recovery_record.recovered_time is None:
            rt.recovery_record.recovered_time = max(self.sim.now, rt.busy_until)
        self._serve_pending_replays(rt)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _request_replay(self, up: TaskRuntime, sub: TaskRuntime,
                        from_exclusive: int) -> None:
        if up.status in (TaskStatus.FAILED, TaskStatus.FAILOVER):
            up.pending_replays[sub.task] = min(
                up.pending_replays.get(sub.task, from_exclusive), from_exclusive
            )
            return
        # RUNNING or RECOVERING: serve what the buffer already covers; the
        # rest arrives through the upstream's own catch-up emissions.
        self._serve_replay(up, sub, from_exclusive, up.emitted)

    def _serve_pending_replays(self, rt: TaskRuntime) -> None:
        pending, rt.pending_replays = rt.pending_replays, {}
        for sub_task, from_exclusive in sorted(pending.items()):
            self._serve_replay(rt, self.runtimes[sub_task], from_exclusive, rt.emitted)

    def _serve_replay(self, up: TaskRuntime, sub: TaskRuntime,
                      from_exclusive: int, upto: int) -> None:
        """Resend ``up``'s buffered output batches ``(from, upto]`` to ``sub``."""
        costs = self.config.costs
        indices = [
            i for i in range(from_exclusive + 1, upto + 1)
            if i in up.history and sub.task in up.history[i]
        ]
        if not indices:
            return
        pruned = [i for i in indices if i <= up.trimmed_upto]
        ready = self.sim.now
        if pruned:
            ready = self._ensure_recomputed(up, min(pruned), max(pruned))
        cursor = max(ready, self.sim.now)
        for index in indices:
            batch = up.history[index][sub.task]
            resend_cost = batch.size * costs.per_tuple_resend
            cursor = max(cursor, up.busy_until) + resend_cost
            up.busy_until = cursor
            self.metrics.cpu_of(up.task).replay += resend_cost
            send_at = cursor + costs.network_delay
            self.sim.at(send_at, lambda b=batch: self._deliver(b))

    def _ensure_recomputed(self, rt: TaskRuntime, lo: int, hi: int) -> float:
        """Virtual time when ``rt`` has regenerated output batches [lo, hi].

        Models Storm's source replay: pruned batches must be recomputed by
        replaying the inputs through every task between the sources and this
        one, charging reprocessing CPU along the chain.
        """
        if rt.recompute_cover is not None:
            c_lo, c_hi, c_ready = rt.recompute_cover
            if c_lo <= lo and hi <= c_hi:
                return c_ready
            lo, hi = min(lo, c_lo), max(hi, c_hi)
        costs = self.config.costs
        if rt.is_source:
            # Reading the source log back costs resend time per tuple.
            tuples = rt.buffered_tuples(lo - 1, hi)
            ready = max(self.sim.now, rt.busy_until) + tuples * costs.per_tuple_resend
            rt.busy_until = ready
            self.metrics.cpu_of(rt.task).replay += tuples * costs.per_tuple_resend
        else:
            upstream_ready = self.sim.now
            input_tuples = 0
            for upstream in rt.expected_upstreams:
                up = self.runtimes[upstream]
                pruned_input = up.trimmed_upto >= lo
                if pruned_input:
                    upstream_ready = max(
                        upstream_ready, self._ensure_recomputed(up, lo, hi)
                    )
                input_tuples += sum(
                    up.history[i][rt.task].size
                    for i in range(lo, hi + 1)
                    if i in up.history and rt.task in up.history[i]
                )
            cost = input_tuples * costs.per_tuple_process
            ready = max(upstream_ready, rt.busy_until, self.sim.now) + cost
            rt.busy_until = ready
            self.metrics.cpu_of(rt.task).replay += cost
        rt.recompute_cover = (lo, hi, ready)
        return ready

    # ------------------------------------------------------------------
    # Tentative outputs (forged punctuations)
    # ------------------------------------------------------------------
    def _start_forging(self, failed: TaskRuntime) -> None:
        subscribers = self.topology.downstream_tasks(failed.task)
        for sub in subscribers:
            self._schedule_forge(failed, self.runtimes[sub], failed.emitted + 1)

    def _schedule_forge(self, failed: TaskRuntime, sub: TaskRuntime,
                        index: int) -> None:
        due = (index + 1) * self.config.batch_interval + self.config.costs.network_delay
        if due > self._end_time + 1e-9:
            return
        self.sim.at(max(due, self.sim.now),
                    lambda: self._forge(failed, sub, index))

    def _forge(self, failed: TaskRuntime, sub: TaskRuntime, index: int) -> None:
        if failed.status is TaskStatus.RUNNING:
            return  # recovered: downstream waits for real batches again
        if failed.emitted < index:
            batch = forged_batch(failed.task, sub.task, index)
            if sub.alive() and sub.inbox_put(batch):
                self.metrics.batches_forged += 1
                self._try_process(sub)
        self._schedule_forge(failed, sub, index + 1)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def sink_records(self) -> list[SinkRecord]:
        """All captured sink outputs, in emission order."""
        return list(self.metrics.sink_records)

    def all_recovered(self) -> bool:
        """Whether every detected failure finished recovering."""
        return all(r.recovered_time is not None for r in self.metrics.recoveries)

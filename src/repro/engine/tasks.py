"""Per-task runtime state used by the engine's protocol loops.

A :class:`TaskRuntime` holds everything that belongs to one logical task:
batch-protocol position, inbox, output history (the output buffer of
Sec. II-B), checkpoint/trim bookkeeping, replica-sync position and recovery
bookkeeping.  All *behaviour* lives in :mod:`repro.engine.engine`; this
module is deliberately mostly data.

The output buffer is split into two layers so a long run keeps bounded
memory without changing recovery semantics:

* :attr:`TaskRuntime.history` holds the actual :class:`Batch` objects and is
  *physically trimmed* (:meth:`TaskRuntime.trim_history`) once batches fall
  behind both the logical trim point and the replay retention window;
* :attr:`TaskRuntime.output_sizes` is a compact per-batch, per-destination
  tuple-count skeleton retained for the whole run, so replay/takeover cost
  accounting (:meth:`buffered_tuples`, recompute-on-replay) stays byte
  identical to the physically-retained implementation.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.engine.tuples import Batch
from repro.topology.operators import TaskId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.logic import OperatorLogic, SourceFunction
    from repro.engine.metrics import RecoveryRecord


class TaskStatus(enum.Enum):
    """Lifecycle of a task (incl. its active replica, if any)."""

    #: Processing normally (primary, or replica after takeover).
    RUNNING = "running"
    #: Dead with no active replica; waiting for passive recovery.
    FAILED = "failed"
    #: Restarted on a standby; catching up to its pre-failure progress.
    RECOVERING = "recovering"
    #: Primary dead; the active replica keeps processing with output held
    #: until takeover completes.
    FAILOVER = "failover"


class TaskRuntime:
    """Mutable state of one logical task within an engine run."""

    def __init__(self, task: TaskId, *, is_source: bool, is_sink: bool,
                 expected_upstreams: tuple[TaskId, ...], replicated: bool,
                 logic: "OperatorLogic | None" = None,
                 source_fn: "SourceFunction | None" = None):
        self.task = task
        self.is_source = is_source
        self.is_sink = is_sink
        self.expected_upstreams = expected_upstreams
        self.replicated = replicated
        self.logic = logic
        self.source_fn = source_fn

        self.status = TaskStatus.RUNNING
        #: Bumped on unreplicated failure; stale scheduled events check it.
        self.incarnation = 0
        #: Next batch index to process (non-source) / emit (source).
        self.next_batch = 0
        #: Pending input batches: index -> upstream task -> batch.
        self.inbox: dict[int, dict[TaskId, Batch]] = {}
        #: Whether a batch is currently being processed (one at a time).
        self.processing = False
        #: Last processed batch per upstream task (the progress vector).
        self.progress: dict[TaskId, int] = {u: -1 for u in expected_upstreams}
        #: Last batch index emitted downstream.
        self.emitted = -1
        #: CPU timeline: this task's (or its replica's) core is busy until here.
        self.busy_until = 0.0

        #: Output history: batch index -> destination -> batch.  Physically
        #: trimmed via :meth:`trim_history`; ``trimmed_upto`` marks what a
        #: real system would have pruned (replaying pruned batches charges
        #: recompute cost).
        self.history: dict[int, dict[TaskId, Batch]] = {}
        #: Per-batch, per-destination tuple counts; survives physical trims
        #: so cost accounting over pruned ranges is unchanged.
        self.output_sizes: dict[int, dict[TaskId, int]] = {}
        #: Lowest batch index whose content may still be in ``history``.
        self.history_floor = 0
        #: Largest ``len(history)`` ever observed (memory diagnostics).
        self.peak_history_batches = 0
        self.trimmed_upto = -1
        #: Per-subscriber checkpoint acknowledgements driving the trim.
        self.acked: dict[TaskId, int] = {}
        #: Last batch whose outputs the active replica has trimmed.
        self.replica_synced = -1
        #: Outputs produced while in FAILOVER, flushed at takeover.
        self.held_outputs: list[tuple[TaskId, Batch]] = []
        #: Replay requests from subscribers arriving while this task was
        #: down: subscriber -> from-batch (exclusive).
        self.pending_replays: dict[TaskId, int] = {}
        #: Storm-mode recompute memo: (lo, hi, ready_time) of the last
        #: recomputed range.
        self.recompute_cover: tuple[int, int, float] | None = None

        self.last_checkpoint_batch = -1
        self.checkpoint_phase = 0
        #: Extra per-task detection latency on top of the heartbeat that
        #: notices the failure (the detection-jitter failure axis).
        self.detect_extra = 0.0
        self.fail_time: float | None = None
        self.pre_failure_progress: dict[TaskId, int] | None = None
        self.pre_failure_emitted: int | None = None
        self.recovery_record: "RecoveryRecord | None" = None

    # ------------------------------------------------------------------
    def alive(self) -> bool:
        """Whether the task currently processes batches."""
        return self.status in (TaskStatus.RUNNING, TaskStatus.FAILOVER,
                               TaskStatus.RECOVERING)

    def inbox_put(self, batch: Batch) -> bool:
        """Store an incoming batch; returns False for stale duplicates.

        A real batch replaces a forged placeholder for the same index, but a
        forged batch never overwrites real data.
        """
        if batch.index < self.next_batch:
            return False
        slot = self.inbox.setdefault(batch.index, {})
        existing = slot.get(batch.src)
        if existing is not None and not existing.forged:
            return False
        if existing is not None and batch.forged:
            return False
        slot[batch.src] = batch
        return True

    def inbox_ready(self, index: int) -> bool:
        """Whether batch ``index`` has arrived from every upstream task."""
        slot = self.inbox.get(index)
        if slot is None:
            return not self.expected_upstreams
        return all(u in slot for u in self.expected_upstreams)

    def take_inbox(self, index: int) -> dict[TaskId, Batch]:
        """Remove and return the input batches of ``index``."""
        return self.inbox.pop(index, {})

    def snapshot_progress(self) -> dict[TaskId, int]:
        """A copy of the progress vector (stored in checkpoints)."""
        return dict(self.progress)

    def caught_up(self) -> bool:
        """Whether the progress vector reached its pre-failure value."""
        if self.is_source:
            target = self.pre_failure_emitted
            return target is None or self.emitted >= target
        if self.pre_failure_progress is None:
            return True
        return all(
            self.progress.get(u, -1) >= before
            for u, before in self.pre_failure_progress.items()
        )

    def record_output(self, index: int, per_dst: dict[TaskId, Batch]) -> None:
        """Store batch ``index``'s output content and its size skeleton."""
        self.history[index] = per_dst
        self.output_sizes[index] = {dst: b.size for dst, b in per_dst.items()}
        n = len(self.history)
        if n > self.peak_history_batches:
            self.peak_history_batches = n

    def trim_history(self, horizon: int) -> None:
        """Physically delete batch content at indices ``<= horizon``.

        Only :attr:`history` shrinks; :attr:`output_sizes` keeps the count
        skeleton so replay/takeover cost accounting still covers the pruned
        range.  Amortised O(1) per emitted batch via :attr:`history_floor`.
        """
        if horizon < self.history_floor:
            return
        pop = self.history.pop
        for index in range(self.history_floor, horizon + 1):
            pop(index, None)
        self.history_floor = horizon + 1

    def buffered_tuples(self, lo_exclusive: int, hi_inclusive: int) -> int:
        """Total tuples in output batches ``(lo, hi]`` (takeover/replay cost)."""
        total = 0
        sizes = self.output_sizes
        for index in range(lo_exclusive + 1, hi_inclusive + 1):
            per_dst = sizes.get(index)
            if per_dst:
                total += sum(per_dst.values())
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TaskRuntime({self.task}, {self.status.value}, next={self.next_batch}, "
            f"emitted={self.emitted})"
        )

"""Per-task runtime state used by the engine's protocol loops.

A :class:`TaskRuntime` holds everything that belongs to one logical task:
batch-protocol position, inbox, output history (the output buffer of
Sec. II-B, physically retained for the whole run with logical trim points for
cost accounting), checkpoint/trim bookkeeping, replica-sync position and
recovery bookkeeping.  All *behaviour* lives in
:mod:`repro.engine.engine`; this module is deliberately mostly data.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.engine.tuples import Batch
from repro.topology.operators import TaskId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.logic import OperatorLogic, SourceFunction
    from repro.engine.metrics import RecoveryRecord


class TaskStatus(enum.Enum):
    """Lifecycle of a task (incl. its active replica, if any)."""

    #: Processing normally (primary, or replica after takeover).
    RUNNING = "running"
    #: Dead with no active replica; waiting for passive recovery.
    FAILED = "failed"
    #: Restarted on a standby; catching up to its pre-failure progress.
    RECOVERING = "recovering"
    #: Primary dead; the active replica keeps processing with output held
    #: until takeover completes.
    FAILOVER = "failover"


class TaskRuntime:
    """Mutable state of one logical task within an engine run."""

    def __init__(self, task: TaskId, *, is_source: bool, is_sink: bool,
                 expected_upstreams: tuple[TaskId, ...], replicated: bool,
                 logic: "OperatorLogic | None" = None,
                 source_fn: "SourceFunction | None" = None):
        self.task = task
        self.is_source = is_source
        self.is_sink = is_sink
        self.expected_upstreams = expected_upstreams
        self.replicated = replicated
        self.logic = logic
        self.source_fn = source_fn

        self.status = TaskStatus.RUNNING
        #: Bumped on unreplicated failure; stale scheduled events check it.
        self.incarnation = 0
        #: Next batch index to process (non-source) / emit (source).
        self.next_batch = 0
        #: Pending input batches: index -> upstream task -> batch.
        self.inbox: dict[int, dict[TaskId, Batch]] = {}
        #: Whether a batch is currently being processed (one at a time).
        self.processing = False
        #: Last processed batch per upstream task (the progress vector).
        self.progress: dict[TaskId, int] = {u: -1 for u in expected_upstreams}
        #: Last batch index emitted downstream.
        self.emitted = -1
        #: CPU timeline: this task's (or its replica's) core is busy until here.
        self.busy_until = 0.0

        #: Output history: batch index -> destination -> batch.  Physically
        #: retained; ``trimmed_upto`` marks what a real system would have
        #: pruned (replaying pruned batches charges recompute cost).
        self.history: dict[int, dict[TaskId, Batch]] = {}
        self.trimmed_upto = -1
        #: Per-subscriber checkpoint acknowledgements driving the trim.
        self.acked: dict[TaskId, int] = {}
        #: Last batch whose outputs the active replica has trimmed.
        self.replica_synced = -1
        #: Outputs produced while in FAILOVER, flushed at takeover.
        self.held_outputs: list[tuple[TaskId, Batch]] = []
        #: Replay requests from subscribers arriving while this task was
        #: down: subscriber -> from-batch (exclusive).
        self.pending_replays: dict[TaskId, int] = {}
        #: Storm-mode recompute memo: (lo, hi, ready_time) of the last
        #: recomputed range.
        self.recompute_cover: tuple[int, int, float] | None = None

        self.last_checkpoint_batch = -1
        self.checkpoint_phase = 0
        self.fail_time: float | None = None
        self.pre_failure_progress: dict[TaskId, int] | None = None
        self.pre_failure_emitted: int | None = None
        self.recovery_record: "RecoveryRecord | None" = None

    # ------------------------------------------------------------------
    def alive(self) -> bool:
        """Whether the task currently processes batches."""
        return self.status in (TaskStatus.RUNNING, TaskStatus.FAILOVER,
                               TaskStatus.RECOVERING)

    def inbox_put(self, batch: Batch) -> bool:
        """Store an incoming batch; returns False for stale duplicates.

        A real batch replaces a forged placeholder for the same index, but a
        forged batch never overwrites real data.
        """
        if batch.index < self.next_batch:
            return False
        slot = self.inbox.setdefault(batch.index, {})
        existing = slot.get(batch.src)
        if existing is not None and not existing.forged:
            return False
        if existing is not None and batch.forged:
            return False
        slot[batch.src] = batch
        return True

    def inbox_ready(self, index: int) -> bool:
        """Whether batch ``index`` has arrived from every upstream task."""
        slot = self.inbox.get(index)
        if slot is None:
            return not self.expected_upstreams
        return all(u in slot for u in self.expected_upstreams)

    def take_inbox(self, index: int) -> dict[TaskId, Batch]:
        """Remove and return the input batches of ``index``."""
        return self.inbox.pop(index, {})

    def snapshot_progress(self) -> dict[TaskId, int]:
        """A copy of the progress vector (stored in checkpoints)."""
        return dict(self.progress)

    def caught_up(self) -> bool:
        """Whether the progress vector reached its pre-failure value."""
        if self.is_source:
            target = self.pre_failure_emitted
            return target is None or self.emitted >= target
        if self.pre_failure_progress is None:
            return True
        return all(
            self.progress.get(u, -1) >= before
            for u, before in self.pre_failure_progress.items()
        )

    def buffered_tuples(self, lo_exclusive: int, hi_inclusive: int) -> int:
        """Total tuples in output batches ``(lo, hi]`` (takeover/replay cost)."""
        total = 0
        for index in range(lo_exclusive + 1, hi_inclusive + 1):
            per_dst = self.history.get(index)
            if per_dst:
                total += sum(b.size for b in per_dst.values())
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TaskRuntime({self.task}, {self.status.value}, next={self.next_batch}, "
            f"emitted={self.emitted})"
        )

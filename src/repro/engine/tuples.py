"""Batches and punctuations: the dataflow unit of the simulated engine.

The paper's implementation (Sec. V-B) adopts batch processing: input tuples
are divided into consecutive batches, a task starts processing batch ``b``
only once it received the batch-over punctuation from every upstream task,
and tuples within a batch are processed in a predefined order.  In the
simulator a :class:`Batch` *is* its own punctuation — receiving the batch
message means the batch is over.

``forged=True`` marks the empty punctuations the recovery manager fabricates
for failed tasks so that downstream tasks keep producing tentative outputs;
``complete=False`` taints any batch whose lineage includes forged or
incomplete inputs, which is how sink outputs are classified as tentative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.topology.operators import TaskId

#: A stream element: ``(key, value)``.
KeyedTuple = tuple[str, Any]


@dataclass(frozen=True)
class Batch:
    """One batch of tuples flowing along a substream.

    ``tuples`` is a *shared, immutable-by-contract* sequence: the router's
    per-destination buckets are handed to the batch as-is (no re-tupling at
    emit), and the same object then lives in the upstream's output history,
    in the downstream inbox and — for window operators — inside
    :class:`~repro.queries.windows.SlidingWindow` blocks.  Nobody may mutate
    a batch's tuple sequence after construction.
    """

    src: TaskId
    dst: TaskId
    index: int
    tuples: Sequence[KeyedTuple] = field(default=())
    #: False when the batch lineage lost data (tentative output path).
    complete: bool = True
    #: True when the batch is a fabricated empty punctuation for a dead task.
    forged: bool = False

    @property
    def size(self) -> int:
        return len(self.tuples)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flags = "" if self.complete else " tentative"
        flags += " forged" if self.forged else ""
        return f"Batch({self.src}->{self.dst} #{self.index} n={self.size}{flags})"


def forged_batch(src: TaskId, dst: TaskId, index: int) -> Batch:
    """An empty punctuation standing in for a failed upstream task."""
    return Batch(src=src, dst=dst, index=index, tuples=(), complete=False, forged=True)


@dataclass(frozen=True)
class SinkRecord:
    """One batch of final output captured at a sink task."""

    task: TaskId
    index: int
    tuples: tuple[KeyedTuple, ...]
    complete: bool
    emitted_at: float

    @property
    def tentative(self) -> bool:
        """Whether this output was produced from incomplete inputs."""
        return not self.complete

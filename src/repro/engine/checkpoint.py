"""Checkpoint records and the standby-side checkpoint store (Sec. V-B).

A checkpoint captures a task's operator state plus its progress vector right
after processing a batch; it is stored on the task's standby node.  After a
task checkpoints, its upstream neighbours may trim their output buffers up to
the checkpointed batch — the engine drives that trim protocol and uses the
store during passive recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.topology.operators import TaskId


@dataclass(frozen=True)
class Checkpoint:
    """State of one task as of having processed ``batch_index``."""

    task: TaskId
    batch_index: int
    state: Any
    progress: dict[TaskId, int]
    state_tuples: int
    taken_at: float


@dataclass
class CheckpointStore:
    """Latest checkpoint per task (older ones are superseded)."""

    _latest: dict[TaskId, Checkpoint] = field(default_factory=dict)

    def put(self, checkpoint: Checkpoint) -> None:
        """Store a checkpoint, superseding any older one for the task."""
        current = self._latest.get(checkpoint.task)
        if current is None or checkpoint.batch_index >= current.batch_index:
            self._latest[checkpoint.task] = checkpoint

    def latest(self, task: TaskId) -> Checkpoint | None:
        """The most recent checkpoint of ``task``, or None."""
        return self._latest.get(task)

    def __len__(self) -> int:
        return len(self._latest)


@dataclass
class CheckpointTimings:
    """Measured per-task snapshot cost, smoothed for online tuning.

    The engine reports the virtual CPU cost of every checkpoint it takes;
    schemes that adapt their checkpoint interval (``adaptive-checkpoint``)
    read the exponentially-weighted estimate back.

    >>> timings = CheckpointTimings(smoothing=0.5)
    >>> timings.observe(TaskId("O1", 0), 0.4)
    >>> timings.observe(TaskId("O1", 0), 0.2)
    >>> round(timings.cost_estimate(TaskId("O1", 0)), 6)
    0.3
    >>> timings.cost_estimate(TaskId("O2", 0)) is None
    True
    """

    smoothing: float = 0.3
    _estimates: dict[TaskId, float] = field(default_factory=dict)

    def observe(self, task: TaskId, cost: float) -> None:
        """Fold one measured snapshot cost into the task's estimate."""
        previous = self._estimates.get(task)
        if previous is None:
            self._estimates[task] = cost
        else:
            alpha = self.smoothing
            self._estimates[task] = alpha * cost + (1.0 - alpha) * previous

    def cost_estimate(self, task: TaskId) -> float | None:
        """Smoothed snapshot cost of ``task``, or None before any sample."""
        return self._estimates.get(task)

    def __len__(self) -> int:
        return len(self._estimates)

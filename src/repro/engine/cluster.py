"""Cluster model: worker nodes, standby nodes, task placement.

Mirrors the paper's deployment (Sec. V-A, VI): primary tasks run on worker
nodes; a pool of standby nodes stores checkpoints, hosts active replicas and
receives recovered tasks.  A *correlated failure* kills many worker nodes at
once (Sec. VI injects it by killing every node hosting a primary task).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.errors import SimulationError
from repro.topology.graph import Topology
from repro.topology.operators import TaskId


def placement_node_map(tasks: Sequence[TaskId], nodes: Sequence[str],
                       pins: Mapping[TaskId, str] | None = None
                       ) -> dict[TaskId, str]:
    """Task → node-name map: round-robin over ``nodes`` with explicit pins.

    The single source of truth for the default placement order shared by the
    ``rack-correlated`` failure model and the ``k-safe`` recovery scheme —
    both must agree on which node hosts a task, or a blast radius computed
    by one would not match the kills injected by the other.  ``pins``
    overrides individual tasks; unpinned tasks keep their round-robin slot.
    """
    if not nodes:
        raise SimulationError("placement needs at least one node")
    node_of = {
        task: nodes[position % len(nodes)]
        for position, task in enumerate(tasks)
    }
    if pins:
        node_of.update(pins)
    return node_of


class NodeKind(enum.Enum):
    """Role of a machine: primaries run on workers, replicas on standbys."""

    WORKER = "worker"
    STANDBY = "standby"


@dataclass
class Node:
    """One machine; hosts tasks and can fail."""

    name: str
    kind: NodeKind
    failed: bool = False
    tasks: set[TaskId] = field(default_factory=set)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        state = "FAILED" if self.failed else "up"
        return f"Node({self.name}, {self.kind.value}, {state}, tasks={len(self.tasks)})"


class Cluster:
    """Workers + standbys with a primary-task placement map."""

    def __init__(self, n_workers: int, n_standby: int):
        if n_workers < 1:
            raise SimulationError("cluster needs at least one worker node")
        if n_standby < 0:
            raise SimulationError("standby node count must be >= 0")
        self.workers = [Node(f"worker-{i}", NodeKind.WORKER) for i in range(n_workers)]
        self.standbys = [Node(f"standby-{i}", NodeKind.STANDBY) for i in range(n_standby)]
        self._by_name = {n.name: n for n in self.workers + self.standbys}
        self._primary: dict[TaskId, Node] = {}
        self._standby_for: dict[TaskId, Node] = {}

    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        """The node called ``name`` (raises for unknown names)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SimulationError(f"unknown node {name!r}") from None

    def assign(self, task: TaskId, node_name: str) -> None:
        """Place ``task``'s primary on ``node_name`` (a worker)."""
        node = self.node(node_name)
        if node.kind is not NodeKind.WORKER:
            raise SimulationError(f"primaries must run on workers, not {node_name!r}")
        previous = self._primary.get(task)
        if previous is not None:
            previous.tasks.discard(task)
        node.tasks.add(task)
        self._primary[task] = node

    def place_round_robin(self, topology: Topology,
                          order: Sequence[TaskId] | None = None) -> None:
        """Spread primaries over workers round-robin (the default placement)."""
        tasks = tuple(order) if order is not None else topology.tasks()
        for position, task in enumerate(tasks):
            self.assign(task, self.workers[position % len(self.workers)].name)

    def primary_node(self, task: TaskId) -> Node:
        """The worker hosting ``task``'s primary (raises if unplaced)."""
        try:
            return self._primary[task]
        except KeyError:
            raise SimulationError(f"task {task!r} has no placement") from None

    def standby_node(self, task: TaskId) -> Node:
        """The standby assigned to ``task`` (checkpoints, replica, recovery)."""
        if not self.standbys:
            raise SimulationError("cluster has no standby nodes")
        node = self._standby_for.get(task)
        if node is None:
            node = self.standbys[len(self._standby_for) % len(self.standbys)]
            self._standby_for[task] = node
        return node

    # ------------------------------------------------------------------
    def fail_nodes(self, names: Iterable[str]) -> list[TaskId]:
        """Mark nodes failed; returns the primary tasks that just died."""
        died: list[TaskId] = []
        for name in names:
            node = self.node(name)
            if node.failed:
                continue
            node.failed = True
            died.extend(sorted(node.tasks))
        return died

    def restore_node(self, name: str) -> None:
        """Bring a failed node back (used by repair scenarios in tests)."""
        self.node(name).failed = False

    def nodes_hosting(self, tasks: Iterable[TaskId]) -> list[str]:
        """Names of the worker nodes hosting any of ``tasks`` (dedup, sorted)."""
        return sorted({self.primary_node(t).name for t in tasks})

    def all_worker_names(self) -> list[str]:
        """Names of every worker node, in creation order."""
        return [n.name for n in self.workers]

    def failed_tasks(self) -> list[TaskId]:
        """Primary tasks currently on failed nodes."""
        return sorted(
            t for t, node in self._primary.items() if node.failed
        )

"""Deterministic discrete-event core: virtual clock plus an event queue.

Events are callbacks ordered by ``(time, priority, sequence)``; the
monotonically increasing sequence number makes simultaneous events execute in
scheduling order, so a run is fully deterministic.

The queue is built for the engine's hot loop: entries are plain heap tuples
``(time, priority, sequence, event)`` whose comparison never reaches the
event cell (sequence numbers are unique), and callbacks carry their
arguments in the entry instead of closing over loop state, so schedulers can
pass bound methods directly (``sim.at(t, self._deliver, args=(batch,))``)
without allocating a closure per event.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError

#: An event callback; invoked with the ``args`` it was scheduled with.
EventFn = Callable[..., None]


class _Event:
    """Mutable cell carried inside a heap tuple (never itself compared)."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: EventFn, args: tuple[Any, ...]):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False


class EventHandle:
    """Allows a scheduled event to be cancelled before it fires."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (safe to call after it fired)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """Absolute virtual time the event is due at."""
        return self._event.time


class Simulator:
    """Virtual clock plus event queue; drives one engine run."""

    __slots__ = ("_queue", "_sequence", "_now", "_processed")

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, int, _Event]] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._processed

    def at(self, time: float, fn: EventFn, priority: int = 0,
           args: tuple[Any, ...] = ()) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        now = self._now
        if time < now - 1e-9:
            raise SimulationError(
                f"cannot schedule event in the past ({time:.6f} < now {now:.6f})"
            )
        event = _Event(time if time > now else now, fn, args)
        self._sequence += 1
        heapq.heappush(self._queue, (event.time, priority, self._sequence, event))
        return EventHandle(event)

    def after(self, delay: float, fn: EventFn, priority: int = 0,
              args: tuple[Any, ...] = ()) -> EventHandle:
        """Schedule ``fn(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.at(self._now + delay, fn, priority, args)

    def run_until(self, end_time: float) -> None:
        """Execute all events with due time <= ``end_time``, advancing the clock."""
        queue = self._queue
        pop = heapq.heappop
        bound = end_time + 1e-12
        while queue and queue[0][0] <= bound:
            event = pop(queue)[3]
            if event.cancelled:
                continue
            if event.time > self._now:
                self._now = event.time
            self._processed += 1
            event.fn(*event.args)
        if end_time > self._now:
            self._now = end_time

    def drain(self, max_events: int = 10_000_000) -> None:
        """Execute every remaining event (used to let recoveries finish).

        ``max_events`` bounds the number of events *executed*; the budget is
        only enforced while live events remain, so draining exactly
        ``max_events`` events from an emptying queue succeeds.
        """
        queue = self._queue
        pop = heapq.heappop
        executed = 0
        while queue:
            event = pop(queue)[3]
            if event.cancelled:
                continue
            if executed >= max_events:
                raise SimulationError(
                    f"drain() exceeded {max_events} events; likely a scheduling loop"
                )
            if event.time > self._now:
                self._now = event.time
            self._processed += 1
            executed += 1
            event.fn(*event.args)

"""Deterministic discrete-event core: virtual clock plus an event queue.

Events are plain callbacks ordered by ``(time, priority, sequence)``; the
monotonically increasing sequence number makes simultaneous events execute in
scheduling order, so a run is fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError

#: An event is just a zero-argument callback executed at its due time.
EventFn = Callable[[], None]


@dataclass(order=True)
class _QueuedEvent:
    time: float
    priority: int
    sequence: int
    fn: EventFn = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Allows a scheduled event to be cancelled before it fires."""

    __slots__ = ("_event",)

    def __init__(self, event: _QueuedEvent):
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (safe to call after it fired)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """Absolute virtual time the event is due at."""
        return self._event.time


class Simulator:
    """Virtual clock plus event queue; drives one engine run."""

    def __init__(self) -> None:
        self._queue: list[_QueuedEvent] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._processed

    def at(self, time: float, fn: EventFn, priority: int = 0) -> EventHandle:
        """Schedule ``fn`` at absolute virtual time ``time``."""
        if time < self._now - 1e-9:
            raise SimulationError(
                f"cannot schedule event in the past ({time:.6f} < now {self._now:.6f})"
            )
        event = _QueuedEvent(max(time, self._now), priority, next(self._sequence), fn)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def after(self, delay: float, fn: EventFn, priority: int = 0) -> EventHandle:
        """Schedule ``fn`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.at(self._now + delay, fn, priority)

    def run_until(self, end_time: float) -> None:
        """Execute all events with due time <= ``end_time``, advancing the clock."""
        while self._queue and self._queue[0].time <= end_time + 1e-12:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = max(self._now, event.time)
            self._processed += 1
            event.fn()
        self._now = max(self._now, end_time)

    def drain(self, max_events: int = 10_000_000) -> None:
        """Execute every remaining event (used to let recoveries finish)."""
        budget = max_events
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = max(self._now, event.time)
            self._processed += 1
            event.fn()
            budget -= 1
            if budget <= 0:
                raise SimulationError(
                    f"drain() exceeded {max_events} events; likely a scheduling loop"
                )

"""Metric collection for engine runs.

Everything the evaluation section reads comes through here: per-task CPU
accounting (Fig. 9's checkpoint-to-processing ratio), recovery records
(Fig. 7/8/10 latencies, measured from *detection* to progress-vector
catch-up, matching Sec. VI), and the sink output log with tentative flags
(Fig. 12/13 accuracies).
"""

from __future__ import annotations

import enum
import statistics
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.plans import ReplicationPlan
from repro.engine.tuples import SinkRecord
from repro.topology.operators import TaskId


class RecoveryMode(enum.Enum):
    """Which mechanism recovered a task."""

    ACTIVE = "active"
    CHECKPOINT = "checkpoint"
    SOURCE_REPLAY = "source-replay"
    APPROXIMATE = "approximate"


@dataclass
class TaskCpu:
    """Virtual CPU seconds spent by one task, by activity."""

    process: float = 0.0
    checkpoint: float = 0.0
    replay: float = 0.0

    @property
    def total(self) -> float:
        return self.process + self.checkpoint + self.replay

    @property
    def checkpoint_ratio(self) -> float:
        """Checkpoint CPU relative to normal processing CPU (Fig. 9 y-axis)."""
        if self.process <= 0.0:
            return 0.0
        return self.checkpoint / self.process


@dataclass
class RecoveryRecord:
    """Lifecycle of one task recovery."""

    task: TaskId
    mode: RecoveryMode
    fail_time: float
    detect_time: float
    recovered_time: float | None = None
    #: Fidelity accounting of approximate recovery (Cheng et al.,
    #: arXiv:1811.04570): the user-set divergence bound the scheme ran
    #: under, and the loss it actually realized by skipping replay.
    #: ``None`` for exact schemes (and absent from fingerprints/serialized
    #: dicts, so pre-existing goldens and sink bytes are untouched).
    fidelity_bound: float | None = None
    fidelity_loss: float | None = None

    @property
    def latency(self) -> float | None:
        """Recovery latency per the paper: detection to progress catch-up."""
        if self.recovered_time is None:
            return None
        return self.recovered_time - self.detect_time


class MetricsCollector:
    """Accumulates everything measurable during one engine run."""

    def __init__(self, plan: ReplicationPlan | None = None) -> None:
        #: The replication plan the run executed under (with planner
        #: provenance), so downstream reporting never loses track of which
        #: planner/budget produced the numbers.
        self.plan: ReplicationPlan | None = plan
        self.cpu: dict[TaskId, TaskCpu] = {}
        self.recoveries: list[RecoveryRecord] = []
        self.sink_records: list[SinkRecord] = []
        self.batches_processed: int = 0
        self.tuples_processed: int = 0
        self.checkpoints_taken: int = 0
        self.batches_forged: int = 0
        #: Engine-throughput profile, filled in by the engine when the run
        #: finishes (diagnostics; not part of the metric fingerprint).
        self.processed_events: int = 0
        self.simulated_seconds: float = 0.0
        self.wall_seconds: float = 0.0
        self.peak_history_batches: int = 0

    # ------------------------------------------------------------------
    def profile(self) -> dict[str, float | int]:
        """Engine-throughput numbers of the finished run.

        ``sim_seconds_per_wall_second`` and ``events_per_second`` are the
        headline throughput ratios; ``peak_history_batches`` is the largest
        physical output buffer any task held (bounded-memory evidence).
        """
        wall = self.wall_seconds
        return {
            "processed_events": self.processed_events,
            "simulated_seconds": self.simulated_seconds,
            "wall_seconds": wall,
            "sim_seconds_per_wall_second":
                self.simulated_seconds / wall if wall > 0 else 0.0,
            "events_per_second":
                self.processed_events / wall if wall > 0 else 0.0,
            "peak_history_batches": self.peak_history_batches,
        }

    # ------------------------------------------------------------------
    def cpu_of(self, task: TaskId) -> TaskCpu:
        """The CPU accounting entry of ``task`` (created on demand)."""
        entry = self.cpu.get(task)
        if entry is None:
            entry = TaskCpu()
            self.cpu[task] = entry
        return entry

    def record_recovery_start(self, task: TaskId, mode: RecoveryMode,
                              fail_time: float, detect_time: float) -> RecoveryRecord:
        """Open a recovery record; the engine fills in recovered_time."""
        record = RecoveryRecord(task, mode, fail_time, detect_time)
        self.recoveries.append(record)
        return record

    # ------------------------------------------------------------------
    # Aggregations used by the experiment harness
    # ------------------------------------------------------------------
    def recovery_latencies(self, mode: RecoveryMode | None = None,
                           tasks: Iterable[TaskId] | None = None) -> list[float]:
        """Completed recovery latencies, optionally filtered by mode/tasks."""
        selected = set(tasks) if tasks is not None else None
        out = []
        for record in self.recoveries:
            if record.latency is None:
                continue
            if mode is not None and record.mode is not mode:
                continue
            if selected is not None and record.task not in selected:
                continue
            out.append(record.latency)
        return out

    def mean_recovery_latency(self, mode: RecoveryMode | None = None,
                              tasks: Iterable[TaskId] | None = None) -> float | None:
        """Mean completed recovery latency, or None when nothing recovered."""
        values = self.recovery_latencies(mode, tasks)
        if not values:
            return None
        return statistics.fmean(values)

    def max_recovery_latency(self, mode: RecoveryMode | None = None,
                             tasks: Iterable[TaskId] | None = None) -> float | None:
        """Full-recovery completion time (the paper's correlated-failure view)."""
        values = self.recovery_latencies(mode, tasks)
        if not values:
            return None
        return max(values)

    def checkpoint_cpu_ratio(self, tasks: Iterable[TaskId] | None = None) -> float:
        """Mean checkpoint/process CPU ratio over tasks that processed data."""
        selected = set(tasks) if tasks is not None else None
        ratios = [
            cpu.checkpoint_ratio
            for task, cpu in sorted(self.cpu.items())
            if cpu.process > 0 and (selected is None or task in selected)
        ]
        if not ratios:
            return 0.0
        return statistics.fmean(ratios)

    def sink_outputs(self, *, tentative: bool | None = None,
                     since: float | None = None) -> list[SinkRecord]:
        """Sink records filtered by tentativeness and emission time."""
        out = []
        for record in self.sink_records:
            if tentative is not None and record.tentative is not tentative:
                continue
            if since is not None and record.emitted_at < since:
                continue
            out.append(record)
        return out

"""Engine configuration: virtual-time cost model and protocol intervals.

The simulator substitutes the paper's 36-node EC2 cluster (see DESIGN.md §2).
All durations are in *virtual seconds*; the defaults are calibrated so that
the absolute recovery latencies land in the paper's ballpark (single-digit
seconds for active replicas, tens of seconds for checkpoint restores at high
rates), while the *shapes* — scaling with input rate, checkpoint interval,
window length and topology depth — follow from the protocol itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SimulationError


class PassiveStrategy(enum.Enum):
    """How tasks without an active replica are recovered."""

    #: Restore the latest checkpoint, replay upstream output buffers (PPA,
    #: Spark-Streaming style).
    CHECKPOINT = "checkpoint"
    #: No checkpoints: rebuild state by replaying source data through the
    #: whole topology (vanilla Storm).
    SOURCE_REPLAY = "source-replay"


@dataclass(frozen=True)
class CostModel:
    """Per-operation virtual CPU / network costs.

    Utilisation must stay below 1 for recovery to converge: with the default
    50 µs per tuple, a task receiving 2 000 tuples/s is 10 % utilised and can
    catch up on backlog at roughly 10× the arrival rate.
    """

    #: CPU seconds to process one input tuple.
    per_tuple_process: float = 50e-6
    #: CPU seconds to serialise one tuple of state into a checkpoint.
    per_tuple_serialize: float = 6e-6
    #: Fixed CPU seconds per checkpoint (metadata, coordination).
    checkpoint_fixed: float = 0.01
    #: CPU seconds to load one tuple of state from a checkpoint.
    per_tuple_load: float = 3e-6
    #: Seconds to resend one buffered tuple during replay or replica takeover.
    per_tuple_resend: float = 4e-6
    #: One-way network latency per batch hop.
    network_delay: float = 0.02
    #: Seconds to launch a task process on a standby node.
    restart_delay: float = 2.0
    #: Fixed seconds for an active replica to take over its failed primary.
    takeover_fixed: float = 0.5

    def __post_init__(self) -> None:
        for name in (
            "per_tuple_process", "per_tuple_serialize", "checkpoint_fixed",
            "per_tuple_load", "per_tuple_resend", "network_delay",
            "restart_delay", "takeover_fixed",
        ):
            if getattr(self, name) < 0:
                raise SimulationError(f"cost {name} must be >= 0")


@dataclass(frozen=True)
class EngineConfig:
    """Protocol intervals and feature switches of one engine run."""

    #: Stream time covered by one batch (the paper's batch processing unit).
    batch_interval: float = 1.0
    #: Master heartbeat period; failures are detected at the next beat
    #: (5 seconds in the paper's experiments).
    heartbeat_interval: float = 5.0
    #: Checkpoint period; ``None`` disables checkpoints entirely.
    checkpoint_interval: float | None = 15.0
    #: Period at which a primary lets its active replica trim its output
    #: buffer (the "Active-5s" / "Active-30s" knob of Fig. 7/8).
    sync_interval: float = 5.0
    #: Recovery path for tasks without an active replica.
    passive_strategy: PassiveStrategy = PassiveStrategy.CHECKPOINT
    #: Forge batch-over punctuations for failed tasks so downstream tasks
    #: keep producing (tentative) output during recovery.
    tentative_outputs: bool = False
    #: Master attempts to recover failed tasks. Disable to measure tentative
    #: output quality over an indefinite outage (Fig. 12/13).
    recovery_enabled: bool = True
    #: Stagger checkpoints across tasks (checkpoints are asynchronous in a
    #: real cluster, which is what forces recovery synchronisation).
    stagger_checkpoints: bool = True
    #: Fault-tolerance scheme, by :data:`~repro.engine.recovery.RECOVERY_SCHEMES`
    #: registry name: ``"ppa"`` (the paper's partially-active replication,
    #: the default), ``"checkpoint-replay"``, ``"source-replay"``, or
    #: ``"active-standby"``; custom schemes plug in via the registry.
    recovery_scheme: str = "ppa"
    #: Keyword arguments for the scheme factory (e.g. ``{"fidelity_bound":
    #: 0.2}`` for ``approximate-ft``).  Empty for the built-in defaults, and
    #: omitted from scenario serialization when empty so existing digests
    #: are unchanged.
    recovery_params: dict = field(default_factory=dict)
    #: Cost model.
    costs: CostModel = field(default_factory=CostModel)
    #: Seed for any randomised choice (kept for reproducibility; the engine
    #: itself is fully deterministic).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.batch_interval <= 0:
            raise SimulationError("batch_interval must be positive")
        if self.heartbeat_interval <= 0:
            raise SimulationError("heartbeat_interval must be positive")
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise SimulationError("checkpoint_interval must be positive or None")
        if self.sync_interval <= 0:
            raise SimulationError("sync_interval must be positive")
        if not self.recovery_scheme or not isinstance(self.recovery_scheme, str):
            raise SimulationError("recovery_scheme must be a non-empty string")

    @property
    def checkpoint_batches(self) -> int | None:
        """Checkpoint period expressed in whole batches (rounded up)."""
        if self.checkpoint_interval is None:
            return None
        return max(1, round(self.checkpoint_interval / self.batch_interval))

    @property
    def sync_batches(self) -> int:
        """Replica trim period in whole batches (rounded up)."""
        return max(1, round(self.sync_interval / self.batch_interval))

"""Pluggable fault-tolerance schemes: the engine's recovery strategy API.

The protocols of Sec. V — replica takeover, checkpoint restore + upstream
replay, source replay through the whole topology, and forged batch-over
punctuations — used to be hard-wired into :class:`StreamEngine`.  They now
live behind a strategy interface so new fault-tolerance schemes plug in as
registry entries instead of engine edits:

* :class:`RecoveryScheme` — the strategy protocol.  The base class ships the
  full PPA machinery (failure classification, takeover, restore, replay
  serving, recompute-on-replay, forging) as overridable methods, so most
  schemes are a handful of lines;
* :class:`RecoveryContext` — the capability object handed to schemes.  It is
  the *only* surface a scheme sees: virtual time and scheduling, config,
  metrics, per-task runtimes, checkpoint store, and the engine's data-plane
  operations (send/deliver/try-process/source emission).  Schemes never
  touch engine internals directly;
* :data:`RECOVERY_SCHEMES` — the string-keyed registry mirroring
  ``PLANNERS``/``FAILURE_MODELS``, selected via
  :attr:`EngineConfig.recovery_scheme <repro.engine.config.EngineConfig>`.

Built-in schemes
----------------

==================== =====================================================
``"ppa"``            Partially-active replication (the paper's system):
                     planned tasks keep a hot replica, everything else
                     recovers passively per ``config.passive_strategy``.
``"checkpoint-replay"`` Pure passive recovery: no replicas, restore the
                     latest checkpoint and replay upstream buffers.
``"source-replay"``  Vanilla Storm: no replicas, no checkpoint restore —
                     rebuild state by replaying source data through the
                     whole topology.
``"active-standby"`` Every task (sources included) keeps a hot replica —
                     the fully-active upper bound the paper compares PPA
                     against; the replication plan is ignored.
``"approximate-ft"`` Approximate fault tolerance (Cheng et al.,
                     arXiv:1811.04570): skip replay and resume at the live
                     edge when the estimated output divergence stays under
                     ``fidelity_bound``, charging nothing to recovery
                     latency; the realized loss is reported on the
                     recovery record.
``"k-safe"``         Passive-plus-placement: replicas are placed so that a
                     task and its standby never share a failure domain of
                     the ``rack-correlated`` placement map.
``"adaptive-checkpoint"`` Tunes the checkpoint interval online from
                     observed failure inter-arrival times and measured
                     snapshot cost (Young/Daly ``sqrt(2·δ·MTBF)``).
==================== =====================================================

A custom scheme is ~10 lines:

>>> from repro.engine.recovery import RECOVERY_SCHEMES, RecoveryScheme
>>> @RECOVERY_SCHEMES.register("sources-active")
... class SourcesActive(RecoveryScheme):
...     '''Hot-replicate only source tasks; everything else is passive.'''
...     name = "sources-active"
...     def replicated_tasks(self, topology, planned):
...         return frozenset(t for t in topology.tasks()
...                          if topology.operator(t.operator).is_source)
>>> "sources-active" in RECOVERY_SCHEMES
True
>>> RECOVERY_SCHEMES.unregister("sources-active")
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, AbstractSet, Callable, Mapping

from repro.engine.checkpoint import CheckpointTimings
from repro.engine.cluster import placement_node_map
from repro.engine.config import EngineConfig, PassiveStrategy
from repro.engine.metrics import MetricsCollector, RecoveryMode
from repro.engine.tasks import TaskRuntime, TaskStatus
from repro.engine.tuples import Batch, forged_batch
from repro.errors import SimulationError
from repro.registry import Registry
from repro.topology.graph import Topology
from repro.topology.operators import TaskId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.checkpoint import Checkpoint
    from repro.engine.engine import StreamEngine
    from repro.engine.logic import OperatorLogic

#: Recovery-scheme factories: ``fn(**params) -> RecoveryScheme``.  One
#: instance is created per engine run, so schemes may keep per-run state.
RECOVERY_SCHEMES: Registry = Registry("recovery scheme", error=SimulationError)


def create_scheme(name: str,
                  params: Mapping[str, object] | None = None) -> "RecoveryScheme":
    """Instantiate the registered recovery scheme ``name``.

    ``params`` are keyword arguments for the scheme factory (e.g.
    ``{"fidelity_bound": 0.2}`` for ``approximate-ft``); unknown parameters
    surface as a :class:`SimulationError` naming the scheme.
    """
    factory = RECOVERY_SCHEMES.get(name)
    try:
        scheme = factory(**dict(params)) if params else factory()
    except TypeError as exc:
        raise SimulationError(
            f"recovery scheme {name!r} rejected parameters "
            f"{dict(params or {})!r}: {exc}"
        ) from None
    if not isinstance(scheme, RecoveryScheme):
        raise SimulationError(
            f"recovery scheme {name!r} built a {type(scheme).__name__}, "
            f"not a RecoveryScheme"
        )
    return scheme


class RecoveryContext:
    """The engine-facing capability surface handed to a recovery scheme.

    Wraps one :class:`~repro.engine.engine.StreamEngine` run and exposes
    exactly what fault-tolerance protocols need — nothing else.  Keeping
    schemes behind this facade means the engine's internals can evolve
    without breaking third-party schemes, and a scheme can be unit-tested
    against a stub context.
    """

    __slots__ = ("_engine",)

    def __init__(self, engine: "StreamEngine"):
        self._engine = engine

    # -- static facts ---------------------------------------------------
    @property
    def config(self) -> EngineConfig:
        """The run's engine configuration (intervals, costs, switches)."""
        return self._engine.config

    @property
    def metrics(self) -> MetricsCollector:
        """The run's metrics collector (CPU accounting, recovery records)."""
        return self._engine.metrics

    @property
    def topology(self) -> Topology:
        """The query topology under execution."""
        return self._engine.topology

    @property
    def end_time(self) -> float:
        """Virtual time at which sources stop emitting."""
        return self._engine._end_time

    @property
    def source_replay_window_batches(self) -> int:
        """Batches a source-replay restart reprocesses to rebuild windows."""
        return self._engine.source_replay_window_batches

    @property
    def planned_tasks(self) -> frozenset[TaskId]:
        """The replication plan's task set (planner provenance intact)."""
        return self._engine.plan.replicated

    # -- virtual time and scheduling ------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._engine.sim.now

    def at(self, time: float, fn: Callable[..., None], priority: int = 0,
           args: tuple = ()) -> None:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        self._engine.sim.at(time, fn, priority, args)

    def after(self, delay: float, fn: Callable[..., None], priority: int = 0,
              args: tuple = ()) -> None:
        """Schedule ``fn(*args)`` ``delay`` virtual seconds from now."""
        self._engine.sim.after(delay, fn, priority, args)

    # -- tasks and state ------------------------------------------------
    def runtime(self, task: TaskId) -> TaskRuntime:
        """The runtime of ``task``."""
        return self._engine.runtimes[task]

    def downstream_tasks(self, task: TaskId) -> tuple[TaskId, ...]:
        """The tasks subscribed to ``task``'s output."""
        return self._engine.topology.downstream_tasks(task)

    def latest_checkpoint(self, task: TaskId) -> "Checkpoint | None":
        """The most recent checkpoint of ``task``, if any."""
        return self._engine.checkpoints.latest(task)

    def make_logic(self, task: TaskId) -> "OperatorLogic":
        """A fresh (empty-state) logic instance for ``task``."""
        return self._engine.logic_factory.logic_for(task)

    # -- data-plane operations ------------------------------------------
    def send(self, batch: Batch) -> None:
        """Send ``batch`` downstream with the normal network delay."""
        self._engine._send(batch)

    def deliver(self, batch: Batch) -> None:
        """Deliver ``batch`` to its destination immediately (post-delay)."""
        self._engine._deliver(batch)

    def try_process(self, rt: TaskRuntime) -> None:
        """Let ``rt`` process its next batch if the inbox is ready."""
        self._engine._try_process(rt)

    def produce_source_batch(self, rt: TaskRuntime, index: int) -> None:
        """Make source task ``rt`` produce batch ``index`` now."""
        self._engine._produce_source_batch(rt, index)

    def replay_batch(self, up: TaskRuntime, sub: TaskId, index: int) -> Batch:
        """The output batch ``up`` sent to ``sub`` at ``index``, for resend.

        Reads the physically-retained buffer when the batch is still there;
        physically-trimmed *source* batches are regenerated exactly from the
        (pure, memoized) source function.  A trimmed non-source batch is a
        retention-window bug, reported loudly rather than silently replayed
        wrong.
        """
        return self._engine._replay_batch(up, sub, index)

    def schedule_source_emission(self, rt: TaskRuntime, index: int) -> None:
        """Re-arm source ``rt``'s normal emission chain at batch ``index``."""
        self._engine._schedule_source_emission(rt, index)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RecoveryContext({self._engine!r})"


class RecoveryScheme:
    """Strategy protocol for fault tolerance, with PPA as the base machinery.

    The engine drives a scheme through four hooks:

    * :meth:`replicated_tasks` — at construction, which tasks get a hot
      replica (sets ``TaskRuntime.replicated``);
    * :meth:`on_task_failed` — at failure *injection*, classify the task
      (``FAILOVER`` when a replica keeps running, ``FAILED`` otherwise);
    * :meth:`on_failure_detected` — at the heartbeat that *detects* the
      failure, start takeover or passive recovery;
    * :meth:`check_recovered` — after every processed batch of a
      ``RECOVERING`` task, to finish recovery at progress catch-up.

    Everything else (takeover, restore, replay serving, recompute of pruned
    buffers, forged punctuations) is machinery the base class implements in
    terms of :class:`RecoveryContext`; subclasses override what differs.
    """

    #: Registry key, repeated on the class for introspection/rendering.
    name = "ppa"

    def __init__(self) -> None:
        self.ctx: RecoveryContext = None  # type: ignore[assignment]

    def attach(self, ctx: RecoveryContext) -> None:
        """Bind this (per-run) scheme instance to an engine run."""
        self.ctx = ctx

    # ------------------------------------------------------------------
    # Policy knobs (what the built-in schemes override)
    # ------------------------------------------------------------------
    def replicated_tasks(self, topology: Topology,
                         planned: AbstractSet[TaskId]) -> frozenset[TaskId]:
        """Which tasks keep a hot replica.  PPA: exactly the plan."""
        return frozenset(planned)

    def passive_mode(self) -> RecoveryMode:
        """How tasks without a replica recover.  PPA: per the config knob."""
        if self.ctx.config.passive_strategy is PassiveStrategy.CHECKPOINT:
            return RecoveryMode.CHECKPOINT
        return RecoveryMode.SOURCE_REPLAY

    # ------------------------------------------------------------------
    # Checkpoint policy (interval-tuning schemes override)
    # ------------------------------------------------------------------
    def checkpoint_period(self, rt: TaskRuntime) -> int | None:
        """Checkpoint period for ``rt`` in whole batches; ``None`` disables.

        The engine asks after every processed batch, so a scheme may retune
        the interval online.  Default: the static configured period.
        """
        return self.ctx.config.checkpoint_batches

    def on_checkpoint(self, rt: TaskRuntime, cost: float) -> None:
        """Observe one taken checkpoint and its measured CPU cost."""

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def on_task_failed(self, rt: TaskRuntime) -> None:
        """Classify a just-killed task (engine has set fail-time snapshots)."""
        if rt.replicated:
            # The hot replica keeps processing; outputs are held until
            # takeover re-routes subscribers to it.
            rt.status = TaskStatus.FAILOVER
        else:
            self.fail_unreplicated(rt)

    def fail_unreplicated(self, rt: TaskRuntime) -> None:
        """Mark ``rt`` dead with nothing standing in: await recovery."""
        record = rt.recovery_record
        if record is not None and record.recovered_time is None:
            # A re-failure aborted an in-flight recovery (flapping): the
            # superseded record would otherwise stay open forever.
            try:
                self.ctx.metrics.recoveries.remove(record)
            except ValueError:  # pragma: no cover - defensive
                pass
        rt.recovery_record = None
        rt.status = TaskStatus.FAILED
        rt.incarnation += 1
        rt.processing = False
        rt.inbox.clear()

    # ------------------------------------------------------------------
    # Failure detection (called from the master's heartbeat)
    # ------------------------------------------------------------------
    def on_failure_detected(self, rt: TaskRuntime) -> None:
        """Start takeover (FAILOVER) or passive recovery (FAILED)."""
        assert rt.fail_time is not None
        ctx = self.ctx
        if (rt.recovery_record is not None
                and rt.recovery_record.recovered_time is None):
            return  # recovery of this failure is already under way
        if rt.status is TaskStatus.FAILOVER:
            record = ctx.metrics.record_recovery_start(
                rt.task, RecoveryMode.ACTIVE, rt.fail_time, ctx.now
            )
            rt.recovery_record = record
            costs = ctx.config.costs
            resend = rt.buffered_tuples(rt.replica_synced, rt.emitted)
            delay = costs.takeover_fixed + resend * costs.per_tuple_resend
            ctx.metrics.cpu_of(rt.task).replay += resend * costs.per_tuple_resend
            ctx.after(delay, self.complete_takeover, args=(rt,))
            return
        if rt.status is not TaskStatus.FAILED:
            return
        record = ctx.metrics.record_recovery_start(
            rt.task, self.passive_mode(), rt.fail_time, ctx.now
        )
        rt.recovery_record = record
        if ctx.config.tentative_outputs:
            self.start_forging(rt)
        if ctx.config.recovery_enabled:
            ctx.after(ctx.config.costs.restart_delay, self.restore_task,
                      args=(rt, rt.incarnation))

    def complete_takeover(self, rt: TaskRuntime) -> None:
        """Replica becomes primary: flush held outputs, resume serving."""
        if rt.status is not TaskStatus.FAILOVER:
            return
        rt.status = TaskStatus.RUNNING
        held, rt.held_outputs = rt.held_outputs, []
        for _dst, batch in held:
            self.ctx.send(batch)
        if rt.recovery_record is not None:
            rt.recovery_record.recovered_time = self.ctx.now
        self.serve_pending_replays(rt)
        self.ctx.try_process(rt)

    # ------------------------------------------------------------------
    # Passive recovery
    # ------------------------------------------------------------------
    def restore_task(self, rt: TaskRuntime,
                     incarnation: int | None = None) -> None:
        """Restart ``rt`` on a standby node and begin catching up.

        ``incarnation`` pins the restore to the failure that scheduled it:
        if the task was killed *again* in the meantime (flapping), the stale
        restore is dropped — the re-failure's own detection schedules a
        fresh one.
        """
        if incarnation is not None and rt.incarnation != incarnation:
            return
        if rt.status is not TaskStatus.FAILED:
            return
        ctx = self.ctx
        rt.status = TaskStatus.RECOVERING
        costs = ctx.config.costs
        use_checkpoint = self.passive_mode() is RecoveryMode.CHECKPOINT
        checkpoint = ctx.latest_checkpoint(rt.task) if use_checkpoint else None
        if rt.is_source:
            self.restore_source(rt, checkpoint)
            return

        rt.logic = ctx.make_logic(rt.task)
        if checkpoint is not None:
            load = checkpoint.state_tuples * costs.per_tuple_load
            rt.busy_until = ctx.now + load
            ctx.metrics.cpu_of(rt.task).replay += load
            if checkpoint.state is not None:
                rt.logic.restore(checkpoint.state)
            rt.next_batch = checkpoint.batch_index + 1
            rt.progress = dict(checkpoint.progress)
            rt.emitted = checkpoint.batch_index
        elif use_checkpoint:
            # The task died before its first checkpoint: cold restart from
            # batch 0. Its upstream buffers are fully retained because it
            # never acknowledged a checkpoint, so replay covers everything.
            rt.next_batch = 0
            rt.progress = {u: -1 for u in rt.expected_upstreams}
            rt.emitted = -1
            rt.busy_until = ctx.now
        else:
            # Source-replay (Storm) restart: empty state; rebuild the window
            # by reprocessing the last `source_replay_window_batches` batches.
            current = int(ctx.now / ctx.config.batch_interval)
            start = max(0, current - ctx.source_replay_window_batches)
            rt.next_batch = start
            rt.progress = {u: start - 1 for u in rt.expected_upstreams}
            rt.emitted = start - 1
            rt.busy_until = ctx.now

        for upstream in rt.expected_upstreams:
            self.request_replay(ctx.runtime(upstream), rt, rt.next_batch - 1)
        self.serve_pending_replays(rt)
        self.check_recovered(rt)
        ctx.try_process(rt)

    def restore_source(self, rt: TaskRuntime,
                       checkpoint: "Checkpoint | None") -> None:
        """Resume a source from its log offset, backfilling missed batches."""
        # Sources always resume from their log offset (no data loss): the
        # checkpoint only matters for the progress bookkeeping.
        ctx = self.ctx
        rt.status = TaskStatus.RECOVERING
        rt.busy_until = ctx.now
        backlog_start = rt.next_batch
        due = int(ctx.now / ctx.config.batch_interval) - 1
        due = min(due, int(ctx.end_time / ctx.config.batch_interval) - 1)
        for index in range(backlog_start, due + 1):
            ctx.produce_source_batch(rt, index)
        self.check_recovered(rt)
        if rt.status is TaskStatus.RECOVERING:
            # Not caught up only if there was nothing to emit yet.
            self.check_recovered(rt)
        self.serve_pending_replays(rt)
        ctx.schedule_source_emission(rt, rt.next_batch)

    def check_recovered(self, rt: TaskRuntime) -> None:
        """Finish recovery once the progress vector caught up."""
        if rt.status is not TaskStatus.RECOVERING:
            return
        if not rt.caught_up():
            return
        rt.status = TaskStatus.RUNNING
        if rt.recovery_record is not None and rt.recovery_record.recovered_time is None:
            rt.recovery_record.recovered_time = max(self.ctx.now, rt.busy_until)
        self.serve_pending_replays(rt)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def request_replay(self, up: TaskRuntime, sub: TaskRuntime,
                       from_exclusive: int) -> None:
        """Ask ``up`` to resend its output to ``sub`` from a batch onwards."""
        if up.status in (TaskStatus.FAILED, TaskStatus.FAILOVER):
            up.pending_replays[sub.task] = min(
                up.pending_replays.get(sub.task, from_exclusive), from_exclusive
            )
            return
        # RUNNING or RECOVERING: serve what the buffer already covers; the
        # rest arrives through the upstream's own catch-up emissions.
        self.serve_replay(up, sub, from_exclusive, up.emitted)

    def serve_pending_replays(self, rt: TaskRuntime) -> None:
        """Serve replay requests that queued up while ``rt`` was down."""
        pending, rt.pending_replays = rt.pending_replays, {}
        for sub_task, from_exclusive in sorted(pending.items()):
            self.serve_replay(rt, self.ctx.runtime(sub_task), from_exclusive,
                              rt.emitted)

    def serve_replay(self, up: TaskRuntime, sub: TaskRuntime,
                     from_exclusive: int, upto: int) -> None:
        """Resend ``up``'s buffered output batches ``(from, upto]`` to ``sub``."""
        ctx = self.ctx
        costs = ctx.config.costs
        sizes = up.output_sizes
        indices = [
            i for i in range(from_exclusive + 1, upto + 1)
            if i in sizes and sub.task in sizes[i]
        ]
        if not indices:
            return
        pruned = [i for i in indices if i <= up.trimmed_upto]
        ready = ctx.now
        if pruned:
            ready = self.ensure_recomputed(up, min(pruned), max(pruned))
        cursor = max(ready, ctx.now)
        for index in indices:
            batch = ctx.replay_batch(up, sub.task, index)
            resend_cost = batch.size * costs.per_tuple_resend
            cursor = max(cursor, up.busy_until) + resend_cost
            up.busy_until = cursor
            ctx.metrics.cpu_of(up.task).replay += resend_cost
            send_at = cursor + costs.network_delay
            ctx.at(send_at, ctx.deliver, args=(batch,))

    def ensure_recomputed(self, rt: TaskRuntime, lo: int, hi: int) -> float:
        """Virtual time when ``rt`` has regenerated output batches [lo, hi].

        Models Storm's source replay: pruned batches must be recomputed by
        replaying the inputs through every task between the sources and this
        one, charging reprocessing CPU along the chain.
        """
        ctx = self.ctx
        if rt.recompute_cover is not None:
            c_lo, c_hi, c_ready = rt.recompute_cover
            if c_lo <= lo and hi <= c_hi:
                return c_ready
            lo, hi = min(lo, c_lo), max(hi, c_hi)
        costs = ctx.config.costs
        if rt.is_source:
            # Reading the source log back costs resend time per tuple.
            tuples = rt.buffered_tuples(lo - 1, hi)
            ready = max(ctx.now, rt.busy_until) + tuples * costs.per_tuple_resend
            rt.busy_until = ready
            ctx.metrics.cpu_of(rt.task).replay += tuples * costs.per_tuple_resend
        else:
            upstream_ready = ctx.now
            input_tuples = 0
            for upstream in rt.expected_upstreams:
                up = ctx.runtime(upstream)
                pruned_input = up.trimmed_upto >= lo
                if pruned_input:
                    upstream_ready = max(
                        upstream_ready, self.ensure_recomputed(up, lo, hi)
                    )
                up_sizes = up.output_sizes
                input_tuples += sum(
                    up_sizes[i][rt.task]
                    for i in range(lo, hi + 1)
                    if i in up_sizes and rt.task in up_sizes[i]
                )
            cost = input_tuples * costs.per_tuple_process
            ready = max(upstream_ready, rt.busy_until, ctx.now) + cost
            rt.busy_until = ready
            ctx.metrics.cpu_of(rt.task).replay += cost
        rt.recompute_cover = (lo, hi, ready)
        return ready

    # ------------------------------------------------------------------
    # Tentative outputs (forged punctuations)
    # ------------------------------------------------------------------
    def start_forging(self, failed: TaskRuntime) -> None:
        """Forge batch-over punctuations for ``failed`` to its subscribers."""
        subscribers = self.ctx.downstream_tasks(failed.task)
        for sub in subscribers:
            self.schedule_forge(failed, self.ctx.runtime(sub),
                                failed.emitted + 1)

    def schedule_forge(self, failed: TaskRuntime, sub: TaskRuntime,
                       index: int) -> None:
        """Arm the forge of batch ``index`` at its natural due time."""
        ctx = self.ctx
        due = ((index + 1) * ctx.config.batch_interval
               + ctx.config.costs.network_delay)
        if due > ctx.end_time + 1e-9:
            return
        ctx.at(max(due, ctx.now), self.forge, args=(failed, sub, index))

    def forge(self, failed: TaskRuntime, sub: TaskRuntime, index: int) -> None:
        """Deliver one forged punctuation (unless the task recovered)."""
        if failed.status is TaskStatus.RUNNING:
            return  # recovered: downstream waits for real batches again
        if failed.emitted < index:
            batch = forged_batch(failed.task, sub.task, index)
            if sub.alive() and sub.inbox_put(batch):
                self.ctx.metrics.batches_forged += 1
                self.ctx.try_process(sub)
        self.schedule_forge(failed, sub, index + 1)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}({self.name!r})"


@RECOVERY_SCHEMES.register("ppa")
class PartiallyActiveScheme(RecoveryScheme):
    """The paper's scheme: hot replicas for the plan, passive for the rest."""

    name = "ppa"


@RECOVERY_SCHEMES.register("checkpoint-replay")
class CheckpointReplayScheme(RecoveryScheme):
    """Pure passive checkpoint/replay recovery; the plan is ignored."""

    name = "checkpoint-replay"

    def replicated_tasks(self, topology: Topology,
                         planned: AbstractSet[TaskId]) -> frozenset[TaskId]:
        """No task has a hot replica."""
        return frozenset()

    def passive_mode(self) -> RecoveryMode:
        """Always restore from the latest checkpoint."""
        return RecoveryMode.CHECKPOINT


@RECOVERY_SCHEMES.register("source-replay")
class SourceReplayScheme(RecoveryScheme):
    """The vanilla Storm baseline: rebuild state by replaying source data."""

    name = "source-replay"

    def replicated_tasks(self, topology: Topology,
                         planned: AbstractSet[TaskId]) -> frozenset[TaskId]:
        """No task has a hot replica."""
        return frozenset()

    def passive_mode(self) -> RecoveryMode:
        """Never restore checkpoints; replay sources through the topology."""
        return RecoveryMode.SOURCE_REPLAY


@RECOVERY_SCHEMES.register("active-standby")
class ActiveStandbyScheme(RecoveryScheme):
    """Fully-active replication: every task keeps a hot replica.

    The upper bound the paper compares PPA against — recovery is always a
    replica takeover, whatever the replication plan says.  Impossible under
    the monolithic engine, where only planned tasks could fail over.
    """

    name = "active-standby"

    def replicated_tasks(self, topology: Topology,
                         planned: AbstractSet[TaskId]) -> frozenset[TaskId]:
        """Every task, sources included."""
        return frozenset(topology.tasks())


@RECOVERY_SCHEMES.register("approximate-ft")
class ApproximateFtScheme(RecoveryScheme):
    """Approximate fault tolerance: bounded-loss recovery without replay.

    When a task dies, replaying its backlog is what recovery latency is
    made of.  This scheme (after Cheng et al., arXiv:1811.04570) instead
    *jumps* the task to the live edge — restore the latest checkpoint for
    state, skip the batches that fell into the outage, and resume with the
    next batch the topology produces — whenever the estimated output
    divergence of doing so stays within ``fidelity_bound``.  The estimate
    is the fraction of the operator's effective window the skipped batches
    cover; when it exceeds the bound, recovery falls back to the exact
    checkpoint-replay path.  Either way the realized loss is reported as
    ``fidelity_loss`` on the recovery record (always ``<= fidelity_bound``),
    and skipped batch indices are forged downstream so the rest of the
    topology never stalls waiting for output that will never come.
    """

    name = "approximate-ft"

    def __init__(self, *, fidelity_bound: float = 0.1) -> None:
        super().__init__()
        bound = float(fidelity_bound)
        if not 0.0 <= bound <= 1.0:
            raise SimulationError(
                f"'approximate-ft' fidelity_bound must be in [0, 1], "
                f"got {fidelity_bound!r}"
            )
        self.fidelity_bound = bound
        #: Batch-index ranges ``[lo, hi)`` each task skipped, for forging
        #: punctuations to late replay requesters.
        self._gaps: dict[TaskId, list[tuple[int, int]]] = {}

    def replicated_tasks(self, topology: Topology,
                         planned: AbstractSet[TaskId]) -> frozenset[TaskId]:
        """No hot replicas; approximation is the whole fault-tolerance story."""
        return frozenset()

    def passive_mode(self) -> RecoveryMode:
        """Exact fallback restores the latest checkpoint."""
        return RecoveryMode.CHECKPOINT

    def restore_task(self, rt: TaskRuntime,
                     incarnation: int | None = None) -> None:
        """Jump to the live edge when the loss fits the bound, else exact."""
        if incarnation is not None and rt.incarnation != incarnation:
            return
        if rt.status is not TaskStatus.FAILED:
            return
        ctx = self.ctx
        record = rt.recovery_record
        if rt.is_source:
            # Sources resume from their log offset with no data loss.
            if record is not None:
                record.fidelity_bound = self.fidelity_bound
                record.fidelity_loss = 0.0
            super().restore_task(rt, incarnation)
            return

        checkpoint = ctx.latest_checkpoint(rt.task)
        resume_from = 0 if checkpoint is None else checkpoint.batch_index + 1
        jump_to = int(ctx.now / ctx.config.batch_interval)
        start = max(jump_to, resume_from)
        skipped = start - resume_from
        window = max(1, ctx.source_replay_window_batches)
        loss = min(1.0, skipped / window)
        if loss > self.fidelity_bound:
            # Too much divergence: recover exactly; nothing is lost.
            if record is not None:
                record.fidelity_bound = self.fidelity_bound
                record.fidelity_loss = 0.0
            super().restore_task(rt, incarnation)
            return

        gap_lo = rt.emitted + 1
        rt.status = TaskStatus.RECOVERING
        costs = ctx.config.costs
        rt.logic = ctx.make_logic(rt.task)
        rt.busy_until = ctx.now
        if checkpoint is not None:
            load = checkpoint.state_tuples * costs.per_tuple_load
            rt.busy_until = ctx.now + load
            ctx.metrics.cpu_of(rt.task).replay += load
            if checkpoint.state is not None:
                rt.logic.restore(checkpoint.state)
        rt.next_batch = start
        rt.progress = {u: start - 1 for u in rt.expected_upstreams}
        rt.emitted = start - 1
        if record is not None:
            record.mode = RecoveryMode.APPROXIMATE
            record.fidelity_bound = self.fidelity_bound
            record.fidelity_loss = loss
        if gap_lo < start:
            self._gaps.setdefault(rt.task, []).append((gap_lo, start))
            for sub in ctx.downstream_tasks(rt.task):
                self._forge_gap(rt, ctx.runtime(sub), gap_lo, start)
        self.serve_pending_replays(rt)
        self.check_recovered(rt)
        ctx.try_process(rt)

    def _forge_gap(self, rt: TaskRuntime, sub: TaskRuntime,
                   lo: int, hi: int) -> None:
        """Punctuate the skipped range ``[lo, hi)`` so ``sub`` keeps moving."""
        for index in range(lo, hi):
            batch = forged_batch(rt.task, sub.task, index)
            if sub.alive() and sub.inbox_put(batch):
                self.ctx.metrics.batches_forged += 1
                self.ctx.try_process(sub)

    def serve_replay(self, up: TaskRuntime, sub: TaskRuntime,
                     from_exclusive: int, upto: int) -> None:
        """Serve the retained batches; forge the skipped ones."""
        super().serve_replay(up, sub, from_exclusive, upto)
        sizes = up.output_sizes
        for lo, hi in self._gaps.get(up.task, ()):
            for index in range(max(lo, from_exclusive + 1), min(hi, upto + 1)):
                if index in sizes and sub.task in sizes[index]:
                    continue
                batch = forged_batch(up.task, sub.task, index)
                if sub.alive() and sub.inbox_put(batch):
                    self.ctx.metrics.batches_forged += 1
                    self.ctx.try_process(sub)


@RECOVERY_SCHEMES.register("k-safe")
class KSafeScheme(RecoveryScheme):
    """Failure-domain-aware replica placement over the ``rack-correlated`` map.

    Consumes the same node→rack ``placement`` mapping (and optional
    task→node ``assignment`` pins) that the ``rack-correlated`` failure
    model uses to pick its victims, and places every planned task's standby
    replica on a node of a *different* rack — so no single blast radius
    takes out both a task and its replica.  Primaries follow the shared
    round-robin placement (:func:`~repro.engine.cluster.placement_node_map`),
    which is exactly how the failure model maps tasks to nodes, so the two
    views of the cluster always agree.

    With no ``placement`` the scheme degrades to plain PPA.  When a later
    failure wave *does* take out a rack hosting replicas (multi-rack
    outages, flapping), the affected replicas die with it: their tasks are
    demoted to passive recovery instead of waiting on a takeover that can
    never complete.
    """

    name = "k-safe"

    def __init__(self, *, placement: Mapping[str, str] | None = None,
                 assignment: Mapping[str, object] | None = None) -> None:
        super().__init__()
        self._placement = dict(placement) if placement else {}
        self._assignment = dict(assignment) if assignment else {}
        if self._assignment and not self._placement:
            raise SimulationError(
                "'k-safe' assignment pins need a placement map to pin into"
            )
        #: node name → rack id (from ``placement``).
        self.rack_of: dict[str, str] = {}
        #: task → node hosting its primary (all tasks; shared round-robin).
        self.primary_host: dict[TaskId, str] = {}
        #: planned task → node hosting its standby replica (different rack).
        self.replica_host: dict[TaskId, str] = {}
        self._dead_nodes: set[str] = set()

    def replicated_tasks(self, topology: Topology,
                         planned: AbstractSet[TaskId]) -> frozenset[TaskId]:
        """The plan's tasks, with replicas placed rack-disjoint."""
        if not self._placement:
            return frozenset(planned)
        nodes = [str(n) for n in self._placement]
        self.rack_of = {str(n): str(r) for n, r in self._placement.items()}
        rack_order = list(dict.fromkeys(self.rack_of[n] for n in nodes))
        if len(rack_order) < 2:
            raise SimulationError(
                "'k-safe' needs a placement spanning at least two racks; "
                f"got {rack_order!r}"
            )
        pins: dict[TaskId, str] = {}
        for ref, node_name in self._assignment.items():
            task = ref if isinstance(ref, TaskId) else TaskId.parse(str(ref))
            if task is None or task not in topology.tasks():
                raise SimulationError(
                    f"'k-safe' assignment pins unknown task {ref!r}"
                )
            node_name = str(node_name)
            if node_name not in self.rack_of:
                known = ", ".join(repr(n) for n in nodes)
                raise SimulationError(
                    f"'k-safe' assignment pins {task} to unknown node "
                    f"{node_name!r}; placement has {known}"
                )
            pins[task] = node_name
        self.primary_host = placement_node_map(topology.tasks(), nodes, pins)

        by_rack: dict[str, list[str]] = {}
        for node in nodes:
            by_rack.setdefault(self.rack_of[node], []).append(node)
        rack_cursor = 0
        node_cursor = {rack: 0 for rack in rack_order}
        for task in topology.tasks():
            if task not in planned:
                continue
            primary_rack = self.rack_of[self.primary_host[task]]
            candidates = [r for r in rack_order if r != primary_rack]
            rack = candidates[rack_cursor % len(candidates)]
            rack_cursor += 1
            hosts = by_rack[rack]
            node = hosts[node_cursor[rack] % len(hosts)]
            node_cursor[rack] += 1
            self.replica_host[task] = node
        return frozenset(planned)

    def on_task_failed(self, rt: TaskRuntime) -> None:
        """Track the blast radius: a dead node kills the replicas it hosts."""
        if self.replica_host:
            node = self.primary_host.get(rt.task)
            if node is not None and node not in self._dead_nodes:
                self._dead_nodes.add(node)
                self._kill_replicas_on(node)
        super().on_task_failed(rt)

    def _kill_replicas_on(self, node: str) -> None:
        """Replicas hosted on ``node`` die with it; demote open takeovers."""
        for task, host in sorted(self.replica_host.items()):
            if host != node:
                continue
            victim = self.ctx.runtime(task)
            if not victim.replicated:
                continue
            victim.replicated = False
            if victim.status is TaskStatus.FAILOVER:
                self._demote_failover(victim)

    def _demote_failover(self, rt: TaskRuntime) -> None:
        """A mid-takeover task lost its replica: restart passively instead."""
        ctx = self.ctx
        record = rt.recovery_record
        rt.held_outputs = []
        self.fail_unreplicated(rt)  # also drops the aborted ACTIVE record
        if record is None:
            # Not yet detected: the pending heartbeat detection will see a
            # FAILED task and start the passive path itself.
            return
        new_record = ctx.metrics.record_recovery_start(
            rt.task, self.passive_mode(), rt.fail_time, ctx.now
        )
        rt.recovery_record = new_record
        if ctx.config.tentative_outputs:
            self.start_forging(rt)
        if ctx.config.recovery_enabled:
            ctx.after(ctx.config.costs.restart_delay, self.restore_task,
                      args=(rt, rt.incarnation))


@RECOVERY_SCHEMES.register("adaptive-checkpoint")
class AdaptiveCheckpointScheme(RecoveryScheme):
    """Online checkpoint-interval tuning from failure rate and snapshot cost.

    Pure passive checkpoint/replay recovery, but the period is retuned
    after every snapshot using the Young/Daly optimum
    ``τ* = sqrt(2·δ·MTBF)``: ``δ`` is the task's measured snapshot cost
    (EWMA over the costs the engine reports via :meth:`on_checkpoint`) and
    MTBF is the mean inter-arrival of observed failure instants
    (``mtbf_prior`` until two failures have been seen).  Cheap snapshots
    and frequent failures shorten the interval; expensive snapshots on a
    quiet cluster stretch it, clamped to ``[min_interval, max_interval]``
    seconds.  Until a task's first measurement the configured interval
    applies unchanged.
    """

    name = "adaptive-checkpoint"

    def __init__(self, *, min_interval: float = 2.0,
                 max_interval: float = 120.0,
                 mtbf_prior: float = 120.0,
                 smoothing: float = 0.3) -> None:
        super().__init__()
        if not 0.0 < min_interval <= max_interval:
            raise SimulationError(
                "'adaptive-checkpoint' needs 0 < min_interval <= "
                f"max_interval, got {min_interval} / {max_interval}"
            )
        if mtbf_prior <= 0.0:
            raise SimulationError(
                f"'adaptive-checkpoint' mtbf_prior must be positive, "
                f"got {mtbf_prior}"
            )
        if not 0.0 < smoothing <= 1.0:
            raise SimulationError(
                f"'adaptive-checkpoint' smoothing must be in (0, 1], "
                f"got {smoothing}"
            )
        self.min_interval = float(min_interval)
        self.max_interval = float(max_interval)
        self.mtbf_prior = float(mtbf_prior)
        self.timings = CheckpointTimings(smoothing=float(smoothing))
        self._failure_times: list[float] = []

    def replicated_tasks(self, topology: Topology,
                         planned: AbstractSet[TaskId]) -> frozenset[TaskId]:
        """No hot replicas; the budget goes into tuned checkpoints."""
        return frozenset()

    def passive_mode(self) -> RecoveryMode:
        """Always restore from the latest checkpoint."""
        return RecoveryMode.CHECKPOINT

    def on_task_failed(self, rt: TaskRuntime) -> None:
        """Fold this failure instant into the MTBF estimate."""
        now = self.ctx.now
        if not self._failure_times or now > self._failure_times[-1] + 1e-9:
            self._failure_times.append(now)
        super().on_task_failed(rt)

    def mtbf_estimate(self) -> float:
        """Mean failure inter-arrival; the prior until two failures seen."""
        times = self._failure_times
        if len(times) >= 2:
            return (times[-1] - times[0]) / (len(times) - 1)
        return self.mtbf_prior

    def checkpoint_period(self, rt: TaskRuntime) -> int | None:
        """Young/Daly period in batches, once the snapshot cost is known."""
        configured = self.ctx.config.checkpoint_batches
        if configured is None:
            return None
        delta = self.timings.cost_estimate(rt.task)
        if delta is None:
            return configured
        tau = math.sqrt(2.0 * delta * self.mtbf_estimate())
        tau = min(max(tau, self.min_interval), self.max_interval)
        return max(1, round(tau / self.ctx.config.batch_interval))

    def on_checkpoint(self, rt: TaskRuntime, cost: float) -> None:
        """Feed the measured snapshot cost into the per-task EWMA."""
        self.timings.observe(rt.task, cost)

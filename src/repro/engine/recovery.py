"""Pluggable fault-tolerance schemes: the engine's recovery strategy API.

The protocols of Sec. V — replica takeover, checkpoint restore + upstream
replay, source replay through the whole topology, and forged batch-over
punctuations — used to be hard-wired into :class:`StreamEngine`.  They now
live behind a strategy interface so new fault-tolerance schemes plug in as
registry entries instead of engine edits:

* :class:`RecoveryScheme` — the strategy protocol.  The base class ships the
  full PPA machinery (failure classification, takeover, restore, replay
  serving, recompute-on-replay, forging) as overridable methods, so most
  schemes are a handful of lines;
* :class:`RecoveryContext` — the capability object handed to schemes.  It is
  the *only* surface a scheme sees: virtual time and scheduling, config,
  metrics, per-task runtimes, checkpoint store, and the engine's data-plane
  operations (send/deliver/try-process/source emission).  Schemes never
  touch engine internals directly;
* :data:`RECOVERY_SCHEMES` — the string-keyed registry mirroring
  ``PLANNERS``/``FAILURE_MODELS``, selected via
  :attr:`EngineConfig.recovery_scheme <repro.engine.config.EngineConfig>`.

Built-in schemes
----------------

==================== =====================================================
``"ppa"``            Partially-active replication (the paper's system):
                     planned tasks keep a hot replica, everything else
                     recovers passively per ``config.passive_strategy``.
``"checkpoint-replay"`` Pure passive recovery: no replicas, restore the
                     latest checkpoint and replay upstream buffers.
``"source-replay"``  Vanilla Storm: no replicas, no checkpoint restore —
                     rebuild state by replaying source data through the
                     whole topology.
``"active-standby"`` Every task (sources included) keeps a hot replica —
                     the fully-active upper bound the paper compares PPA
                     against; the replication plan is ignored.
==================== =====================================================

A custom scheme is ~10 lines:

>>> from repro.engine.recovery import RECOVERY_SCHEMES, RecoveryScheme
>>> @RECOVERY_SCHEMES.register("sources-active")
... class SourcesActive(RecoveryScheme):
...     '''Hot-replicate only source tasks; everything else is passive.'''
...     name = "sources-active"
...     def replicated_tasks(self, topology, planned):
...         return frozenset(t for t in topology.tasks()
...                          if topology.operator(t.operator).is_source)
>>> "sources-active" in RECOVERY_SCHEMES
True
>>> RECOVERY_SCHEMES.unregister("sources-active")
"""

from __future__ import annotations

from typing import TYPE_CHECKING, AbstractSet, Callable

from repro.engine.config import EngineConfig, PassiveStrategy
from repro.engine.metrics import MetricsCollector, RecoveryMode
from repro.engine.tasks import TaskRuntime, TaskStatus
from repro.engine.tuples import Batch, forged_batch
from repro.errors import SimulationError
from repro.registry import Registry
from repro.topology.graph import Topology
from repro.topology.operators import TaskId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.checkpoint import Checkpoint
    from repro.engine.engine import StreamEngine
    from repro.engine.logic import OperatorLogic

#: Recovery-scheme factories: ``fn() -> RecoveryScheme``.  One instance is
#: created per engine run, so schemes may keep per-run state.
RECOVERY_SCHEMES: Registry = Registry("recovery scheme", error=SimulationError)


def create_scheme(name: str) -> "RecoveryScheme":
    """Instantiate the registered recovery scheme ``name``."""
    factory = RECOVERY_SCHEMES.get(name)
    scheme = factory()
    if not isinstance(scheme, RecoveryScheme):
        raise SimulationError(
            f"recovery scheme {name!r} built a {type(scheme).__name__}, "
            f"not a RecoveryScheme"
        )
    return scheme


class RecoveryContext:
    """The engine-facing capability surface handed to a recovery scheme.

    Wraps one :class:`~repro.engine.engine.StreamEngine` run and exposes
    exactly what fault-tolerance protocols need — nothing else.  Keeping
    schemes behind this facade means the engine's internals can evolve
    without breaking third-party schemes, and a scheme can be unit-tested
    against a stub context.
    """

    __slots__ = ("_engine",)

    def __init__(self, engine: "StreamEngine"):
        self._engine = engine

    # -- static facts ---------------------------------------------------
    @property
    def config(self) -> EngineConfig:
        """The run's engine configuration (intervals, costs, switches)."""
        return self._engine.config

    @property
    def metrics(self) -> MetricsCollector:
        """The run's metrics collector (CPU accounting, recovery records)."""
        return self._engine.metrics

    @property
    def topology(self) -> Topology:
        """The query topology under execution."""
        return self._engine.topology

    @property
    def end_time(self) -> float:
        """Virtual time at which sources stop emitting."""
        return self._engine._end_time

    @property
    def source_replay_window_batches(self) -> int:
        """Batches a source-replay restart reprocesses to rebuild windows."""
        return self._engine.source_replay_window_batches

    @property
    def planned_tasks(self) -> frozenset[TaskId]:
        """The replication plan's task set (planner provenance intact)."""
        return self._engine.plan.replicated

    # -- virtual time and scheduling ------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._engine.sim.now

    def at(self, time: float, fn: Callable[..., None], priority: int = 0,
           args: tuple = ()) -> None:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        self._engine.sim.at(time, fn, priority, args)

    def after(self, delay: float, fn: Callable[..., None], priority: int = 0,
              args: tuple = ()) -> None:
        """Schedule ``fn(*args)`` ``delay`` virtual seconds from now."""
        self._engine.sim.after(delay, fn, priority, args)

    # -- tasks and state ------------------------------------------------
    def runtime(self, task: TaskId) -> TaskRuntime:
        """The runtime of ``task``."""
        return self._engine.runtimes[task]

    def downstream_tasks(self, task: TaskId) -> tuple[TaskId, ...]:
        """The tasks subscribed to ``task``'s output."""
        return self._engine.topology.downstream_tasks(task)

    def latest_checkpoint(self, task: TaskId) -> "Checkpoint | None":
        """The most recent checkpoint of ``task``, if any."""
        return self._engine.checkpoints.latest(task)

    def make_logic(self, task: TaskId) -> "OperatorLogic":
        """A fresh (empty-state) logic instance for ``task``."""
        return self._engine.logic_factory.logic_for(task)

    # -- data-plane operations ------------------------------------------
    def send(self, batch: Batch) -> None:
        """Send ``batch`` downstream with the normal network delay."""
        self._engine._send(batch)

    def deliver(self, batch: Batch) -> None:
        """Deliver ``batch`` to its destination immediately (post-delay)."""
        self._engine._deliver(batch)

    def try_process(self, rt: TaskRuntime) -> None:
        """Let ``rt`` process its next batch if the inbox is ready."""
        self._engine._try_process(rt)

    def produce_source_batch(self, rt: TaskRuntime, index: int) -> None:
        """Make source task ``rt`` produce batch ``index`` now."""
        self._engine._produce_source_batch(rt, index)

    def replay_batch(self, up: TaskRuntime, sub: TaskId, index: int) -> Batch:
        """The output batch ``up`` sent to ``sub`` at ``index``, for resend.

        Reads the physically-retained buffer when the batch is still there;
        physically-trimmed *source* batches are regenerated exactly from the
        (pure, memoized) source function.  A trimmed non-source batch is a
        retention-window bug, reported loudly rather than silently replayed
        wrong.
        """
        return self._engine._replay_batch(up, sub, index)

    def schedule_source_emission(self, rt: TaskRuntime, index: int) -> None:
        """Re-arm source ``rt``'s normal emission chain at batch ``index``."""
        self._engine._schedule_source_emission(rt, index)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RecoveryContext({self._engine!r})"


class RecoveryScheme:
    """Strategy protocol for fault tolerance, with PPA as the base machinery.

    The engine drives a scheme through four hooks:

    * :meth:`replicated_tasks` — at construction, which tasks get a hot
      replica (sets ``TaskRuntime.replicated``);
    * :meth:`on_task_failed` — at failure *injection*, classify the task
      (``FAILOVER`` when a replica keeps running, ``FAILED`` otherwise);
    * :meth:`on_failure_detected` — at the heartbeat that *detects* the
      failure, start takeover or passive recovery;
    * :meth:`check_recovered` — after every processed batch of a
      ``RECOVERING`` task, to finish recovery at progress catch-up.

    Everything else (takeover, restore, replay serving, recompute of pruned
    buffers, forged punctuations) is machinery the base class implements in
    terms of :class:`RecoveryContext`; subclasses override what differs.
    """

    #: Registry key, repeated on the class for introspection/rendering.
    name = "ppa"

    def __init__(self) -> None:
        self.ctx: RecoveryContext = None  # type: ignore[assignment]

    def attach(self, ctx: RecoveryContext) -> None:
        """Bind this (per-run) scheme instance to an engine run."""
        self.ctx = ctx

    # ------------------------------------------------------------------
    # Policy knobs (what the built-in schemes override)
    # ------------------------------------------------------------------
    def replicated_tasks(self, topology: Topology,
                         planned: AbstractSet[TaskId]) -> frozenset[TaskId]:
        """Which tasks keep a hot replica.  PPA: exactly the plan."""
        return frozenset(planned)

    def passive_mode(self) -> RecoveryMode:
        """How tasks without a replica recover.  PPA: per the config knob."""
        if self.ctx.config.passive_strategy is PassiveStrategy.CHECKPOINT:
            return RecoveryMode.CHECKPOINT
        return RecoveryMode.SOURCE_REPLAY

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def on_task_failed(self, rt: TaskRuntime) -> None:
        """Classify a just-killed task (engine has set fail-time snapshots)."""
        if rt.replicated:
            # The hot replica keeps processing; outputs are held until
            # takeover re-routes subscribers to it.
            rt.status = TaskStatus.FAILOVER
        else:
            self.fail_unreplicated(rt)

    def fail_unreplicated(self, rt: TaskRuntime) -> None:
        """Mark ``rt`` dead with nothing standing in: await recovery."""
        rt.status = TaskStatus.FAILED
        rt.incarnation += 1
        rt.processing = False
        rt.inbox.clear()

    # ------------------------------------------------------------------
    # Failure detection (called from the master's heartbeat)
    # ------------------------------------------------------------------
    def on_failure_detected(self, rt: TaskRuntime) -> None:
        """Start takeover (FAILOVER) or passive recovery (FAILED)."""
        assert rt.fail_time is not None
        ctx = self.ctx
        if rt.status is TaskStatus.FAILOVER:
            record = ctx.metrics.record_recovery_start(
                rt.task, RecoveryMode.ACTIVE, rt.fail_time, ctx.now
            )
            rt.recovery_record = record
            costs = ctx.config.costs
            resend = rt.buffered_tuples(rt.replica_synced, rt.emitted)
            delay = costs.takeover_fixed + resend * costs.per_tuple_resend
            ctx.metrics.cpu_of(rt.task).replay += resend * costs.per_tuple_resend
            ctx.after(delay, self.complete_takeover, args=(rt,))
            return
        if rt.status is not TaskStatus.FAILED:
            return
        record = ctx.metrics.record_recovery_start(
            rt.task, self.passive_mode(), rt.fail_time, ctx.now
        )
        rt.recovery_record = record
        if ctx.config.tentative_outputs:
            self.start_forging(rt)
        if ctx.config.recovery_enabled:
            ctx.after(ctx.config.costs.restart_delay, self.restore_task,
                      args=(rt,))

    def complete_takeover(self, rt: TaskRuntime) -> None:
        """Replica becomes primary: flush held outputs, resume serving."""
        if rt.status is not TaskStatus.FAILOVER:
            return
        rt.status = TaskStatus.RUNNING
        held, rt.held_outputs = rt.held_outputs, []
        for _dst, batch in held:
            self.ctx.send(batch)
        if rt.recovery_record is not None:
            rt.recovery_record.recovered_time = self.ctx.now
        self.serve_pending_replays(rt)
        self.ctx.try_process(rt)

    # ------------------------------------------------------------------
    # Passive recovery
    # ------------------------------------------------------------------
    def restore_task(self, rt: TaskRuntime) -> None:
        """Restart ``rt`` on a standby node and begin catching up."""
        if rt.status is not TaskStatus.FAILED:
            return
        ctx = self.ctx
        rt.status = TaskStatus.RECOVERING
        costs = ctx.config.costs
        use_checkpoint = self.passive_mode() is RecoveryMode.CHECKPOINT
        checkpoint = ctx.latest_checkpoint(rt.task) if use_checkpoint else None
        if rt.is_source:
            self.restore_source(rt, checkpoint)
            return

        rt.logic = ctx.make_logic(rt.task)
        if checkpoint is not None:
            load = checkpoint.state_tuples * costs.per_tuple_load
            rt.busy_until = ctx.now + load
            ctx.metrics.cpu_of(rt.task).replay += load
            if checkpoint.state is not None:
                rt.logic.restore(checkpoint.state)
            rt.next_batch = checkpoint.batch_index + 1
            rt.progress = dict(checkpoint.progress)
            rt.emitted = checkpoint.batch_index
        elif use_checkpoint:
            # The task died before its first checkpoint: cold restart from
            # batch 0. Its upstream buffers are fully retained because it
            # never acknowledged a checkpoint, so replay covers everything.
            rt.next_batch = 0
            rt.progress = {u: -1 for u in rt.expected_upstreams}
            rt.emitted = -1
            rt.busy_until = ctx.now
        else:
            # Source-replay (Storm) restart: empty state; rebuild the window
            # by reprocessing the last `source_replay_window_batches` batches.
            current = int(ctx.now / ctx.config.batch_interval)
            start = max(0, current - ctx.source_replay_window_batches)
            rt.next_batch = start
            rt.progress = {u: start - 1 for u in rt.expected_upstreams}
            rt.emitted = start - 1
            rt.busy_until = ctx.now

        for upstream in rt.expected_upstreams:
            self.request_replay(ctx.runtime(upstream), rt, rt.next_batch - 1)
        self.serve_pending_replays(rt)
        self.check_recovered(rt)
        ctx.try_process(rt)

    def restore_source(self, rt: TaskRuntime,
                       checkpoint: "Checkpoint | None") -> None:
        """Resume a source from its log offset, backfilling missed batches."""
        # Sources always resume from their log offset (no data loss): the
        # checkpoint only matters for the progress bookkeeping.
        ctx = self.ctx
        rt.status = TaskStatus.RECOVERING
        rt.busy_until = ctx.now
        backlog_start = rt.next_batch
        due = int(ctx.now / ctx.config.batch_interval) - 1
        due = min(due, int(ctx.end_time / ctx.config.batch_interval) - 1)
        for index in range(backlog_start, due + 1):
            ctx.produce_source_batch(rt, index)
        self.check_recovered(rt)
        if rt.status is TaskStatus.RECOVERING:
            # Not caught up only if there was nothing to emit yet.
            self.check_recovered(rt)
        self.serve_pending_replays(rt)
        ctx.schedule_source_emission(rt, rt.next_batch)

    def check_recovered(self, rt: TaskRuntime) -> None:
        """Finish recovery once the progress vector caught up."""
        if rt.status is not TaskStatus.RECOVERING:
            return
        if not rt.caught_up():
            return
        rt.status = TaskStatus.RUNNING
        if rt.recovery_record is not None and rt.recovery_record.recovered_time is None:
            rt.recovery_record.recovered_time = max(self.ctx.now, rt.busy_until)
        self.serve_pending_replays(rt)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def request_replay(self, up: TaskRuntime, sub: TaskRuntime,
                       from_exclusive: int) -> None:
        """Ask ``up`` to resend its output to ``sub`` from a batch onwards."""
        if up.status in (TaskStatus.FAILED, TaskStatus.FAILOVER):
            up.pending_replays[sub.task] = min(
                up.pending_replays.get(sub.task, from_exclusive), from_exclusive
            )
            return
        # RUNNING or RECOVERING: serve what the buffer already covers; the
        # rest arrives through the upstream's own catch-up emissions.
        self.serve_replay(up, sub, from_exclusive, up.emitted)

    def serve_pending_replays(self, rt: TaskRuntime) -> None:
        """Serve replay requests that queued up while ``rt`` was down."""
        pending, rt.pending_replays = rt.pending_replays, {}
        for sub_task, from_exclusive in sorted(pending.items()):
            self.serve_replay(rt, self.ctx.runtime(sub_task), from_exclusive,
                              rt.emitted)

    def serve_replay(self, up: TaskRuntime, sub: TaskRuntime,
                     from_exclusive: int, upto: int) -> None:
        """Resend ``up``'s buffered output batches ``(from, upto]`` to ``sub``."""
        ctx = self.ctx
        costs = ctx.config.costs
        sizes = up.output_sizes
        indices = [
            i for i in range(from_exclusive + 1, upto + 1)
            if i in sizes and sub.task in sizes[i]
        ]
        if not indices:
            return
        pruned = [i for i in indices if i <= up.trimmed_upto]
        ready = ctx.now
        if pruned:
            ready = self.ensure_recomputed(up, min(pruned), max(pruned))
        cursor = max(ready, ctx.now)
        for index in indices:
            batch = ctx.replay_batch(up, sub.task, index)
            resend_cost = batch.size * costs.per_tuple_resend
            cursor = max(cursor, up.busy_until) + resend_cost
            up.busy_until = cursor
            ctx.metrics.cpu_of(up.task).replay += resend_cost
            send_at = cursor + costs.network_delay
            ctx.at(send_at, ctx.deliver, args=(batch,))

    def ensure_recomputed(self, rt: TaskRuntime, lo: int, hi: int) -> float:
        """Virtual time when ``rt`` has regenerated output batches [lo, hi].

        Models Storm's source replay: pruned batches must be recomputed by
        replaying the inputs through every task between the sources and this
        one, charging reprocessing CPU along the chain.
        """
        ctx = self.ctx
        if rt.recompute_cover is not None:
            c_lo, c_hi, c_ready = rt.recompute_cover
            if c_lo <= lo and hi <= c_hi:
                return c_ready
            lo, hi = min(lo, c_lo), max(hi, c_hi)
        costs = ctx.config.costs
        if rt.is_source:
            # Reading the source log back costs resend time per tuple.
            tuples = rt.buffered_tuples(lo - 1, hi)
            ready = max(ctx.now, rt.busy_until) + tuples * costs.per_tuple_resend
            rt.busy_until = ready
            ctx.metrics.cpu_of(rt.task).replay += tuples * costs.per_tuple_resend
        else:
            upstream_ready = ctx.now
            input_tuples = 0
            for upstream in rt.expected_upstreams:
                up = ctx.runtime(upstream)
                pruned_input = up.trimmed_upto >= lo
                if pruned_input:
                    upstream_ready = max(
                        upstream_ready, self.ensure_recomputed(up, lo, hi)
                    )
                up_sizes = up.output_sizes
                input_tuples += sum(
                    up_sizes[i][rt.task]
                    for i in range(lo, hi + 1)
                    if i in up_sizes and rt.task in up_sizes[i]
                )
            cost = input_tuples * costs.per_tuple_process
            ready = max(upstream_ready, rt.busy_until, ctx.now) + cost
            rt.busy_until = ready
            ctx.metrics.cpu_of(rt.task).replay += cost
        rt.recompute_cover = (lo, hi, ready)
        return ready

    # ------------------------------------------------------------------
    # Tentative outputs (forged punctuations)
    # ------------------------------------------------------------------
    def start_forging(self, failed: TaskRuntime) -> None:
        """Forge batch-over punctuations for ``failed`` to its subscribers."""
        subscribers = self.ctx.downstream_tasks(failed.task)
        for sub in subscribers:
            self.schedule_forge(failed, self.ctx.runtime(sub),
                                failed.emitted + 1)

    def schedule_forge(self, failed: TaskRuntime, sub: TaskRuntime,
                       index: int) -> None:
        """Arm the forge of batch ``index`` at its natural due time."""
        ctx = self.ctx
        due = ((index + 1) * ctx.config.batch_interval
               + ctx.config.costs.network_delay)
        if due > ctx.end_time + 1e-9:
            return
        ctx.at(max(due, ctx.now), self.forge, args=(failed, sub, index))

    def forge(self, failed: TaskRuntime, sub: TaskRuntime, index: int) -> None:
        """Deliver one forged punctuation (unless the task recovered)."""
        if failed.status is TaskStatus.RUNNING:
            return  # recovered: downstream waits for real batches again
        if failed.emitted < index:
            batch = forged_batch(failed.task, sub.task, index)
            if sub.alive() and sub.inbox_put(batch):
                self.ctx.metrics.batches_forged += 1
                self.ctx.try_process(sub)
        self.schedule_forge(failed, sub, index + 1)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}({self.name!r})"


@RECOVERY_SCHEMES.register("ppa")
class PartiallyActiveScheme(RecoveryScheme):
    """The paper's scheme: hot replicas for the plan, passive for the rest."""

    name = "ppa"


@RECOVERY_SCHEMES.register("checkpoint-replay")
class CheckpointReplayScheme(RecoveryScheme):
    """Pure passive checkpoint/replay recovery; the plan is ignored."""

    name = "checkpoint-replay"

    def replicated_tasks(self, topology: Topology,
                         planned: AbstractSet[TaskId]) -> frozenset[TaskId]:
        """No task has a hot replica."""
        return frozenset()

    def passive_mode(self) -> RecoveryMode:
        """Always restore from the latest checkpoint."""
        return RecoveryMode.CHECKPOINT


@RECOVERY_SCHEMES.register("source-replay")
class SourceReplayScheme(RecoveryScheme):
    """The vanilla Storm baseline: rebuild state by replaying source data."""

    name = "source-replay"

    def replicated_tasks(self, topology: Topology,
                         planned: AbstractSet[TaskId]) -> frozenset[TaskId]:
        """No task has a hot replica."""
        return frozenset()

    def passive_mode(self) -> RecoveryMode:
        """Never restore checkpoints; replay sources through the topology."""
        return RecoveryMode.SOURCE_REPLAY


@RECOVERY_SCHEMES.register("active-standby")
class ActiveStandbyScheme(RecoveryScheme):
    """Fully-active replication: every task keeps a hot replica.

    The upper bound the paper compares PPA against — recovery is always a
    replica takeover, whatever the replication plan says.  Impossible under
    the monolithic engine, where only planned tasks could fail over.
    """

    name = "active-standby"

    def replicated_tasks(self, topology: Topology,
                         planned: AbstractSet[TaskId]) -> frozenset[TaskId]:
        """Every task, sources included."""
        return frozenset(topology.tasks())

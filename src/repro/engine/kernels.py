"""Columnar batch kernels: the operator compute plane's fast path.

PR 4 moved the engine's hot spot out of routing/checkpointing and into
``OperatorLogic.process_batch`` plus window maintenance.  This module holds
the *batch kernels* the query operators in :mod:`repro.queries` dispatch to:
whole-batch (columnar) implementations of the per-tuple inner loops, with an
optional numpy backend and a pure-python fallback.

Two guarantees shape everything here:

* **Byte parity.**  A kernel must reproduce the per-tuple reference
  implementation (`OperatorLogic.process_batch_reference`) *exactly* —
  emitted tuples, operator state and floating-point accumulators included —
  because replicas, checkpoint recovery and the golden parity fixtures all
  re-execute batches and compare byte-for-byte.  The numpy selectivity
  kernel therefore only vectorises when the arithmetic is provably exact
  (dyadic selectivities on a power-of-two grid, where float adds/subtracts
  round to nothing) and falls back to the reference loop otherwise.
* **Optional numpy.**  numpy is never required: every kernel has a
  pure-python implementation, selected automatically when numpy is missing,
  when ``REPRO_PURE_PYTHON`` is set in the environment, or when
  :func:`set_kernel_backend` forces it (how the CI no-numpy leg and the
  parity tests pin both paths).

The kernel selection mirrors the routing fast path's contract
(:meth:`repro.engine.routing.Router.distribute_reference`): the reference is
the executable specification, the kernel is the measured path, and
randomized parity tests in ``tests/test_kernels.py`` pin the two together.
"""

from __future__ import annotations

import os
from typing import Any, Sequence

try:  # pragma: no cover - exercised via both CI matrix legs
    if os.environ.get("REPRO_PURE_PYTHON"):
        raise ImportError("numpy disabled by REPRO_PURE_PYTHON")
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the no-numpy CI leg
    _np = None

#: Denominator grid for exact selectivity arithmetic.  A selectivity ``p/_Q``
#: with integer ``p`` keeps every accumulator value on the same grid:
#: numerators stay below ``2**31`` (far under the 2**53 float64 integer
#: range), so the reference loop's ``acc += s`` / ``acc -= 1.0`` round to
#: nothing and integer emulation is bit-exact.
_Q = 1 << 30


def _dyadic_numerator(value: float) -> int | None:
    """``value * _Q`` when that is an exact integer, else ``None``."""
    scaled = value * _Q
    numerator = int(scaled)
    return numerator if scaled == numerator else None


class BatchKernel:
    """One backend of the columnar compute plane.

    The base class *is* the pure-python backend; :class:`NumpyKernel`
    overrides the pieces numpy can do exactly.  Kernels are stateless —
    operator state (windows, accumulators, running totals) stays on the
    operator so snapshots and restores are unchanged.
    """

    #: Registry-style backend name (``"python"`` or ``"numpy"``).
    name = "python"

    # ------------------------------------------------------------------
    def selectivity_take(self, items: Sequence[Any], selectivity: float,
                         acc: float) -> tuple[list[Any], float]:
        """Batched deterministic-selectivity filter.

        Equivalent to the reference accumulator loop (``acc += s; if acc >=
        1.0: acc -= 1.0; emit``) applied to ``items`` in order: returns the
        emitted items and the updated accumulator, bit-identical to the
        loop.  This method owns the dispatch for *every* backend — the
        pass-through/empty/exactness guards live only here, so the backends
        can never disagree on which inputs take which path.  Dyadic
        selectivities whose period divides the grid become a C-speed slice;
        other dyadic selectivities go through :meth:`_general_dyadic` (the
        backend hook); inexact selectivities always run the reference loop.
        """
        if selectivity >= 1.0:
            # Pass-through: the reference emits everything, acc untouched.
            return list(items), acc
        n = len(items)
        if n == 0:
            return [], acc
        p = _dyadic_numerator(selectivity)
        a = _dyadic_numerator(acc)
        if p is None or a is None or p <= 0:
            return self._selectivity_loop(items, selectivity, acc)
        if _Q % p == 0:
            # Emissions are exactly periodic: every (_Q // p)-th item,
            # starting at the first index where the accumulator wraps.
            step = _Q // p
            first = -(-(_Q - a) // p) - 1  # ceil((_Q - a) / p) - 1
            return list(items[first::step]), ((a + n * p) % _Q) / _Q
        return self._general_dyadic(items, selectivity, acc, p, a)

    def _general_dyadic(self, items: Sequence[Any], selectivity: float,
                        acc: float, p: int, a: int) -> tuple[list[Any], float]:
        """Backend hook for exact non-periodic dyadic selectivities.

        ``p``/``a`` are the grid numerators of ``selectivity``/``acc``.
        The base backend runs the (already exact) reference loop; the numpy
        backend vectorises with int64 arithmetic.
        """
        return self._selectivity_loop(items, selectivity, acc)

    def _selectivity_loop(self, items: Sequence[Any], selectivity: float,
                          acc: float) -> tuple[list[Any], float]:
        """The reference per-tuple loop (shared exact fallback)."""
        out: list[Any] = []
        append = out.append
        for item in items:
            acc += selectivity
            if acc >= 1.0:
                acc -= 1.0
                append(item)
        return out, acc

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class PythonKernel(BatchKernel):
    """The pure-python backend (always available)."""

    name = "python"


class NumpyKernel(BatchKernel):
    """The numpy backend: vectorises the exactly-representable cases.

    Only constructed when numpy imported; anything it cannot do exactly is
    delegated to the pure-python code paths, so switching backends can never
    change results.
    """

    name = "numpy"

    def _general_dyadic(self, items: Sequence[Any], selectivity: float,
                        acc: float, p: int, a: int) -> tuple[list[Any], float]:
        """Vectorised accumulator filter for general dyadic selectivities.

        A non-periodic dyadic selectivity (e.g. ``3/8``) is computed with
        exact int64 arithmetic — the emission mask is where the integer
        accumulator crosses a multiple of ``_Q``.  Dispatch (pass-through,
        empty batches, exactness guards, the periodic slice path) lives
        solely in :meth:`BatchKernel.selectivity_take`.
        """
        n = len(items)
        totals = a + p * _np.arange(1, n + 1, dtype=_np.int64)
        emitted = _np.flatnonzero(totals // _Q > (totals - p) // _Q)
        out = [items[i] for i in emitted.tolist()]
        return out, int(totals[-1] % _Q) / _Q


_PYTHON_KERNEL = PythonKernel()
_NUMPY_KERNEL = NumpyKernel() if _np is not None else None

#: Explicit override installed by :func:`set_kernel_backend` (None = auto).
_forced: BatchKernel | None = None


def numpy_available() -> bool:
    """Whether the numpy backend can be selected in this process."""
    return _NUMPY_KERNEL is not None


def active_kernel() -> BatchKernel:
    """The kernel the operators dispatch to right now.

    Auto-selection prefers numpy when it imported (and
    ``REPRO_PURE_PYTHON`` was not set); :func:`set_kernel_backend` pins a
    specific backend for tests and benchmarks.
    """
    if _forced is not None:
        return _forced
    return _NUMPY_KERNEL if _NUMPY_KERNEL is not None else _PYTHON_KERNEL


def kernel_backend() -> str:
    """Name of the active backend (``"python"`` or ``"numpy"``)."""
    return active_kernel().name


def set_kernel_backend(name: str | None) -> None:
    """Force the kernel backend: ``"python"``, ``"numpy"`` or ``None`` (auto).

    Forcing ``"numpy"`` when numpy is unavailable raises ``ValueError`` —
    the CI matrix legs use this to prove which backend they exercised.
    """
    global _forced
    if name is None:
        _forced = None
        return
    if name == "python":
        _forced = _PYTHON_KERNEL
        return
    if name == "numpy":
        if _NUMPY_KERNEL is None:
            raise ValueError(
                "numpy backend requested but numpy is not importable "
                "(or REPRO_PURE_PYTHON is set)"
            )
        _forced = _NUMPY_KERNEL
        return
    raise ValueError(f"unknown kernel backend {name!r}; "
                     f"one of 'python', 'numpy', None")

"""Key-based tuple routing along the four partitioning patterns.

The planner-side substream weights (:mod:`repro.topology.partitioning`) are a
rate model; the engine needs the *actual* routing function.  Keys are hashed
with CRC32 so routing is stable across runs and processes (Python's builtin
``hash`` is salted), and the same key always lands on the same downstream
task — which keeps co-partitioned joins correct.

The router is table-driven: for every ``(source task, downstream operator)``
pair a :class:`_DispatchPlan` is computed once at construction, holding the
interned destination :class:`TaskId` instances and (for hash-partitioned
edges) a memoized ``key -> destination index`` table that grows as keys are
seen.  :meth:`Router.distribute` is then a single pass per downstream
operator — no per-tuple CRC32 for repeated keys, no per-tuple ``TaskId``
allocation, no per-destination re-scan.  The original per-tuple routing
functions are kept as :meth:`Router.distribute_reference` so parity tests can
assert the two paths agree on arbitrary topologies.
"""

from __future__ import annotations

import zlib
from typing import Callable

from repro.engine.tuples import KeyedTuple
from repro.topology.graph import StreamEdge, Topology
from repro.topology.operators import TaskId
from repro.topology.partitioning import Partitioning


def stable_hash(key: str) -> int:
    """Deterministic, process-independent hash of a key."""
    return zlib.crc32(key.encode("utf-8"))


def _split_members(upstream_index: int, n_up: int, n_down: int) -> list[int]:
    return [j for j in range(n_down) if j * n_up // n_down == upstream_index]


#: Per-edge key-memo capacity.  Repeated keys (the common, bounded-key-space
#: workloads) stay memoized; a high-cardinality key stream simply stops
#: inserting once the table is full and falls back to hashing per miss, so
#: routing memory stays bounded whatever the workload emits.
KEY_TABLE_CAPACITY = 1 << 16


class _DispatchPlan:
    """Precomputed routing of one source task onto one downstream operator.

    ``targets`` are the interned destination tasks in downstream-index order
    (exactly the source's substream targets on this edge).  ``key_table``
    memoizes ``key -> position in targets`` for hash-partitioned patterns;
    it is ``None`` for single-target patterns (one-to-one, merge), where
    every tuple goes to ``targets[0]``.  For ``full`` edges the table is
    shared across all source tasks of the edge — the key mapping is
    source-independent there.
    """

    __slots__ = ("targets", "key_table")

    def __init__(self, targets: tuple[TaskId, ...],
                 key_table: dict[str, int] | None):
        self.targets = targets
        self.key_table = key_table


class Router:
    """Per-edge routing: distributes a task's output tuples to batches."""

    def __init__(self, topology: Topology):
        self._topology = topology
        self._route_fns: dict[tuple[str, str], Callable[[TaskId, str], int]] = {}
        for edge in topology.edges():
            self._route_fns[(edge.upstream, edge.downstream)] = self._make_route(edge)
        self._plans: dict[TaskId, tuple[_DispatchPlan, ...]] = {}
        self._build_plans()

    @property
    def topology(self) -> Topology:
        """The topology the routing tables were built for."""
        return self._topology

    # ------------------------------------------------------------------
    # Table construction
    # ------------------------------------------------------------------
    def _build_plans(self) -> None:
        topology = self._topology
        for edge in topology.edges():
            hashed = edge.pattern in (Partitioning.SPLIT, Partitioning.FULL)
            # FULL routes every key identically from any source task, so one
            # memo table serves the whole edge; SPLIT member groups differ
            # per source task and get their own tables.
            shared_table: dict[str, int] | None = (
                {} if edge.pattern is Partitioning.FULL else None
            )
            for src in topology.tasks_of(edge.upstream):
                # The substream targets on this edge, in downstream-index
                # order — the same set the per-tuple route functions hit.
                targets = tuple(
                    dst for dst, _w in topology.output_substreams(src)
                    if dst.operator == edge.downstream
                )
                table: dict[str, int] | None = None
                if hashed:
                    table = shared_table if shared_table is not None else {}
                plan = _DispatchPlan(targets, table)
                self._plans[src] = self._plans.get(src, ()) + (plan,)
        for task in topology.tasks():
            self._plans.setdefault(task, ())

    def _make_route(self, edge: StreamEdge) -> Callable[[TaskId, str], int]:
        n_up = self._topology.operator(edge.upstream).parallelism
        n_down = self._topology.operator(edge.downstream).parallelism

        if edge.pattern is Partitioning.ONE_TO_ONE:
            return lambda src, key: src.index
        if edge.pattern is Partitioning.MERGE:
            return lambda src, key: src.index * n_down // n_up
        if edge.pattern is Partitioning.SPLIT:
            members_of = {i: _split_members(i, n_up, n_down) for i in range(n_up)}

            def route_split(src: TaskId, key: str) -> int:
                members = members_of[src.index]
                return members[stable_hash(key) % len(members)]

            return route_split
        # FULL: hash-partition over all downstream tasks.
        return lambda src, key: stable_hash(key) % n_down

    # ------------------------------------------------------------------
    # Distribution
    # ------------------------------------------------------------------
    def distribute(self, src: TaskId, tuples: list[KeyedTuple]
                   ) -> dict[TaskId, list[KeyedTuple]]:
        """Split ``src``'s output tuples into per-downstream-task lists.

        Every downstream task that ``src`` feeds gets an entry — possibly an
        empty list — because empty batches still act as punctuations.

        Zero-copy contract: on single-destination edges the *input* list is
        returned as the destination's bucket (and several such edges share
        it), so callers must treat both the input and the returned buckets
        as immutable — they flow straight into :class:`Batch` objects.
        """
        out: dict[TaskId, list[KeyedTuple]] = {}
        crc32 = zlib.crc32
        for plan in self._plans[src]:
            targets = plan.targets
            table = plan.key_table
            if table is None:
                # Single destination: the whole output is one substream —
                # hand the caller's list over instead of copying it.
                out[targets[0]] = tuples if type(tuples) is list else list(tuples)
                continue
            buckets: list[list[KeyedTuple]] = [[] for _ in targets]
            n = len(targets)
            table_get = table.get
            for item in tuples:
                key = item[0]
                pos = table_get(key)
                if pos is None:
                    pos = crc32(key.encode("utf-8")) % n
                    if len(table) < KEY_TABLE_CAPACITY:
                        table[key] = pos
                buckets[pos].append(item)
            for dst, bucket in zip(targets, buckets):
                out[dst] = bucket
        return out

    def distribute_reference(self, src: TaskId, tuples: list[KeyedTuple]
                             ) -> dict[TaskId, list[KeyedTuple]]:
        """Per-tuple reference implementation of :meth:`distribute`.

        Routes every tuple through the original per-edge routing functions.
        Kept (and exercised by the parity tests) as the executable
        specification the table-driven fast path must match exactly.
        """
        out: dict[TaskId, list[KeyedTuple]] = {
            dst: [] for dst, _w in self._topology.output_substreams(src)
        }
        for downstream_op in self._topology.downstream_of(src.operator):
            route = self._route_fns[(src.operator, downstream_op)]
            for key, value in tuples:
                dst = TaskId(downstream_op, route(src, key))
                # Patterns guarantee dst is one of src's substream targets.
                out[dst].append((key, value))
        return out

"""Key-based tuple routing along the four partitioning patterns.

The planner-side substream weights (:mod:`repro.topology.partitioning`) are a
rate model; the engine needs the *actual* routing function.  Keys are hashed
with CRC32 so routing is stable across runs and processes (Python's builtin
``hash`` is salted), and the same key always lands on the same downstream
task — which keeps co-partitioned joins correct.
"""

from __future__ import annotations

import zlib
from typing import Callable

from repro.engine.tuples import KeyedTuple
from repro.topology.graph import StreamEdge, Topology
from repro.topology.operators import TaskId
from repro.topology.partitioning import Partitioning


def stable_hash(key: str) -> int:
    """Deterministic, process-independent hash of a key."""
    return zlib.crc32(key.encode("utf-8"))


def _split_members(upstream_index: int, n_up: int, n_down: int) -> list[int]:
    return [j for j in range(n_down) if j * n_up // n_down == upstream_index]


class Router:
    """Per-edge routing: distributes a task's output tuples to batches."""

    def __init__(self, topology: Topology):
        self._topology = topology
        self._route_fns: dict[tuple[str, str], Callable[[TaskId, str], int]] = {}
        for edge in topology.edges():
            self._route_fns[(edge.upstream, edge.downstream)] = self._make_route(edge)

    def _make_route(self, edge: StreamEdge) -> Callable[[TaskId, str], int]:
        n_up = self._topology.operator(edge.upstream).parallelism
        n_down = self._topology.operator(edge.downstream).parallelism

        if edge.pattern is Partitioning.ONE_TO_ONE:
            return lambda src, key: src.index
        if edge.pattern is Partitioning.MERGE:
            return lambda src, key: src.index * n_down // n_up
        if edge.pattern is Partitioning.SPLIT:
            members_of = {i: _split_members(i, n_up, n_down) for i in range(n_up)}

            def route_split(src: TaskId, key: str) -> int:
                members = members_of[src.index]
                return members[stable_hash(key) % len(members)]

            return route_split
        # FULL: hash-partition over all downstream tasks.
        return lambda src, key: stable_hash(key) % n_down

    def distribute(self, src: TaskId, tuples: list[KeyedTuple]
                   ) -> dict[TaskId, list[KeyedTuple]]:
        """Split ``src``'s output tuples into per-downstream-task lists.

        Every downstream task that ``src`` feeds gets an entry — possibly an
        empty list — because empty batches still act as punctuations.
        """
        out: dict[TaskId, list[KeyedTuple]] = {
            dst: [] for dst, _w in self._topology.output_substreams(src)
        }
        for downstream_op in self._topology.downstream_of(src.operator):
            route = self._route_fns[(src.operator, downstream_op)]
            for key, value in tuples:
                dst = TaskId(downstream_op, route(src, key))
                # Patterns guarantee dst is one of src's substream targets.
                out[dst].append((key, value))
        return out

"""The sweep service: a persistent grid broker for the scenario engine.

Where :func:`repro.scenarios.run_grid` is one process running one sweep,
this package runs the simulator as a *shared service*: a long-lived
:class:`SweepServer` owns one execution backend, one content-addressed
scenario cache and one resumable journal, and many concurrent
:class:`SweepClient`\\ s submit scenario grids over a newline-delimited
JSON TCP protocol (stdlib only).  Identical cells — submitted by one
client or by many — execute exactly once and fan out to every subscriber;
scheduling is round-robin across clients so big sweeps cannot starve small
ones; SIGTERM drains gracefully (in-flight cells finish, queued cells
persist to the journal and re-run on the next start).

Quick start (see also ``examples/serve_quickstart.py`` and the
``serve`` / ``submit`` / ``status`` CLI subcommands)::

    server = SweepServer(backend="processes", cache="~/.cache/repro-grid",
                         journal="~/.cache/repro-journal.jsonl").start()
    with SweepClient(server.address, client_id="alice") as alice:
        job = alice.submit(base=scenario, axes={"budget": [0, 1, 2]})
        outcome = alice.wait(job)

Layered like the rest of the scenario stack: :mod:`~repro.service.protocol`
(wire format) < :mod:`~repro.service.journal` (durability) <
:mod:`~repro.service.broker` (dedup + fair scheduling + accounting, fully
socket-free and unit-testable) < :mod:`~repro.service.server` /
:mod:`~repro.service.client` (transport) < :mod:`~repro.service.cli`.
"""

from repro.errors import ServiceError
from repro.service.broker import JOURNAL_CLIENT, SweepBroker, SweepCounters
from repro.service.client import JobOutcome, SweepClient
from repro.service.journal import SweepJournal
from repro.service.protocol import (
    PROTOCOL_VERSION,
    dump_message,
    outcome_from_wire,
    outcome_to_wire,
    parse_message,
)
from repro.service.server import SweepServer

__all__ = [
    "JOURNAL_CLIENT",
    "JobOutcome",
    "PROTOCOL_VERSION",
    "ServiceError",
    "SweepBroker",
    "SweepClient",
    "SweepCounters",
    "SweepJournal",
    "SweepServer",
    "dump_message",
    "outcome_from_wire",
    "outcome_to_wire",
    "parse_message",
]

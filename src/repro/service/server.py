"""The persistent sweep server: TCP front end + one dispatcher loop.

:class:`SweepServer` wires the pieces together:

* a ``ThreadingTCPServer`` speaking the NDJSON protocol of
  :mod:`repro.service.protocol` — one handler thread reads each client's
  requests while a dedicated writer thread drains that client's outbound
  queue, so server-pushed events never block on a slow reader elsewhere;
* one **dispatcher** thread pulling fair-scheduled batches out of the
  :class:`~repro.service.broker.SweepBroker` and running them through a
  single shared :class:`~repro.scenarios.backends.ExecutionBackend`
  (serial, threads, or the prebuilt-worker process pool), streaming
  completions — with their retry counts — back into the broker;
* graceful drain: :meth:`drain` (wired to SIGTERM by the CLI) lets
  in-flight cells finish, refuses new submissions, broadcasts
  ``draining`` to connected clients, compacts the journal down to the
  still-queued cells and exits :meth:`serve_forever`.

The server itself holds no result state: outcomes live in the shared
:class:`~repro.scenarios.cache.ScenarioCache` (when configured) and in the
clients' hands.
"""

from __future__ import annotations

import queue
import socketserver
import threading

from repro.errors import ReproError, ServiceError
from repro.scenarios.backends import ExecutionBackend, resolve_backend
from repro.scenarios.cache import ScenarioCache
from repro.scenarios.grid import expand_grid
from repro.scenarios.prebuilt import run_scenario_prebuilt
from repro.scenarios.spec import Scenario
from repro.service.broker import JOURNAL_CLIENT, SweepBroker
from repro.service.journal import SweepJournal
from repro.service.protocol import (
    PROTOCOL_VERSION,
    dump_message,
    parse_message,
)

#: Writer-queue sentinel: close the connection after flushing.
_CLOSE = object()


class _ClientStream:
    """One connected client's outbound message queue + writer thread."""

    def __init__(self, client_id: str, wfile):
        self.client_id = client_id
        self.wfile = wfile
        self.outbound: "queue.SimpleQueue[object]" = queue.SimpleQueue()
        self.gone = threading.Event()
        self.writer = threading.Thread(target=self._write_loop,
                                       name=f"sweep-writer-{client_id}",
                                       daemon=True)
        self.writer.start()

    def send(self, message: dict) -> None:
        if not self.gone.is_set():
            self.outbound.put(message)

    def close(self) -> None:
        self.outbound.put(_CLOSE)

    def _write_loop(self) -> None:
        while True:
            message = self.outbound.get()
            if message is _CLOSE:
                break
            try:
                self.wfile.write(dump_message(message).encode("utf-8"))
                self.wfile.flush()
            except (OSError, ValueError):
                # Peer went away mid-write; drop the rest silently.
                self.gone.set()
                break


class _Handler(socketserver.StreamRequestHandler):
    """Reads one client's requests; replies ride the client's stream."""

    server: "_TCPServer"

    def handle(self) -> None:
        sweep = self.server.sweep
        stream: _ClientStream | None = None
        try:
            for raw in self.rfile:
                try:
                    message = parse_message(raw.decode("utf-8"))
                except (ServiceError, UnicodeDecodeError):
                    break  # framing is broken; drop the connection
                op = message.get("op")
                if stream is None:
                    if op != "hello":
                        self.wfile.write(dump_message(
                            {"type": "error", "op": op,
                             "message": "first message must be 'hello'"}
                        ).encode("utf-8"))
                        break
                    protocol = message.get("protocol", PROTOCOL_VERSION)
                    if protocol != PROTOCOL_VERSION:
                        self.wfile.write(dump_message(
                            {"type": "error", "op": "hello",
                             "message": f"protocol {protocol} unsupported "
                                        f"(server speaks {PROTOCOL_VERSION})"}
                        ).encode("utf-8"))
                        break
                    stream = sweep._register(str(
                        message.get("client") or "client"), self.wfile)
                    stream.send({"type": "welcome",
                                 "client": stream.client_id,
                                 "protocol": PROTOCOL_VERSION,
                                 "server": "repro-sweep"})
                    if sweep.broker.draining:
                        stream.send({"type": "draining"})
                    continue
                if op == "bye":
                    break
                try:
                    self._dispatch(sweep, stream, op, message)
                except ReproError as exc:
                    stream.send({"type": "error", "op": op,
                                 "message": str(exc)})
        finally:
            if stream is not None:
                sweep._unregister(stream)

    def _dispatch(self, sweep: "SweepServer", stream: _ClientStream,
                  op: str | None, message: dict) -> None:
        if op == "submit":
            scenarios = sweep._parse_submission(message)
            sweep.broker.submit(
                stream.client_id, scenarios,
                job=message.get("job"),
                stream_results=bool(message.get("results", True)))
        elif op == "status":
            stream.send({"type": "status", **sweep.broker.status()})
        elif op == "drain":
            stream.send({"type": "draining"})
            sweep.drain()
        else:
            raise ServiceError(f"unknown op {op!r}")


class _TCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    sweep: "SweepServer"


class SweepServer:
    """A persistent grid broker serving many concurrent sweep clients.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` lets the OS pick (read :attr:`address`).
    backend:
        Shared :class:`ExecutionBackend` (name or instance); every
        client's cells run through this one pool, scheduled fairly.
    cache:
        Shared :class:`ScenarioCache` (or a directory path).  Strongly
        recommended: it is what makes cross-restart dedup and journal
        resume pay off.
    journal:
        Path to (or instance of) a :class:`SweepJournal`; pending work
        survives a drain and is re-run on the next start.
    runner, timeout, retries:
        As in :class:`~repro.scenarios.session.GridSession`.
    batch_cells:
        How many cells each dispatcher batch pulls from the broker.
        Smaller batches mean fairer interleaving and faster drains;
        larger ones amortise pool startup on the processes backend.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 backend: "str | ExecutionBackend | None" = None,
                 cache: "ScenarioCache | str | None" = None,
                 journal: "SweepJournal | str | None" = None,
                 runner=run_scenario_prebuilt,
                 timeout: float | None = None,
                 retries: int = 1,
                 batch_cells: int = 8):
        if batch_cells < 1:
            raise ServiceError(f"batch_cells must be >= 1, got {batch_cells}")
        self.backend = resolve_backend(backend)
        self.cache = ScenarioCache(cache) if isinstance(cache, (str, bytes)) \
            else cache
        self.journal = SweepJournal(journal) if isinstance(journal, (str, bytes)) \
            else journal
        self.runner = runner
        self.timeout = timeout
        self.retries = retries
        self.batch_cells = batch_cells
        self.broker = SweepBroker(cache=self.cache, journal=self.journal,
                                  publish=self._publish)
        self._streams: dict[str, _ClientStream] = {}
        self._streams_lock = threading.Lock()
        self._client_seq = 0
        self._tcp = _TCPServer((host, port), _Handler, bind_and_activate=True)
        self._tcp.sweep = self
        self._dispatcher = threading.Thread(target=self._dispatch_loop,
                                            name="sweep-dispatcher",
                                            daemon=True)
        self._serve_thread: threading.Thread | None = None
        self._drained = threading.Event()
        self._started = False
        self.resumed = 0

    # -- lifecycle -------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The actually-bound ``(host, port)``."""
        host, port = self._tcp.server_address[:2]
        return str(host), int(port)

    def start(self) -> "SweepServer":
        """Bind, resume the journal, and serve in background threads."""
        if self._started:
            return self
        self._started = True
        self.resumed = self.broker.resume_from_journal()
        self._serve_thread = threading.Thread(
            target=self._tcp.serve_forever, name="sweep-acceptor",
            kwargs={"poll_interval": 0.1}, daemon=True)
        self._serve_thread.start()
        self._dispatcher.start()
        return self

    def serve_forever(self) -> None:
        """Serve until :meth:`drain` completes (what the CLI runs)."""
        self.start()
        self._drained.wait()
        self.stop()

    def drain(self) -> None:
        """Finish in-flight cells, journal the queue, and wind down.

        Safe to call from a signal handler or any thread; idempotent.
        """
        self.broker.drain()
        with self._streams_lock:
            streams = list(self._streams.values())
        for stream in streams:
            stream.send({"type": "draining"})

    def wait_drained(self, timeout: float | None = None) -> bool:
        """Block until the dispatcher has wound down after a drain."""
        return self._drained.wait(timeout)

    def stop(self) -> None:
        """Drain (if not already draining) and tear everything down."""
        self.drain()
        if self._started:
            self._drained.wait(30.0)
        self.broker.stop()
        self._tcp.shutdown()
        self._tcp.server_close()
        if self.journal is not None:
            self.journal.compact(self.broker.pending_scenarios())
            self.journal.close()
        # Backends that own real resources (the cluster backend runs a
        # coordinator port and a worker fleet) release them with the server.
        close = getattr(self.backend, "close", None)
        if callable(close):
            close()
        with self._streams_lock:
            streams = list(self._streams.values())
        for stream in streams:
            stream.close()

    # -- internals -------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            batch = self.broker.take(self.batch_cells)
            if batch is None:
                break
            scenarios = [scenario for _digest, scenario in batch]
            try:
                for item in self.backend.execute(
                        scenarios, self.runner,
                        timeout=self.timeout, retries=self.retries):
                    if len(item) == 3:
                        position, outcome, attempts = item
                    else:  # legacy external backend: bare (index, outcome)
                        position, outcome = item
                        attempts = getattr(outcome, "attempts", 1)
                    degraded = position in getattr(
                        self.backend, "degraded_positions", ())
                    self.broker.complete(batch[position][0], outcome,
                                         attempts, degraded=degraded)
            except Exception:  # pragma: no cover - backend bug guard
                # A backend that dies wholesale must not kill the service;
                # every cell of the batch it failed to report is requeued
                # as if never taken.
                self.broker.requeue_inflight([d for d, _s in batch])
        if self.journal is not None:
            # Compact at drain time, not just at the next start's
            # load_pending: a drained-empty server must leave an empty
            # journal behind, and a drained-with-debt server only the
            # still-queued rows — no stale queued/done pairs on disk.
            self.journal.compact(self.broker.pending_scenarios())
        self._drained.set()

    def _publish(self, client_id: str, message: dict) -> None:
        with self._streams_lock:
            stream = self._streams.get(client_id)
        if stream is not None:
            stream.send(message)

    def _register(self, requested: str, wfile) -> _ClientStream:
        with self._streams_lock:
            self._client_seq += 1
            client_id = requested
            if client_id in self._streams or client_id == JOURNAL_CLIENT:
                client_id = f"{requested}#{self._client_seq}"
            stream = _ClientStream(client_id, wfile)
            self._streams[client_id] = stream
            return stream

    def _unregister(self, stream: _ClientStream) -> None:
        with self._streams_lock:
            if self._streams.get(stream.client_id) is stream:
                del self._streams[stream.client_id]
        stream.close()
        # Queued cells the client owned still run: their results feed the
        # shared cache, and cross-client subscribers still get events.

    def _parse_submission(self, message: dict) -> list[Scenario]:
        if "scenarios" in message:
            raw = message["scenarios"]
            if not isinstance(raw, list) or not raw:
                raise ServiceError(
                    "'scenarios' must be a non-empty list of scenario objects"
                )
            return [Scenario.from_dict(item) for item in raw]
        if "base" in message:
            base = Scenario.from_dict(message["base"])
            axes = message.get("axes") or {}
            return expand_grid(base, axes) if axes else [base]
        raise ServiceError(
            "a submit needs either 'scenarios' or 'base' (+ 'axes')"
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        host, port = self.address
        return (f"SweepServer({host}:{port}, backend={self.backend.name!r}, "
                f"cache={self.cache!r})")

"""Resumable submission journal: what a draining server owes the future.

The journal is an append-only JSONL file with two record shapes::

    {"event": "queued", "digest": "...", "scenario": {...}}
    {"event": "done", "digest": "..."}

The broker appends a ``queued`` record the moment a unique cell enters a
queue and a ``done`` record when its execution completes, flushing after
every line — so at any instant (including a SIGKILL) the set *queued minus
done* is exactly the work the server has accepted but not finished.  A
graceful drain simply stops executing; no extra bookkeeping is needed at
shutdown beyond compacting the file.

On restart, :meth:`load_pending` replays the file, compacts it down to the
still-pending records (atomic rewrite, same write-then-rename discipline
as the scenario cache) and hands the pending cells back so the broker can
re-enqueue them under the ``__journal__`` pseudo-client.  Their results
land in the shared :class:`~repro.scenarios.cache.ScenarioCache`, so the
original submitters get instant cache hits when they reconnect and
resubmit.

Records that fail to parse (a torn final line from a hard kill) are
dropped with a warning count rather than poisoning the resume.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import IO

from repro.errors import ScenarioError, ServiceError
from repro.scenarios.spec import Scenario


class SweepJournal:
    """Append-only queued/done journal backing graceful drain + resume."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._handle: IO[str] | None = None
        #: Torn/unparsable lines skipped by the last :meth:`load_pending`.
        self.corrupt_records = 0

    def _file(self) -> IO[str]:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    # -- writes ----------------------------------------------------------
    def record_queued(self, digest: str, scenario: Scenario) -> None:
        """A unique cell entered a queue; it is now owed to the future."""
        self._append({"event": "queued", "digest": digest,
                      "scenario": scenario.to_dict()})

    def record_done(self, digest: str) -> None:
        """The cell's execution finished (in any outcome); debt repaid."""
        self._append({"event": "done", "digest": digest})

    def _append(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            handle = self._file()
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    # -- resume ----------------------------------------------------------
    def load_pending(self) -> list[tuple[str, Scenario]]:
        """The queued-minus-done cells, compacting the file as a side effect.

        Returns ``(digest, scenario)`` pairs in original submission order.
        Unparsable records (torn writes) are skipped and counted in
        :attr:`corrupt_records`.
        """
        with self._lock:
            if self._handle is not None:
                raise ServiceError(
                    "load_pending() must run before the journal is written to"
                )
            pending: dict[str, Scenario] = {}
            self.corrupt_records = 0
            try:
                lines = self.path.read_text(encoding="utf-8").splitlines()
            except FileNotFoundError:
                return []
            for line in lines:
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                    event = record["event"]
                    digest = record["digest"]
                    if event == "queued":
                        pending[digest] = Scenario.from_dict(record["scenario"])
                    elif event == "done":
                        pending.pop(digest, None)
                    else:
                        self.corrupt_records += 1
                except (ValueError, KeyError, TypeError, ScenarioError):
                    self.corrupt_records += 1
            items = list(pending.items())
            self._rewrite(items)
            return items

    def compact(self, pending: list[tuple[str, Scenario]]) -> None:
        """Atomically rewrite the journal to exactly ``pending``."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            self._rewrite(pending)

    def _rewrite(self, pending: list[tuple[str, Scenario]]) -> None:
        fd, tmp_name = tempfile.mkstemp(dir=self.path.parent,
                                        suffix=".journal.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for digest, scenario in pending:
                    handle.write(json.dumps(
                        {"event": "queued", "digest": digest,
                         "scenario": scenario.to_dict()},
                        separators=(",", ":")) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SweepJournal({str(self.path)!r})"

"""Client library for the sweep service.

:class:`SweepClient` is a synchronous, dependency-free client: connect,
submit a grid (a list of scenarios or ``base`` + ``axes``), then
:meth:`wait` for the job — the server pushes ``progress`` / ``result``
events down the same socket, so waiting is just reading lines.  Several
jobs can be in flight at once on one connection; events are demultiplexed
by job id, and replies to ``status`` requests are picked out of the stream
wherever they land.

::

    from repro.service import SweepClient, SweepServer
    server = SweepServer(cache="/tmp/sweep-cache").start()
    with SweepClient(server.address, client_id="alice") as client:
        job = client.submit(base=Scenario(), axes={"budget": [0, 1, 2]})
        outcome = client.wait(job, progress=print)
        results = outcome.results()
"""

from __future__ import annotations

import random
import socket
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ScenarioError, ServiceError
from repro.resilience import CircuitBreaker, RetryPolicy
from repro.scenarios.backends import CellError
from repro.scenarios.runner import ScenarioResult
from repro.scenarios.spec import Scenario
from repro.service.protocol import (
    PROTOCOL_VERSION,
    dump_message,
    outcome_from_wire,
    parse_message,
)


@dataclass
class JobOutcome:
    """Everything one job produced, mirroring a local ``GridReport``.

    ``outcomes`` lines up with the submitted scenarios (input order,
    whatever order the server completed them in); ``events`` is the raw
    ``progress`` message stream in arrival (completion) order; ``tally``
    is the server's ``job-done`` summary (total / executed / cache_hits /
    deduped / errors / retries).
    """

    job: str
    total: int
    digests: list[str]
    outcomes: list[object | None] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    tally: dict[str, Any] = field(default_factory=dict)
    done: bool = False

    def results(self) -> list[ScenarioResult]:
        """The successful results, in input order."""
        return [o for o in self.outcomes if isinstance(o, ScenarioResult)]

    def cell_errors(self) -> list[CellError]:
        """The failed cells, in input order."""
        return [o for o in self.outcomes if isinstance(o, CellError)]

    @property
    def retries(self) -> int:
        """Worker-death retries the server reported for this job's cells."""
        return sum(e.get("retries", 0) for e in self.events)


class SweepClient:
    """One connection to a :class:`~repro.service.server.SweepServer`.

    ``address`` is a ``(host, port)`` pair or a ``"host:port"`` string.
    The client is synchronous and single-threaded; it is not safe to share
    one instance across threads (open one connection per thread instead —
    the server is built for many concurrent connections).

    ``retry`` (a :class:`~repro.resilience.RetryPolicy`) makes the
    client self-healing for *transient* faults: the initial dial is
    retried with backoff, and a ``submit`` whose connection turns out to
    be dead reconnects and resends — but only while no other job is
    mid-flight on the connection, since reconnecting abandons the
    server-side stream state.  ``breaker`` (a
    :class:`~repro.resilience.CircuitBreaker`) makes a repeatedly
    unreachable server fail fast instead of hammering it.
    """

    def __init__(self, address: "tuple[str, int] | str", *,
                 client_id: str = "client",
                 connect_timeout: float = 10.0,
                 retry: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 rng: random.Random | None = None):
        if isinstance(address, str):
            host, _, port_text = address.rpartition(":")
            if not host or not port_text.isdigit():
                raise ServiceError(
                    f"malformed address {address!r}; expected 'host:port'"
                )
            address = (host, int(port_text))
        self.address = (str(address[0]), int(address[1]))
        self.connect_timeout = connect_timeout
        self.retry = retry
        self.breaker = breaker
        self.rng = rng
        #: Successful reconnects performed by the retry machinery.
        self.reconnects = 0
        self._requested_id = client_id
        self._jobs: dict[str, JobOutcome] = {}
        self._accepted: list[dict] = []
        self._status: list[dict] = []
        self.draining = False
        self._connect()

    def _dial(self) -> socket.socket:
        """One socket-level connection attempt, breaker-guarded."""
        if self.breaker is not None and not self.breaker.allow():
            raise ServiceError(
                f"circuit open for sweep server at {self.address[0]}:"
                f"{self.address[1]} after repeated failures; backing off "
                f"for {self.breaker.reset_timeout:g}s"
            )
        try:
            sock = socket.create_connection(self.address,
                                            timeout=self.connect_timeout)
        except OSError as exc:
            if self.breaker is not None:
                self.breaker.record_failure()
            raise ServiceError(
                f"cannot connect to sweep server at "
                f"{self.address[0]}:{self.address[1]}: {exc}"
            ) from None
        if self.breaker is not None:
            self.breaker.record_success()
        return sock

    def _connect(self) -> None:
        """Dial (retrying transient failures) and run the hello handshake."""
        if self.retry is not None:
            self._sock = self.retry.call(self._dial,
                                         retry_on=(ServiceError,),
                                         rng=self.rng)
        else:
            self._sock = self._dial()
        self._sock.settimeout(None)
        self._rfile = self._sock.makefile("r", encoding="utf-8")
        self._wfile = self._sock.makefile("w", encoding="utf-8")
        # Handshake rejections are semantic, never retried.
        self._send({"op": "hello", "client": self._requested_id,
                    "protocol": PROTOCOL_VERSION})
        welcome = self._read()
        if welcome.get("type") == "error":
            raise ServiceError(f"server rejected hello: {welcome.get('message')}")
        if welcome.get("type") != "welcome":
            raise ServiceError(f"expected welcome, got {welcome!r}")
        #: The server-side id (uniquified on collision) used in accounting.
        self.client_id = str(welcome.get("client"))

    # -- context management ---------------------------------------------
    def __enter__(self) -> "SweepClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._send({"op": "bye"})
        except (OSError, ServiceError):
            pass
        for handle in (self._rfile, self._wfile, self._sock):
            try:
                handle.close()
            except OSError:
                pass

    # -- requests --------------------------------------------------------
    def submit(self, scenarios: Sequence[Scenario] | None = None, *,
               base: Scenario | None = None,
               axes: Mapping[str, Sequence[Any]] | None = None,
               job: str | None = None,
               results: bool = True) -> str:
        """Submit a grid; returns the server-assigned job id.

        Pass either ``scenarios`` (a list) or ``base`` (+ optional
        ``axes``, expanded server-side).  With ``results=False`` the
        server streams progress only — use when outcomes are consumed
        from a shared cache instead of over the wire.
        """
        message: dict[str, Any] = {"op": "submit", "results": results}
        if job is not None:
            message["job"] = job
        if scenarios is not None:
            if base is not None or axes is not None:
                raise ScenarioError("pass scenarios= or base=/axes=, not both")
            message["scenarios"] = [s.to_dict() for s in scenarios]
        elif base is not None:
            message["base"] = base.to_dict()
            if axes:
                message["axes"] = {key: list(values)
                                   for key, values in axes.items()}
        else:
            raise ScenarioError("submit needs scenarios= or base=")
        try:
            self._send(message)
            while not self._accepted:
                self._pump()
        except ServiceError:
            if self.retry is None or self.draining \
                    or any(not state.done for state in self._jobs.values()):
                raise  # nothing safe to heal: in-flight jobs die with the wire
            # Transient drop with no stream state at stake (e.g. the
            # server restarted between jobs): reconnect and resend.
            self._reconnect()
            self._send(message)
            while not self._accepted:
                self._pump()
        accepted = self._accepted.pop(0)
        job_id = str(accepted["job"])
        state = self._jobs[job_id]
        state.total = int(accepted["total"])
        state.digests = list(accepted["digests"])
        return job_id

    def wait(self, job: str, *,
             progress: Callable[[dict], None] | None = None) -> JobOutcome:
        """Block until ``job`` finishes; returns its :class:`JobOutcome`.

        ``progress`` receives each raw ``progress`` message dict as it
        arrives (including ones that arrived before ``wait`` was called).
        """
        state = self._jobs.get(job)
        if state is None:
            raise ServiceError(f"unknown job {job!r}")
        seen = 0
        while True:
            if progress is not None:
                for event in state.events[seen:]:
                    progress(event)
                seen = len(state.events)
            if state.done:
                if len(state.outcomes) < state.total:
                    state.outcomes.extend(
                        [None] * (state.total - len(state.outcomes)))
                return state
            self._pump()

    def status(self) -> dict[str, Any]:
        """Aggregate + per-client counters and queue depths."""
        self._send({"op": "status"})
        while not self._status:
            self._pump()
        return self._status.pop(0)

    def drain_server(self) -> None:
        """Ask the server to drain (the remote spelling of SIGTERM)."""
        self._send({"op": "drain"})

    # -- plumbing --------------------------------------------------------
    def _reconnect(self) -> None:
        """Tear down the dead connection and re-run the handshake."""
        for handle in (self._rfile, self._wfile, self._sock):
            try:
                handle.close()
            except OSError:
                pass
        self._connect()
        self.reconnects += 1

    def _send(self, message: dict) -> None:
        try:
            self._wfile.write(dump_message(message))
            self._wfile.flush()
        except OSError as exc:
            raise ServiceError(f"connection to sweep server lost: {exc}") \
                from None

    def _read(self) -> dict:
        line = self._rfile.readline()
        if not line:
            raise ServiceError(
                "sweep server closed the connection"
                + (" (draining)" if self.draining else "")
            )
        return parse_message(line)

    def _pump(self) -> None:
        """Read one message and fold it into client state."""
        message = self._read()
        kind = message.get("type")
        if kind == "accepted":
            job_id = str(message["job"])
            state = JobOutcome(job=job_id, total=int(message["total"]),
                               digests=list(message.get("digests", ())))
            state.outcomes = [None] * state.total
            self._jobs[job_id] = state
            self._accepted.append(message)
        elif kind == "progress":
            state = self._jobs.get(str(message.get("job")))
            if state is not None:
                state.events.append(message)
        elif kind == "result":
            state = self._jobs.get(str(message.get("job")))
            if state is not None:
                index = int(message["index"])
                if not 0 <= index < state.total:
                    raise ServiceError(
                        f"result index {index} out of range for job "
                        f"{state.job!r} (total {state.total})"
                    )
                state.outcomes[index] = outcome_from_wire(message["outcome"])
        elif kind == "job-done":
            state = self._jobs.get(str(message.get("job")))
            if state is not None:
                state.tally = {key: value for key, value in message.items()
                               if key not in ("type", "job")}
                state.done = True
        elif kind == "status":
            self._status.append(message)
        elif kind == "draining":
            self.draining = True
        elif kind == "error":
            raise ServiceError(
                f"server error for op {message.get('op')!r}: "
                f"{message.get('message')}"
            )
        # unknown message types are ignored for forward compatibility

    def __repr__(self) -> str:  # pragma: no cover - trivial
        host, port = self.address
        return f"SweepClient({host}:{port}, client_id={self.client_id!r})"

"""CLI subcommands for the sweep service: ``serve`` / ``submit`` / ``status``.

Routed from ``python -m repro.experiments`` (and the ``repro-experiments``
console script)::

    repro-experiments serve --port 7070 --backend processes \
        --cache-dir ~/.cache/repro-grid --journal ~/.cache/repro-journal.jsonl
    repro-experiments submit 127.0.0.1:7070 my_grid.json --progress
    repro-experiments status 127.0.0.1:7070

``serve`` runs until SIGTERM/SIGINT, then drains gracefully: in-flight
cells finish, queued cells persist to the journal (resumed on the next
``serve`` with the same ``--journal``), and connected clients are told the
server is ``draining``.  ``submit`` speaks the same grid JSON documents as
the ``grid`` subcommand, so a sweep moves from one-shot to service with no
file changes.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.errors import ScenarioError, ServiceError
from repro.scenarios import EXECUTION_BACKENDS, Scenario, ScenarioResult
from repro.service.client import SweepClient
from repro.service.server import SweepServer


def _build_backend(name: str, max_workers: int | None):
    factory = EXECUTION_BACKENDS.get(name)
    if max_workers is None:
        return factory()
    try:
        return factory(max_workers=max_workers)
    except TypeError:
        raise ScenarioError(
            f"backend {name!r} does not take --max-workers"
        ) from None


def serve_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve",
        description="Run the persistent sweep broker: accept grid "
                    "submissions from many clients over TCP, dedup by "
                    "scenario digest, schedule fairly, stream results.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default: 0 = OS-assigned; the bound "
                             "port is printed and written to --port-file)")
    parser.add_argument("--backend", default="serial",
                        choices=sorted(EXECUTION_BACKENDS.names()),
                        help="shared execution backend (default: serial)")
    parser.add_argument("--max-workers", type=int, default=None,
                        help="pool width for the threads/processes backends")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="shared content-addressed scenario cache; "
                             "strongly recommended — it powers cross-client "
                             "and cross-restart dedup")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="resumable submission journal; queued cells "
                             "survive a drain and re-run on the next serve")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-scenario wall-clock budget in seconds")
    parser.add_argument("--retries", type=int, default=1,
                        help="retries per cell after a worker death "
                             "(processes backend; default 1)")
    parser.add_argument("--batch-cells", type=int, default=8,
                        help="cells per dispatcher batch (smaller = fairer "
                             "interleaving and faster drain; default 8)")
    parser.add_argument("--port-file", default=None, metavar="PATH",
                        help="write 'host port' here once bound (for "
                             "scripts that need the OS-assigned port)")
    # Lazy, like the route in repro.experiments.cli: only a serve that
    # can pick --backend cluster should load the cluster stack.
    from repro.cluster.cli import add_cluster_arguments, \
        cluster_backend_from_args

    add_cluster_arguments(parser)
    args = parser.parse_args(argv)

    if args.backend == "cluster":
        backend = cluster_backend_from_args(args, args.max_workers)
    else:
        backend = _build_backend(args.backend, args.max_workers)
    server = SweepServer(args.host, args.port,
                         backend=backend,
                         cache=args.cache_dir, journal=args.journal,
                         timeout=args.timeout, retries=args.retries,
                         batch_cells=args.batch_cells)
    server.start()
    host, port = server.address
    if args.port_file:
        Path(args.port_file).write_text(f"{host} {port}\n")
    print(f"sweep server listening on {host}:{port} "
          f"(backend={args.backend}, cache={args.cache_dir or 'none'}, "
          f"journal={args.journal or 'none'})", flush=True)
    if server.resumed:
        print(f"resumed {server.resumed} journaled cells", flush=True)

    def _drain(signum, frame):  # noqa: ANN001 - signal handler
        print(f"signal {signum}: draining (in-flight cells finish, queued "
              f"cells persist to the journal)", file=sys.stderr, flush=True)
        server.drain()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    server.serve_forever()
    status = server.broker.status()
    totals = status["totals"]
    print(f"drained: {totals['executed']} executed, "
          f"{totals['cache_hits']} cache hits, {totals['deduped']} deduped, "
          f"{totals['retried']} retries, {status['queued']} journaled",
          flush=True)
    return 0


def _load_grid(path: str) -> dict:
    try:
        data = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ScenarioError(f"cannot read {path!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"{path!r} is not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ScenarioError("a grid JSON document must be an object")
    return data


def submit_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments submit",
        description="Submit a grid JSON document (same format as the "
                    "'grid' subcommand) to a running sweep server and "
                    "stream the results back.",
    )
    parser.add_argument("address", help="server address, host:port")
    parser.add_argument("file", help='path to {"base": ..., "axes": ...} or '
                                     '{"scenarios": [...]} JSON')
    parser.add_argument("--client", default=None, metavar="NAME",
                        help="client id for the server's accounting "
                             "(default: derived from the grid file name)")
    parser.add_argument("--job", default=None, metavar="NAME",
                        help="job label echoed back in events")
    parser.add_argument("--no-results", action="store_true",
                        help="stream progress only; read outcomes from the "
                             "server's shared cache/sink instead")
    parser.add_argument("--progress", action="store_true",
                        help="print one progress line per completed cell "
                             "to stderr")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print every outcome as a JSON array")
    args = parser.parse_args(argv)

    data = _load_grid(args.file)
    client_id = args.client or Path(args.file).stem
    with SweepClient(args.address, client_id=client_id) as client:
        message_scenarios = None
        base = axes = None
        if "scenarios" in data:
            message_scenarios = [Scenario.from_dict(s)
                                 for s in data["scenarios"]]
        elif "base" in data:
            base = Scenario.from_dict(data["base"])
            axes = data.get("axes") or None
        else:
            raise ScenarioError(
                "a grid JSON document needs either 'scenarios' or "
                "'base' (+ 'axes')"
            )

        progress = None
        if args.progress:
            def progress(event):  # noqa: ANN001 - progress message dict
                state = "ok" if event.get("ok") else "FAILED"
                note = (f", {event['retries']} retries"
                        if event.get("retries") else "")
                print(f"[{event['done']}/{event['total']}] "
                      f"{event.get('label')}: {state} "
                      f"({event.get('source')}{note})", file=sys.stderr)

        try:
            job = client.submit(message_scenarios, base=base, axes=axes,
                                job=args.job,
                                results=not args.no_results)
            outcome = client.wait(job, progress=progress)
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 3

        if args.as_json:
            rows = []
            for cell in outcome.outcomes:
                if isinstance(cell, ScenarioResult):
                    rows.append(cell.to_dict())
                elif cell is None:
                    rows.append(None)
                else:
                    rows.append({"error": cell.to_dict()})
            print(json.dumps(rows, indent=2))
        tally = outcome.tally
        print(f"[{job}] {tally.get('total')} cells: "
              f"{tally.get('executed')} executed, "
              f"{tally.get('cache_hits')} cache hits, "
              f"{tally.get('deduped')} deduped, "
              f"{tally.get('errors')} errors, "
              f"{tally.get('retries')} retries", file=sys.stderr)
        return 1 if tally.get("errors") else 0


def _print_status(status: dict, *, as_json: bool) -> None:
    if as_json:
        print(json.dumps({k: v for k, v in status.items() if k != "type"},
                         indent=2, sort_keys=True))
        return
    totals = status["totals"]
    print(f"queued {status['queued']}, inflight {status['inflight']}, "
          f"active jobs {status['active_jobs']}"
          + (", draining" if status.get("draining") else ""))
    print(f"totals: {totals['submitted']} submitted, "
          f"{totals['executed']} executed, {totals['cache_hits']} cache hits, "
          f"{totals['deduped']} deduped, {totals['failed']} failed, "
          f"{totals['retried']} retried, {totals['resumed']} resumed, "
          f"{totals.get('degraded', 0)} degraded")
    for name, counters in status.get("clients", {}).items():
        print(f"  {name}: {counters['submitted']} submitted, "
              f"{counters['executed']} executed, "
              f"{counters['cache_hits']} cache hits, "
              f"{counters['deduped']} deduped, {counters['failed']} failed, "
              f"{counters['retried']} retried, "
              f"{counters['resumed']} resumed, "
              f"{counters.get('degraded', 0)} degraded")


def status_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments status",
        description="Print a running sweep server's counters and queues.",
    )
    parser.add_argument("address", help="server address, host:port")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the raw status document")
    parser.add_argument("--watch", type=float, default=None, metavar="SECS",
                        help="re-poll and reprint every SECS seconds until "
                             "interrupted (Ctrl-C exits cleanly)")
    args = parser.parse_args(argv)
    if args.watch is not None and args.watch <= 0:
        raise ServiceError(f"--watch needs a positive interval, got "
                           f"{args.watch:g}")

    with SweepClient(args.address, client_id="status") as client:
        try:
            while True:
                _print_status(client.status(), as_json=args.as_json)
                if args.watch is None:
                    break
                sys.stdout.flush()
                time.sleep(args.watch)
                if not args.as_json:
                    print()  # blank line between polls
        except KeyboardInterrupt:
            pass  # a watch is ended by Ctrl-C; that is not an error
    return 0

"""The sweep broker: per-client queues, digest dedup, fair scheduling.

:class:`SweepBroker` is the socket-free heart of the service — the
:class:`~repro.service.server.SweepServer` feeds it submissions from
handler threads and drains it from one dispatcher thread; tests drive it
directly.  It owns four responsibilities:

* **Dedup by digest.**  Every submitted cell is keyed by
  :func:`~repro.scenarios.cache.scenario_digest`.  A cell whose digest is
  already queued or in flight — whether submitted by the same client or a
  different one — attaches as an extra *subscriber* instead of queueing a
  second execution; when the one execution completes, the outcome fans out
  to every subscriber.  Cells whose digest the shared
  :class:`~repro.scenarios.cache.ScenarioCache` already holds are answered
  immediately without queueing at all.

* **Fair scheduling.**  Each client has its own FIFO queue;
  :meth:`take` hands the dispatcher batches assembled round-robin over the
  clients that currently have queued work (one cell per client per turn),
  so a client submitting a 10 000-cell sweep cannot starve one submitting
  a single scenario.

* **Event fan-out.**  Completions become ``progress`` + ``result``
  messages pushed through the server-supplied ``publish`` callback, one
  stream per subscribed client, and a ``job-done`` summary once a job's
  last cell resolves.

* **Accounting.**  Per-client and aggregate :class:`SweepCounters`
  (submitted / executed / cache hits / deduped / failed / retried /
  resumed) back the ``status`` request.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import ServiceError
from repro.scenarios.backends import CellError
from repro.scenarios.cache import ScenarioCache, scenario_digest
from repro.scenarios.runner import ScenarioResult
from repro.scenarios.spec import Scenario
from repro.service.journal import SweepJournal
from repro.service.protocol import outcome_to_wire

#: The pseudo-client that owns cells resumed from a journal: nobody is
#: connected to receive their events, but their results land in the shared
#: cache, so re-submitting clients get instant hits.
JOURNAL_CLIENT = "__journal__"

#: ``publish(client_id, message)`` — the server routes ``message`` to the
#: client's outbound stream (a no-op for disconnected clients).
Publish = Callable[[str, dict], None]


@dataclass
class SweepCounters:
    """What one client (or the whole server) has caused so far."""

    submitted: int = 0      #: cells received in submit requests
    executed: int = 0       #: cells this client's queue actually ran
    cache_hits: int = 0     #: cells answered straight from the cache
    deduped: int = 0        #: cells attached to an existing execution
    failed: int = 0         #: cell outcomes that were CellErrors
    retried: int = 0        #: extra attempts caused by worker deaths
    resumed: int = 0        #: cells re-enqueued from the journal
    degraded: int = 0       #: cells that ran on a fallback backend

    def to_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


@dataclass
class _Subscriber:
    """One (client, job, index) waiting for a cell's outcome."""

    client: str
    job: str
    index: int
    scenario: Scenario
    source: str             #: "executed" | "deduped" (at submit time)


@dataclass
class _Cell:
    """One unique queued/in-flight execution, fanned out to subscribers."""

    digest: str
    scenario: Scenario
    owner: str
    subscribers: list[_Subscriber] = field(default_factory=list)
    state: str = "queued"   #: "queued" -> "inflight" -> gone


@dataclass
class _Job:
    """Per-job progress so ``job-done`` can carry a GridReport-like tally."""

    client: str
    job_id: str
    total: int
    stream_results: bool = True
    done: int = 0
    errors: int = 0
    retries: int = 0
    by_source: dict[str, int] = field(default_factory=dict)

    def tally(self) -> dict[str, Any]:
        return {"total": self.total, "done": self.done,
                "errors": self.errors, "retries": self.retries,
                "executed": self.by_source.get("executed", 0),
                "cache_hits": self.by_source.get("cache", 0),
                "deduped": self.by_source.get("deduped", 0)}


class SweepBroker:
    """Thread-safe scheduling state shared by handler and dispatcher threads."""

    def __init__(self, *, cache: ScenarioCache | None = None,
                 journal: SweepJournal | None = None,
                 publish: Publish | None = None):
        self.cache = cache
        self.journal = journal
        self.publish: Publish = publish or (lambda client, message: None)
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._queues: dict[str, deque[_Cell]] = {}
        self._rotation: deque[str] = deque()
        self._by_digest: dict[str, _Cell] = {}
        self._jobs: dict[tuple[str, str], _Job] = {}
        self._job_seq = 0
        self._queued = 0
        self._inflight = 0
        self._draining = False
        self._stopped = False
        self.totals = SweepCounters()
        self.per_client: dict[str, SweepCounters] = {}

    # -- submission ------------------------------------------------------
    def submit(self, client: str, scenarios: Sequence[Scenario], *,
               job: str | None = None,
               stream_results: bool = True) -> dict[str, Any]:
        """Queue ``scenarios`` for ``client``; returns the ``accepted`` body.

        The ``accepted`` message is published through the client's event
        stream (not returned to the caller) so it is guaranteed to precede
        every event of the job — cells resolved without execution (cache
        hits) are announced immediately, before this method returns, and a
        fully-cached job can be accepted and completed in one breath.
        """
        scenarios = list(scenarios)
        if not scenarios:
            raise ServiceError("a submission needs at least one scenario")
        with self._work:
            if self._draining:
                raise ServiceError("server is draining; submission refused")
            self._job_seq += 1
            job_id = job or f"job-{self._job_seq}"
            key = (client, job_id)
            if key in self._jobs:
                raise ServiceError(
                    f"client {client!r} already has an active job {job_id!r}"
                )
            state = _Job(client, job_id, len(scenarios),
                         stream_results=stream_results)
            self._jobs[key] = state
            counters = self.per_client.setdefault(client, SweepCounters())
            digests = [scenario_digest(s) for s in scenarios]
            self.publish(client, {"type": "accepted", "job": job_id,
                                  "total": len(scenarios),
                                  "digests": digests})
            announce: list[tuple[_Subscriber, object, int]] = []
            for index, (scenario, digest) in enumerate(zip(scenarios, digests)):
                counters.submitted += 1
                self.totals.submitted += 1
                hit = self.cache.get(digest) if self.cache is not None else None
                if hit is not None:
                    counters.cache_hits += 1
                    self.totals.cache_hits += 1
                    announce.append((_Subscriber(client, job_id, index,
                                                 scenario, "cache"), hit, 0))
                    continue
                cell = self._by_digest.get(digest)
                if cell is not None:
                    counters.deduped += 1
                    self.totals.deduped += 1
                    cell.subscribers.append(
                        _Subscriber(client, job_id, index, scenario, "deduped"))
                    continue
                cell = _Cell(digest, scenario, owner=client)
                cell.subscribers.append(
                    _Subscriber(client, job_id, index, scenario, "executed"))
                self._by_digest[digest] = cell
                self._enqueue(cell)
                if self.journal is not None:
                    self.journal.record_queued(digest, scenario)
            for subscriber, outcome, retries in announce:
                self._deliver(subscriber, outcome, retries)
            self._work.notify_all()
            return {"job": job_id, "total": len(scenarios), "digests": digests}

    def resume_from_journal(self) -> int:
        """Re-enqueue the journal's pending cells under the journal client."""
        if self.journal is None:
            return 0
        pending = self.journal.load_pending()
        if not pending:
            return 0
        with self._work:
            counters = self.per_client.setdefault(JOURNAL_CLIENT,
                                                  SweepCounters())
            resumed = 0
            for digest, scenario in pending:
                if digest in self._by_digest:
                    continue
                if self.cache is not None and digest in self.cache:
                    # Already simulated by a previous life of the server;
                    # nothing to re-run, just retire the journal record.
                    self.journal.record_done(digest)
                    continue
                cell = _Cell(digest, scenario, owner=JOURNAL_CLIENT)
                self._by_digest[digest] = cell
                self._enqueue(cell)
                resumed += 1
                counters.resumed += 1
                self.totals.resumed += 1
            self._work.notify_all()
            return resumed

    def _enqueue(self, cell: _Cell) -> None:
        queue = self._queues.setdefault(cell.owner, deque())
        if not queue:
            self._rotation.append(cell.owner)
        queue.append(cell)
        self._queued += 1

    # -- dispatch --------------------------------------------------------
    def take(self, limit: int) -> list[tuple[str, Scenario]] | None:
        """Block until work is available; ``None`` once draining/stopped.

        Returns up to ``limit`` ``(digest, scenario)`` pairs assembled
        round-robin over the clients that have queued cells — one cell per
        client per turn — and marks them in flight.
        """
        with self._work:
            while not self._rotation:
                if self._draining or self._stopped:
                    return None
                self._work.wait()
            if self._draining or self._stopped:
                return None
            batch: list[tuple[str, Scenario]] = []
            while self._rotation and len(batch) < limit:
                client = self._rotation.popleft()
                queue = self._queues[client]
                cell = queue.popleft()
                cell.state = "inflight"
                self._queued -= 1
                self._inflight += 1
                batch.append((cell.digest, cell.scenario))
                if queue:
                    self._rotation.append(client)
            return batch

    def complete(self, digest: str, outcome: object, attempts: int = 1, *,
                 degraded: bool = False) -> None:
        """Record one finished execution and fan it out to subscribers.

        ``degraded=True`` marks a cell a degraded cluster backend handed
        to its in-process fallback; it surfaces in the ``status``
        counters so operators can see a sweep quietly running without
        its fleet.
        """
        if isinstance(outcome, ScenarioResult) and self.cache is not None:
            self.cache.put(digest, outcome)
        with self._work:
            cell = self._by_digest.pop(digest, None)
            if cell is None:  # pragma: no cover - dispatcher/broker bug guard
                raise ServiceError(f"completion for unknown digest {digest!r}")
            self._inflight -= 1
            retries = max(0, attempts - 1)
            owner = self.per_client.setdefault(cell.owner, SweepCounters())
            owner.executed += 1
            owner.retried += retries
            self.totals.executed += 1
            self.totals.retried += retries
            if degraded:
                owner.degraded += 1
                self.totals.degraded += 1
            if self.journal is not None:
                self.journal.record_done(digest)
            for subscriber in cell.subscribers:
                self._deliver(subscriber, outcome, retries)
            self._work.notify_all()

    def _deliver(self, subscriber: _Subscriber, outcome: object,
                 retries: int) -> None:
        """Publish progress (+ result) for one subscriber, under the lock."""
        job = self._jobs[(subscriber.client, subscriber.job)]
        job.done += 1
        job.retries += retries
        job.by_source[subscriber.source] = \
            job.by_source.get(subscriber.source, 0) + 1
        ok = isinstance(outcome, ScenarioResult)
        if not ok:
            job.errors += 1
            counters = self.per_client.setdefault(subscriber.client,
                                                  SweepCounters())
            counters.failed += 1
            self.totals.failed += 1
        delivered = outcome
        if isinstance(outcome, ScenarioResult):
            if outcome.scenario != subscriber.scenario:
                delivered = dataclasses.replace(
                    outcome, scenario=subscriber.scenario)
        elif isinstance(outcome, CellError) \
                and outcome.scenario != subscriber.scenario:
            delivered = dataclasses.replace(
                outcome, scenario=subscriber.scenario)
        label = subscriber.scenario.name or subscriber.scenario.workload
        self.publish(subscriber.client, {
            "type": "progress", "job": subscriber.job, "done": job.done,
            "total": job.total, "index": subscriber.index, "label": label,
            "ok": ok, "source": subscriber.source, "retries": retries,
        })
        if job.stream_results:
            self.publish(subscriber.client, {
                "type": "result", "job": subscriber.job,
                "index": subscriber.index, "source": subscriber.source,
                "retries": retries, "outcome": outcome_to_wire(delivered),
            })
        if job.done == job.total:
            del self._jobs[(subscriber.client, subscriber.job)]
            self.publish(subscriber.client,
                         {"type": "job-done", "job": subscriber.job,
                          **job.tally()})

    def requeue_inflight(self, digests: Sequence[str]) -> None:
        """Put un-reported in-flight cells back in their queues.

        The dispatcher calls this when a backend dies wholesale mid-batch:
        cells it already reported are gone from ``_by_digest``; the rest
        go back to the front of the line as if never taken.
        """
        with self._work:
            for digest in digests:
                cell = self._by_digest.get(digest)
                if cell is not None and cell.state == "inflight":
                    cell.state = "queued"
                    self._inflight -= 1
                    self._enqueue(cell)
            self._work.notify_all()

    # -- lifecycle -------------------------------------------------------
    def drain(self) -> None:
        """Stop handing out new work; queued cells stay for the journal."""
        with self._work:
            self._draining = True
            self._work.notify_all()

    def stop(self) -> None:
        with self._work:
            self._stopped = True
            self._work.notify_all()

    @property
    def draining(self) -> bool:
        return self._draining

    def pending_scenarios(self) -> list[tuple[str, Scenario]]:
        """The still-queued (digest, scenario) pairs — what a drain journals."""
        with self._lock:
            return [(cell.digest, cell.scenario)
                    for queue in self._queues.values() for cell in queue]

    def idle(self) -> bool:
        """Whether nothing is queued or in flight."""
        with self._lock:
            return self._queued == 0 and self._inflight == 0

    def status(self) -> dict[str, Any]:
        """The body of a ``status`` reply."""
        with self._lock:
            return {
                "queued": self._queued,
                "inflight": self._inflight,
                "active_jobs": len(self._jobs),
                "draining": self._draining,
                "totals": self.totals.to_dict(),
                "clients": {client: counters.to_dict()
                            for client, counters in
                            sorted(self.per_client.items())},
            }

"""Wire protocol of the sweep service: newline-delimited JSON messages.

Every message is one JSON object on one line (NDJSON), stdlib only, so any
language with a socket and a JSON parser can talk to the broker.  Requests
flow client → server, carrying an ``"op"`` field; everything the server
sends carries a ``"type"`` field.  One TCP connection is one client: the
server pushes events for that client's jobs down the same socket the
requests arrive on, so a client never polls.

Requests
--------
``{"op": "hello", "client": NAME, "protocol": 1}``
    Mandatory first message; the server replies ``welcome`` with the
    (possibly uniquified) client id that tags all subsequent accounting.
``{"op": "submit", "scenarios": [...]}`` or
``{"op": "submit", "base": {...}, "axes": {...}}``
    Submit a grid.  Scenario objects use the canonical
    :meth:`~repro.scenarios.spec.Scenario.to_dict` form; ``base``/``axes``
    are expanded server-side exactly like :func:`repro.scenarios.expand_grid`.
    Optional fields: ``"job"`` (a client-side label echoed back) and
    ``"results": false`` (progress-only streaming — final documents are
    suppressed for huge grids whose payloads live in a shared cache/sink).
    The server replies ``accepted``, then streams ``progress`` (one per
    completed cell, completion order) and ``result`` messages, and finally
    one ``job-done`` with the per-job tallies.
``{"op": "status"}``
    Reply: one ``status`` message — aggregate and per-client counters,
    queue depths, and whether the server is draining.
``{"op": "drain"}``
    Ask the server to drain (same as SIGTERM): in-flight cells finish,
    queued cells persist to the journal, then the server exits.
``{"op": "bye"}``
    Close the connection cleanly.

Responses and events
--------------------
``welcome``, ``accepted``, ``progress``, ``result``, ``job-done``,
``status``, ``draining`` (broadcast once when a drain starts) and
``error`` (the offending request's ``op`` is echoed when known).

Outcomes travel in the same envelope the ``grid --json`` CLI prints: a
``{"result": {...}}`` object for a :class:`ScenarioResult` or an
``{"error": {...}}`` object for a :class:`CellError`, so both ends
round-trip losslessly through the existing ``to_dict``/``from_dict``
contract.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.errors import ServiceError
from repro.scenarios.backends import CellError
from repro.scenarios.runner import ScenarioResult

#: Bumped on incompatible message-shape changes; ``hello`` carries the
#: client's version and the server rejects mismatches loudly rather than
#: mis-parsing silently.
PROTOCOL_VERSION = 1


def dump_message(message: Mapping[str, Any]) -> str:
    """One NDJSON line (including the trailing newline) for ``message``."""
    return json.dumps(message, separators=(",", ":")) + "\n"


def parse_message(line: str) -> dict[str, Any]:
    """Parse one NDJSON line into a message dict.

    Raises :class:`ServiceError` for anything that is not a JSON object —
    the connection is then poisoned and should be dropped, because framing
    can no longer be trusted.
    """
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"undecodable message line: {exc}") from None
    if not isinstance(message, dict):
        raise ServiceError(
            f"a message must be a JSON object, got {type(message).__name__}"
        )
    return message


def outcome_to_wire(outcome: object) -> dict[str, Any]:
    """The JSON envelope for a ``ScenarioResult`` or ``CellError``."""
    if isinstance(outcome, ScenarioResult):
        return {"result": outcome.to_dict()}
    if isinstance(outcome, CellError):
        return {"error": outcome.to_dict()}
    raise ServiceError(
        f"cannot serialize outcome of type {type(outcome).__name__}"
    )


def outcome_from_wire(data: Mapping[str, Any]) -> object:
    """Inverse of :func:`outcome_to_wire`."""
    if not isinstance(data, Mapping):
        raise ServiceError(
            f"an outcome envelope must be an object, got {type(data).__name__}"
        )
    if "result" in data:
        return ScenarioResult.from_dict(data["result"])
    if "error" in data:
        return CellError.from_dict(data["error"])
    raise ServiceError("outcome envelope has neither 'result' nor 'error'")

"""Q2: traffic-incident detection with a stream join (Sec. VI-B, Fig. 11 right).

Two source streams feed the query: user-location records and user-reported
incident events.  The pipeline is:

* **O1** — per-segment average speed per batch (from location records);
* **O2** — deduplicates user incident reports into distinct incidents;
* **O3** (correlated-input) — joins the segment-speed stream with the
  distinct-incident stream over a sliding window and keeps the incidents
  whose segment speed indicates a traffic jam;
* **O4** (sink) — aggregates the distinct jam incidents in the window.

Because O3 is a join, losing *either* input stream for a segment suppresses
its incidents entirely — the correlation effect that makes IC a poor
predictor and OF a good one in Fig. 12(b).

Each operator's ``process_batch`` is a batch kernel (incremental per-key
window aggregates retired via :meth:`SlidingWindow.evict_collect` instead of
per-batch window rescans); the original per-tuple loops are kept as
``process_batch_reference`` and pinned by the randomized parity tests.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.engine.logic import OperatorLogic
from repro.engine.tuples import KeyedTuple
from repro.queries.windows import SlidingWindow, retire_count
from repro.topology.operators import TaskId

#: Key under which the sink emits the current jam-incident set.
INCIDENT_RESULT_KEY = "jam-incidents"


class SegmentSpeedOperator(OperatorLogic):
    """O1: average speed per road segment within each batch."""

    def process_batch(self, task: TaskId, batch_end_time: float,
                      inputs: Mapping[TaskId, Sequence[KeyedTuple]]
                      ) -> list[KeyedTuple]:
        # Mutable [total, count] cells kill the per-tuple tuple rebuild of
        # the reference; the additions run in the same order, so the float
        # totals (and the 0.0 + x normalisation) are bit-identical.
        sums: dict[str, list] = {}
        get = sums.get
        for upstream in sorted(inputs):
            for segment, speed in inputs[upstream]:
                cell = get(segment)
                if cell is None:
                    sums[segment] = [0.0 + float(speed), 1]
                else:
                    cell[0] += float(speed)
                    cell[1] += 1
        return [
            (segment, total / count)
            for segment, (total, count) in sorted(sums.items())
        ]

    def process_batch_reference(self, task: TaskId, batch_end_time: float,
                                inputs: Mapping[TaskId, Sequence[KeyedTuple]]
                                ) -> list[KeyedTuple]:
        sums: dict[str, tuple[float, int]] = {}
        for upstream in sorted(inputs):
            for segment, speed in inputs[upstream]:
                total, count = sums.get(segment, (0.0, 0))
                sums[segment] = (total + float(speed), count + 1)
        return [
            (segment, total / count)
            for segment, (total, count) in sorted(sums.items())
            if count > 0
        ]

    def state_size(self) -> int:
        return 0


class IncidentCombineOperator(OperatorLogic):
    """O2: combine user reports into distinct incident events (windowed dedup).

    The kernel maintains the distinct-incident set incrementally — evicted
    incidents are removed instead of rebuilding the set from the whole
    window every batch.
    """

    def __init__(self, window_seconds: float = 300.0):
        self.window = SlidingWindow(window_seconds)
        self._seen: set[str] = set()

    def process_batch(self, task: TaskId, batch_end_time: float,
                      inputs: Mapping[TaskId, Sequence[KeyedTuple]]
                      ) -> list[KeyedTuple]:
        # Expire old incidents first, so a re-report after the window is
        # treated as a fresh distinct incident.
        window = self.window
        seen = self._seen
        seen.difference_update(window.evict_collect(batch_end_time))
        out: list[KeyedTuple] = []
        for upstream in sorted(inputs):
            for segment, incident_id in inputs[upstream]:
                if incident_id in seen:
                    continue
                seen.add(incident_id)
                window.add(batch_end_time, incident_id)
                out.append((segment, incident_id))
        return sorted(out)

    def process_batch_reference(self, task: TaskId, batch_end_time: float,
                                inputs: Mapping[TaskId, Sequence[KeyedTuple]]
                                ) -> list[KeyedTuple]:
        self.window.evict(batch_end_time)
        self._seen = {incident for _ts, incident in self.window.timestamped()}
        out: list[KeyedTuple] = []
        for upstream in sorted(inputs):
            for segment, incident_id in inputs[upstream]:
                if incident_id in self._seen:
                    continue
                self._seen.add(incident_id)
                self.window.add(batch_end_time, incident_id)
                out.append((segment, incident_id))
        return sorted(out)

    def state_size(self) -> int:
        return len(self.window)


class SpeedIncidentJoinOperator(OperatorLogic):
    """O3 (correlated): join speeds and incidents per segment; keep jams.

    The kernel replaces the per-batch rescan of both windows with running
    aggregates: a per-segment count of slow speed readings and a per-pair
    count of live incident entries, both retired exactly on eviction.  A
    batch then costs O(batch + evicted + distinct pairs) instead of
    O(speeds window + incidents window).
    """

    def __init__(self, window_seconds: float = 300.0, jam_speed: float = 20.0):
        self.window_seconds = window_seconds
        self.jam_speed = jam_speed
        self.speeds = SlidingWindow(window_seconds)
        self.incidents = SlidingWindow(window_seconds)
        #: segment -> number of in-window speed readings <= jam_speed.
        self._slow_counts: dict[str, int] = {}
        #: (segment, incident) -> number of in-window incident entries.
        self._pair_counts: dict[tuple[str, str], int] = {}

    def process_batch(self, task: TaskId, batch_end_time: float,
                      inputs: Mapping[TaskId, Sequence[KeyedTuple]]
                      ) -> list[KeyedTuple]:
        speeds, incidents = self.speeds, self.incidents
        slow, pairs = self._slow_counts, self._pair_counts
        jam = self.jam_speed
        for upstream in sorted(inputs):
            for key, value in inputs[upstream]:
                if isinstance(value, str):
                    pair = (key, value)
                    incidents.add(batch_end_time, pair)
                    pairs[pair] = pairs.get(pair, 0) + 1
                else:
                    speed = float(value)
                    speeds.add(batch_end_time, (key, speed))
                    if speed <= jam:
                        slow[key] = slow.get(key, 0) + 1
        for key, speed in speeds.evict_collect(batch_end_time):
            if speed <= jam:
                retire_count(slow, key)
        for pair in incidents.evict_collect(batch_end_time):
            retire_count(pairs, pair)
        return sorted(pair for pair in pairs if pair[0] in slow)

    def process_batch_reference(self, task: TaskId, batch_end_time: float,
                                inputs: Mapping[TaskId, Sequence[KeyedTuple]]
                                ) -> list[KeyedTuple]:
        for upstream in sorted(inputs):
            for key, value in inputs[upstream]:
                if isinstance(value, str):
                    self.incidents.add(batch_end_time, (key, value))
                else:
                    self.speeds.add(batch_end_time, (key, float(value)))
        self.speeds.evict(batch_end_time)
        self.incidents.evict(batch_end_time)

        slow_segments = {
            segment
            for segment, speed in self.speeds.items()
            if speed <= self.jam_speed
        }
        out = sorted({
            (segment, incident_id)
            for segment, incident_id in self.incidents.items()
            if segment in slow_segments
        })
        return [(segment, incident_id) for segment, incident_id in out]

    def state_size(self) -> int:
        return len(self.speeds) + len(self.incidents)


class IncidentAggregateOperator(OperatorLogic):
    """O4 (sink): the distinct jam incidents observed within the window.

    The kernel counts live window entries per (segment, incident) pair so
    the distinct-incident set is read off the counts instead of rescanning
    the window.
    """

    def __init__(self, window_seconds: float = 300.0):
        self.window = SlidingWindow(window_seconds)
        self._pair_counts: dict[tuple[str, str], int] = {}

    def process_batch(self, task: TaskId, batch_end_time: float,
                      inputs: Mapping[TaskId, Sequence[KeyedTuple]]
                      ) -> list[KeyedTuple]:
        window = self.window
        pairs = self._pair_counts
        for upstream in sorted(inputs):
            batch = inputs[upstream]
            window.extend(batch_end_time, batch)
            for pair in batch:
                pairs[pair] = pairs.get(pair, 0) + 1
        for pair in window.evict_collect(batch_end_time):
            retire_count(pairs, pair)
        incidents = frozenset(incident for _segment, incident in pairs)
        return [(INCIDENT_RESULT_KEY, incidents)]

    def process_batch_reference(self, task: TaskId, batch_end_time: float,
                                inputs: Mapping[TaskId, Sequence[KeyedTuple]]
                                ) -> list[KeyedTuple]:
        for upstream in sorted(inputs):
            for segment, incident_id in inputs[upstream]:
                self.window.add(batch_end_time, (segment, incident_id))
        self.window.evict(batch_end_time)
        incidents = frozenset(incident for _segment, incident in self.window.items())
        return [(INCIDENT_RESULT_KEY, incidents)]

    def state_size(self) -> int:
        return len(self.window)


def incident_result_set(output: Sequence[KeyedTuple]) -> frozenset[str]:
    """Extract the jam-incident set from one sink batch output."""
    for key, value in output:
        if key == INCIDENT_RESULT_KEY:
            return frozenset(value)
    return frozenset()


def incident_accuracy(tentative: Sequence[KeyedTuple],
                      accurate: Sequence[KeyedTuple]) -> float:
    """Q2's accuracy function: ``|IT ∩ IA| / |IA|`` (Sec. VI-B)."""
    accurate_set = incident_result_set(accurate)
    if not accurate_set:
        return 1.0
    tentative_set = incident_result_set(tentative)
    return len(tentative_set & accurate_set) / len(accurate_set)

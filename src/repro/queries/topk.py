"""Q1: hierarchical top-k hottest entries (Sec. VI-B, Fig. 11 left).

The paper's Q1 computes the top-100 hottest entries of the WorldCup'98 web
site with a three-level aggregation tree:

* **O1** (slice aggregation) — counts accesses per entry over input slices;
* **O2** (merge) — merges partial counts within a sliding window;
* **O3** (global top-k, single task) — maintains the global counts and emits
  the current top-k entry set every batch.

The engine's key routing keeps each entry on one O2 task, so partial counts
merge correctly; losing an O1/O2 subtree removes those entries' counts and
degrades the top-k set — which is what the OF metric predicts.

Each operator's ``process_batch`` is a batch kernel (columnar counting,
incremental window totals); the original per-tuple loops are kept as
``process_batch_reference`` and pinned by the randomized parity tests.
"""

from __future__ import annotations

import heapq
from collections import Counter
from operator import itemgetter
from typing import Mapping, Sequence

from repro.engine.logic import OperatorLogic
from repro.engine.tuples import KeyedTuple
from repro.queries.windows import SlidingWindow
from repro.topology.operators import TaskId

#: Key under which the sink emits the current top-k result set.
TOPK_RESULT_KEY = "top-k"


class SliceAggregateOperator(OperatorLogic):
    """O1: per-batch access counts per entry (the 100-tuple slices of the paper)."""

    def process_batch(self, task: TaskId, batch_end_time: float,
                      inputs: Mapping[TaskId, Sequence[KeyedTuple]]
                      ) -> list[KeyedTuple]:
        counts: Counter[str] = Counter()
        first = itemgetter(0)
        for upstream in sorted(inputs):
            counts.update(map(first, inputs[upstream]))
        return sorted(counts.items())

    def process_batch_reference(self, task: TaskId, batch_end_time: float,
                                inputs: Mapping[TaskId, Sequence[KeyedTuple]]
                                ) -> list[KeyedTuple]:
        counts: Counter[str] = Counter()
        for upstream in sorted(inputs):
            for key, _value in inputs[upstream]:
                counts[key] += 1
        return [(key, count) for key, count in sorted(counts.items())]

    def state_size(self) -> int:
        return 0  # slice state lives within a single batch


class MergeAggregateOperator(OperatorLogic):
    """O2: windowed merge of partial counts; emits per-entry window totals.

    The kernel keeps *running* per-entry totals, updated as counts enter and
    leave the window, instead of re-summing the whole window every batch —
    O(batch + evicted) per batch rather than O(window).  Integer counts make
    the increments exact; the first non-int count permanently drops the
    instance back to the reference recompute so results never drift.
    """

    def __init__(self, window_seconds: float = 60.0):
        self.window = SlidingWindow(window_seconds)
        #: Running per-entry totals / live-entry counts (the kernel state).
        self._totals: dict[str, int] = {}
        self._entries: dict[str, int] = {}
        self._exact = True

    def process_batch(self, task: TaskId, batch_end_time: float,
                      inputs: Mapping[TaskId, Sequence[KeyedTuple]]
                      ) -> list[KeyedTuple]:
        window = self.window
        totals, entries = self._totals, self._entries
        for upstream in sorted(inputs):
            batch = inputs[upstream]
            window.extend(batch_end_time, batch)
            if not self._exact:
                continue
            for key, count in batch:
                if type(count) is not int:
                    # Fractional counts could drift under add/subtract;
                    # abandon the incremental state (it is never read
                    # again) and recompute from the window instead.
                    self._exact = False
                    self._totals = {}
                    self._entries = {}
                    break
                totals[key] = totals.get(key, 0) + count
                entries[key] = entries.get(key, 0) + 1
        evicted = window.evict_collect(batch_end_time)
        if not self._exact:
            recomputed: Counter[str] = Counter()
            for key, count in window.items():
                recomputed[key] += count
            return sorted(recomputed.items())
        totals, entries = self._totals, self._entries
        for key, count in evicted:
            live = entries[key] - 1
            if live:
                entries[key] = live
                totals[key] -= count
            else:
                del entries[key]
                del totals[key]
        return sorted(totals.items())

    def process_batch_reference(self, task: TaskId, batch_end_time: float,
                                inputs: Mapping[TaskId, Sequence[KeyedTuple]]
                                ) -> list[KeyedTuple]:
        for upstream in sorted(inputs):
            for key, count in inputs[upstream]:
                self.window.add(batch_end_time, (key, count))
        self.window.evict(batch_end_time)
        totals: Counter[str] = Counter()
        for key, count in self.window.items():
            totals[key] += count
        return [(key, total) for key, total in sorted(totals.items())]

    def state_size(self) -> int:
        return len(self.window)


class GlobalTopKOperator(OperatorLogic):
    """O3 (sink): global top-k over per-entry window totals.

    Upstream merge tasks hold *partial* totals (each sees a subset of the
    servers), so the global total of an entry is the sum of the latest
    total reported by each upstream task; an upstream's contribution expires
    when it has not been refreshed within the window.

    The kernel prunes stale contributions in place (no per-key dict
    rebuilds) and ranks with a size-k heap instead of sorting every entry.
    """

    def __init__(self, k: int = 100, window_seconds: float = 60.0):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.window_seconds = window_seconds
        #: entry -> upstream task -> (last refresh time, partial total)
        self._partials: dict[str, dict[TaskId, tuple[float, int]]] = {}

    def process_batch(self, task: TaskId, batch_end_time: float,
                      inputs: Mapping[TaskId, Sequence[KeyedTuple]]
                      ) -> list[KeyedTuple]:
        partials = self._partials
        for upstream in sorted(inputs):
            for key, total in inputs[upstream]:
                slot = partials.get(key)
                if slot is None:
                    partials[key] = slot = {}
                slot[upstream] = (batch_end_time, total)
        horizon = batch_end_time - self.window_seconds
        totals: dict[str, int] = {}
        for key, per_upstream in list(partials.items()):
            stale = [up for up, (ts, _total) in per_upstream.items()
                     if ts <= horizon]
            if stale:
                if len(stale) == len(per_upstream):
                    del partials[key]
                    continue
                for up in stale:
                    del per_upstream[up]
            totals[key] = sum(total for _ts, total in per_upstream.values())
        ranked = heapq.nsmallest(self.k, totals.items(),
                                 key=lambda item: (-item[1], item[0]))
        top = tuple(key for key, _total in ranked)
        return [(TOPK_RESULT_KEY, top)]

    def process_batch_reference(self, task: TaskId, batch_end_time: float,
                                inputs: Mapping[TaskId, Sequence[KeyedTuple]]
                                ) -> list[KeyedTuple]:
        for upstream in sorted(inputs):
            for key, total in inputs[upstream]:
                self._partials.setdefault(key, {})[upstream] = (
                    batch_end_time, total
                )
        horizon = batch_end_time - self.window_seconds
        totals: dict[str, int] = {}
        for key, per_upstream in list(self._partials.items()):
            fresh = {
                up: (ts, total)
                for up, (ts, total) in per_upstream.items()
                if ts > horizon
            }
            if not fresh:
                del self._partials[key]
                continue
            self._partials[key] = fresh
            totals[key] = sum(total for _ts, total in fresh.values())
        ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
        top = tuple(key for key, _total in ranked[: self.k])
        return [(TOPK_RESULT_KEY, top)]

    def state_size(self) -> int:
        return sum(len(per_upstream) for per_upstream in self._partials.values())


def topk_result_set(output: Sequence[KeyedTuple]) -> frozenset[str]:
    """Extract the top-k entry set from one sink batch output."""
    for key, value in output:
        if key == TOPK_RESULT_KEY:
            return frozenset(value)
    return frozenset()


def topk_accuracy(tentative: Sequence[KeyedTuple],
                  accurate: Sequence[KeyedTuple]) -> float:
    """Q1's accuracy function: ``|ST ∩ SA| / |SA|`` (Sec. VI-B)."""
    accurate_set = topk_result_set(accurate)
    if not accurate_set:
        return 1.0
    tentative_set = topk_result_set(tentative)
    return len(tentative_set & accurate_set) / len(accurate_set)

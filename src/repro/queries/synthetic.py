"""The synthetic windowed operator of the recovery-efficiency experiments.

Sec. VI-A: each synthetic operator maintains a sliding window (10–30 s
interval, 1 s step) whose state is the input data within the window, and has
selectivity 0.5.  The largest task state is therefore
``input_rate × window_interval`` tuples — exactly what makes checkpoint size
and Storm's replay volume scale with rate and window length in Fig. 7–9.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.engine.logic import OperatorLogic
from repro.engine.tuples import KeyedTuple
from repro.queries.windows import SlidingWindow
from repro.topology.operators import TaskId


class WindowedSelectivityOperator(OperatorLogic):
    """Sliding-window pass-through with fractional selectivity.

    Selectivity is applied with a deterministic accumulator (every
    ``1/selectivity``-th tuple is emitted), so replicas and recovered
    incarnations reproduce the exact same output.
    """

    def __init__(self, window_seconds: float = 30.0, selectivity: float = 0.5):
        if not 0.0 <= selectivity <= 1.0:
            raise ValueError(f"selectivity must be in [0, 1], got {selectivity}")
        self.window = SlidingWindow(window_seconds)
        self.selectivity = selectivity
        self._accumulator = 0.0

    def process_batch(self, task: TaskId, batch_end_time: float,
                      inputs: Mapping[TaskId, Sequence[KeyedTuple]]
                      ) -> list[KeyedTuple]:
        out: list[KeyedTuple] = []
        for upstream in sorted(inputs):
            for key, value in inputs[upstream]:
                self.window.add(batch_end_time, (key, value))
                self._accumulator += self.selectivity
                if self._accumulator >= 1.0:
                    self._accumulator -= 1.0
                    out.append((key, value))
        self.window.evict(batch_end_time)
        return out

    def state_size(self) -> int:
        return len(self.window)

"""The synthetic windowed operator of the recovery-efficiency experiments.

Sec. VI-A: each synthetic operator maintains a sliding window (10–30 s
interval, 1 s step) whose state is the input data within the window, and has
selectivity 0.5.  The largest task state is therefore
``input_rate × window_interval`` tuples — exactly what makes checkpoint size
and Storm's replay volume scale with rate and window length in Fig. 7–9.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping, Sequence

from repro.engine.kernels import active_kernel
from repro.engine.logic import OperatorLogic
from repro.engine.tuples import KeyedTuple
from repro.queries.windows import SlidingWindow
from repro.topology.operators import TaskId


def overlap_accuracy(tentative: Sequence[KeyedTuple],
                     accurate: Sequence[KeyedTuple]) -> float:
    """Workload-agnostic accuracy: multiset overlap ``|ST ∩ SA| / |SA|``.

    The synthetic workloads carry no query-specific result semantics, so
    tentative-output quality is simply the fraction of the accurate batch's
    tuples that the tentative batch reproduced, counting duplicates with
    multiplicity (the Sec. VI-B overlap measure applied to raw tuples).

    >>> overlap_accuracy([("a", 1)], [("a", 1), ("b", 2)])
    0.5
    >>> overlap_accuracy([], [])
    1.0
    """
    if not accurate:
        return 1.0
    surplus = Counter(tentative)
    hit = 0
    for item in accurate:
        if surplus[item] > 0:
            surplus[item] -= 1
            hit += 1
    return hit / len(accurate)


class WindowedSelectivityOperator(OperatorLogic):
    """Sliding-window pass-through with fractional selectivity.

    Selectivity is applied with a deterministic accumulator (every
    ``1/selectivity``-th tuple is emitted), so replicas and recovered
    incarnations reproduce the exact same output.  The per-batch fast path
    dispatches the accumulator to the active
    :class:`~repro.engine.kernels.BatchKernel`;
    :meth:`process_batch_reference` keeps the per-tuple loop as the parity
    specification.
    """

    def __init__(self, window_seconds: float = 30.0, selectivity: float = 0.5):
        if not 0.0 <= selectivity <= 1.0:
            raise ValueError(f"selectivity must be in [0, 1], got {selectivity}")
        self.window = SlidingWindow(window_seconds)
        self.selectivity = selectivity
        self._accumulator = 0.0

    def process_batch(self, task: TaskId, batch_end_time: float,
                      inputs: Mapping[TaskId, Sequence[KeyedTuple]]
                      ) -> list[KeyedTuple]:
        out: list[KeyedTuple] = []
        window = self.window
        acc = self._accumulator
        selectivity = self.selectivity
        kernel = active_kernel()
        for upstream in sorted(inputs):
            batch = inputs[upstream]
            window.extend(batch_end_time, batch)
            taken, acc = kernel.selectivity_take(batch, selectivity, acc)
            out += taken
        self._accumulator = acc
        window.evict(batch_end_time)
        return out

    def process_batch_reference(self, task: TaskId, batch_end_time: float,
                                inputs: Mapping[TaskId, Sequence[KeyedTuple]]
                                ) -> list[KeyedTuple]:
        out: list[KeyedTuple] = []
        window = self.window
        acc = self._accumulator
        selectivity = self.selectivity
        for upstream in sorted(inputs):
            batch = inputs[upstream]
            window.extend(batch_end_time, batch)
            if selectivity >= 1.0:
                # Pass-through: every tuple emits and the accumulator is a
                # fixed point (acc + 1.0 >= 1.0 always, then -1.0 undoes it).
                out.extend(batch)
                continue
            for item in batch:
                acc += selectivity
                if acc >= 1.0:
                    acc -= 1.0
                    out.append(item)
        self._accumulator = acc
        window.evict(batch_end_time)
        return out

    def state_size(self) -> int:
        return len(self.window)

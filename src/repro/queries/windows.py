"""Sliding-window primitives shared by the query operators.

The paper's operators are all sliding-window computations (Sec. VI); this
module provides the single window structure they share so checkpoint state
size and eviction semantics are uniform.
"""

from __future__ import annotations

from collections import deque
from itertools import repeat
from typing import Any, Iterable, Iterator


class SlidingWindow:
    """Time-based sliding window of ``(timestamp, item)`` entries.

    Entries are appended in timestamp order (the engine feeds batches in
    order); :meth:`evict` drops entries older than ``now − window_seconds``.
    """

    def __init__(self, window_seconds: float):
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be positive, got {window_seconds}")
        self.window_seconds = window_seconds
        self._entries: deque[tuple[float, Any]] = deque()

    def __deepcopy__(self, memo: dict) -> "SlidingWindow":
        # Checkpoint snapshots deep-copy operator state on the hot path.
        # Window entries are immutable by contract (see :meth:`add`), so a
        # fresh deque over the same entry tuples is a correct deep copy and
        # avoids recursively copying every tuple in the window.
        clone = SlidingWindow.__new__(SlidingWindow)
        clone.window_seconds = self.window_seconds
        clone._entries = deque(self._entries)
        memo[id(self)] = clone
        return clone

    def add(self, timestamp: float, item: Any) -> None:
        """Append an entry (timestamps must arrive in order).

        Items must be treated as immutable once added: checkpoint snapshots
        share entry tuples with the live window (:meth:`__deepcopy__`).
        """
        self._entries.append((timestamp, item))

    def extend(self, timestamp: float, items: Iterable[Any]) -> None:
        """Bulk-append ``items`` at one timestamp (the per-batch hot path).

        Equivalent to calling :meth:`add` per item, but the entry tuples are
        built by ``zip``/``repeat`` in C instead of a Python-level loop.
        """
        self._entries.extend(zip(repeat(timestamp), items))

    def evict(self, now: float) -> int:
        """Drop entries with ``timestamp <= now − window_seconds``; return count."""
        horizon = now - self.window_seconds
        dropped = 0
        while self._entries and self._entries[0][0] <= horizon:
            self._entries.popleft()
            dropped += 1
        return dropped

    def items(self) -> Iterator[Any]:
        """The items currently in the window, oldest first."""
        for _ts, item in self._entries:
            yield item

    def timestamped(self) -> Iterator[tuple[float, Any]]:
        """(timestamp, item) pairs currently in the window, oldest first."""
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

"""Sliding-window primitives shared by the query operators.

The paper's operators are all sliding-window computations (Sec. VI); this
module provides the single window structure they share so checkpoint state
size and eviction semantics are uniform.

The window is stored as *blocks*: each :meth:`extend` call appends one
``(timestamp, items)`` block sharing the caller's sequence (zero-copy — the
engine's batch tuples are immutable by contract), and each :meth:`add` call
appends a single-item block.  Because every block carries one timestamp and
timestamps arrive in order, insertion is O(1) per batch, eviction pops whole
blocks, and checkpoint snapshots copy O(blocks) instead of O(tuples) —
entries are never re-packed per tuple.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Hashable, Iterable, Iterator, Sequence


def retire_count(counts: dict, key: Hashable) -> None:
    """Decrement a live-entry count, dropping the key when it reaches zero.

    The companion of :meth:`SlidingWindow.evict_collect` for the
    incremental operator kernels: per-key counts are incremented as entries
    join the window and retired through this helper as they leave, so
    ``counts`` always holds exactly the keys with live entries.
    """
    live = counts[key] - 1
    if live:
        counts[key] = live
    else:
        del counts[key]


class SlidingWindow:
    """Time-based sliding window of ``(timestamp, item)`` entries.

    Entries are appended in timestamp order (the engine feeds batches in
    order); :meth:`evict` drops entries older than ``now − window_seconds``.
    """

    def __init__(self, window_seconds: float):
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be positive, got {window_seconds}")
        self.window_seconds = window_seconds
        #: ``(timestamp, items)`` blocks, oldest first; every item of a block
        #: shares the block's timestamp.
        self._blocks: deque[tuple[float, Sequence[Any]]] = deque()
        self._size = 0

    def __deepcopy__(self, memo: dict) -> "SlidingWindow":
        # Checkpoint snapshots deep-copy operator state on the hot path.
        # Blocks and their item sequences are immutable by contract (see
        # :meth:`add`/:meth:`extend`), so a fresh deque over the same block
        # tuples is a correct deep copy — O(blocks), not O(tuples).
        clone = SlidingWindow.__new__(SlidingWindow)
        clone.window_seconds = self.window_seconds
        clone._blocks = deque(self._blocks)
        clone._size = self._size
        memo[id(self)] = clone
        return clone

    def add(self, timestamp: float, item: Any) -> None:
        """Append an entry (timestamps must arrive in order).

        Items must be treated as immutable once added: checkpoint snapshots
        share blocks with the live window (:meth:`__deepcopy__`).
        """
        self._blocks.append((timestamp, (item,)))
        self._size += 1

    def extend(self, timestamp: float, items: Iterable[Any]) -> None:
        """Bulk-append ``items`` at one timestamp (the per-batch hot path).

        Equivalent to calling :meth:`add` per item, but the whole batch
        becomes one shared block: lists and tuples are referenced as-is
        (zero-copy — the caller must not mutate them afterwards), other
        iterables are materialised once.
        """
        if type(items) not in (list, tuple):
            items = list(items)
        if items:
            self._blocks.append((timestamp, items))
            self._size += len(items)

    def evict(self, now: float) -> int:
        """Drop entries with ``timestamp <= now − window_seconds``; return count."""
        horizon = now - self.window_seconds
        blocks = self._blocks
        dropped = 0
        while blocks and blocks[0][0] <= horizon:
            dropped += len(blocks.popleft()[1])
        self._size -= dropped
        return dropped

    def evict_collect(self, now: float) -> list[Any]:
        """Like :meth:`evict`, but return the evicted items, oldest first.

        The incremental operator kernels use this to retire per-key running
        aggregates exactly when their contributing entries leave the window.
        """
        horizon = now - self.window_seconds
        blocks = self._blocks
        if not blocks or blocks[0][0] > horizon:
            return []
        evicted: list[Any] = []
        while blocks and blocks[0][0] <= horizon:
            evicted.extend(blocks.popleft()[1])
        self._size -= len(evicted)
        return evicted

    def items(self) -> Iterator[Any]:
        """The items currently in the window, oldest first."""
        for _ts, block in self._blocks:
            yield from block

    def timestamped(self) -> Iterator[tuple[float, Any]]:
        """(timestamp, item) pairs currently in the window, oldest first."""
        for ts, block in self._blocks:
            for item in block:
                yield ts, item

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

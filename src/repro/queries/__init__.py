"""Query operator library: Q1 (top-k), Q2 (incident join), synthetic windows."""

from repro.queries.incidents import (
    INCIDENT_RESULT_KEY,
    IncidentAggregateOperator,
    IncidentCombineOperator,
    SegmentSpeedOperator,
    SpeedIncidentJoinOperator,
    incident_accuracy,
    incident_result_set,
)
from repro.queries.synthetic import WindowedSelectivityOperator
from repro.queries.topk import (
    TOPK_RESULT_KEY,
    GlobalTopKOperator,
    MergeAggregateOperator,
    SliceAggregateOperator,
    topk_accuracy,
    topk_result_set,
)
from repro.queries.windows import SlidingWindow

__all__ = [
    "GlobalTopKOperator",
    "INCIDENT_RESULT_KEY",
    "IncidentAggregateOperator",
    "IncidentCombineOperator",
    "MergeAggregateOperator",
    "SegmentSpeedOperator",
    "SliceAggregateOperator",
    "SlidingWindow",
    "SpeedIncidentJoinOperator",
    "TOPK_RESULT_KEY",
    "WindowedSelectivityOperator",
    "incident_accuracy",
    "incident_result_set",
    "topk_accuracy",
    "topk_result_set",
]

"""Generic synthetic sources for the recovery-efficiency experiments.

Sec. VI-A uses source tasks that produce tuples at a fixed rate (1000 or
2000 tuples/s).  :class:`UniformRateSource` does exactly that, with keys
drawn round-robin from a bounded key space so routing spreads evenly.
"""

from __future__ import annotations

from repro.engine.logic import SourceFunction
from repro.engine.tuples import KeyedTuple
from repro.errors import WorkloadError
from repro.topology.operators import TaskId


def _key_cycle(key_space: int) -> tuple[str, ...]:
    """The round-robin key strings, interned once instead of per tuple."""
    return tuple(f"k{j}" for j in range(key_space))


class UniformRateSource(SourceFunction):
    """Emits ``rate × batch_interval`` tuples per batch per task."""

    def __init__(self, rate_per_task: float, batch_interval: float = 1.0,
                 key_space: int = 64):
        if rate_per_task < 0:
            raise WorkloadError(f"rate must be >= 0, got {rate_per_task}")
        if key_space < 1:
            raise WorkloadError(f"key_space must be >= 1, got {key_space}")
        self.rate_per_task = rate_per_task
        self.batch_interval = batch_interval
        self.key_space = key_space
        self._keys = _key_cycle(key_space)

    def tuples_per_batch(self) -> int:
        """Number of tuples each task emits per batch."""
        return round(self.rate_per_task * self.batch_interval)

    def tuples_for_batch(self, task: TaskId, batch_index: int) -> list[KeyedTuple]:
        count = self.tuples_per_batch()
        base = batch_index * count
        keys, space, owner = self._keys, self.key_space, task.index
        return [
            (keys[(base + i) % space], (owner, base + i)) for i in range(count)
        ]


class SquareWaveSource(SourceFunction):
    """A square-wave rate profile: bursts at ``high_rate``, troughs at ``low_rate``.

    Each period of ``period_batches`` batches spends the first
    ``round(duty × period)`` batches (at least one, at most ``period - 1``)
    at the high rate and the rest at the low rate.  Tuple identities are a
    deterministic function of the batch index alone, so replays and
    recovered incarnations regenerate identical batches — the engine's
    source-determinism contract.
    """

    def __init__(self, high_rate: float, low_rate: float,
                 period_batches: int = 20, duty: float = 0.5,
                 batch_interval: float = 1.0, key_space: int = 64):
        if high_rate < 0 or low_rate < 0:
            raise WorkloadError(
                f"rates must be >= 0, got high={high_rate}, low={low_rate}"
            )
        if period_batches < 2:
            raise WorkloadError(
                f"period_batches must be >= 2, got {period_batches}"
            )
        if not 0.0 < duty < 1.0:
            raise WorkloadError(f"duty must be in (0, 1), got {duty}")
        if key_space < 1:
            raise WorkloadError(f"key_space must be >= 1, got {key_space}")
        self.high_rate = high_rate
        self.low_rate = low_rate
        self.period_batches = period_batches
        self.duty = duty
        self.batch_interval = batch_interval
        self.key_space = key_space
        self._keys = _key_cycle(key_space)
        self.high_batches = min(period_batches - 1,
                                max(1, round(duty * period_batches)))
        high_count = round(high_rate * batch_interval)
        low_count = round(low_rate * batch_interval)
        self._counts = tuple(
            high_count if phase < self.high_batches else low_count
            for phase in range(period_batches)
        )
        # Prefix sums over one period give each batch a stable tuple-id base.
        self._offsets = [0]
        for count in self._counts:
            self._offsets.append(self._offsets[-1] + count)

    def is_burst(self, batch_index: int) -> bool:
        """Whether ``batch_index`` falls in the high (burst) phase."""
        return batch_index % self.period_batches < self.high_batches

    def mean_rate(self) -> float:
        """The long-run average tuple rate of the profile."""
        return self._offsets[-1] / (self.period_batches * self.batch_interval)

    def tuples_for_batch(self, task: TaskId, batch_index: int) -> list[KeyedTuple]:
        periods, phase = divmod(batch_index, self.period_batches)
        count = self._counts[phase]
        base = periods * self._offsets[-1] + self._offsets[phase]
        keys, space, owner = self._keys, self.key_space, task.index
        return [
            (keys[(base + i) % space], (owner, base + i)) for i in range(count)
        ]

"""Generic synthetic sources for the recovery-efficiency experiments.

Sec. VI-A uses source tasks that produce tuples at a fixed rate (1000 or
2000 tuples/s).  :class:`UniformRateSource` does exactly that, with keys
drawn round-robin from a bounded key space so routing spreads evenly.
"""

from __future__ import annotations

from repro.engine.logic import SourceFunction
from repro.engine.tuples import KeyedTuple
from repro.errors import WorkloadError
from repro.topology.operators import TaskId


class UniformRateSource(SourceFunction):
    """Emits ``rate × batch_interval`` tuples per batch per task."""

    def __init__(self, rate_per_task: float, batch_interval: float = 1.0,
                 key_space: int = 64):
        if rate_per_task < 0:
            raise WorkloadError(f"rate must be >= 0, got {rate_per_task}")
        if key_space < 1:
            raise WorkloadError(f"key_space must be >= 1, got {key_space}")
        self.rate_per_task = rate_per_task
        self.batch_interval = batch_interval
        self.key_space = key_space

    def tuples_per_batch(self) -> int:
        """Number of tuples each task emits per batch."""
        return round(self.rate_per_task * self.batch_interval)

    def tuples_for_batch(self, task: TaskId, batch_index: int) -> list[KeyedTuple]:
        count = self.tuples_per_batch()
        base = batch_index * count
        return [
            (f"k{(base + i) % self.key_space}", (task.index, base + i))
            for i in range(count)
        ]

"""Synthetic WorldCup'98-like access log for Q1 (substitution, DESIGN.md §2).

The paper replays the WorldCup'98 web-server access log (73.3M records, one
full day, replayed 48× faster).  That trace is not redistributable here, so
this generator produces an access log with the properties Q1's behaviour
depends on: Zipfian page popularity (web access logs follow Zipf with
exponent near 0.8), per-server partitioning of the raw stream, and a stable
hot set so a top-100 query has a meaningful answer.
"""

from __future__ import annotations

from repro.engine.logic import SourceFunction
from repro.engine.tuples import KeyedTuple
from repro.errors import WorkloadError
from repro.topology.operators import TaskId
from repro.workloads.zipf import batch_rng, sample_zipf, zipf_probabilities


class WorldCupAccessLog(SourceFunction):
    """Access-log source: each source task models one front-end server.

    Tuples are ``(page_key, server_index)``.  Page popularity is Zipfian,
    but each server's popularity ranking is *rotated* (``servers`` tasks
    partition the site geographically, as the real WorldCup front-ends did),
    so different servers contribute different hot pages to the global
    top-k — which is what makes losing an aggregation subtree visibly
    degrade Q1's answer.
    """

    def __init__(self, rate_per_task: float, *, pages: int = 2000,
                 servers: int = 8, zipf_s: float = 0.8,
                 batch_interval: float = 1.0, seed: int = 7):
        if rate_per_task < 0:
            raise WorkloadError(f"rate must be >= 0, got {rate_per_task}")
        if pages < 1:
            raise WorkloadError(f"pages must be >= 1, got {pages}")
        if servers < 1:
            raise WorkloadError(f"servers must be >= 1, got {servers}")
        self.rate_per_task = rate_per_task
        self.pages = pages
        self.servers = servers
        self.batch_interval = batch_interval
        self.seed = seed
        self._probabilities = zipf_probabilities(pages, zipf_s)

    def tuples_per_batch(self) -> int:
        """Number of access records each task emits per batch."""
        return round(self.rate_per_task * self.batch_interval)

    def page_for_rank(self, server_index: int, rank: int) -> int:
        """Page holding popularity ``rank`` on server ``server_index``."""
        offset = (server_index % self.servers) * self.pages // self.servers
        return (rank + offset) % self.pages

    def tuples_for_batch(self, task: TaskId, batch_index: int) -> list[KeyedTuple]:
        rng = batch_rng(self.seed, "worldcup", task, batch_index)
        picks = sample_zipf(rng, self._probabilities, self.tuples_per_batch())
        return [
            (f"page-{self.page_for_rank(task.index, int(rank)):05d}", task.index)
            for rank in picks
        ]

"""Zipfian sampling utilities shared by the workload generators.

Generators must be *pure* in ``(seed, task, batch_index)`` — the engine
re-invokes them when sources recover or replay — so sampling state is derived
from a fresh, deterministic PRNG per call instead of being kept across calls.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.errors import WorkloadError


def zipf_probabilities(n: int, s: float) -> np.ndarray:
    """Normalised Zipf(s) probabilities over ranks ``1..n``."""
    if n < 1:
        raise WorkloadError(f"need at least one item, got n={n}")
    if s < 0:
        raise WorkloadError(f"zipf exponent must be >= 0, got s={s}")
    raw = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** s
    return raw / raw.sum()


def batch_rng(seed: int, *components: object) -> np.random.Generator:
    """A deterministic PRNG keyed by ``seed`` and arbitrary components."""
    mixed = seed & 0xFFFF_FFFF
    for component in components:
        digest = zlib.crc32(str(component).encode("utf-8"))
        mixed = (mixed * 1_000_003 + digest) % (2 ** 63)
    return np.random.Generator(np.random.PCG64(mixed))


def sample_zipf(rng: np.random.Generator, probabilities: np.ndarray,
                count: int) -> np.ndarray:
    """Sample ``count`` item indices under the given probabilities."""
    if count < 0:
        raise WorkloadError(f"sample count must be >= 0, got {count}")
    if count == 0:
        return np.empty(0, dtype=np.int64)
    return rng.choice(len(probabilities), size=count, p=probabilities)

"""Synthetic community-navigation workload for Q2 (Sec. VI-B).

The paper synthesises this dataset itself (real traces are private): 100 000
users spread over 1 000 virtual road segments by a Zipfian distribution
(``s = 0.5``); an incident occurs every ``incident_interval`` seconds on a
segment chosen with probability proportional to its population; every user on
an incident segment reports it.  Two streams result:

* the **user-location stream** — ``(segment, speed)`` records at a fixed
  aggregate rate; speeds drop below the jam threshold while an incident is
  active on the segment;
* the **incident stream** — ``(segment, incident_id)`` user reports emitted
  in the batch where the incident starts.

Both sources share one :class:`IncidentSchedule`, so the join in Q2 finds the
jams the location stream exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.logic import SourceFunction
from repro.engine.tuples import KeyedTuple
from repro.errors import WorkloadError
from repro.topology.operators import TaskId
from repro.workloads.zipf import batch_rng, sample_zipf, zipf_probabilities


@dataclass(frozen=True)
class Incident:
    """One scheduled incident."""

    incident_id: str
    segment: int
    start_time: float
    duration: float

    def active_at(self, time: float) -> bool:
        """Whether the incident is ongoing at ``time``."""
        return self.start_time <= time < self.start_time + self.duration


class IncidentSchedule:
    """Deterministic incident timeline shared by both Q2 sources."""

    def __init__(self, *, segments: int = 1000, users: int = 100_000,
                 zipf_s: float = 0.5, incident_interval: float = 2.0,
                 incident_duration: float = 60.0, horizon: float = 600.0,
                 seed: int = 11):
        if segments < 1:
            raise WorkloadError(f"segments must be >= 1, got {segments}")
        if incident_interval <= 0:
            raise WorkloadError("incident_interval must be positive")
        self.segments = segments
        self.users = users
        self.seed = seed
        self.segment_probabilities = zipf_probabilities(segments, zipf_s)
        self.population = np.round(self.segment_probabilities * users).astype(int)
        rng = batch_rng(seed, "incident-schedule")
        times = np.arange(incident_interval, horizon, incident_interval)
        picks = sample_zipf(rng, self.segment_probabilities, len(times))
        self.incidents: list[Incident] = [
            Incident(f"inc-{i:05d}", int(seg), float(t), incident_duration)
            for i, (t, seg) in enumerate(zip(times, picks))
        ]

    def active_segments(self, time: float) -> set[int]:
        """Segments with an ongoing incident at ``time``."""
        return {inc.segment for inc in self.incidents if inc.active_at(time)}

    def starting_in(self, start: float, end: float) -> list[Incident]:
        """Incidents whose start time lies in ``[start, end)``."""
        return [i for i in self.incidents if start <= i.start_time < end]


class UserLocationSource(SourceFunction):
    """Location records ``(segment, speed)``; jams while incidents are active."""

    def __init__(self, schedule: IncidentSchedule, rate_per_task: float, *,
                 batch_interval: float = 1.0, free_flow_speed: float = 60.0,
                 jam_speed: float = 10.0):
        if rate_per_task < 0:
            raise WorkloadError(f"rate must be >= 0, got {rate_per_task}")
        self.schedule = schedule
        self.rate_per_task = rate_per_task
        self.batch_interval = batch_interval
        self.free_flow_speed = free_flow_speed
        self.jam_speed = jam_speed

    def tuples_per_batch(self) -> int:
        """Number of location records each task emits per batch."""
        return round(self.rate_per_task * self.batch_interval)

    def tuples_for_batch(self, task: TaskId, batch_index: int) -> list[KeyedTuple]:
        time = batch_index * self.batch_interval
        rng = batch_rng(self.schedule.seed, "locations", task, batch_index)
        segments = sample_zipf(
            rng, self.schedule.segment_probabilities, self.tuples_per_batch()
        )
        jammed = self.schedule.active_segments(time)
        out: list[KeyedTuple] = []
        for segment in segments:
            seg = int(segment)
            base = self.jam_speed if seg in jammed else self.free_flow_speed
            speed = base * (0.8 + 0.4 * rng.random())
            out.append((f"seg-{seg:04d}", round(speed, 2)))
        return out


class IncidentReportSource(SourceFunction):
    """User incident reports emitted in the batch where an incident starts.

    ``parallelism`` is the parallelism of the source operator this function
    is registered for; reports are sharded across its tasks so every task
    emits a disjoint portion of each incident's reports.
    """

    def __init__(self, schedule: IncidentSchedule, parallelism: int, *,
                 batch_interval: float = 1.0, max_reports_per_incident: int = 50):
        if parallelism < 1:
            raise WorkloadError(f"parallelism must be >= 1, got {parallelism}")
        self.schedule = schedule
        self.parallelism = parallelism
        self.batch_interval = batch_interval
        self.max_reports = max_reports_per_incident

    def tuples_for_batch(self, task: TaskId, batch_index: int) -> list[KeyedTuple]:
        start = batch_index * self.batch_interval
        end = start + self.batch_interval
        out: list[KeyedTuple] = []
        for incident in self.schedule.starting_in(start, end):
            population = int(self.schedule.population[incident.segment])
            reports = max(1, min(self.max_reports, population))
            for r in range(reports):
                if r % self.parallelism == task.index:
                    out.append((f"seg-{incident.segment:04d}", incident.incident_id))
        return out

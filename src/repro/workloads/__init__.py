"""Workload generators and ready-to-run query bundles.

Raw generators (synthetic rates, WorldCup-like log, traffic streams) plus
the :class:`~repro.workloads.bundles.QueryBundle` packages of the paper's
evaluation workloads (Fig. 6 synthetic, Q1 top-k, Q2 incidents).
"""

from repro.workloads.bundles import (
    QueryBundle,
    calibrated_costs,
    fig6_bundle,
    q1_bundle,
    q2_bundle,
)
from repro.workloads.sources import SquareWaveSource, UniformRateSource
from repro.workloads.traffic import (
    Incident,
    IncidentReportSource,
    IncidentSchedule,
    UserLocationSource,
)
from repro.workloads.worldcup import WorldCupAccessLog
from repro.workloads.zipf import batch_rng, sample_zipf, zipf_probabilities

__all__ = [
    "Incident",
    "IncidentReportSource",
    "IncidentSchedule",
    "QueryBundle",
    "SquareWaveSource",
    "UniformRateSource",
    "UserLocationSource",
    "WorldCupAccessLog",
    "batch_rng",
    "calibrated_costs",
    "fig6_bundle",
    "q1_bundle",
    "q2_bundle",
    "sample_zipf",
    "zipf_probabilities",
]

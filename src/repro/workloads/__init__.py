"""Workload generators: synthetic rates, WorldCup-like log, traffic streams."""

from repro.workloads.sources import UniformRateSource
from repro.workloads.traffic import (
    Incident,
    IncidentReportSource,
    IncidentSchedule,
    UserLocationSource,
)
from repro.workloads.worldcup import WorldCupAccessLog
from repro.workloads.zipf import batch_rng, sample_zipf, zipf_probabilities

__all__ = [
    "Incident",
    "IncidentReportSource",
    "IncidentSchedule",
    "UniformRateSource",
    "UserLocationSource",
    "WorldCupAccessLog",
    "batch_rng",
    "sample_zipf",
    "zipf_probabilities",
]

"""Ready-to-run query bundles: topology + logic + rates + accuracy function.

(Historically this module lived at ``repro.experiments.bundles``; it moved
down into :mod:`repro.workloads` so the scenario layer can build on bundles
without depending on the experiment harness.)

Three workloads drive the evaluation (Sec. VI):

* the **Fig. 6 synthetic workload** — 16 source tasks feeding a 8/4/2/1
  merge chain of windowed operators with selectivity 0.5 (recovery
  experiments, Figs. 7–10);
* **Q1** — hierarchical top-100 aggregation over a WorldCup-like access log
  (Figs. 12(a)/13(a));
* **Q2** — the traffic-incident join over synthetic navigation streams
  (Figs. 12(b)/13(b)).

A :class:`QueryBundle` carries everything both the planners (topology +
rates) and the engine (logic factory) need, plus the query-specific accuracy
function comparing tentative and accurate sink outputs.

The ``tuple_scale`` knob divides stream rates by ``scale`` while multiplying
per-tuple costs by the same factor: virtual-time dynamics (utilisation,
backlogs, replay volumes in seconds) are unchanged, but the Python-level
tuple count shrinks, keeping simulations fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.engine.config import CostModel
from repro.engine.logic import LogicFactory
from repro.engine.tuples import KeyedTuple
from repro.queries.incidents import (
    IncidentAggregateOperator,
    IncidentCombineOperator,
    SegmentSpeedOperator,
    SpeedIncidentJoinOperator,
    incident_accuracy,
)
from repro.queries.synthetic import WindowedSelectivityOperator, overlap_accuracy
from repro.queries.topk import (
    GlobalTopKOperator,
    MergeAggregateOperator,
    SliceAggregateOperator,
    topk_accuracy,
)
from repro.topology.builder import TopologyBuilder
from repro.topology.graph import Topology
from repro.topology.operators import TaskId
from repro.topology.partitioning import Partitioning
from repro.topology.rates import SourceRates, StreamRates, propagate_rates
from repro.workloads.sources import UniformRateSource
from repro.workloads.traffic import (
    IncidentReportSource,
    IncidentSchedule,
    UserLocationSource,
)
from repro.workloads.worldcup import WorldCupAccessLog

#: Accuracy function signature: (tentative sink output, accurate sink output).
AccuracyFn = Callable[[Sequence[KeyedTuple], Sequence[KeyedTuple]], float]


def calibrated_costs(tuple_scale: float = 1.0) -> CostModel:
    """The cost model used by the recovery experiments.

    Calibrated so absolute latencies land in the paper's range (active
    replicas in ~1–3 s, checkpoint restores in seconds-to-tens-of-seconds,
    Storm source replay slowest for long windows); see DESIGN.md §2.
    """
    return CostModel(
        per_tuple_process=1.0e-4 * tuple_scale,
        per_tuple_serialize=1.5e-6 * tuple_scale,
        checkpoint_fixed=0.05,
        per_tuple_load=3.0e-6 * tuple_scale,
        per_tuple_resend=2.0e-5 * tuple_scale,
        network_delay=0.02,
        restart_delay=2.0,
        takeover_fixed=1.0,
    )


@dataclass
class QueryBundle:
    """Everything needed to plan for and run one workload."""

    name: str
    topology: Topology
    rates: StreamRates
    make_logic: Callable[[], LogicFactory]
    accuracy_fn: AccuracyFn | None = None
    sink_task: TaskId | None = None
    costs: CostModel = field(default_factory=CostModel)
    #: Longest operator window; tentative quality is only meaningful once the
    #: windows have fully turned over after the failure.
    window_seconds: float = 0.0

    @property
    def synthetic_tasks(self) -> tuple[TaskId, ...]:
        """All non-source tasks (the ones the recovery experiments kill)."""
        return tuple(
            t for t in self.topology.tasks()
            if not self.topology.operator(t.operator).is_source
        )


def fig6_bundle(rate_per_source: float = 1000.0, window_seconds: float = 30.0,
                *, tuple_scale: float = 8.0, selectivity: float = 0.5) -> QueryBundle:
    """The recovery-efficiency workload of Sec. VI-A (Fig. 6).

    16 source tasks; operators O1..O4 with parallelism 8/4/2/1, each task
    merging two upstream tasks; sliding windows with 1 s step.
    """
    topology = (
        TopologyBuilder()
        .source("S", 16)
        .operator("O1", 8, selectivity=selectivity)
        .operator("O2", 4, selectivity=selectivity)
        .operator("O3", 2, selectivity=selectivity)
        .operator("O4", 1, selectivity=selectivity)
        .chain("S", "O1", "O2", "O3", "O4", pattern=Partitioning.MERGE)
        .build()
    )
    scaled_rate = rate_per_source / tuple_scale
    rates = propagate_rates(
        topology, SourceRates(per_task={t: rate_per_source
                                        for t in topology.source_tasks()})
    )

    def make_logic() -> LogicFactory:
        factory = LogicFactory()
        factory.register_source("S", UniformRateSource(scaled_rate))
        for op in ("O1", "O2", "O3", "O4"):
            factory.register_operator(
                op, lambda: WindowedSelectivityOperator(window_seconds, selectivity)
            )
        return factory

    return QueryBundle(
        name=f"fig6(rate={rate_per_source:g},win={window_seconds:g})",
        topology=topology,
        rates=rates,
        make_logic=make_logic,
        accuracy_fn=overlap_accuracy,
        sink_task=TaskId("O4", 0),
        costs=calibrated_costs(tuple_scale),
        window_seconds=window_seconds,
    )


def q1_bundle(rate_per_source: float = 1000.0, *, tuple_scale: float = 4.0,
              pages: int = 800, window_seconds: float = 60.0,
              k: int = 100, seed: int = 7) -> QueryBundle:
    """Q1: hierarchical top-k over the WorldCup-like access log (Fig. 11).

    Topology: 8 server sources -> O1 (8, slice aggregation, one-to-one) ->
    O2 (4, windowed merge, merge) -> O3 (1, global top-k, merge).
    """
    topology = (
        TopologyBuilder()
        .source("S", 8)
        .operator("O1", 8, selectivity=0.2)
        .operator("O2", 4, selectivity=0.5)
        .operator("O3", 1, selectivity=0.1)
        .connect("S", "O1", Partitioning.ONE_TO_ONE)
        .connect("O1", "O2", Partitioning.MERGE)
        .connect("O2", "O3", Partitioning.MERGE)
        .build()
    )
    rates = propagate_rates(
        topology, SourceRates(per_task={t: rate_per_source
                                        for t in topology.source_tasks()})
    )
    scaled_rate = rate_per_source / tuple_scale

    def make_logic() -> LogicFactory:
        factory = LogicFactory()
        factory.register_source(
            "S", WorldCupAccessLog(scaled_rate, pages=pages, seed=seed)
        )
        factory.register_operator("O1", SliceAggregateOperator)
        factory.register_operator(
            "O2", lambda: MergeAggregateOperator(window_seconds)
        )
        factory.register_operator(
            "O3", lambda: GlobalTopKOperator(k, window_seconds)
        )
        return factory

    return QueryBundle(
        name="Q1(top-k)",
        topology=topology,
        rates=rates,
        make_logic=make_logic,
        accuracy_fn=topk_accuracy,
        sink_task=TaskId("O3", 0),
        costs=calibrated_costs(tuple_scale),
        window_seconds=window_seconds,
    )


def q2_bundle(location_rate: float = 20_000.0, *, tuple_scale: float = 40.0,
              window_seconds: float = 60.0, jam_speed: float = 20.0,
              seed: int = 11, horizon: float = 600.0) -> QueryBundle:
    """Q2: traffic-incident detection with a join (Fig. 11).

    Topology: location sources (4) -> O1 (4, segment speed, one-to-one);
    incident sources (2) -> O2 (2, dedup, one-to-one); O1 and O2 join at O3
    (2, correlated, full); O4 (1, aggregate, full).

    The paper uses a 5-minute window with a 10 s slide; the default here
    shortens the window to keep simulated runs brief — the join semantics
    and loss behaviour are unchanged.
    """
    topology = (
        TopologyBuilder()
        .source("Sloc", 4)
        .source("Sinc", 2)
        .operator("O1", 4, selectivity=0.05)
        .operator("O2", 2, selectivity=0.9)
        .join("O3", 2, selectivity=1e-4)
        .operator("O4", 1, selectivity=1.0)
        .connect("Sloc", "O1", Partitioning.ONE_TO_ONE)
        .connect("Sinc", "O2", Partitioning.ONE_TO_ONE)
        .connect("O1", "O3", Partitioning.FULL)
        .connect("O2", "O3", Partitioning.FULL)
        .connect("O3", "O4", Partitioning.FULL)
        .build()
    )
    incident_rate_per_task = 25.0  # report tuples/s per incident-source task
    rates = propagate_rates(topology, SourceRates(per_task={
        **{t: location_rate / 4 for t in topology.tasks_of("Sloc")},
        **{t: incident_rate_per_task for t in topology.tasks_of("Sinc")},
    }))
    schedule = IncidentSchedule(seed=seed, horizon=horizon,
                                incident_duration=window_seconds / 2)

    def make_logic() -> LogicFactory:
        factory = LogicFactory()
        factory.register_source(
            "Sloc", UserLocationSource(schedule, location_rate / 4 / tuple_scale,
                                       jam_speed=jam_speed / 2)
        )
        factory.register_source("Sinc", IncidentReportSource(schedule, parallelism=2))
        factory.register_operator("O1", SegmentSpeedOperator)
        factory.register_operator(
            "O2", lambda: IncidentCombineOperator(window_seconds)
        )
        factory.register_operator(
            "O3", lambda: SpeedIncidentJoinOperator(window_seconds, jam_speed)
        )
        factory.register_operator(
            "O4", lambda: IncidentAggregateOperator(window_seconds)
        )
        return factory

    return QueryBundle(
        name="Q2(incidents)",
        topology=topology,
        rates=rates,
        make_logic=make_logic,
        accuracy_fn=incident_accuracy,
        sink_task=TaskId("O4", 0),
        costs=calibrated_costs(tuple_scale),
        window_seconds=window_seconds,
    )

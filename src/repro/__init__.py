"""PPA: Passive and Partially Active fault tolerance for MPSPEs.

A complete reproduction of Su & Zhou, *"Tolerating Correlated Failures in
Massively Parallel Stream Processing Engines"* (ICDE 2016): the Output
Fidelity metric, the replication planners (dynamic programming, greedy,
structured, full-topology, structure-aware), and a deterministic
discrete-event MPSPE on which the paper's recovery and tentative-output
experiments run.

Quickstart
----------
>>> import repro
>>> topo = repro.linear_chain([4, 4, 2, 1])
>>> rates = repro.propagate_rates(topo, repro.uniform_source_rates(topo, 1000.0))
>>> plan = repro.StructureAwarePlanner().plan(topo, rates, budget=6)
>>> 0.0 <= repro.worst_case_fidelity(topo, rates, plan.replicated) <= 1.0
True
"""

from repro.core import (
    IC_OBJECTIVE,
    OF_OBJECTIVE,
    BruteForcePlanner,
    DynamicProgrammingPlanner,
    FullTopologyPlanner,
    GreedyPlanner,
    Planner,
    PlanObjective,
    ReplicationPlan,
    StructureAwarePlanner,
    StructuredTopologyPlanner,
    budget_from_fraction,
    enumerate_mc_trees,
    internal_completeness,
    output_fidelity,
    worst_case_completeness,
    worst_case_fidelity,
)
from repro.errors import (
    ExperimentError,
    MCTreeExplosionError,
    PlanningError,
    RateError,
    ReproError,
    SimulationError,
    TopologyError,
    WorkloadError,
)
from repro.topology import (
    OperatorKind,
    OperatorSpec,
    Partitioning,
    SourceRates,
    StreamEdge,
    StreamRates,
    TaskId,
    Topology,
    TopologyBuilder,
    TopologyClass,
    TopologySpec,
    WeightSkew,
    generate_source_rates,
    generate_topology,
    linear_chain,
    propagate_rates,
    uniform_source_rates,
)

__version__ = "1.0.0"

__all__ = [
    "BruteForcePlanner",
    "DynamicProgrammingPlanner",
    "ExperimentError",
    "FullTopologyPlanner",
    "GreedyPlanner",
    "IC_OBJECTIVE",
    "MCTreeExplosionError",
    "OF_OBJECTIVE",
    "OperatorKind",
    "OperatorSpec",
    "Partitioning",
    "PlanObjective",
    "Planner",
    "PlanningError",
    "RateError",
    "ReplicationPlan",
    "ReproError",
    "SimulationError",
    "SourceRates",
    "StreamEdge",
    "StreamRates",
    "StructureAwarePlanner",
    "StructuredTopologyPlanner",
    "TaskId",
    "Topology",
    "TopologyBuilder",
    "TopologyClass",
    "TopologyError",
    "TopologySpec",
    "WeightSkew",
    "WorkloadError",
    "budget_from_fraction",
    "enumerate_mc_trees",
    "generate_source_rates",
    "generate_topology",
    "internal_completeness",
    "linear_chain",
    "output_fidelity",
    "propagate_rates",
    "uniform_source_rates",
    "worst_case_completeness",
    "worst_case_fidelity",
]

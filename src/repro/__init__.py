"""PPA: Passive and Partially Active fault tolerance for MPSPEs.

A complete reproduction of Su & Zhou, *"Tolerating Correlated Failures in
Massively Parallel Stream Processing Engines"* (ICDE 2016): the Output
Fidelity metric, the replication planners (dynamic programming, greedy,
structured, full-topology, structure-aware), and a deterministic
discrete-event MPSPE on which the paper's recovery and tentative-output
experiments run — all driveable through one declarative scenario façade.

Quickstart
----------
Describe an experiment as a :class:`Scenario` (workload, planner + budget,
failure schedule) and run it end-to-end:

>>> import repro
>>> result = repro.run_scenario(repro.Scenario(
...     workload="synthetic",
...     workload_params={"rate_per_source": 200.0, "window_seconds": 5.0,
...                      "tuple_scale": 16.0},
...     planner="structure-aware", budget_fraction=0.5,
...     failures=(repro.FailureSpec("correlated", at=10.0),),
...     duration=20.0,
... ))
>>> result.all_recovered and 0.0 <= result.worst_case_fidelity <= 1.0
True

The lower-level pieces (topology builder, rate propagation, planners, the
engine) remain available for hand-wired pipelines:

>>> topo = repro.linear_chain([4, 4, 2, 1])
>>> rates = repro.propagate_rates(topo, repro.uniform_source_rates(topo, 1000.0))
>>> plan = repro.StructureAwarePlanner().plan(topo, rates, budget=6)
>>> 0.0 <= repro.worst_case_fidelity(topo, rates, plan.replicated) <= 1.0
True
"""

from repro.core import (
    IC_OBJECTIVE,
    OF_OBJECTIVE,
    BruteForcePlanner,
    DynamicProgrammingPlanner,
    FullTopologyPlanner,
    GreedyPlanner,
    Planner,
    PlanObjective,
    ReplicationPlan,
    StructureAwarePlanner,
    StructuredTopologyPlanner,
    budget_from_fraction,
    enumerate_mc_trees,
    internal_completeness,
    output_fidelity,
    worst_case_completeness,
    worst_case_fidelity,
)
from repro.errors import (
    ExperimentError,
    MCTreeExplosionError,
    PlanningError,
    RateError,
    ReproError,
    ScenarioError,
    SimulationError,
    TopologyError,
    WorkloadError,
)
from repro.scenarios import (
    EXECUTION_BACKENDS,
    FAILURE_MODELS,
    PLANNERS,
    RECOVERY_SCHEMES,
    RESULT_SINKS,
    WORKLOADS,
    CellError,
    EdgeDef,
    ExecutionBackend,
    FailureSpec,
    FailureWave,
    GridReport,
    GridSession,
    JsonlSink,
    MemorySink,
    OperatorDef,
    ProgressEvent,
    RecoveryContext,
    RecoveryScheme,
    ResultSink,
    Scenario,
    ScenarioCache,
    ScenarioResult,
    ScenarioRunner,
    SqliteSink,
    TopologyRecipe,
    expand_grid,
    run_grid,
    run_scenario,
    run_scenarios,
    scenario_digest,
)
from repro.topology import (
    OperatorKind,
    OperatorSpec,
    Partitioning,
    SourceRates,
    StreamEdge,
    StreamRates,
    TaskId,
    Topology,
    TopologyBuilder,
    TopologyClass,
    TopologySpec,
    WeightSkew,
    generate_source_rates,
    generate_topology,
    linear_chain,
    propagate_rates,
    uniform_source_rates,
)

__version__ = "1.1.0"

__all__ = [
    "BruteForcePlanner",
    "CellError",
    "DynamicProgrammingPlanner",
    "EXECUTION_BACKENDS",
    "EdgeDef",
    "ExecutionBackend",
    "ExperimentError",
    "FAILURE_MODELS",
    "FailureSpec",
    "FailureWave",
    "FullTopologyPlanner",
    "GreedyPlanner",
    "GridReport",
    "GridSession",
    "IC_OBJECTIVE",
    "JsonlSink",
    "MCTreeExplosionError",
    "MemorySink",
    "OF_OBJECTIVE",
    "OperatorDef",
    "OperatorKind",
    "OperatorSpec",
    "PLANNERS",
    "Partitioning",
    "PlanObjective",
    "Planner",
    "PlanningError",
    "ProgressEvent",
    "RECOVERY_SCHEMES",
    "RESULT_SINKS",
    "RateError",
    "RecoveryContext",
    "RecoveryScheme",
    "ReplicationPlan",
    "ReproError",
    "ResultSink",
    "Scenario",
    "ScenarioCache",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioRunner",
    "SimulationError",
    "SourceRates",
    "SqliteSink",
    "StreamEdge",
    "StreamRates",
    "StructureAwarePlanner",
    "StructuredTopologyPlanner",
    "TaskId",
    "Topology",
    "TopologyBuilder",
    "TopologyClass",
    "TopologyError",
    "TopologyRecipe",
    "TopologySpec",
    "WORKLOADS",
    "WeightSkew",
    "WorkloadError",
    "budget_from_fraction",
    "enumerate_mc_trees",
    "expand_grid",
    "generate_source_rates",
    "generate_topology",
    "internal_completeness",
    "linear_chain",
    "output_fidelity",
    "propagate_rates",
    "run_grid",
    "run_scenario",
    "run_scenarios",
    "scenario_digest",
    "uniform_source_rates",
    "worst_case_completeness",
    "worst_case_fidelity",
]

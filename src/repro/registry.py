"""The string-keyed extension registry shared by every pluggable layer.

A :class:`Registry` maps names to factories and is the backbone of the
library's plug-in architecture: planners, workloads, failure models,
execution backends, result sinks (:mod:`repro.scenarios`) and the engine's
recovery schemes (:mod:`repro.engine.recovery`) all resolve string keys
through one of these.  It lives at the package root so that *every* layer —
including the engine, which the scenario package builds on — can define a
registry without import cycles.

>>> from repro.registry import Registry
>>> DEMO = Registry("demo")
>>> @DEMO.register("x")
... def make_x():
...     return object()
>>> "x" in DEMO and DEMO.names() == ("x",)
True
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, Type, TypeVar

from repro.errors import ReproError, ScenarioError

T = TypeVar("T")


class Registry(Generic[T]):
    """A named mapping from string keys to factories, with a register decorator."""

    def __init__(self, kind: str, *, error: Type[ReproError] = ScenarioError):
        self.kind = kind
        self.error = error
        self._entries: dict[str, T] = {}

    def register(self, name: str, *, overwrite: bool = False) -> Callable[[T], T]:
        """Decorator registering a factory under ``name``.

        >>> REGISTRY = Registry("demo")
        >>> @REGISTRY.register("x")
        ... def make_x():
        ...     return object()
        """
        if not name or not isinstance(name, str):
            raise self.error(f"{self.kind} registry keys must be non-empty strings")

        def decorator(factory: T) -> T:
            if name in self._entries and not overwrite:
                raise self.error(
                    f"{self.kind} {name!r} is already registered; "
                    f"pass overwrite=True to replace it"
                )
            self._entries[name] = factory
            return factory

        return decorator

    def unregister(self, name: str) -> None:
        """Remove ``name`` (raises the registry's error type if absent)."""
        if name not in self._entries:
            raise self.error(f"{self.kind} {name!r} is not registered")
        del self._entries[name]

    def get(self, name: str) -> T:
        """The factory registered under ``name``.

        Unknown names raise the registry's error type listing every known
        key, so a typo in a scenario file produces an actionable message.
        """
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(repr(k) for k in self.names()) or "(none)"
            raise self.error(
                f"unknown {self.kind} {name!r}; registered {self.kind}s: {known}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._entries))

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Registry({self.kind}, {list(self.names())})"

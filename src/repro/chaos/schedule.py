"""Declarative chaos schedules: what to break, when, and how often.

A :class:`ChaosSchedule` is to the chaos harness what a
:class:`~repro.scenarios.spec.Scenario` is to the engine: a frozen,
JSON-round-trippable value object.  Scheduling is *declarative* — a
schedule says "kill fleet slot 1 at t=0.5s, crash the coordinator at
t=1.2s, delay 30% of wire messages by 50ms" — and the
:class:`~repro.chaos.inject.ChaosController` executes it against a live
backend.  Because the schedule (not the harness) carries every knob, a
chaos run is reproducible from a single JSON document plus the grid it
ran against.

>>> schedule = ChaosSchedule(seed=7, events=(ChaosEvent(0.5, "kill", 1),),
...                          delay_ms=50.0, delay_fraction=0.3)
>>> ChaosSchedule.from_dict(schedule.to_dict()) == schedule
True
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping

from repro.errors import ReproError


class ChaosError(ReproError):
    """A malformed chaos schedule or a harness misuse."""


#: The process-level actions a :class:`ChaosEvent` may request.
ACTIONS = ("kill", "pause", "resume", "crash")


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled process fault.

    ``at`` is seconds after the controller starts; ``action`` is one of
    :data:`ACTIONS`; ``slot`` addresses a fleet worker (flattened across
    the backend's fleets, spawn order) and is ignored by ``crash``,
    which SIGKILL-restarts the coordinator on its journal instead.
    """

    at: float
    action: str
    slot: int = 0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ChaosError(f"event time must be >= 0, got {self.at}")
        if self.action not in ACTIONS:
            raise ChaosError(
                f"unknown chaos action {self.action!r} "
                f"(known: {', '.join(ACTIONS)})"
            )
        if self.slot < 0:
            raise ChaosError(f"slot must be >= 0, got {self.slot}")

    def to_dict(self) -> dict[str, Any]:
        return {"at": self.at, "action": self.action, "slot": self.slot}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosEvent":
        try:
            return cls(at=float(data["at"]), action=str(data["action"]),
                       slot=int(data.get("slot", 0)))
        except (KeyError, TypeError, ValueError) as exc:
            raise ChaosError(f"bad chaos event {data!r}: {exc}") from None


def _fraction(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ChaosError(f"{name} must be in [0, 1], got {value}")
    return value


@dataclass(frozen=True)
class ChaosSchedule:
    """The full fault plan for one chaos run.

    Wire faults apply to the fault-eligible cluster messages (outbound
    ``cell`` leases and inbound ``result`` reports); each message's fate
    is a pure function of ``(seed, fault kind, message identity)``, so
    the same seed injects the same faults whatever the thread timing.

    * ``delay_ms`` / ``delay_fraction`` — sleep ``delay_ms`` before
      delivering that fraction of messages (``delay_fraction`` defaults
      to every message when ``delay_ms`` is set alone).
    * ``drop_fraction`` — swallow that fraction of *outbound leases*.
      Results are never dropped (a re-leased cell gets a fresh decision;
      a dropped result for the same lease would be dropped forever).
      Dropped leases need a lease timeout to requeue — the harness
      refuses drops without one.
    * ``duplicate_fraction`` — deliver that fraction twice; the ledger's
      first-completion-wins contract must make this invisible.
    * ``slow_runner_ms`` / ``fail_fraction`` — in-worker runner faults
      (see :func:`~repro.chaos.inject.chaos_runner`): sleep per cell,
      and deterministically raise for that fraction of scenarios.
    """

    seed: int = 0
    events: tuple[ChaosEvent, ...] = ()
    delay_ms: float = 0.0
    delay_fraction: float = 0.0
    drop_fraction: float = 0.0
    duplicate_fraction: float = 0.0
    slow_runner_ms: float = 0.0
    fail_fraction: float = 0.0

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, ChaosEvent):
                raise ChaosError(
                    f"events must be ChaosEvent instances, got {event!r}"
                )
        object.__setattr__(self, "events", events)
        if self.delay_ms < 0:
            raise ChaosError(f"delay_ms must be >= 0, got {self.delay_ms}")
        if self.slow_runner_ms < 0:
            raise ChaosError(
                f"slow_runner_ms must be >= 0, got {self.slow_runner_ms}"
            )
        _fraction("delay_fraction", self.delay_fraction)
        _fraction("drop_fraction", self.drop_fraction)
        _fraction("duplicate_fraction", self.duplicate_fraction)
        _fraction("fail_fraction", self.fail_fraction)

    # -- derived ---------------------------------------------------------
    @property
    def effective_delay_fraction(self) -> float:
        """``delay_fraction``, defaulting to 1.0 when only a delay is set."""
        if self.delay_ms > 0 and self.delay_fraction == 0.0:
            return 1.0
        return self.delay_fraction

    @property
    def wire_active(self) -> bool:
        """Whether any wire fault can fire."""
        return bool(self.drop_fraction or self.duplicate_fraction
                    or (self.delay_ms and self.effective_delay_fraction))

    def kills(self) -> int:
        """How many ``kill`` events the schedule carries."""
        return sum(1 for e in self.events if e.action == "kill")

    def crashes(self) -> int:
        """How many coordinator ``crash`` events the schedule carries."""
        return sum(1 for e in self.events if e.action == "crash")

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            f.name: getattr(self, f.name) for f in fields(self)
            if f.name != "events"
        }
        data["events"] = [event.to_dict() for event in self.events]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosSchedule":
        if not isinstance(data, Mapping):
            raise ChaosError(
                f"a chaos schedule must be an object, got "
                f"{type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ChaosError(
                f"unknown chaos schedule fields: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        kwargs = dict(data)
        kwargs["events"] = tuple(
            ChaosEvent.from_dict(e) for e in data.get("events", ())
        )
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ChaosError(f"bad chaos schedule: {exc}") from None

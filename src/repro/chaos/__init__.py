"""Deterministic chaos-injection harness for the cluster fabric.

The harness answers one question: *does the crash-safe fabric actually
produce byte-identical results under faults?*  It drives a normal
:class:`~repro.cluster.backend.ClusterBackend` grid while injecting
faults from a seeded, declarative :class:`ChaosSchedule`:

* **process faults** — kill (``SIGKILL``), pause (``SIGSTOP``) and
  resume (``SIGCONT``) fleet workers, and crash-restart the coordinator
  on its write-ahead journal, each at a scheduled offset;
* **wire faults** — delay, drop or duplicate the NDJSON messages
  between coordinator and workers, decided by a pure hash of
  ``(seed, fault, message identity)`` so two runs with the same seed
  inject the same faults;
* **runner faults** — a wrapping runner that sleeps or raises inside
  worker processes (:func:`~repro.chaos.inject.chaos_runner`).

Everything injected lands in a :class:`~repro.chaos.inject.FaultLog`
whose canonical form is comparable across runs — the determinism tests
assert two identical seeds produce identical logs, and the end-to-end
tests assert the surviving grid is digest-identical to a serial run.

Entry points: :func:`~repro.chaos.inject.run_chaos` (library) and
``repro-experiments chaos`` (CLI, :mod:`repro.chaos.cli`).
"""

from repro.chaos.inject import (
    ChaosController,
    FaultLog,
    WireFaults,
    chaos_runner,
    run_chaos,
)
from repro.chaos.schedule import ChaosEvent, ChaosSchedule

__all__ = [
    "ChaosController",
    "ChaosEvent",
    "ChaosSchedule",
    "FaultLog",
    "WireFaults",
    "chaos_runner",
    "run_chaos",
]

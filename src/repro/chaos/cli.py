"""``repro-experiments chaos``: run a grid under a seeded fault schedule.

The subcommand is the operational face of :func:`repro.chaos.inject.
run_chaos`: load a grid JSON (same shape as ``grid``), load or build a
:class:`~repro.chaos.schedule.ChaosSchedule`, run the grid on a local
cluster fleet while injecting the schedule, and report what survived.
Exit status is 0 only when every cell completed without error — which
is the whole point: a crash-safe fabric under kills, coordinator
crashes and wire faults should still produce a clean, deterministic
grid.

::

    repro-experiments chaos grid.json --seed 7 \
        --kill 0.5:0 --kill 1.0:1 --crash 1.5 \
        --delay-ms 50 --delay-fraction 0.3 \
        --workers 3 --output chaos.jsonl --fault-log faults.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.chaos.inject import run_chaos
from repro.chaos.schedule import ChaosError, ChaosEvent, ChaosSchedule
from repro.errors import ScenarioError
from repro.scenarios.session import GridReport
from repro.scenarios.sinks import sink_for_path
from repro.scenarios.spec import Scenario


def _load_json(path: str):
    try:
        return json.loads(Path(path).read_text())
    except OSError as exc:
        raise ScenarioError(f"cannot read {path!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"{path!r} is not valid JSON: {exc}") from None


def _load_scenarios(path: str) -> list[Scenario]:
    from repro.scenarios.grid import expand_grid

    data = _load_json(path)
    if not isinstance(data, dict):
        raise ScenarioError("a grid JSON document must be an object")
    if "scenarios" in data:
        return [Scenario.from_dict(s) for s in data["scenarios"]]
    if "base" in data:
        base = Scenario.from_dict(data["base"])
        axes = data.get("axes") or {}
        return expand_grid(base, axes) if axes else [base]
    raise ScenarioError(
        "a grid JSON document needs either 'scenarios' or 'base' (+ 'axes')"
    )


def _timed_event(action: str, text: str) -> ChaosEvent:
    """Parse ``T`` or ``T:SLOT`` into a :class:`ChaosEvent`."""
    at_text, _, slot_text = text.partition(":")
    try:
        return ChaosEvent(at=float(at_text), action=action,
                          slot=int(slot_text) if slot_text else 0)
    except ValueError:
        raise ChaosError(
            f"bad --{action} value {text!r}; expected T or T:SLOT "
            f"(seconds[:fleet slot])"
        ) from None


def _schedule_from_args(args: argparse.Namespace) -> ChaosSchedule:
    if args.schedule:
        data = _load_json(args.schedule)
        return ChaosSchedule.from_dict(data)
    events: list[ChaosEvent] = []
    for action in ("kill", "pause", "resume", "crash"):
        for text in getattr(args, action) or ():
            events.append(_timed_event(action, text))
    return ChaosSchedule(
        seed=args.seed,
        events=tuple(events),
        delay_ms=args.delay_ms,
        delay_fraction=args.delay_fraction,
        drop_fraction=args.drop_fraction,
        duplicate_fraction=args.duplicate_fraction,
        slow_runner_ms=args.slow_runner_ms,
        fail_fraction=args.fail_fraction,
    )


def chaos_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments chaos",
        description="Run a scenario grid on a local cluster fleet while "
                    "injecting a seeded, deterministic fault schedule; "
                    "exits 0 only when every cell still completed cleanly.",
    )
    parser.add_argument("file", help='path to {"base": ..., "axes": ...} or '
                                     '{"scenarios": [...]} JSON')
    parser.add_argument("--schedule", default=None, metavar="PATH",
                        help="a ChaosSchedule JSON document; overrides every "
                             "inline fault flag below")
    parser.add_argument("--seed", type=int, default=0,
                        help="fault-decision seed (default 0); identical "
                             "seeds inject identical faults")
    parser.add_argument("--kill", action="append", metavar="T[:SLOT]",
                        help="SIGKILL fleet slot SLOT at T seconds "
                             "(repeatable; default slot 0)")
    parser.add_argument("--pause", action="append", metavar="T[:SLOT]",
                        help="SIGSTOP a slot at T seconds (repeatable)")
    parser.add_argument("--resume", action="append", metavar="T[:SLOT]",
                        help="SIGCONT a paused slot at T seconds "
                             "(repeatable)")
    parser.add_argument("--crash", action="append", metavar="T",
                        help="crash-restart the coordinator on its journal "
                             "at T seconds (repeatable)")
    parser.add_argument("--delay-ms", type=float, default=0.0, metavar="MS",
                        help="delay injected wire messages by MS")
    parser.add_argument("--delay-fraction", type=float, default=0.0,
                        metavar="F",
                        help="fraction of wire messages delayed (default: "
                             "all, when --delay-ms is set)")
    parser.add_argument("--drop-fraction", type=float, default=0.0,
                        metavar="F",
                        help="fraction of cell leases dropped (needs "
                             "--lease-timeout to requeue them)")
    parser.add_argument("--duplicate-fraction", type=float, default=0.0,
                        metavar="F",
                        help="fraction of wire messages delivered twice")
    parser.add_argument("--slow-runner-ms", type=float, default=0.0,
                        metavar="MS",
                        help="make every worker-side cell sleep MS first")
    parser.add_argument("--fail-fraction", type=float, default=0.0,
                        metavar="F",
                        help="deterministically fail this fraction of "
                             "scenarios inside the workers")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="local fleet size (default 2)")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="coordinator WAL path (default: a temporary "
                             "file when --crash is scheduled)")
    parser.add_argument("--lease-timeout", type=float, default=None,
                        metavar="S",
                        help="per-cell lease deadline (required with "
                             "--drop-fraction)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-scenario wall-clock budget in seconds")
    parser.add_argument("--retries", type=int, default=2,
                        help="retries per cell after a worker death "
                             "(default 2 — chaos runs expect deaths)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="stream outcomes into a .jsonl or .sqlite sink")
    parser.add_argument("--fault-log", default=None, metavar="PATH",
                        help="write the injected-fault log as JSON")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the report + fault tallies as JSON")
    args = parser.parse_args(argv)

    scenarios = _load_scenarios(args.file)
    schedule = _schedule_from_args(args)
    sink = sink_for_path(args.output) if args.output else None

    report, log = run_chaos(
        scenarios, schedule,
        local_workers=args.workers,
        sink=sink,
        journal=args.journal,
        lease_timeout=args.lease_timeout,
        timeout=args.timeout,
        retries=args.retries,
        collect=not args.output,
    )
    return _report(args, schedule, report, log)


def _report(args: argparse.Namespace, schedule: ChaosSchedule,
            report: GridReport, log) -> int:
    if args.fault_log:
        Path(args.fault_log).write_text(
            json.dumps(log.to_dict(), indent=2) + "\n")
    counts = log.counts()
    injected = ", ".join(f"{counts[k]} {k}" for k in sorted(counts)) \
        or "nothing"
    if args.as_json:
        print(json.dumps({
            "seed": schedule.seed,
            "total": report.total,
            "executed": report.executed,
            "errors": report.errors,
            "retries": report.retries,
            "injected": counts,
        }, indent=2, sort_keys=True))
    else:
        print(f"[chaos] seed {schedule.seed}: injected {injected}")
        print(f"[chaos] {report.total} cells: {report.executed} executed, "
              f"{report.errors} errors, {report.retries} retries")
        for error in log.errors:
            print(f"[chaos] harness: {error}", file=sys.stderr)
    return 1 if report.errors else 0

"""Fault injectors and the chaos controller that drives them.

Three injection surfaces, one seeded decision function:

* :class:`WireFaults` — plugs into the coordinator's ``wire_faults``
  hook (:mod:`repro.cluster.coordinator`) and delays / drops /
  duplicates the fault-eligible messages (outbound ``cell`` leases,
  inbound ``result`` reports).  Every decision is a pure hash of
  ``(seed, fault kind, message identity)`` — no RNG state, no clock —
  so two runs with the same seed and grid inject the same wire faults
  regardless of thread interleaving.
* :class:`ChaosController` — a timer thread executing the schedule's
  process faults against a live :class:`~repro.cluster.backend.
  ClusterBackend`: ``kill`` / ``pause`` / ``resume`` fleet workers,
  ``crash`` the coordinator (SIGKILL-equivalent teardown + restart on
  the same write-ahead journal).
* :func:`chaos_runner` — an importable runner wrapper that sleeps or
  deterministically raises *inside worker processes*, configured
  through ``REPRO_CHAOS_*`` environment variables because workers are
  subprocesses that only inherit the environment.

:func:`run_chaos` wires all three around a normal
:class:`~repro.scenarios.session.GridSession` run and returns the
session's :class:`~repro.scenarios.session.GridReport` together with
the :class:`FaultLog` of everything that was injected.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import zlib
from typing import Sequence

from repro.chaos.schedule import ChaosError, ChaosEvent, ChaosSchedule
from repro.errors import ClusterError

#: Environment variables carrying runner-fault config into workers.
ENV_SLOW_MS = "REPRO_CHAOS_SLOW_MS"
ENV_FAIL_FRACTION = "REPRO_CHAOS_FAIL_FRACTION"
ENV_SEED = "REPRO_CHAOS_SEED"


def _decide(seed: int, fault: str, identity: str, fraction: float) -> bool:
    """The seeded coin every injector flips: pure, clock-free, thread-free.

    >>> _decide(7, "delay", "out:3:1", 1.0)
    True
    >>> _decide(7, "delay", "out:3:1", 0.0)
    False
    >>> first = [_decide(7, "drop", f"out:{i}:1", 0.5) for i in range(4)]
    >>> first == [_decide(7, "drop", f"out:{i}:1", 0.5) for i in range(4)]
    True
    """
    if fraction <= 0.0:
        return False
    key = f"{seed}:{fault}:{identity}"
    return (zlib.crc32(key.encode("utf-8")) % 10_000) / 10_000.0 < fraction


class FaultLog:
    """Thread-safe record of every injected fault.

    ``scheduled`` holds process faults in execution order; ``wire``
    holds wire-fault decisions in whatever order the coordinator's
    threads made them.  :meth:`canonical` normalises both into a value
    that is equal across two runs of the same seeded schedule — the
    determinism contract the tests assert.  ``errors`` (harness
    problems executing an event, e.g. a kill aimed at an already-dead
    slot) is deliberately *not* part of the canonical form.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.scheduled: list[dict] = []
        self.wire: list[dict] = []
        self.errors: list[str] = []

    def record_scheduled(self, record: dict) -> None:
        with self._lock:
            self.scheduled.append(dict(record))

    def record_wire(self, record: dict) -> None:
        with self._lock:
            self.wire.append(dict(record))

    def record_error(self, message: str) -> None:
        with self._lock:
            self.errors.append(str(message))

    def counts(self) -> dict[str, int]:
        """Injected-fault tallies keyed by fault kind."""
        with self._lock:
            tally: dict[str, int] = {}
            for record in self.scheduled:
                key = str(record.get("action"))
                tally[key] = tally.get(key, 0) + 1
            for record in self.wire:
                key = str(record.get("fault"))
                tally[key] = tally.get(key, 0) + 1
            return tally

    def canonical(self) -> dict:
        """A run-comparable normal form (see the class docstring)."""
        with self._lock:
            return {
                "scheduled": [dict(r) for r in self.scheduled],
                "wire": sorted(json.dumps(r, sort_keys=True)
                               for r in self.wire),
            }

    def to_dict(self) -> dict:
        with self._lock:
            return {"scheduled": [dict(r) for r in self.scheduled],
                    "wire": [dict(r) for r in self.wire],
                    "errors": list(self.errors)}

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"FaultLog({self.counts()})"


class WireFaults:
    """The coordinator-side wire-fault hook built from a schedule.

    ``apply(direction, worker_id, message)`` returns the deliveries the
    caller should actually make: ``[]`` for a drop, two copies for a
    duplicate, and sleeps in place for a delay (the coordinator invokes
    it on per-worker writer / handler threads precisely so a sleeping
    injector never blocks the ledger lock).

    Only messages with a stable identity are eligible: outbound
    ``cell`` leases (identified by grid ``index`` + ``attempt``) and
    inbound ``result`` reports (identified by cell id).  Drops apply to
    leases only — a re-leased cell carries a fresh ``attempt`` and so
    gets a fresh coin, while a dropped *result* would be dropped again
    on every retry of the same lease, starving the cell forever.
    """

    def __init__(self, schedule: ChaosSchedule, log: FaultLog | None = None,
                 *, sleep=time.sleep):
        self.schedule = schedule
        self.log = log if log is not None else FaultLog()
        self._sleep = sleep

    def _identity(self, direction: str, message: dict) -> str | None:
        if direction == "out" and message.get("type") == "cell":
            return f"out:{message.get('index')}:{message.get('attempt')}"
        if direction == "in" and message.get("op") == "result":
            return f"in:{message.get('cell')}"
        return None

    def apply(self, direction: str, worker_id: str,
              message: dict) -> list[dict]:
        identity = self._identity(direction, message)
        if identity is None:
            return [message]
        schedule = self.schedule
        if direction == "out" and _decide(schedule.seed, "drop", identity,
                                          schedule.drop_fraction):
            self.log.record_wire({"fault": "drop", "id": identity})
            return []
        deliveries = [message]
        if _decide(schedule.seed, "duplicate", identity,
                   schedule.duplicate_fraction):
            self.log.record_wire({"fault": "duplicate", "id": identity})
            deliveries = [message, message]
        if schedule.delay_ms > 0 and _decide(
                schedule.seed, "delay", identity,
                schedule.effective_delay_fraction):
            self.log.record_wire({"fault": "delay", "id": identity})
            self._sleep(schedule.delay_ms / 1000.0)
        return deliveries


class ChaosController:
    """Executes a schedule's process faults against a running backend.

    The controller addresses workers by *flattened fleet slot* (spawn
    order across the backend's fleets) and fires each event once at its
    ``at`` offset from :meth:`start`.  Planned events are logged
    whether or not they could be executed (a kill aimed at a slot the
    fleet never had is a harness error, recorded separately) — the
    canonical log stays a pure function of the schedule.
    """

    def __init__(self, schedule: ChaosSchedule,
                 log: FaultLog | None = None):
        self.schedule = schedule
        self.log = log if log is not None else FaultLog()
        self._backend = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def attach(self, backend) -> "ChaosController":
        """Point the controller at the backend whose fabric it breaks."""
        self._backend = backend
        return self

    def start(self) -> "ChaosController":
        if self._backend is None:
            raise ChaosError("attach() a ClusterBackend before start()")
        if self._thread is not None:
            raise ChaosError("chaos controller already started")
        self._thread = threading.Thread(target=self._run,
                                        name="chaos-controller",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Cancel pending events and wait the timer thread out."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until every scheduled event has fired (or ``timeout``)."""
        if self._thread is None:
            return True
        self._thread.join(timeout)
        return not self._thread.is_alive()

    # -- internals -------------------------------------------------------
    def _run(self) -> None:
        started = time.monotonic()
        for event in sorted(self.schedule.events, key=lambda e: e.at):
            remaining = event.at - (time.monotonic() - started)
            if remaining > 0 and self._stop.wait(remaining):
                return
            if self._stop.is_set():
                return
            self._fire(event)

    def _fire(self, event: ChaosEvent) -> None:
        self.log.record_scheduled(event.to_dict())
        try:
            if event.action == "crash":
                self._backend.restart_coordinator()
            else:
                fleet, slot = self._resolve(event.slot)
                getattr(fleet, event.action)(slot)
        except Exception as exc:
            self.log.record_error(f"{event.action}@{event.at:g}: {exc}")

    def _resolve(self, slot: int):
        """Map a flattened slot index onto (fleet, fleet-local slot)."""
        offset = slot
        for fleet in getattr(self._backend, "_fleets", ()):
            if offset < len(fleet.processes):
                return fleet, offset
            offset -= len(fleet.processes)
        raise ClusterError(f"no fleet worker at flattened slot {slot}")


def chaos_runner(scenario):
    """A wire-importable runner that injects in-worker faults.

    Reads ``REPRO_CHAOS_SLOW_MS`` (sleep that long before every cell),
    ``REPRO_CHAOS_FAIL_FRACTION`` and ``REPRO_CHAOS_SEED`` (raise for
    that seeded fraction of scenarios) from the environment — worker
    agents are subprocesses, and the environment is the only config
    channel that survives the spawn — then delegates to the default
    prebuilt runner.  Injected failures are *deterministic per
    scenario*, so they exhaust retries and surface as ``"error"``
    cells; use them to test error accounting, not zero-error runs.
    """
    from repro.scenarios.prebuilt import run_scenario_prebuilt

    slow_ms = float(os.environ.get(ENV_SLOW_MS, "0") or 0.0)
    fail_fraction = float(os.environ.get(ENV_FAIL_FRACTION, "0") or 0.0)
    seed = int(os.environ.get(ENV_SEED, "0") or 0)
    if slow_ms > 0:
        time.sleep(slow_ms / 1000.0)
    if _decide(seed, "runner-fail",
               f"{scenario.name}:{scenario.seed}", fail_fraction):
        raise RuntimeError(
            f"chaos: injected runner failure for "
            f"{scenario.name or scenario.workload!r}"
        )
    return run_scenario_prebuilt(scenario)


def run_chaos(scenarios: Sequence, schedule: ChaosSchedule, *,
              runner=None,
              local_workers: int = 2,
              sink=None,
              journal: str | None = None,
              lease_timeout: float | None = None,
              timeout: float | None = None,
              retries: int = 2,
              respawn: int | None = None,
              worker_reconnect: float | None = None,
              heartbeat_timeout: float = 3.0,
              startup_timeout: float = 30.0,
              collect: bool = True,
              log: FaultLog | None = None):
    """Run ``scenarios`` on a local cluster while injecting ``schedule``.

    Returns ``(report, log)`` — the grid's
    :class:`~repro.scenarios.session.GridReport` and the
    :class:`FaultLog` of everything injected.  Self-healing defaults
    are derived from the schedule: the fleet gets a respawn budget
    matching the scheduled kills, workers get a reconnect window when a
    coordinator crash is scheduled, and a crash schedule without a
    ``journal`` gets a temporary one (a crash without a WAL would
    simply lose the batch).  There is deliberately *no* fallback
    backend: a chaos run must prove the fabric itself finishes the
    grid, not that an in-process pool can cover for it.
    """
    from repro.cluster.backend import ClusterBackend
    from repro.scenarios.session import GridSession

    if schedule.drop_fraction > 0 and lease_timeout is None \
            and timeout is None:
        raise ChaosError(
            "drop_fraction needs a lease_timeout (or timeout): a dropped "
            "lease is only re-run when its lease expires"
        )
    runner_faults = schedule.slow_runner_ms > 0 or schedule.fail_fraction > 0
    if runner is not None and runner_faults:
        raise ChaosError(
            "pass either runner= or the schedule's runner-fault knobs "
            "(slow_runner_ms / fail_fraction), not both"
        )
    if runner is None:
        runner = chaos_runner if runner_faults else None
    if respawn is None:
        respawn = schedule.kills()
    if worker_reconnect is None:
        worker_reconnect = 15.0 if schedule.crashes() else 0.0

    log = log if log is not None else FaultLog()
    saved_env = {key: os.environ.get(key)
                 for key in (ENV_SLOW_MS, ENV_FAIL_FRACTION, ENV_SEED)}
    temp_journal: str | None = None
    if schedule.crashes() and journal is None:
        fd, temp_journal = tempfile.mkstemp(prefix="repro-chaos-",
                                            suffix=".wal")
        os.close(fd)
        journal = temp_journal
    try:
        if runner_faults:
            os.environ[ENV_SLOW_MS] = str(schedule.slow_runner_ms)
            os.environ[ENV_FAIL_FRACTION] = str(schedule.fail_fraction)
            os.environ[ENV_SEED] = str(schedule.seed)
        backend = ClusterBackend(
            local_workers=local_workers,
            lease_timeout=lease_timeout,
            heartbeat_timeout=heartbeat_timeout,
            startup_timeout=startup_timeout,
            journal=journal,
            respawn=respawn,
            worker_reconnect=worker_reconnect,
            fallback=None,
            wire_faults=WireFaults(schedule, log),
        )
        controller = ChaosController(schedule, log).attach(backend)
        session_kwargs = {} if runner is None else {"runner": runner}
        session = GridSession(backend, sink, timeout=timeout,
                              retries=retries, collect=collect,
                              strict=False, **session_kwargs)
        try:
            with backend:
                controller.start()
                report = session.run(scenarios)
        finally:
            controller.stop()
        return report, log
    finally:
        for key, value in saved_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        if temp_journal is not None:
            try:
                os.unlink(temp_journal)
            except OSError:
                pass

"""Exception hierarchy shared by every subpackage of :mod:`repro`.

Keeping all exception types in one module lets callers catch the broad
:class:`ReproError` when they only care about "something in this library
failed", while still being able to catch the precise subtype close to the
call site.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class TopologyError(ReproError):
    """An invalid query topology: bad DAG shape, parallelism mismatch, etc."""


class RateError(ReproError):
    """Stream rates are missing, inconsistent, or non-positive."""


class PlanningError(ReproError):
    """A replication planner was given an infeasible or malformed request."""


class MCTreeExplosionError(PlanningError):
    """MC-tree enumeration exceeded the caller-supplied limit.

    Full topologies have ``prod(parallelism)`` MC-trees, which grows too fast
    to materialise; callers should fall back to the full-topology planner
    (Algorithm 4) instead of enumerating.
    """


class SimulationError(ReproError):
    """The discrete-event engine was driven into an invalid state."""


class WorkloadError(ReproError):
    """A workload generator was configured with invalid parameters."""


class ExperimentError(ReproError):
    """An experiment harness was configured with invalid parameters."""


class ScenarioError(ReproError):
    """A declarative scenario is malformed or references unknown registry names."""


class ServiceError(ReproError):
    """The sweep service protocol was violated or a peer went away."""


class ClusterError(ReproError):
    """The cluster fabric lost its workers or its wire protocol was violated."""


class ClusterProtocolError(ClusterError):
    """A permanent protocol-version mismatch between worker and coordinator.

    Unlike the transient connection failures wrapped in plain
    :class:`ClusterError`, reconnecting cannot fix this — the two sides
    run incompatible code, so self-healing loops must *not* retry it.
    """


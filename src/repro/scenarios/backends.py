"""Pluggable execution backends for grid runs.

An :class:`ExecutionBackend` takes a list of scenarios plus a runner
callable and yields ``(index, outcome, attempts)`` triples, where an outcome
is either a :class:`~repro.scenarios.runner.ScenarioResult` or a structured
:class:`CellError` — per-cell failures never crash the whole grid — and
``attempts`` counts how many times the cell was started (>1 when a dead
worker forced a retry).  Triples may arrive in any order (parallel backends
yield in completion order, like ``as_completed``);
:class:`~repro.scenarios.session.GridSession` reorders them before results
reach a sink, so every backend produces byte-identical output.  Legacy
external backends that yield bare ``(index, outcome)`` pairs are still
accepted by the session, which then falls back to ``CellError.attempts``.

Backends are registry-backed like planners and workloads
(:data:`EXECUTION_BACKENDS`): ``"serial"`` runs in-process, ``"threads"``
fans out over a thread pool, ``"processes"`` over a
``ProcessPoolExecutor`` with work stealing (a sliding submission window —
each free worker picks up the next pending cell), per-scenario timeouts and
retry-once semantics when a worker process dies, and ``"cluster"`` over a
fleet of (possibly remote) worker agents speaking NDJSON over TCP — see
:mod:`repro.cluster`, loaded lazily so the scenario layer stays light.

Timeout semantics differ by necessity: the serial backend cannot preempt a
cell, so it flags the overrun after the fact; the pool backends abandon the
cell and replace the pool so remaining cells keep full parallelism — the
processes backend force-kills the stuck workers, while an abandoned thread
(unkillable) runs on to completion with its result discarded.  Unaffected
in-flight cells are resubmitted on the fresh pool.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.errors import ScenarioError
from repro.scenarios.registry import Registry
from repro.scenarios.runner import ScenarioResult, run_scenario
from repro.scenarios.spec import Scenario, _check_keys

#: A scenario runner: maps one scenario to its result (picklable for
#: the processes backend; :func:`~repro.scenarios.runner.run_scenario`
#: is the default).
Runner = Callable[[Scenario], ScenarioResult]


@dataclass(frozen=True)
class CellError:
    """One grid cell that did not produce a result.

    ``kind`` is ``"error"`` (the runner raised), ``"timeout"`` (the cell
    exceeded the per-scenario deadline) or ``"worker-death"`` (the worker
    process died — e.g. OOM-killed — and the retry budget is exhausted).
    """

    scenario: Scenario
    kind: str
    message: str
    attempts: int = 1

    def to_dict(self) -> dict[str, Any]:
        """JSON-native representation (sinks persist error rows too)."""
        return {"scenario": self.scenario.to_dict(), "kind": self.kind,
                "message": self.message, "attempts": self.attempts}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellError":
        """Inverse of :meth:`to_dict` (rejects unknown keys)."""
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"a cell error must be an object, got {type(data).__name__}"
            )
        _check_keys("cell error", data, ("scenario", "kind", "message",
                                         "attempts"))
        if "scenario" not in data:
            raise ScenarioError("cell error is missing the 'scenario' field")
        return cls(scenario=Scenario.from_dict(data["scenario"]),
                   kind=str(data.get("kind", "error")),
                   message=str(data.get("message", "")),
                   attempts=int(data.get("attempts", 1)))

    def render(self) -> str:
        """One-line human-readable summary."""
        label = self.scenario.name or self.scenario.workload
        note = f" after {self.attempts} attempts" if self.attempts > 1 else ""
        return f"[{self.kind}] {label}: {self.message}{note}"


class ExecutionBackend:
    """Strategy for executing many independent scenario runs.

    Subclasses implement :meth:`execute`; everything else (caching, result
    ordering, sinks, progress) lives in
    :class:`~repro.scenarios.session.GridSession`, so backends stay small.
    """

    #: Registry key (also used in reprs and CLI flags).
    name = "?"

    def execute(self, scenarios: Sequence[Scenario], runner: Runner, *,
                timeout: float | None = None,
                retries: int = 1) -> Iterator[tuple]:
        """Yield ``(index, ScenarioResult | CellError, attempts)``, any order."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


def _error_outcome(scenario: Scenario, exc: BaseException,
                   attempts: int) -> CellError:
    return CellError(scenario, "error", f"{type(exc).__name__}: {exc}",
                     attempts)


def _warm_worker(payload: tuple[str, ...]) -> None:
    """Process-pool initializer: prebuild the grid's workloads once."""
    from repro.scenarios import prebuilt

    prebuilt.warm_from_payload(payload)


class SerialBackend(ExecutionBackend):
    """Run every cell in-process, in input order (the default backend).

    Cannot preempt a running cell, so a per-scenario ``timeout`` is applied
    after the fact: the overrunning cell still completes but is reported as
    a ``"timeout"`` :class:`CellError`, matching the parallel backends.
    """

    name = "serial"

    def execute(self, scenarios: Sequence[Scenario], runner: Runner, *,
                timeout: float | None = None,
                retries: int = 1) -> Iterator[tuple[int, object, int]]:
        """Yield outcomes one by one, in input order."""
        for index, scenario in enumerate(scenarios):
            started = time.monotonic()
            try:
                result = runner(scenario)
            except Exception as exc:
                yield index, _error_outcome(scenario, exc, 1), 1
                continue
            elapsed = time.monotonic() - started
            if timeout is not None and elapsed > timeout:
                yield index, CellError(
                    scenario, "timeout",
                    f"cell took {elapsed:.2f}s, exceeding the {timeout:g}s "
                    f"timeout (serial backend cannot preempt)", 1), 1
            else:
                yield index, result, 1


class _PoolBackend(ExecutionBackend):
    """Shared machinery for the thread- and process-pool backends.

    Cells are submitted through a sliding window of at most ``max_workers``
    in-flight futures — completed futures immediately free a slot for the
    next pending cell (work stealing), and results are yielded in
    completion order.  Per-cell deadlines are measured from submission,
    which coincides with start because the window never exceeds the pool
    width.
    """

    #: Poll interval while waiting with deadlines armed (seconds).
    _TICK = 0.05

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ScenarioError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.max_workers = max_workers

    # -- subclass hooks -------------------------------------------------
    def _make_executor(self, width: int) -> Executor:
        raise NotImplementedError

    def _prepare(self, scenarios: Sequence[Scenario], runner: Runner) -> None:
        """Pre-execution hook (the processes backend prebuilds workloads)."""

    def _discard_executor(self, executor: Executor) -> None:
        """Tear an executor down without waiting for stuck cells."""
        executor.shutdown(wait=False, cancel_futures=True)

    #: Whether a timeout discards the pool.  Both pool backends do: a
    #: timed-out cell still occupies its real worker (thread or process),
    #: so keeping the pool would silently shrink the window and arm later
    #: cells' deadlines while they queue behind the stuck worker — one hung
    #: cell would cascade into spurious timeouts for every cell after it.
    #: A fresh pool restores full width; in-flight siblings are resubmitted
    #: without being charged an attempt.
    _rebuild_on_timeout = True

    # -------------------------------------------------------------------
    def execute(self, scenarios: Sequence[Scenario], runner: Runner, *,
                timeout: float | None = None,
                retries: int = 1) -> Iterator[tuple[int, object, int]]:
        """Yield outcomes in completion order over a worker pool."""
        scenarios = list(scenarios)
        if not scenarios:
            return
        self._prepare(scenarios, runner)
        width = self.max_workers or min(32, (os.cpu_count() or 2))
        width = max(1, min(width, len(scenarios)))
        pending: deque[tuple[int, Scenario, int]] = deque(
            (i, s, 1) for i, s in enumerate(scenarios)
        )
        in_flight: dict[Future, tuple[int, Scenario, int, float | None]] = {}
        executor = self._make_executor(width)
        try:
            while pending or in_flight:
                # Top the window up (work stealing: any free slot takes the
                # next pending cell, whatever its grid position).
                while pending and len(in_flight) < width:
                    index, scenario, attempt = pending.popleft()
                    try:
                        future = executor.submit(runner, scenario)
                    except BrokenExecutor:
                        # The pool broke between completions; recreate it
                        # and charge no attempt to this innocent cell.
                        pending.appendleft((index, scenario, attempt))
                        self._discard_executor(executor)
                        executor = self._make_executor(width)
                        continue
                    deadline = (time.monotonic() + timeout
                                if timeout is not None else None)
                    in_flight[future] = (index, scenario, attempt, deadline)

                done, _ = wait(
                    in_flight, return_when=FIRST_COMPLETED,
                    timeout=self._TICK if timeout is not None else None,
                )
                broke = False
                for future in done:
                    index, scenario, attempt, _deadline = in_flight.pop(future)
                    try:
                        yield index, future.result(), attempt
                    except BrokenExecutor as exc:
                        broke = True
                        if attempt <= retries:
                            pending.append((index, scenario, attempt + 1))
                        else:
                            yield index, CellError(
                                scenario, "worker-death",
                                f"worker died running this cell "
                                f"({type(exc).__name__}: {exc})",
                                attempt), attempt
                    except Exception as exc:
                        yield index, _error_outcome(scenario, exc,
                                                    attempt), attempt
                if broke:
                    # A dead worker poisons every in-flight future of the
                    # pool; resubmit them (their attempt counts too — the
                    # culprit cannot be told apart) on a fresh pool.
                    for future, (index, scenario, attempt, _dl) in list(
                            in_flight.items()):
                        if attempt <= retries:
                            pending.append((index, scenario, attempt + 1))
                        else:
                            yield index, CellError(
                                scenario, "worker-death",
                                "worker pool died (retry budget exhausted)",
                                attempt), attempt
                    in_flight.clear()
                    self._discard_executor(executor)
                    executor = self._make_executor(width)
                    continue

                if timeout is None:
                    continue
                now = time.monotonic()
                expired = [f for f, (_i, _s, _a, dl) in in_flight.items()
                           if dl is not None and now >= dl and not f.done()]
                for future in expired:
                    index, scenario, attempt, _dl = in_flight.pop(future)
                    future.cancel()
                    yield index, CellError(
                        scenario, "timeout",
                        f"cell exceeded the {timeout:g}s timeout",
                        attempt), attempt
                if expired and self._rebuild_on_timeout:
                    # Reclaim the stuck workers; in-flight siblings were not
                    # at fault, so they are resubmitted without charge.
                    for future, (index, scenario, attempt, _dl) in list(
                            in_flight.items()):
                        pending.append((index, scenario, attempt))
                    in_flight.clear()
                    self._discard_executor(executor)
                    executor = self._make_executor(width)
        finally:
            self._discard_executor(executor)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class ThreadBackend(_PoolBackend):
    """Fan cells out over a thread pool.

    Engine runs are pure Python and GIL-bound, so threads mostly help when
    the runner releases the GIL or blocks on I/O; the backend mainly exists
    as the cheap-to-spawn middle ground and for exercising the concurrent
    collection path.  Timed-out cells are abandoned: the worker thread runs
    on to completion in a discarded pool (threads cannot be killed), but
    its result is dropped and a fresh pool keeps the remaining cells at
    full parallelism.
    """

    name = "threads"

    def _make_executor(self, width: int) -> Executor:
        return ThreadPoolExecutor(max_workers=width,
                                  thread_name_prefix="repro-grid")


class ProcessBackend(_PoolBackend):
    """Fan cells out over a prebuilt-worker ``ProcessPoolExecutor``.

    True parallelism for CPU-bound engine runs.  A worker death (segfault,
    OOM kill, ``os._exit``) breaks the pool: the backend rebuilds it and
    retries each affected cell once (``retries=1``) before reporting a
    ``"worker-death"`` :class:`CellError`.  Timeouts kill the stuck pool to
    reclaim its workers.  Runner callables and custom registry entries must
    be importable in worker processes (see :func:`run_scenarios`).

    **Prebuilt workers.**  When the runner resolves workloads through the
    prebuilt memo (the default — see :mod:`repro.scenarios.prebuilt`), the
    backend builds each distinct workload's topology, router tables and
    bundle *once per grid* and ships them to workers instead of rebuilding
    per cell:

    * ``fork`` (the default where available): the parent builds the
      artefacts before the pool is created and forked workers inherit them
      directly — nothing is pickled at all;
    * ``forkserver``: the prebuilt module is preloaded into the fork
      server, and each worker receives the distinct workload specs exactly
      once through the pool initializer (pickle-once);
    * ``spawn``: like forkserver, without the preload.

    ``start_method`` pins a specific ``multiprocessing`` start method;
    ``prebuild=False`` restores the bare per-cell pool.
    """

    name = "processes"

    def __init__(self, max_workers: int | None = None, *,
                 start_method: str | None = None, prebuild: bool = True):
        super().__init__(max_workers)
        if start_method is not None:
            methods = multiprocessing.get_all_start_methods()
            if start_method not in methods:
                raise ScenarioError(
                    f"unknown start method {start_method!r}; this platform "
                    f"supports {methods}"
                )
        self.start_method = start_method
        self.prebuild = prebuild
        self._warm_payload: tuple[str, ...] | None = None

    def _method(self) -> str | None:
        if self.start_method is not None:
            return self.start_method
        methods = multiprocessing.get_all_start_methods()
        # fork is only auto-picked where it is actually safe: macOS lists
        # it but documents it as unreliable (Objective-C runtime aborts in
        # forked children), so non-Linux platforms get forkserver (the
        # preload + pickle-once path) or the platform default.
        if sys.platform.startswith("linux") and "fork" in methods:
            return "fork"
        if "forkserver" in methods:
            return "forkserver"
        return None

    def _prepare(self, scenarios: Sequence[Scenario], runner: Runner) -> None:
        """Collect the grid's distinct workloads for worker warmup."""
        from repro.scenarios import prebuilt

        self._warm_payload = None
        if not self.prebuild or not getattr(runner, "prebuilt", False):
            return
        payload = prebuilt.warm_payload(scenarios)
        if len(payload) > prebuilt.CACHE_CAPACITY:
            # More distinct workloads than the memo holds: eager warming
            # would build everything only to evict most of it before any
            # cell runs.  Let workers build lazily per cell instead.
            return
        self._warm_payload = payload
        if self._method() == "fork":
            # Forked workers inherit the parent's memo: build everything
            # here once and the pool initializer below finds only hits.
            prebuilt.warm(scenarios)

    def _make_executor(self, width: int) -> Executor:
        method = self._method()
        context = (multiprocessing.get_context(method)
                   if method is not None else None)
        if method == "forkserver":
            # Preload the prebuilt module (and everything it imports) into
            # the fork server so forked workers share the warm import state.
            context.set_forkserver_preload(["repro.scenarios.prebuilt"])
        kwargs: dict[str, Any] = {}
        if self._warm_payload:
            kwargs.update(initializer=_warm_worker,
                          initargs=(self._warm_payload,))
        return ProcessPoolExecutor(max_workers=width, mp_context=context,
                                   **kwargs)

    def _discard_executor(self, executor: Executor) -> None:
        """Shut down without waiting, force-killing stuck workers."""
        executor.shutdown(wait=False, cancel_futures=True)
        # Workers stuck in a timed-out cell would otherwise keep the
        # interpreter alive at exit; SIGKILL is safe because each cell is an
        # isolated, side-effect-free simulation.
        for process in list((getattr(executor, "_processes", None) or {}).values()):
            try:
                process.kill()
            except (OSError, ValueError):  # pragma: no cover - racing exit
                pass


def _make_cluster_backend(**kwargs: Any) -> ExecutionBackend:
    """Factory for the ``"cluster"`` backend (multi-host worker fabric).

    Imported lazily so the scenario layer never pays for (or breaks on)
    the cluster stack; see :mod:`repro.cluster`.
    """
    from repro.cluster.backend import ClusterBackend

    return ClusterBackend(**kwargs)


#: Execution-backend factories: ``fn() -> ExecutionBackend``.
EXECUTION_BACKENDS: Registry = Registry("execution backend")
EXECUTION_BACKENDS.register("serial")(SerialBackend)
EXECUTION_BACKENDS.register("threads")(ThreadBackend)
EXECUTION_BACKENDS.register("processes")(ProcessBackend)
EXECUTION_BACKENDS.register("cluster")(_make_cluster_backend)


def resolve_backend(spec: "str | ExecutionBackend | None") -> ExecutionBackend:
    """Coerce a backend name or instance into an :class:`ExecutionBackend`.

    ``None`` resolves to the serial backend; strings go through
    :data:`EXECUTION_BACKENDS`, so external backends registered there are
    addressable by name from scenarios, grids and the CLI.
    """
    if spec is None:
        return SerialBackend()
    if isinstance(spec, ExecutionBackend):
        return spec
    if isinstance(spec, str):
        return EXECUTION_BACKENDS.get(spec)()
    raise ScenarioError(
        f"backend must be a name or an ExecutionBackend, got "
        f"{type(spec).__name__}"
    )

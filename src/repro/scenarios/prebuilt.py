"""Prebuilt workload artefacts: build each distinct topology once per grid.

A grid of failure scenarios typically sweeps budgets, checkpoint intervals,
failure models and seeds over a *handful* of distinct workloads — yet the
naive per-cell runner rebuilds the topology graph, the router's dispatch
tables and the workload bundle for every single cell (and, with the
processes backend, in every worker, for every cell).  This module is the
prebuilt-worker fast path:

* :func:`prebuilt_workload` keys each scenario by the part of its spec that
  determines the workload artefacts — ``(workload, workload_params,
  topology)``, canonically serialized — and memoizes the built
  :class:`~repro.workloads.bundles.QueryBundle` plus a shared
  :class:`~repro.engine.routing.Router` in a bounded, process-local LRU;
* :func:`run_scenario_prebuilt` is the drop-in
  :data:`~repro.scenarios.backends.Runner` that resolves through the memo
  (it is the :class:`~repro.scenarios.session.GridSession` default);
* :func:`warm` / :func:`warm_payload` pre-populate the memo.  The processes
  backend warms workers through their pool initializer: with the ``fork``
  start method workers *inherit* the parent's already-built artefacts for
  free; with ``forkserver`` the module is preloaded into the fork server
  and each worker receives the distinct workload specs exactly once
  (pickle-once — the payload rides along the initializer arguments instead
  of being re-shipped per cell); plain ``spawn`` behaves like forkserver
  without the preload.

Reusing a bundle across runs is sound because bundles are pure functions of
their parameters and runs never mutate them: ``make_logic()`` builds fresh
operator instances per engine, topologies and rate models are read-only,
and the shared router's key memo is content-transparent.  The
``bench_grid_backends`` benchmark and ``tests/test_grid_execution.py``
assert that prebuilt results are digest-identical to the serial backend.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.engine.routing import Router
from repro.scenarios.spec import Scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.runner import ScenarioResult, WorkloadCaches
    from repro.workloads.bundles import QueryBundle

#: How many distinct workloads stay memoized per process.  Grids normally
#: use a handful; a sweep over hundreds of random topologies simply cycles
#: the LRU without unbounded memory growth.
CACHE_CAPACITY = 64

_lock = threading.Lock()
#: key -> (workload factory the entry was built by, bundle, router, caches).
#: The factory is kept so re-registering a workload (``register(...,
#: overwrite=True)``) invalidates its memo entries instead of silently
#: serving bundles built by the old factory.
_bundles: "OrderedDict[str, tuple[object, QueryBundle, Router, WorkloadCaches]]" = \
    OrderedDict()

#: The scenario fields that determine the workload artefacts.
_WORKLOAD_FIELDS = ("workload", "workload_params", "topology")


def workload_spec(scenario: Scenario) -> dict:
    """The sub-document of ``scenario`` that determines its workload."""
    data = scenario.to_dict()
    return {field: data[field] for field in _WORKLOAD_FIELDS if field in data}


def workload_key(scenario: Scenario) -> str:
    """Canonical digest of :func:`workload_spec` (the memo key)."""
    canonical = json.dumps(workload_spec(scenario), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def prebuilt_workload(scenario: Scenario
                      ) -> "tuple[QueryBundle, Router, WorkloadCaches]":
    """The memoized ``(bundle, router, caches)`` for ``scenario``'s workload.

    The :class:`~repro.scenarios.runner.WorkloadCaches` carry the
    per-workload memoized plans, objective values and shared source batches.
    Thread-safe (the threads backend runs cells concurrently); the build
    itself happens under the lock, which is fine because builds are rare —
    one per distinct workload per process.

    A hit is only served while the workload's registry entry is still the
    factory that built it; re-registering the workload name rebuilds.  (A
    factory that itself resolves *other* registry entries — e.g. the
    ``bursty`` wrapper over a base workload — cannot be tracked this way;
    call :func:`clear` after re-registering such a nested dependency.)
    """
    from repro.scenarios.registry import WORKLOADS
    from repro.scenarios.runner import ScenarioRunner, WorkloadCaches

    key = workload_key(scenario)
    factory = WORKLOADS.get(scenario.workload)
    with _lock:
        entry = _bundles.get(key)
        if entry is not None and entry[0] is factory:
            _bundles.move_to_end(key)
            return entry[1:]
        bundle = ScenarioRunner(scenario).bundle()
        entry = (factory, bundle, Router(bundle.topology), WorkloadCaches())
        _bundles[key] = entry
        _bundles.move_to_end(key)
        while len(_bundles) > CACHE_CAPACITY:
            _bundles.popitem(last=False)
        return entry[1:]


def run_scenario_prebuilt(scenario: Scenario, *,
                          profile: bool = False) -> "ScenarioResult":
    """:func:`~repro.scenarios.runner.run_scenario` through the prebuilt memo.

    Byte-identical results (bundles are pure and unmutated, memoized plans
    and objective values are deterministic, source functions are pure); the
    only difference is that the topology, router tables, workload bundle,
    plans and source batches are computed once per distinct workload
    instead of once per cell.
    """
    from repro.scenarios.runner import ScenarioRunner

    bundle, router, caches = prebuilt_workload(scenario)
    return ScenarioRunner(scenario, profile=profile, bundle=bundle,
                          router=router, caches=caches).run()


#: Marks the runner as memo-aware so the processes backend knows that
#: shipping a warm payload to its workers will actually be used.
run_scenario_prebuilt.prebuilt = True  # type: ignore[attr-defined]


def warm(scenarios: Iterable[Scenario]) -> int:
    """Build every distinct workload of ``scenarios`` into the local memo.

    Returns the number of distinct workloads.  Called in the grid parent
    before a ``fork``-context pool is created, so workers inherit the built
    artefacts without any pickling at all.
    """
    seen: set[str] = set()
    for scenario in scenarios:
        key = workload_key(scenario)
        if key not in seen:
            seen.add(key)
            prebuilt_workload(scenario)
    return len(seen)


def warm_payload(scenarios: Iterable[Scenario]) -> tuple[str, ...]:
    """One canonical JSON spec per distinct workload (the pickle-once payload)."""
    specs: dict[str, str] = {}
    for scenario in scenarios:
        key = workload_key(scenario)
        if key not in specs:
            specs[key] = json.dumps(workload_spec(scenario), sort_keys=True,
                                    separators=(",", ":"))
    return tuple(specs.values())


def warm_from_payload(payload: Sequence[str]) -> None:
    """Worker-side warmup: build each shipped workload spec once.

    Used as the process-pool initializer, so it runs exactly once per
    worker.  Under the ``fork`` start method the parent's memo was inherited
    and every spec is already a cache hit.
    """
    for spec in payload:
        # The spec's keys are (a subset of) Scenario fields, so it loads as
        # a minimal scenario — exactly enough to resolve the bundle.
        prebuilt_workload(Scenario.from_dict(json.loads(spec)))


def clear() -> None:
    """Drop the process-local memo (tests and memory-sensitive callers)."""
    with _lock:
        _bundles.clear()


def cache_info() -> dict:
    """Diagnostics: memoized workload count and capacity."""
    with _lock:
        return {"entries": len(_bundles), "capacity": CACHE_CAPACITY}

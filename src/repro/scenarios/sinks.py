"""Result sinks: incremental, resumable delivery of grid outcomes.

A :class:`ResultSink` receives every grid cell's outcome — a
:class:`~repro.scenarios.runner.ScenarioResult` or a structured
:class:`~repro.scenarios.backends.CellError` — one at a time and in input
order, so a million-cell grid never materialises one giant in-memory list.
Four sinks ship in the :data:`RESULT_SINKS` registry:

* ``"memory"`` — collects outcomes in a list (the default, and the old
  ``run_grid`` behaviour);
* ``"jsonl"`` — appends one canonical JSON object per line; the same grid
  produces byte-identical files whatever the execution backend;
* ``"sqlite"`` — one row per cell in a ``results`` table, queryable with
  plain SQL;
* ``"parquet"`` — columnar rows for analysis at cluster-grid scale
  (requires ``pyarrow``; the constructor says so when it is missing).

File-backed sinks support *resume*: :meth:`ResultSink.start` with
``resume=True`` reports the digests of cells already persisted so
:class:`~repro.scenarios.session.GridSession` can skip them, and new rows
are appended instead of truncating.  Error rows are never treated as done —
a resumed run retries them.
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path
from typing import Any, Iterable

from repro.errors import ScenarioError
from repro.scenarios.backends import CellError
from repro.scenarios.registry import Registry
from repro.scenarios.runner import ScenarioResult


def _row_for(index: int, digest: str, outcome: object) -> dict[str, Any]:
    """The canonical JSON-native row for one outcome."""
    if isinstance(outcome, ScenarioResult):
        return {"index": index, "digest": digest, "result": outcome.to_dict()}
    if isinstance(outcome, CellError):
        return {"index": index, "digest": digest, "error": outcome.to_dict()}
    raise ScenarioError(
        f"sinks accept ScenarioResult or CellError, got {type(outcome).__name__}"
    )


def _outcome_from_row(row: Any, *, where: str) -> tuple[int, str, object]:
    """Parse one persisted row back into ``(index, digest, outcome)``."""
    if not isinstance(row, dict) or "digest" not in row:
        raise ScenarioError(f"{where}: malformed result row {row!r}")
    index = int(row.get("index", -1))
    digest = str(row["digest"])
    if "result" in row:
        return index, digest, ScenarioResult.from_dict(row["result"])
    if "error" in row:
        return index, digest, CellError.from_dict(row["error"])
    raise ScenarioError(f"{where}: row has neither 'result' nor 'error'")


def _dedupe_outcomes(rows: "list[tuple[str, object]]") -> list[object]:
    """Keep the latest row per cell, in the order the cells last appeared.

    A cell's identity is ``(digest, scenario label)`` — NOT its positional
    index, which shifts when a grid is edited between resumed runs.  Label
    is part of the key so deduplicated copies of one simulation (same
    digest, different names) all survive a reload; the digest part makes a
    successful retry shadow the error row it replaces.
    """
    latest: dict[tuple[str, str], int] = {}
    outcomes: list[object | None] = []
    for digest, outcome in rows:
        key = (digest, outcome.scenario.name)
        if key in latest:
            outcomes[latest[key]] = None  # superseded by the later row
        latest[key] = len(outcomes)
        outcomes.append(outcome)
    return [o for o in outcomes if o is not None]


class ResultSink:
    """Receives grid outcomes incrementally, in input order.

    Lifecycle: :class:`~repro.scenarios.session.GridSession` calls
    :meth:`start` once (returning what is already persisted, for resume),
    then :meth:`write` per cell in input order, then :meth:`finish` in a
    ``finally`` block.  Sinks are also context managers wrapping the same
    calls for standalone use.
    """

    #: Registry key (also used by the CLI's ``--output`` extension mapping).
    name = "?"

    def start(self, *, resume: bool = False) -> dict[str, object]:
        """Prepare for writing; returns ``{digest: outcome}`` already stored.

        With ``resume=False`` any previous contents are discarded and the
        mapping is empty.  Only successful results count as persisted —
        error rows are omitted so resumed runs retry them.
        """
        return {}

    def write(self, index: int, digest: str, outcome: object) -> None:
        """Persist one cell outcome (called in input order)."""
        raise NotImplementedError

    def finish(self) -> None:
        """Flush and release resources (safe to call more than once)."""

    def __enter__(self) -> "ResultSink":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class MemorySink(ResultSink):
    """Collects outcomes into :attr:`outcomes` (the default sink)."""

    name = "memory"

    def __init__(self) -> None:
        #: Every outcome written, in input order.
        self.outcomes: list[object] = []

    def start(self, *, resume: bool = False) -> dict[str, object]:
        """Reset the collected list; memory sinks never persist, so resume
        has nothing to report."""
        self.outcomes = []
        return {}

    def write(self, index: int, digest: str, outcome: object) -> None:
        """Append the outcome."""
        self.outcomes.append(outcome)

    @property
    def results(self) -> list[ScenarioResult]:
        """Only the successful results, in input order."""
        return [o for o in self.outcomes if isinstance(o, ScenarioResult)]

    @property
    def errors(self) -> list[CellError]:
        """Only the failed cells, in input order."""
        return [o for o in self.outcomes if isinstance(o, CellError)]


class JsonlSink(ResultSink):
    """One canonical JSON object per line, appended as cells complete.

    Rows are ``{"index": i, "digest": sha256, "result": {...}}`` (or
    ``"error"`` for failed cells), dumped with sorted keys — so two runs of
    the same grid produce byte-identical files regardless of backend.
    """

    name = "jsonl"

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._handle: Any = None

    def start(self, *, resume: bool = False) -> dict[str, object]:
        """Open the file (truncate, or append when resuming)."""
        persisted: dict[str, object] = {}
        if resume and self.path.exists():
            for _index, digest, outcome in self.load_rows(self.path):
                if isinstance(outcome, ScenarioResult):
                    persisted[digest] = outcome
            self._handle = self.path.open("a")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w")
        return persisted

    def write(self, index: int, digest: str, outcome: object) -> None:
        """Append one row and flush, so crashes lose at most one cell."""
        if self._handle is None:  # pragma: no cover - misuse guard
            raise ScenarioError("JsonlSink.write() before start()")
        row = _row_for(index, digest, outcome)
        self._handle.write(json.dumps(row, sort_keys=True) + "\n")
        self._handle.flush()

    def finish(self) -> None:
        """Close the file."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @staticmethod
    def load_rows(path: str | os.PathLike) -> Iterable[tuple[int, str, object]]:
        """Yield ``(index, digest, outcome)`` per line of a JSONL file."""
        with Path(path).open() as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ScenarioError(
                        f"{path}:{lineno}: not valid JSON: {exc}"
                    ) from None
                yield _outcome_from_row(row, where=f"{path}:{lineno}")

    @classmethod
    def load(cls, path: str | os.PathLike) -> list[object]:
        """Reload a file's outcomes (latest row wins per cell).

        A resumed file can hold an error row and, later, the successful
        retry for the same cell; :func:`_dedupe_outcomes` keeps the latest.
        """
        return _dedupe_outcomes([(digest, outcome) for _index, digest, outcome
                                 in cls.load_rows(path)])

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"JsonlSink({str(self.path)!r})"


class SqliteSink(ResultSink):
    """One row per cell in a ``results`` table of a SQLite database.

    Schema: ``results(idx INTEGER, digest TEXT, name TEXT, status TEXT,
    payload TEXT)`` where ``status`` is ``"result"`` or the error kind and
    ``payload`` is the canonical JSON document.  Rows are append-only —
    ``idx`` is informative, not an identity, because positional indices
    shift when a grid is edited between resumed runs; :meth:`load`
    deduplicates by ``(digest, name)``, latest row winning, so a
    successful retry shadows the error row it replaces.
    """

    name = "sqlite"

    _SCHEMA = ("CREATE TABLE IF NOT EXISTS results ("
               "idx INTEGER NOT NULL, digest TEXT NOT NULL, "
               "name TEXT NOT NULL, status TEXT NOT NULL, "
               "payload TEXT NOT NULL)")

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._conn: sqlite3.Connection | None = None

    def start(self, *, resume: bool = False) -> dict[str, object]:
        """Create/open the database (cleared unless resuming)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path)
        self._conn.execute(self._SCHEMA)
        persisted: dict[str, object] = {}
        if resume:
            rows = self._conn.execute(
                "SELECT digest, payload FROM results WHERE status = 'result'"
            ).fetchall()
            for digest, payload in rows:
                persisted[digest] = ScenarioResult.from_dict(json.loads(payload))
        else:
            self._conn.execute("DELETE FROM results")
        self._conn.commit()
        return persisted

    def write(self, index: int, digest: str, outcome: object) -> None:
        """Upsert one cell row and commit."""
        if self._conn is None:  # pragma: no cover - misuse guard
            raise ScenarioError("SqliteSink.write() before start()")
        if isinstance(outcome, ScenarioResult):
            status, name = "result", outcome.scenario.name
            payload = json.dumps(outcome.to_dict(), sort_keys=True)
        elif isinstance(outcome, CellError):
            status, name = outcome.kind, outcome.scenario.name
            payload = json.dumps(outcome.to_dict(), sort_keys=True)
        else:
            raise ScenarioError(
                f"sinks accept ScenarioResult or CellError, got "
                f"{type(outcome).__name__}"
            )
        self._conn.execute(
            "INSERT INTO results (idx, digest, name, status, payload) "
            "VALUES (?, ?, ?, ?, ?)", (index, digest, name, status, payload))
        self._conn.commit()

    def finish(self) -> None:
        """Commit and close the connection."""
        if self._conn is not None:
            self._conn.commit()
            self._conn.close()
            self._conn = None

    @classmethod
    def load(cls, path: str | os.PathLike) -> list[object]:
        """Reload a database's outcomes (latest row wins per cell)."""
        conn = sqlite3.connect(path)
        try:
            rows = conn.execute(
                "SELECT digest, status, payload FROM results ORDER BY rowid"
            ).fetchall()
        finally:
            conn.close()
        parsed: list[tuple[str, object]] = []
        for digest, status, payload in rows:
            data = json.loads(payload)
            if status == "result":
                parsed.append((digest, ScenarioResult.from_dict(data)))
            else:
                parsed.append((digest, CellError.from_dict(data)))
        return _dedupe_outcomes(parsed)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SqliteSink({str(self.path)!r})"


def _load_pyarrow():
    """Import pyarrow, or explain exactly what to do about its absence."""
    try:
        import pyarrow
        import pyarrow.parquet  # noqa: F401 - submodule import required
    except ImportError:
        raise ScenarioError(
            "the 'parquet' result sink needs pyarrow, which is not "
            "installed; run 'pip install pyarrow' or pick a stdlib-only "
            "sink ('jsonl' or 'sqlite', e.g. --output results.jsonl)"
        ) from None
    return pyarrow


class ParquetSink(ResultSink):
    """One row per cell in a Parquet file, for columnar analysis at scale.

    Schema mirrors :class:`SqliteSink`: ``idx`` (int64), ``digest``,
    ``name``, ``status`` (``"result"`` or the error kind) and ``payload``
    (the canonical JSON document) — so pandas/duckdb queries over
    million-cell cluster grids read only the columns they touch.

    Parquet files are written in row groups of ``batch_rows`` as cells
    stream in and closed at :meth:`finish` — an interrupted run loses at
    most the current group (unlike the per-line JSONL sink, which loses
    at most one row; pick the format to match the failure budget).
    Parquet cannot append, so a resumed run reloads the previous rows and
    rewrites them through the new file.

    Requires ``pyarrow`` (the only optional-dependency sink); the
    constructor fails with install instructions when it is missing, and
    the registry entry exists either way so ``--output results.parquet``
    degrades into that message rather than an unknown-extension error.
    """

    name = "parquet"

    def __init__(self, path: str | os.PathLike, *, batch_rows: int = 1024):
        if batch_rows < 1:
            raise ScenarioError(f"batch_rows must be >= 1, got {batch_rows}")
        self._pa = _load_pyarrow()
        self.path = Path(path)
        self.batch_rows = batch_rows
        self._writer: Any = None
        self._rows: list[tuple[int, str, str, str, str]] = []

    def _schema(self):
        pa = self._pa
        return pa.schema([("idx", pa.int64()), ("digest", pa.string()),
                          ("name", pa.string()), ("status", pa.string()),
                          ("payload", pa.string())])

    def start(self, *, resume: bool = False) -> dict[str, object]:
        """Open the writer; on resume, previous rows are carried over."""
        import pyarrow.parquet as pq

        persisted: dict[str, object] = {}
        carried: list[tuple[int, str, str, str, str]] = []
        if resume and self.path.exists():
            for idx, digest, name, status, payload in self._read_rows():
                carried.append((idx, digest, name, status, payload))
                if status == "result":
                    persisted[digest] = ScenarioResult.from_dict(
                        json.loads(payload))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._writer = pq.ParquetWriter(self.path, self._schema())
        self._rows = carried
        if len(self._rows) >= self.batch_rows:
            self._flush()
        return persisted

    def write(self, index: int, digest: str, outcome: object) -> None:
        """Buffer one cell row; full row groups flush to disk."""
        if self._writer is None:  # pragma: no cover - misuse guard
            raise ScenarioError("ParquetSink.write() before start()")
        if isinstance(outcome, ScenarioResult):
            status, name = "result", outcome.scenario.name
        elif isinstance(outcome, CellError):
            status, name = outcome.kind, outcome.scenario.name
        else:
            raise ScenarioError(
                f"sinks accept ScenarioResult or CellError, got "
                f"{type(outcome).__name__}"
            )
        payload = json.dumps(outcome.to_dict(), sort_keys=True)
        self._rows.append((index, digest, name, status, payload))
        if len(self._rows) >= self.batch_rows:
            self._flush()

    def _flush(self) -> None:
        if not self._rows:
            return
        pa = self._pa
        columns = list(zip(*self._rows))
        table = pa.table({"idx": list(columns[0]),
                          "digest": list(columns[1]),
                          "name": list(columns[2]),
                          "status": list(columns[3]),
                          "payload": list(columns[4])},
                         schema=self._schema())
        self._writer.write_table(table)
        self._rows = []

    def finish(self) -> None:
        """Flush the tail row group and close the file."""
        if self._writer is not None:
            self._flush()
            self._writer.close()
            self._writer = None

    def _read_rows(self) -> Iterable[tuple[int, str, str, str, str]]:
        import pyarrow.parquet as pq

        table = pq.read_table(self.path)
        for row in table.to_pylist():
            yield (int(row["idx"]), str(row["digest"]), str(row["name"]),
                   str(row["status"]), str(row["payload"]))

    @classmethod
    def load(cls, path: str | os.PathLike) -> list[object]:
        """Reload a file's outcomes (latest row wins per cell)."""
        _load_pyarrow()
        sink = cls.__new__(cls)  # bypass __init__: read-only access
        sink._pa = _load_pyarrow()
        sink.path = Path(path)
        parsed: list[tuple[str, object]] = []
        for _idx, digest, _name, status, payload in sink._read_rows():
            data = json.loads(payload)
            if status == "result":
                parsed.append((digest, ScenarioResult.from_dict(data)))
            else:
                parsed.append((digest, CellError.from_dict(data)))
        return _dedupe_outcomes(parsed)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ParquetSink({str(self.path)!r})"


#: Result-sink factories: ``fn(*args) -> ResultSink``.
RESULT_SINKS: Registry = Registry("result sink")
RESULT_SINKS.register("memory")(MemorySink)
RESULT_SINKS.register("jsonl")(JsonlSink)
RESULT_SINKS.register("sqlite")(SqliteSink)
RESULT_SINKS.register("parquet")(ParquetSink)

#: File extensions the CLI maps onto sink registry names.
_EXTENSION_SINKS = {".jsonl": "jsonl", ".ndjson": "jsonl", ".json": "jsonl",
                    ".sqlite": "sqlite", ".sqlite3": "sqlite", ".db": "sqlite",
                    ".parquet": "parquet"}


def sink_for_path(path: str | os.PathLike) -> ResultSink:
    """The file-backed sink matching ``path``'s extension.

    ``.jsonl``/``.ndjson``/``.json`` map to :class:`JsonlSink`;
    ``.sqlite``/``.sqlite3``/``.db`` to :class:`SqliteSink`; ``.parquet``
    to :class:`ParquetSink` (which needs pyarrow and says so otherwise).
    """
    suffix = Path(path).suffix.lower()
    try:
        name = _EXTENSION_SINKS[suffix]
    except KeyError:
        known = ", ".join(sorted(_EXTENSION_SINKS))
        raise ScenarioError(
            f"cannot infer a result sink from {str(path)!r}; "
            f"use one of the extensions {known}"
        ) from None
    return RESULT_SINKS.get(name)(path)


def resolve_sink(spec: "str | ResultSink | None") -> ResultSink:
    """Coerce a sink name, path-free instance or ``None`` into a sink.

    ``None`` resolves to a fresh :class:`MemorySink`; a string must name a
    registry entry whose factory takes no arguments (``"memory"``) — the
    file-backed sinks need a path, so pass an instance or use
    :func:`sink_for_path`.
    """
    if spec is None:
        return MemorySink()
    if isinstance(spec, ResultSink):
        return spec
    if isinstance(spec, str):
        factory = RESULT_SINKS.get(spec)
        try:
            return factory()
        except TypeError:
            raise ScenarioError(
                f"result sink {spec!r} needs arguments (e.g. a path); "
                f"pass an instance instead of the bare name"
            ) from None
    raise ScenarioError(
        f"sink must be a name or a ResultSink, got {type(spec).__name__}"
    )

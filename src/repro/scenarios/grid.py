"""Parameter-grid expansion and (optionally parallel) scenario execution.

:func:`expand_grid` turns a base scenario plus axes into the cross product
of scenarios; :func:`run_grid` executes them — serially or fanned out over a
``multiprocessing`` pool.  Expansion order and results are deterministic:
axes are iterated in sorted key order, values in the order given, and the
engine itself is a deterministic discrete-event simulation, so a grid run
with ``workers=4`` returns exactly the same results as a serial run.
"""

from __future__ import annotations

import itertools
import multiprocessing
from typing import Any, Mapping, Sequence

from repro.errors import ScenarioError
from repro.scenarios.runner import ScenarioResult, run_scenario
from repro.scenarios.spec import Scenario


def _axis_label(key: str, value: Any) -> str:
    if isinstance(value, (list, tuple, dict)):
        return f"{key}=..."
    return f"{key}={value}"


def expand_grid(base: Scenario,
                axes: Mapping[str, Sequence[Any]]) -> list[Scenario]:
    """The cross product of ``axes`` applied over ``base``.

    Axis keys are scenario field names, with dotted keys reaching into dict
    fields (``"engine.checkpoint_interval"``, ``"workload_params.rate_per_source"``).
    Keys are iterated in sorted order and values in the given order, so the
    expansion is deterministic.  Each produced scenario gets a ``name``
    recording its overrides (unless the axis overrides ``name`` itself).

    >>> grid = expand_grid(Scenario(), {"budget": [0, 2], "duration": [10.0]})
    >>> [s.budget for s in grid]
    [0, 2]
    """
    if not axes:
        raise ScenarioError("expand_grid() needs at least one axis")
    keys = sorted(axes)
    for key in keys:
        values = axes[key]
        if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
            raise ScenarioError(
                f"grid axis {key!r} must be a list of values, got "
                f"{type(values).__name__}"
            )
        if not values:
            raise ScenarioError(f"grid axis {key!r} is empty")
    scenarios: list[Scenario] = []
    for combo in itertools.product(*(axes[key] for key in keys)):
        overrides = dict(zip(keys, combo))
        scenario = base.with_overrides(**overrides)
        if "name" not in overrides:
            label = ",".join(_axis_label(k, v) for k, v in sorted(overrides.items()))
            prefix = f"{base.name}/" if base.name else ""
            scenario = scenario.with_overrides(name=f"{prefix}{label}")
        scenarios.append(scenario)
    return scenarios


def run_scenarios(scenarios: Sequence[Scenario], *,
                  workers: int | None = None) -> list[ScenarioResult]:
    """Execute ``scenarios`` in order; results line up with the input.

    ``workers`` > 1 fans the runs out over a process pool (each engine run
    is single-threaded and independent); the result order — and, because
    runs are deterministic, the results themselves — do not depend on
    ``workers``.

    Worker processes see the built-in registries automatically.  Custom
    ``register()`` entries must live in an importable module for the
    combination with ``workers`` to be portable: on platforms whose
    multiprocessing start method is ``spawn`` (macOS, Windows), workers
    re-import modules rather than inheriting the parent's memory, so
    registrations made only in a ``__main__`` script are not visible there.
    """
    scenarios = list(scenarios)
    if not scenarios:
        return []
    if workers is not None and workers < 1:
        raise ScenarioError(f"workers must be >= 1, got {workers}")
    if workers is None or workers == 1 or len(scenarios) == 1:
        return [run_scenario(s) for s in scenarios]
    n = min(workers, len(scenarios))
    with multiprocessing.Pool(processes=n) as pool:
        return pool.map(run_scenario, scenarios)


def run_grid(base: Scenario, axes: Mapping[str, Sequence[Any]] | None = None, *,
             workers: int | None = None) -> list[ScenarioResult]:
    """Expand ``base`` over ``axes`` and execute every combination.

    With ``axes=None``, runs just ``base``.  See :func:`expand_grid` for the
    axis syntax and :func:`run_scenarios` for the ``workers`` fan-out.
    """
    scenarios = expand_grid(base, axes) if axes else [base]
    return run_scenarios(scenarios, workers=workers)

"""Parameter-grid expansion and pluggable scenario execution.

:func:`expand_grid` turns a base scenario plus axes into the cross product
of scenarios; :func:`run_scenarios` and :func:`run_grid` are thin façades
over :class:`~repro.scenarios.session.GridSession`, which wires an
:class:`~repro.scenarios.backends.ExecutionBackend` (``"serial"``,
``"threads"``, ``"processes"``), a :class:`~repro.scenarios.sinks.ResultSink`
(``"memory"``, JSONL, SQLite) and an optional content-addressed
:class:`~repro.scenarios.cache.ScenarioCache` together.

Expansion order and results are deterministic: axes are iterated in sorted
key order, values in the order given, sinks receive outcomes in input order
whatever the backend's completion order, and the engine itself is a
deterministic discrete-event simulation — so a grid run with
``backend="processes"`` returns exactly the same results as a serial run.
"""

from __future__ import annotations

import itertools
import multiprocessing
import warnings
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ScenarioError
from repro.scenarios.backends import ExecutionBackend
from repro.scenarios.cache import ScenarioCache
from repro.scenarios.runner import ScenarioResult, run_scenario
from repro.scenarios.session import GridSession, ProgressEvent
from repro.scenarios.sinks import ResultSink
from repro.scenarios.spec import Scenario


def _axis_label(key: str, value: Any) -> str:
    if isinstance(value, (list, tuple, dict)):
        return f"{key}=..."
    return f"{key}={value}"


def expand_grid(base: Scenario,
                axes: Mapping[str, Sequence[Any]]) -> list[Scenario]:
    """The cross product of ``axes`` applied over ``base``.

    Axis keys are scenario field names, with dotted keys reaching into dict
    fields (``"engine.checkpoint_interval"``, ``"workload_params.rate_per_source"``).
    Keys are iterated in sorted order and values in the given order, so the
    expansion is deterministic.  Each produced scenario gets a ``name``
    recording its overrides (unless the axis overrides ``name`` itself).

    >>> grid = expand_grid(Scenario(), {"budget": [0, 2], "duration": [10.0]})
    >>> [s.budget for s in grid]
    [0, 2]
    """
    if not axes:
        raise ScenarioError("expand_grid() needs at least one axis")
    keys = sorted(axes)
    for key in keys:
        values = axes[key]
        if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
            raise ScenarioError(
                f"grid axis {key!r} must be a list of values, got "
                f"{type(values).__name__}"
            )
        if not values:
            raise ScenarioError(f"grid axis {key!r} is empty")
    scenarios: list[Scenario] = []
    for combo in itertools.product(*(axes[key] for key in keys)):
        overrides = dict(zip(keys, combo))
        scenario = base.with_overrides(**overrides)
        if "name" not in overrides:
            label = ",".join(_axis_label(k, v) for k, v in sorted(overrides.items()))
            prefix = f"{base.name}/" if base.name else ""
            scenario = scenario.with_overrides(name=f"{prefix}{label}")
        scenarios.append(scenario)
    return scenarios


def _run_with_pool_shim(scenarios: list[Scenario], workers: int) -> list[ScenarioResult]:
    """The deprecated ``workers=`` fan-out (kept for API compatibility).

    Uses chunked ``imap`` rather than ``pool.map`` so huge grids stream
    results back instead of pickling them all at once.
    """
    if workers == 1 or len(scenarios) == 1:
        return [run_scenario(s) for s in scenarios]
    n = min(workers, len(scenarios))
    # ~4 chunks per worker balances scheduling slack against IPC overhead.
    chunksize = max(1, len(scenarios) // (n * 4))
    with multiprocessing.Pool(processes=n) as pool:
        return list(pool.imap(run_scenario, scenarios, chunksize=chunksize))


def run_scenarios(scenarios: Sequence[Scenario], *,
                  backend: "str | ExecutionBackend | None" = None,
                  sink: "str | ResultSink | None" = None,
                  cache: "ScenarioCache | str | None" = None,
                  timeout: float | None = None,
                  retries: int = 1,
                  progress: Callable[[ProgressEvent], None] | None = None,
                  resume: bool = False,
                  strict: bool = True,
                  workers: int | None = None) -> list:
    """Execute ``scenarios`` in order; outcomes line up with the input.

    ``backend`` selects the execution strategy (``"serial"`` by default,
    ``"threads"``, or ``"processes"`` for a work-stealing process pool with
    per-scenario ``timeout`` and ``retries``-on-worker-death); ``sink``
    streams outcomes incrementally (memory, JSONL, SQLite) and ``cache``
    skips already-simulated cells by content digest.  Because runs are
    deterministic, the results do not depend on the backend.

    With ``strict=True`` (the default) the first failed cell raises
    :class:`ScenarioError` once the grid has finished and the sink holds
    every outcome; with ``strict=False`` failed cells appear in the
    returned list as structured
    :class:`~repro.scenarios.backends.CellError`\\ s.

    ``workers=`` is the deprecated spelling of the old multiprocessing
    fan-out; prefer ``backend="processes"``.

    Worker processes see the built-in registries automatically.  Custom
    ``register()`` entries must live in an importable module for the
    processes backend to be portable: on platforms whose multiprocessing
    start method is ``spawn`` (macOS, Windows), workers re-import modules
    rather than inheriting the parent's memory, so registrations made only
    in a ``__main__`` script are not visible there.
    """
    scenarios = list(scenarios)
    if workers is not None:
        # Validated before the empty-grid early return so a bad value is
        # reported even when there is nothing to run.
        if workers < 1:
            raise ScenarioError(f"workers must be >= 1, got {workers}")
        if backend is not None:
            raise ScenarioError("pass backend= or the deprecated workers=, "
                                "not both")
        dropped = [label for label, given in (
            ("sink", sink is not None), ("cache", cache is not None),
            ("timeout", timeout is not None), ("retries", retries != 1),
            ("progress", progress is not None), ("resume", resume),
            ("strict=False", not strict),
        ) if given]
        if dropped:
            raise ScenarioError(
                f"the deprecated workers= shim does not support "
                f"{', '.join(dropped)}; use backend='processes' instead"
            )
        warnings.warn(
            "run_scenarios(workers=...) is deprecated; use "
            "backend='processes' (optionally ProcessBackend(max_workers=N))",
            DeprecationWarning, stacklevel=2)
        if not scenarios:
            return []
        return _run_with_pool_shim(scenarios, workers)
    session = GridSession(backend=backend, sink=sink, cache=cache,
                          timeout=timeout, retries=retries, progress=progress,
                          resume=resume, strict=strict)
    return session.run(scenarios).outcomes


def run_grid(base: Scenario, axes: Mapping[str, Sequence[Any]] | None = None, *,
             backend: "str | ExecutionBackend | None" = None,
             sink: "str | ResultSink | None" = None,
             cache: "ScenarioCache | str | None" = None,
             timeout: float | None = None,
             retries: int = 1,
             progress: Callable[[ProgressEvent], None] | None = None,
             resume: bool = False,
             strict: bool = True,
             workers: int | None = None) -> list:
    """Expand ``base`` over ``axes`` and execute every combination.

    With ``axes=None``, runs just ``base``.  See :func:`expand_grid` for the
    axis syntax and :func:`run_scenarios` for the execution keywords
    (``backend``/``sink``/``cache``/``timeout``/``retries``/``progress``/
    ``resume``/``strict``, plus the deprecated ``workers``)::

        run_grid(base, {"budget": [0, 2, 4]},
                 backend="processes",
                 sink=JsonlSink("results.jsonl"),
                 cache=ScenarioCache("~/.cache/repro-grid"))
    """
    scenarios = expand_grid(base, axes) if axes else [base]
    return run_scenarios(scenarios, backend=backend, sink=sink, cache=cache,
                         timeout=timeout, retries=retries, progress=progress,
                         resume=resume, strict=strict, workers=workers)

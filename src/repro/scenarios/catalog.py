"""Built-in planner and workload registry entries.

Planner names follow the paper's algorithms — ``"dp"`` (Algorithm 2),
``"greedy"`` (the baseline), ``"structured"`` (Algorithm 3), ``"full"``
(Algorithm 4), ``"structure-aware"`` (Algorithm 5) — plus three scenario
conveniences: ``"none"`` (no active replication), ``"all"`` (replicate every
non-source task) and ``"fixed"`` (an explicit task list).

Workload names cover the paper's evaluation: ``"synthetic"`` (the Fig. 6
recovery workload), ``"worldcup"`` (Q1 top-k), ``"traffic"`` (Q2 incident
join), ``"zipf"`` (a random Sec. VI-C topology with Zipf-skewed task
weights, run with generic windowed logic) and ``"custom"`` (an explicit
:class:`~repro.scenarios.spec.TopologyRecipe` run with the same generic
logic).
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Iterable, Mapping, Sequence

from repro.core.dp import BruteForcePlanner, DynamicProgrammingPlanner
from repro.core.full_topology import FullTopologyPlanner
from repro.core.greedy import GreedyPlanner
from repro.core.plans import (
    OF_OBJECTIVE,
    Planner,
    PlanObjective,
    ReplicationPlan,
)
from repro.core.structure_aware import StructureAwarePlanner
from repro.core.structured import StructuredTopologyPlanner
from repro.engine.logic import LogicFactory
from repro.errors import ScenarioError
from repro.queries.synthetic import WindowedSelectivityOperator, overlap_accuracy
from repro.scenarios.failures import _task_from_param
from repro.scenarios.registry import PLANNERS, WORKLOADS
from repro.scenarios.spec import TopologyRecipe
from repro.topology.generator import (
    TopologyClass,
    TopologySpec,
    WeightSkew,
    generate_source_rates,
    generate_topology,
)
from repro.topology.graph import Topology
from repro.topology.rates import (
    SourceRates,
    StreamRates,
    propagate_rates,
    uniform_source_rates,
)
from repro.workloads.bundles import (
    QueryBundle,
    calibrated_costs,
    fig6_bundle,
    q1_bundle,
    q2_bundle,
)
from repro.topology.operators import TaskId
from repro.workloads.sources import SquareWaveSource, UniformRateSource

# ----------------------------------------------------------------------
# Planners
# ----------------------------------------------------------------------


class NullPlanner(Planner):
    """Plans no active replication at all (pure passive fault tolerance)."""

    name = "None"

    def plan(self, topology: Topology, rates: StreamRates,
             budget: int) -> ReplicationPlan:
        """The empty plan, whatever the budget."""
        return self._finish(frozenset(), budget)


class ReplicateAllPlanner(Planner):
    """Replicates every non-source task (the paper's PPA-1.0 / Active bars)."""

    name = "All"

    def plan(self, topology: Topology, rates: StreamRates,
             budget: int) -> ReplicationPlan:
        """Every non-source task, ignoring the budget."""
        replicated = frozenset(
            t for t in topology.tasks()
            if not topology.operator(t.operator).is_source
        )
        return self._finish(replicated, len(replicated))


class FixedPlanner(Planner):
    """Replays an explicit, externally chosen task list as the plan."""

    name = "Fixed"

    def __init__(self, objective: PlanObjective = OF_OBJECTIVE, *,
                 tasks: Iterable[object] = ()):
        super().__init__(objective)
        self._raw_tasks = tuple(tasks)
        if not self._raw_tasks:
            raise ScenarioError(
                "'fixed' planner needs planner_params={'tasks': [...]} "
                "with at least one task"
            )

    def plan(self, topology: Topology, rates: StreamRates,
             budget: int) -> ReplicationPlan:
        """Exactly the configured tasks, validated against the topology."""
        replicated = frozenset(
            _task_from_param(topology, t) for t in self._raw_tasks
        )
        return self._finish(replicated, len(replicated))


PLANNERS.register("dp")(DynamicProgrammingPlanner)
PLANNERS.register("brute-force")(BruteForcePlanner)
PLANNERS.register("greedy")(GreedyPlanner)
PLANNERS.register("structured")(StructuredTopologyPlanner)
PLANNERS.register("full")(FullTopologyPlanner)
PLANNERS.register("structure-aware")(StructureAwarePlanner)
PLANNERS.register("none")(NullPlanner)
PLANNERS.register("all")(ReplicateAllPlanner)
PLANNERS.register("fixed")(FixedPlanner)


def make_planner(name: str, objective: PlanObjective = OF_OBJECTIVE,
                 **params: object) -> Planner:
    """Instantiate the registered planner ``name`` for ``objective``."""
    factory = PLANNERS.get(name)
    try:
        return factory(objective, **params)
    except TypeError as exc:
        raise ScenarioError(f"planner {name!r}: {exc}") from None


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------


def generic_bundle(name: str, topology: Topology, source_rates: SourceRates, *,
                   window_seconds: float = 10.0,
                   tuple_scale: float = 8.0) -> QueryBundle:
    """A runnable bundle for an arbitrary topology with generic logic.

    Source operators emit uniform-rate tuples (each task at its operator's
    mean configured rate); every other operator runs a windowed-selectivity
    aggregate with the selectivity of its spec.  The rate model used for
    planning still comes from :func:`propagate_rates` on the real topology,
    so plans and fidelity predictions are exact even though the logic is
    generic.
    """
    rates = propagate_rates(topology, source_rates)

    def make_logic() -> LogicFactory:
        factory = LogicFactory()
        for spec in topology.operators():
            if spec.is_source:
                mean_rate = statistics.fmean(
                    source_rates.rate_of(topology, t) for t in spec.tasks()
                )
                factory.register_source(
                    spec.name, UniformRateSource(mean_rate / tuple_scale)
                )
            else:
                factory.register_operator(
                    spec.name,
                    lambda sel=spec.selectivity: WindowedSelectivityOperator(
                        window_seconds, sel
                    ),
                )
        return factory

    sinks = topology.sink_tasks()
    return QueryBundle(
        name=name,
        topology=topology,
        rates=rates,
        make_logic=make_logic,
        accuracy_fn=overlap_accuracy,
        sink_task=sinks[0] if sinks else None,
        costs=calibrated_costs(tuple_scale),
        window_seconds=window_seconds,
    )


# The Fig. 6 recovery workload (16 sources, 8/4/2/1 merge chain), Q1 top-k
# and the Q2 incident join register as-is; bad parameters are turned into
# ScenarioErrors centrally by make_bundle().
WORKLOADS.register("synthetic")(fig6_bundle)
WORKLOADS.register("worldcup")(q1_bundle)
WORKLOADS.register("traffic")(q2_bundle)


@WORKLOADS.register("zipf")
def zipf_workload(seed: int = 0, n_operators: Sequence[int] = (4, 6),
                  parallelism: Sequence[int] = (2, 4), zipf_s: float = 0.5,
                  join_fraction: float = 0.0,
                  topology_class: str = "structured",
                  base_rate: float = 1000.0, window_seconds: float = 10.0,
                  tuple_scale: float = 8.0) -> QueryBundle:
    """A random Sec. VI-C topology with Zipf-skewed task weights."""
    try:
        topo_class = TopologyClass(topology_class)
    except ValueError:
        choices = ", ".join(repr(c.value) for c in TopologyClass)
        raise ScenarioError(
            f"workload 'zipf': unknown topology_class {topology_class!r}; "
            f"one of {choices}"
        ) from None
    spec = TopologySpec(
        n_operators=(int(n_operators[0]), int(n_operators[1])),
        parallelism=(int(parallelism[0]), int(parallelism[1])),
        weight_skew=WeightSkew.ZIPF, zipf_s=zipf_s,
        join_fraction=join_fraction, topology_class=topo_class,
    )
    topology = generate_topology(spec, seed)
    source_rates = generate_source_rates(topology, seed, base_rate)
    return generic_bundle(
        f"zipf(seed={seed})", topology, source_rates,
        window_seconds=window_seconds, tuple_scale=tuple_scale,
    )


@WORKLOADS.register("custom")
def custom_workload(recipe: TopologyRecipe | Mapping[str, object] | None = None,
                    source_rate: float = 100.0, window_seconds: float = 10.0,
                    tuple_scale: float = 1.0) -> QueryBundle:
    """An explicit :class:`TopologyRecipe` run with generic windowed logic."""
    if recipe is None:
        raise ScenarioError(
            "workload 'custom' needs a topology: set Scenario.topology or "
            "workload_params={'recipe': {...}}"
        )
    if not isinstance(recipe, TopologyRecipe):
        recipe = TopologyRecipe.from_dict(recipe)
    topology = recipe.build()
    return generic_bundle(
        f"custom({len(recipe.operators)} ops)", topology,
        uniform_source_rates(topology, source_rate),
        window_seconds=window_seconds, tuple_scale=tuple_scale,
    )


@WORKLOADS.register("bursty")
def bursty_workload(base: str = "synthetic", period_seconds: float = 20.0,
                    duty: float = 0.5, high_factor: float = 1.5,
                    low_factor: float = 0.5,
                    **base_params: object) -> QueryBundle:
    """A square-wave (burst/trough) rate profile over an existing bundle.

    Builds the ``base`` workload (any registry entry whose sources are
    uniform-rate: ``"synthetic"``, ``"zipf"``, ``"custom"``), then replaces
    every source with a :class:`~repro.workloads.sources.SquareWaveSource`
    bursting at ``high_factor ×`` and idling at ``low_factor ×`` the base
    rate.  ``base_params`` are forwarded to the base workload factory.

    With the default symmetric factors the long-run mean rate equals the
    base rate, so the planning rate model (and therefore plans and fidelity
    predictions) stays representative; what changes is *when* tuples
    arrive — which is exactly the knob for measuring recovery latency at
    burst peaks versus troughs (time the ``FailureSpec`` inside or outside
    a burst phase).
    """
    if base == "bursty":
        raise ScenarioError("workload 'bursty' cannot wrap itself")
    if period_seconds <= 0:
        raise ScenarioError(
            f"workload 'bursty': period_seconds must be positive, got "
            f"{period_seconds}"
        )
    if not 0.0 < duty < 1.0:
        raise ScenarioError(
            f"workload 'bursty': duty must be in (0, 1), got {duty}"
        )
    if high_factor < 0 or low_factor < 0:
        raise ScenarioError(
            f"workload 'bursty': rate factors must be >= 0, got "
            f"high={high_factor}, low={low_factor}"
        )
    bundle = make_bundle(base, **base_params)
    base_make_logic = bundle.make_logic
    topology = bundle.topology

    def make_logic() -> LogicFactory:
        factory = base_make_logic()
        for spec in topology.operators():
            if not spec.is_source:
                continue
            source = factory.source_for(TaskId(spec.name, 0))
            if not isinstance(source, UniformRateSource):
                raise ScenarioError(
                    f"workload 'bursty' needs uniform-rate sources to "
                    f"modulate; base {base!r} source {spec.name!r} is a "
                    f"{type(source).__name__}"
                )
            factory.register_source(spec.name, SquareWaveSource(
                high_rate=source.rate_per_task * high_factor,
                low_rate=source.rate_per_task * low_factor,
                period_batches=max(
                    2, round(period_seconds / source.batch_interval)),
                duty=duty,
                batch_interval=source.batch_interval,
                key_space=source.key_space,
            ))
        return factory

    return dataclasses.replace(
        bundle, name=f"bursty({bundle.name})", make_logic=make_logic,
    )


def make_bundle(name: str, **params: object) -> QueryBundle:
    """Instantiate the registered workload ``name`` with ``params``.

    Parameter mismatches surface as :class:`ScenarioError` naming the
    workload, so a bad scenario file fails with an actionable message
    instead of a traceback.
    """
    factory = WORKLOADS.get(name)
    try:
        return factory(**params)
    except TypeError as exc:
        raise ScenarioError(f"workload {name!r}: {exc}") from None

"""Declarative scenarios: one façade from topology spec to recovery metrics.

Instead of hand-wiring the five-step pipeline (build topology → propagate
rates → pick planner → construct ``StreamEngine`` → inject failures), you
describe an experiment as a frozen, JSON-serializable :class:`Scenario` and
hand it to :func:`run_scenario`:

>>> from repro.scenarios import Scenario, FailureSpec, run_scenario
>>> scenario = Scenario(
...     workload="synthetic",
...     workload_params={"rate_per_source": 200.0, "window_seconds": 5.0,
...                      "tuple_scale": 16.0},
...     planner="structure-aware", budget_fraction=0.5,
...     failures=(FailureSpec("correlated", at=10.0),),
...     duration=20.0,
... )
>>> result = run_scenario(scenario)
>>> result.all_recovered and 0.0 <= result.worst_case_fidelity <= 1.0
True

Everything is resolved through string-keyed registries, so new entries plug
in with a ``register()`` decorator without touching the core:

* :data:`PLANNERS`, :data:`WORKLOADS`, :data:`FAILURE_MODELS` — what to
  plan, run and break;
* :data:`RECOVERY_SCHEMES` — how the engine tolerates the failures
  (``"ppa"``, ``"checkpoint-replay"``, ``"source-replay"``,
  ``"active-standby"``), selected per scenario via the ``recovery`` field;
* :data:`EXECUTION_BACKENDS` — how grids execute (``"serial"``,
  ``"threads"``, ``"processes"`` with work stealing, per-scenario timeouts
  and retry-on-worker-death, ``"cluster"`` across worker agents on many
  hosts — see :mod:`repro.cluster`);
* :data:`RESULT_SINKS` — where outcomes go (``"memory"``, ``"jsonl"``,
  ``"sqlite"``, ``"parquet"``), streamed incrementally so huge grids never
  materialise one giant list.

:func:`run_grid` expands parameter grids over a base scenario and executes
them through a :class:`GridSession`, which can also consult a
content-addressed :class:`ScenarioCache` (keyed on the SHA-256 digest of
``Scenario.to_dict()``) so repeated cells are never simulated twice:

>>> from repro.scenarios import run_grid
>>> results = run_grid(scenario, {"budget_fraction": [0.0, 0.5]},
...                    backend="serial")
>>> len(results)
2

``ScenarioResult.to_dict()``/``from_dict()`` round-trip losslessly — sinks
and the cache reload persisted results bit-for-bit.
"""

from repro.engine.recovery import (
    RECOVERY_SCHEMES,
    RecoveryContext,
    RecoveryScheme,
    create_scheme,
)
from repro.scenarios import catalog as _catalog  # populate the registries
from repro.scenarios.backends import (
    EXECUTION_BACKENDS,
    CellError,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.scenarios.cache import CacheStats, ScenarioCache, scenario_digest
from repro.scenarios.catalog import (
    FixedPlanner,
    NullPlanner,
    ReplicateAllPlanner,
    generic_bundle,
    make_bundle,
    make_planner,
)
from repro.scenarios.failures import FailureWave, as_waves, synthetic_tasks
from repro.scenarios.grid import expand_grid, run_grid, run_scenarios
from repro.scenarios.prebuilt import (
    prebuilt_workload,
    run_scenario_prebuilt,
    workload_key,
)
from repro.scenarios.registry import FAILURE_MODELS, PLANNERS, WORKLOADS, Registry
from repro.scenarios.runner import (
    RecoveryOutcome,
    ScenarioResult,
    ScenarioRunner,
    run_scenario,
)
from repro.scenarios.session import GridReport, GridSession, ProgressEvent
from repro.scenarios.sinks import (
    RESULT_SINKS,
    JsonlSink,
    MemorySink,
    ParquetSink,
    ResultSink,
    SqliteSink,
    resolve_sink,
    sink_for_path,
)
from repro.scenarios.spec import (
    EdgeDef,
    FailureSpec,
    OperatorDef,
    Scenario,
    TopologyRecipe,
)

__all__ = [
    "CacheStats",
    "CellError",
    "EXECUTION_BACKENDS",
    "EdgeDef",
    "ExecutionBackend",
    "FAILURE_MODELS",
    "FailureSpec",
    "FailureWave",
    "FixedPlanner",
    "GridReport",
    "GridSession",
    "JsonlSink",
    "MemorySink",
    "NullPlanner",
    "OperatorDef",
    "PLANNERS",
    "ParquetSink",
    "ProcessBackend",
    "ProgressEvent",
    "RECOVERY_SCHEMES",
    "RESULT_SINKS",
    "RecoveryContext",
    "RecoveryOutcome",
    "RecoveryScheme",
    "Registry",
    "ReplicateAllPlanner",
    "ResultSink",
    "Scenario",
    "ScenarioCache",
    "ScenarioResult",
    "ScenarioRunner",
    "SerialBackend",
    "SqliteSink",
    "ThreadBackend",
    "TopologyRecipe",
    "WORKLOADS",
    "as_waves",
    "create_scheme",
    "expand_grid",
    "generic_bundle",
    "make_bundle",
    "make_planner",
    "prebuilt_workload",
    "resolve_backend",
    "resolve_sink",
    "run_grid",
    "run_scenario",
    "run_scenario_prebuilt",
    "run_scenarios",
    "scenario_digest",
    "sink_for_path",
    "synthetic_tasks",
    "workload_key",
]

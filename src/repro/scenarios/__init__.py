"""Declarative scenarios: one façade from topology spec to recovery metrics.

Instead of hand-wiring the five-step pipeline (build topology → propagate
rates → pick planner → construct ``StreamEngine`` → inject failures), you
describe an experiment as a frozen, JSON-serializable :class:`Scenario` and
hand it to :func:`run_scenario`:

>>> from repro.scenarios import Scenario, FailureSpec, run_scenario
>>> scenario = Scenario(
...     workload="synthetic",
...     workload_params={"rate_per_source": 200.0, "window_seconds": 5.0,
...                      "tuple_scale": 16.0},
...     planner="structure-aware", budget_fraction=0.5,
...     failures=(FailureSpec("correlated", at=10.0),),
...     duration=20.0,
... )
>>> result = run_scenario(scenario)
>>> result.all_recovered and 0.0 <= result.worst_case_fidelity <= 1.0
True

Planners, workloads and failure models are resolved through string-keyed
registries (:data:`PLANNERS`, :data:`WORKLOADS`, :data:`FAILURE_MODELS`),
so new entries plug in with a ``register()`` decorator without touching the
core.  :func:`run_grid` expands parameter grids over a base scenario and
executes them, optionally fanned out over a process pool.
"""

from repro.scenarios import catalog as _catalog  # populate the registries
from repro.scenarios.catalog import (
    FixedPlanner,
    NullPlanner,
    ReplicateAllPlanner,
    generic_bundle,
    make_bundle,
    make_planner,
)
from repro.scenarios.failures import synthetic_tasks
from repro.scenarios.grid import expand_grid, run_grid, run_scenarios
from repro.scenarios.registry import FAILURE_MODELS, PLANNERS, WORKLOADS, Registry
from repro.scenarios.runner import (
    RecoveryOutcome,
    ScenarioResult,
    ScenarioRunner,
    run_scenario,
)
from repro.scenarios.spec import (
    EdgeDef,
    FailureSpec,
    OperatorDef,
    Scenario,
    TopologyRecipe,
)

__all__ = [
    "EdgeDef",
    "FAILURE_MODELS",
    "FailureSpec",
    "FixedPlanner",
    "NullPlanner",
    "OperatorDef",
    "PLANNERS",
    "RecoveryOutcome",
    "Registry",
    "ReplicateAllPlanner",
    "Scenario",
    "ScenarioResult",
    "ScenarioRunner",
    "TopologyRecipe",
    "WORKLOADS",
    "expand_grid",
    "generic_bundle",
    "make_bundle",
    "make_planner",
    "run_grid",
    "run_scenario",
    "run_scenarios",
    "synthetic_tasks",
]

"""Grid execution sessions: backend + sink + cache, wired together.

:class:`GridSession` is the engine room behind
:func:`~repro.scenarios.grid.run_grid` and
:func:`~repro.scenarios.grid.run_scenarios`: it resolves the execution
backend, deduplicates identical cells, consults the content-addressed
:class:`~repro.scenarios.cache.ScenarioCache`, streams outcomes into a
:class:`~repro.scenarios.sinks.ResultSink` **in input order** (whatever
order the backend completes them in), fires progress callbacks in
completion order, and tallies everything into a :class:`GridReport`.

>>> from repro.scenarios import GridSession, Scenario
>>> report = GridSession().run([Scenario(duration=5.0, planner="none",
...                                      workload_params={"window_seconds": 5.0,
...                                                       "rate_per_source": 50.0})])
>>> report.total, report.executed, len(report.results())
(1, 1, 1)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.errors import ScenarioError
from repro.scenarios.backends import (
    CellError,
    ExecutionBackend,
    Runner,
    resolve_backend,
)
from repro.scenarios.cache import ScenarioCache, scenario_digest
from repro.scenarios.prebuilt import run_scenario_prebuilt
from repro.scenarios.runner import ScenarioResult
from repro.scenarios.sinks import MemorySink, ResultSink, resolve_sink
from repro.scenarios.spec import Scenario


@dataclass(frozen=True)
class ProgressEvent:
    """One completed grid cell, as seen by a progress callback.

    ``source`` says where the outcome came from: ``"executed"`` (the
    backend ran it), ``"cache"`` (content-addressed cache hit),
    ``"deduped"`` (an identical cell already ran in this grid) or
    ``"resumed"`` (already persisted in the sink).  Events fire in
    completion order, which for parallel backends is not input order.
    ``retries`` counts the extra attempts the executing backend needed
    (>0 only when a dead worker forced the cell to restart); duplicates
    of one executed representative all report its retry count.
    """

    done: int
    total: int
    index: int
    scenario: Scenario
    outcome: object
    source: str
    retries: int = 0

    @property
    def ok(self) -> bool:
        """Whether the cell produced a result rather than a CellError."""
        return isinstance(self.outcome, ScenarioResult)

    def render(self) -> str:
        """One-line progress summary (what ``--progress`` prints)."""
        label = self.scenario.name or self.scenario.workload
        state = "ok" if self.ok else f"FAILED({self.outcome.kind})"
        note = f", {self.retries} retries" if self.retries else ""
        return (f"[{self.done}/{self.total}] {label}: {state} "
                f"({self.source}{note})")


@dataclass
class GridReport:
    """What one :meth:`GridSession.run` did, with per-source tallies.

    ``executed + cache_hits + deduped + resumed == total``; ``errors``
    counts the *cells* whose outcome is a :class:`CellError` — a failed
    representative counts once per duplicate it was fanned out to, so
    ``errors`` can exceed ``executed`` but never ``total``.  ``retries``
    counts extra execution attempts across the whole grid (one per worker
    death that forced a cell restart, charged once per distinct executed
    cell, not per duplicate).  ``degraded`` counts executed cells that a
    degradation-capable backend (the cluster backend with a fallback)
    finished on its in-process fallback rather than the primary fabric —
    the results are identical, but the operator should know the fleet
    was not healthy.  ``outcomes`` lines up with the input scenarios, or
    is ``None`` when the session was created with ``collect=False``.
    """

    total: int
    executed: int
    cache_hits: int
    deduped: int
    resumed: int
    errors: int
    outcomes: list[object] | None
    retries: int = 0
    degraded: int = 0

    def results(self) -> list[ScenarioResult]:
        """The successful results, in input order (requires ``collect``)."""
        if self.outcomes is None:
            raise ScenarioError(
                "this session ran with collect=False; read the sink instead"
            )
        return [o for o in self.outcomes if isinstance(o, ScenarioResult)]

    def cell_errors(self) -> list[CellError]:
        """The failed cells, in input order (requires ``collect``)."""
        if self.outcomes is None:
            raise ScenarioError(
                "this session ran with collect=False; read the sink instead"
            )
        return [o for o in self.outcomes if isinstance(o, CellError)]


#: Placeholder for outcomes already handed to the sink in streaming mode.
_FLUSHED = object()


def _relabel(result: ScenarioResult, scenario: Scenario) -> ScenarioResult:
    """A copy of ``result`` carrying exactly ``scenario``.

    Cache hits and deduplicated cells may differ from the stored copy in
    the one field the digest ignores — the ``name`` label — so the
    requested scenario is restored before the result is reported.
    """
    if result.scenario == scenario:
        return result
    return dataclasses.replace(result, scenario=scenario)


class GridSession:
    """One configured way of executing scenario grids.

    Parameters
    ----------
    backend:
        Execution strategy — a registry name (``"serial"``, ``"threads"``,
        ``"processes"``) or an :class:`ExecutionBackend` instance.
    sink:
        Where outcomes go — a :class:`ResultSink` instance, ``"memory"``,
        or ``None`` for a fresh in-memory sink.
    cache:
        Optional :class:`ScenarioCache` (or a directory path for one);
        already-simulated cells are loaded instead of re-run.
    timeout:
        Per-scenario wall-clock budget in seconds; overruns become
        ``"timeout"`` :class:`CellError`\\ s.
    retries:
        How many extra attempts a cell gets when a worker process dies
        (processes backend; default one retry).
    progress:
        Callback receiving a :class:`ProgressEvent` per completed cell, in
        completion order.
    resume:
        Skip cells whose digest the sink already holds (file-backed sinks).
    strict:
        Raise :class:`ScenarioError` for the first failed cell after the
        grid finishes (the façades default to strict; sinks still receive
        every outcome first).
    collect:
        Keep outcomes in memory for :attr:`GridReport.outcomes`.  Turn off
        for huge grids where the sink is the only consumer.
    runner:
        The per-scenario runner; must be picklable for the processes
        backend.  The default resolves workloads through the prebuilt memo
        (:func:`~repro.scenarios.prebuilt.run_scenario_prebuilt`), building
        each distinct topology/router/bundle once per process instead of
        once per cell — results are identical to the plain
        :func:`~repro.scenarios.runner.run_scenario`.  Tests substitute
        counting/faulty runners here.
    """

    def __init__(self, backend: "str | ExecutionBackend | None" = None,
                 sink: "str | ResultSink | None" = None,
                 cache: "ScenarioCache | str | None" = None, *,
                 timeout: float | None = None,
                 retries: int = 1,
                 progress: Callable[[ProgressEvent], None] | None = None,
                 resume: bool = False,
                 strict: bool = False,
                 collect: bool = True,
                 runner: Runner = run_scenario_prebuilt):
        self.backend = resolve_backend(backend)
        self.sink = resolve_sink(sink)
        self.cache = ScenarioCache(cache) if isinstance(cache, (str, bytes)) \
            else cache
        if timeout is not None and timeout <= 0:
            raise ScenarioError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ScenarioError(f"retries must be >= 0, got {retries}")
        self.timeout = timeout
        self.retries = retries
        self.progress = progress
        self.resume = resume
        self.strict = strict
        self.collect = collect
        self.runner = runner

    # ------------------------------------------------------------------
    def run(self, scenarios: Sequence[Scenario]) -> GridReport:
        """Execute ``scenarios`` and return the :class:`GridReport`.

        Identical cells (same digest) are executed once and fanned out;
        cache hits and sink-resumed cells skip execution entirely.  The
        sink receives outcomes in input order regardless of the backend's
        completion order, so outputs are deterministic.
        """
        scenarios = list(scenarios)
        total = len(scenarios)
        digests = [scenario_digest(s) for s in scenarios]
        outcomes: list[object | None] = [None] * total
        sources: list[str] = [""] * total
        done = 0
        next_flush = 0
        errors = 0
        retries = 0
        degraded = 0
        first_error: CellError | None = None

        persisted: Mapping[str, object] = {}
        try:
            persisted = self.sink.start(resume=self.resume)

            # Resolve what does not need the backend: resumed cells, cache
            # hits, and duplicates of a cell that will be executed anyway.
            pending: dict[str, list[int]] = {}
            for index, (scenario, digest) in enumerate(zip(scenarios, digests)):
                if self.resume and digest in persisted:
                    outcome = persisted[digest]
                    if isinstance(outcome, ScenarioResult):
                        outcome = _relabel(outcome, scenario)
                    outcomes[index] = outcome
                    sources[index] = "resumed"
                    continue
                if self.cache is not None:
                    hit = self.cache.get(digest)
                    if hit is not None:
                        outcomes[index] = _relabel(hit, scenario)
                        sources[index] = "cache"
                        continue
                slots = pending.setdefault(digest, [])
                if slots:
                    sources[index] = "deduped"
                slots.append(index)

            # Announce the cells that were ready before execution started.
            for index in range(total):
                if outcomes[index] is not None:
                    done += 1
                    self._announce(done, total, index, scenarios[index],
                                   outcomes[index], sources[index])
            next_flush = self._flush(outcomes, sources, digests, next_flush)

            # Execute one representative per distinct digest; completion
            # order is backend-dependent, input order is restored on write.
            representatives = sorted(slots[0] for slots in pending.values())
            to_run = [scenarios[i] for i in representatives]
            for item in self.backend.execute(
                    to_run, self.runner,
                    timeout=self.timeout, retries=self.retries):
                if len(item) == 3:
                    position, outcome, attempts = item
                else:
                    # Legacy external backend yielding bare (index, outcome)
                    # pairs: the only attempt record is on the error itself.
                    position, outcome = item
                    attempts = getattr(outcome, "attempts", 1)
                cell_retries = max(0, attempts - 1)
                retries += cell_retries
                if position in getattr(self.backend, "degraded_positions", ()):
                    degraded += 1
                rep_index = representatives[position]
                digest = digests[rep_index]
                if isinstance(outcome, ScenarioResult) and self.cache is not None:
                    self.cache.put(digest, outcome)
                for index in pending[digest]:
                    cell_outcome = outcome
                    if isinstance(outcome, ScenarioResult):
                        cell_outcome = _relabel(outcome, scenarios[index])
                    elif index != rep_index:
                        cell_outcome = dataclasses.replace(
                            outcome, scenario=scenarios[index])
                    if isinstance(cell_outcome, CellError):
                        errors += 1
                        first_error = first_error or cell_outcome
                    outcomes[index] = cell_outcome
                    sources[index] = sources[index] or "executed"
                    done += 1
                    self._announce(done, total, index, scenarios[index],
                                   cell_outcome, sources[index],
                                   retries=cell_retries)
                next_flush = self._flush(outcomes, sources, digests, next_flush)

            if next_flush != total:  # pragma: no cover - backend bug guard
                missing = [i for i in range(total) if outcomes[i] is None]
                raise ScenarioError(
                    f"backend {self.backend.name!r} returned no outcome for "
                    f"cells {missing}"
                )
        finally:
            self.sink.finish()

        report = GridReport(
            total=total,
            executed=sum(1 for s in sources if s == "executed"),
            cache_hits=sum(1 for s in sources if s == "cache"),
            deduped=sum(1 for s in sources if s == "deduped"),
            resumed=sum(1 for s in sources if s == "resumed"),
            errors=errors,
            outcomes=list(outcomes) if self.collect else None,
            retries=retries,
            degraded=degraded,
        )
        if self.strict and first_error is not None:
            name = first_error.scenario.name or first_error.scenario.workload
            raise ScenarioError(
                f"grid cell {name!r} failed ({first_error.kind}): "
                f"{first_error.message}"
            )
        return report

    # ------------------------------------------------------------------
    def _announce(self, done: int, total: int, index: int, scenario: Scenario,
                  outcome: object, source: str, *, retries: int = 0) -> None:
        if self.progress is not None:
            self.progress(ProgressEvent(done, total, index, scenario,
                                        outcome, source, retries))

    def _flush(self, outcomes: list, sources: Sequence[str],
               digests: Sequence[str], next_flush: int) -> int:
        """Write the contiguous ready prefix to the sink, in input order."""
        while next_flush < len(outcomes) and outcomes[next_flush] is not None:
            if sources[next_flush] != "resumed":  # resumed rows already exist
                self.sink.write(next_flush, digests[next_flush],
                                outcomes[next_flush])
            if not self.collect:
                # Streaming mode: the sink is the only consumer, so written
                # outcomes are dropped to keep memory flat on huge grids.
                outcomes[next_flush] = _FLUSHED
            next_flush += 1
        return next_flush

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (f"GridSession(backend={self.backend.name!r}, "
                f"sink={self.sink.name!r}, cache={self.cache!r})")

"""The declarative scenario specification: frozen, JSON-serializable dataclasses.

A :class:`Scenario` captures everything one end-to-end PPA experiment needs —
which workload (or explicit topology), source rates, which planner under
which budget, the engine configuration, the failure schedule and the run
duration — as plain data.  ``to_dict()``/``from_dict()`` round-trip through
JSON exactly, so scenarios can live in files, be shipped to worker processes
and be expanded into parameter grids.

>>> from repro.scenarios import Scenario, FailureSpec
>>> s = Scenario(workload="synthetic", planner="greedy", budget=4,
...              failures=(FailureSpec("correlated", at=45.0),))
>>> Scenario.from_dict(s.to_dict()) == s
True
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

from repro.errors import ScenarioError
from repro.topology.graph import StreamEdge, Topology
from repro.topology.operators import OperatorKind, OperatorSpec
from repro.topology.partitioning import Partitioning


def _jsonify(value: Any) -> Any:
    """Normalise ``value`` to JSON-native types (tuples become lists)."""
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ScenarioError(
        f"scenario parameters must be JSON-serializable, got {type(value).__name__}"
    )


def _check_keys(kind: str, data: Mapping[str, Any], allowed: Sequence[str]) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ScenarioError(
            f"unknown {kind} field(s) {unknown}; allowed: {sorted(allowed)}"
        )


@dataclass(frozen=True)
class OperatorDef:
    """Serializable description of one operator of a :class:`TopologyRecipe`."""

    name: str
    parallelism: int
    kind: str = "independent"
    selectivity: float = 1.0
    task_weights: tuple[float, ...] = ()

    def to_spec(self) -> OperatorSpec:
        """The validated :class:`~repro.topology.operators.OperatorSpec`."""
        try:
            kind = OperatorKind(self.kind)
        except ValueError:
            choices = ", ".join(repr(k.value) for k in OperatorKind)
            raise ScenarioError(
                f"operator {self.name!r}: unknown kind {self.kind!r}; one of {choices}"
            ) from None
        return OperatorSpec(self.name, self.parallelism, kind,
                            selectivity=self.selectivity,
                            task_weights=self.task_weights)

    def to_dict(self) -> dict[str, Any]:
        """JSON-native representation."""
        out: dict[str, Any] = {"name": self.name, "parallelism": self.parallelism,
                               "kind": self.kind, "selectivity": self.selectivity}
        if self.task_weights:
            out["task_weights"] = list(self.task_weights)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OperatorDef":
        """Inverse of :meth:`to_dict` (rejects unknown keys)."""
        _check_keys("operator", data, ("name", "parallelism", "kind",
                                       "selectivity", "task_weights"))
        return cls(
            name=data["name"], parallelism=int(data["parallelism"]),
            kind=data.get("kind", "independent"),
            selectivity=float(data.get("selectivity", 1.0)),
            task_weights=tuple(float(w) for w in data.get("task_weights", ())),
        )


@dataclass(frozen=True)
class EdgeDef:
    """Serializable description of one stream edge of a :class:`TopologyRecipe`."""

    upstream: str
    downstream: str
    pattern: str = "full"

    def to_edge(self) -> StreamEdge:
        """The validated :class:`~repro.topology.graph.StreamEdge`."""
        try:
            pattern = Partitioning(self.pattern)
        except ValueError:
            choices = ", ".join(repr(p.value) for p in Partitioning)
            raise ScenarioError(
                f"edge {self.upstream!r}->{self.downstream!r}: unknown pattern "
                f"{self.pattern!r}; one of {choices}"
            ) from None
        return StreamEdge(self.upstream, self.downstream, pattern)

    def to_dict(self) -> dict[str, Any]:
        """JSON-native representation."""
        return {"upstream": self.upstream, "downstream": self.downstream,
                "pattern": self.pattern}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EdgeDef":
        """Inverse of :meth:`to_dict` (rejects unknown keys)."""
        _check_keys("edge", data, ("upstream", "downstream", "pattern"))
        return cls(data["upstream"], data["downstream"],
                   data.get("pattern", "full"))


@dataclass(frozen=True)
class TopologyRecipe:
    """A serializable topology blueprint: operators plus edges.

    Unlike :class:`~repro.topology.graph.Topology` (validated, with cached
    adjacency), a recipe is pure data that survives JSON round-trips;
    :meth:`build` materialises and validates it.
    """

    operators: tuple[OperatorDef, ...]
    edges: tuple[EdgeDef, ...]

    def build(self) -> Topology:
        """Materialise the validated :class:`Topology`."""
        return Topology([op.to_spec() for op in self.operators],
                        [e.to_edge() for e in self.edges])

    def to_dict(self) -> dict[str, Any]:
        """JSON-native representation."""
        return {"operators": [op.to_dict() for op in self.operators],
                "edges": [e.to_dict() for e in self.edges]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologyRecipe":
        """Inverse of :meth:`to_dict` (rejects unknown keys)."""
        _check_keys("topology", data, ("operators", "edges"))
        return cls(
            operators=tuple(OperatorDef.from_dict(op) for op in data.get("operators", ())),
            edges=tuple(EdgeDef.from_dict(e) for e in data.get("edges", ())),
        )

    @classmethod
    def from_topology(cls, topology: Topology) -> "TopologyRecipe":
        """Reverse-engineer a recipe from a built topology (for serialization)."""
        return cls(
            operators=tuple(
                OperatorDef(spec.name, spec.parallelism, spec.kind.value,
                            spec.selectivity, spec.task_weights)
                for spec in topology.operators()
            ),
            edges=tuple(
                EdgeDef(e.upstream, e.downstream, e.pattern.value)
                for e in topology.edges()
            ),
        )


@dataclass(frozen=True)
class FailureSpec:
    """One scheduled failure-injection event.

    ``model`` names an entry of the failure-model registry; ``params`` are
    forwarded to it (e.g. ``{"operator": "O2", "index": 0}`` for
    ``"single-task"``, or ``{"k": 5, "seed": 3}`` for ``"random-k"``).
    """

    model: str
    at: float = 45.0
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ScenarioError(f"failure time must be >= 0, got {self.at}")
        object.__setattr__(self, "params", _jsonify(self.params))

    def to_dict(self) -> dict[str, Any]:
        """JSON-native representation."""
        return {"model": self.model, "at": self.at, "params": _jsonify(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FailureSpec":
        """Inverse of :meth:`to_dict` (rejects unknown keys)."""
        _check_keys("failure", data, ("model", "at", "params"))
        if "model" not in data:
            raise ScenarioError(f"failure spec needs a 'model' field, got {dict(data)!r}")
        return cls(model=data["model"], at=float(data.get("at", 45.0)),
                   params=dict(data.get("params", {})))


@dataclass(frozen=True)
class Scenario:
    """One declarative end-to-end experiment: workload, plan, failures, run.

    Fields
    ------
    name:
        Free-form label carried into results and reports.
    workload:
        Name in the workload registry (``"synthetic"``, ``"worldcup"``,
        ``"traffic"``, ``"zipf"``, ``"custom"``, ...).  Empty (the default)
        resolves to ``"custom"`` when an explicit ``topology`` is given and
        to ``"synthetic"`` otherwise; an explicitly named workload is never
        rewritten.
    workload_params:
        Keyword arguments for the workload factory (rates, windows, scales).
    topology:
        Optional explicit :class:`TopologyRecipe`.  When set, the workload
        defaults to ``"custom"`` semantics: the recipe is built and run with
        generic windowed-selectivity logic and uniform-rate sources.
    planner / planner_params:
        Name in the planner registry plus factory keyword arguments.
    objective:
        ``"OF"`` (Output Fidelity, the paper's metric) or ``"IC"``.
    budget / budget_fraction:
        Active-replication budget as an absolute task count or as a fraction
        of the topology's tasks (mutually exclusive; both unset means 0).
    engine:
        :class:`~repro.engine.config.EngineConfig` overrides, plus the
        special keys ``"costs"`` (cost-model overrides) and
        ``"source_replay_window_batches"``.
    recovery:
        Fault-tolerance scheme, by
        :data:`~repro.engine.recovery.RECOVERY_SCHEMES` registry name
        (``"ppa"``, ``"checkpoint-replay"``, ``"source-replay"``,
        ``"active-standby"``, ``"approximate-ft"``, ``"k-safe"``,
        ``"adaptive-checkpoint"``, ...).  Empty (the default) keeps the
        engine's default scheme (``"ppa"``) *and* is omitted from
        ``to_dict()``, so the scenario digest — and therefore every
        existing cache entry — is unchanged for scenarios that never
        select a scheme.
    recovery_params:
        Keyword arguments for the scheme factory (e.g.
        ``{"fidelity_bound": 0.2}`` for ``"approximate-ft"``).  Empty is
        omitted from ``to_dict()``, same digest rule as ``recovery``.
    quality:
        Tentative-output quality measurement settings (the paper's
        Fig. 12/13 axis).  Non-empty enables the measurement: the runner
        compares the run's sink outputs against a failure-free baseline
        and reports the mean accuracy as ``ScenarioResult.output_quality``.
        Keys: ``measure_from`` (seconds; default: the first failure time)
        and ``measure_until`` (default: near the run's end).  Empty (the
        default) skips the baseline run entirely and is omitted from
        ``to_dict()``, same digest rule as ``recovery``.
    failures:
        The failure schedule, earliest first.
    duration:
        Virtual seconds of stream input per run.
    seed:
        Base seed for seeded failure models and randomised workloads.
    """

    name: str = ""
    workload: str = ""
    workload_params: dict[str, Any] = field(default_factory=dict)
    topology: TopologyRecipe | None = None
    planner: str = "structure-aware"
    planner_params: dict[str, Any] = field(default_factory=dict)
    objective: str = "OF"
    budget: int | None = None
    budget_fraction: float | None = None
    engine: dict[str, Any] = field(default_factory=dict)
    recovery: str = ""
    recovery_params: dict[str, Any] = field(default_factory=dict)
    quality: dict[str, Any] = field(default_factory=dict)
    failures: tuple[FailureSpec, ...] = ()
    duration: float = 60.0
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "workload_params", _jsonify(self.workload_params))
        object.__setattr__(self, "planner_params", _jsonify(self.planner_params))
        object.__setattr__(self, "engine", _jsonify(self.engine))
        object.__setattr__(self, "recovery_params", _jsonify(self.recovery_params))
        object.__setattr__(self, "quality", _jsonify(self.quality))
        object.__setattr__(self, "failures", tuple(self.failures))
        if not self.workload:
            # Unset workload: an explicit recipe means "run my topology",
            # otherwise default to the paper's Fig. 6 workload.  Explicitly
            # named workloads are never rewritten (a topology combined with
            # a non-"custom" name is rejected at run time instead).
            object.__setattr__(
                self, "workload",
                "custom" if self.topology is not None else "synthetic",
            )
        if self.budget is not None and self.budget_fraction is not None:
            raise ScenarioError("set budget or budget_fraction, not both")
        if self.budget is not None and self.budget < 0:
            raise ScenarioError(f"budget must be >= 0, got {self.budget}")
        if self.budget_fraction is not None and not 0.0 <= self.budget_fraction <= 1.0:
            raise ScenarioError(
                f"budget_fraction must be within [0, 1], got {self.budget_fraction}"
            )
        if self.duration <= 0:
            raise ScenarioError(f"duration must be positive, got {self.duration}")
        if self.objective not in ("OF", "IC"):
            raise ScenarioError(
                f"objective must be 'OF' or 'IC', got {self.objective!r}"
            )
        if not isinstance(self.recovery, str):
            raise ScenarioError(
                f"recovery must be a scheme name string, got "
                f"{type(self.recovery).__name__}"
            )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-native representation; :meth:`from_dict` is the exact inverse."""
        out: dict[str, Any] = {
            "name": self.name,
            "workload": self.workload,
            "workload_params": _jsonify(self.workload_params),
            "planner": self.planner,
            "planner_params": _jsonify(self.planner_params),
            "objective": self.objective,
            "budget": self.budget,
            "budget_fraction": self.budget_fraction,
            "engine": _jsonify(self.engine),
            "failures": [f.to_dict() for f in self.failures],
            "duration": self.duration,
            "seed": self.seed,
        }
        if self.topology is not None:
            out["topology"] = self.topology.to_dict()
        if self.recovery:
            # Omitted when default so the scenario digest (and every cache
            # entry keyed on it) is unchanged for scheme-less scenarios.
            out["recovery"] = self.recovery
        if self.recovery_params:
            # Same digest rule: only scenarios that set scheme parameters
            # carry them.
            out["recovery_params"] = _jsonify(self.recovery_params)
        if self.quality:
            # Same digest rule: only quality-measuring scenarios carry it.
            out["quality"] = _jsonify(self.quality)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Build a scenario from :meth:`to_dict` output (rejects unknown keys)."""
        _check_keys("scenario", data, (
            "name", "workload", "workload_params", "topology", "planner",
            "planner_params", "objective", "budget", "budget_fraction",
            "engine", "recovery", "recovery_params", "quality", "failures",
            "duration", "seed",
        ))
        topology = data.get("topology")
        budget = data.get("budget")
        fraction = data.get("budget_fraction")
        return cls(
            name=data.get("name", ""),
            workload=data.get("workload", ""),
            workload_params=dict(data.get("workload_params", {})),
            topology=TopologyRecipe.from_dict(topology) if topology is not None else None,
            planner=data.get("planner", "structure-aware"),
            planner_params=dict(data.get("planner_params", {})),
            objective=data.get("objective", "OF"),
            budget=int(budget) if budget is not None else None,
            budget_fraction=float(fraction) if fraction is not None else None,
            engine=dict(data.get("engine", {})),
            recovery=str(data.get("recovery", "")),
            recovery_params=dict(data.get("recovery_params", {})),
            quality=dict(data.get("quality", {})),
            failures=tuple(FailureSpec.from_dict(f) for f in data.get("failures", ())),
            duration=float(data.get("duration", 60.0)),
            seed=int(data.get("seed", 0)),
        )

    def to_json(self, **dumps_kwargs: Any) -> str:
        """The scenario as a JSON document."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Parse a scenario from a JSON document."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ScenarioError(
                f"a scenario JSON document must be an object, got {type(data).__name__}"
            )
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_overrides(self, **overrides: Any) -> "Scenario":
        """A copy with fields replaced; dotted keys update dict fields.

        ``engine.checkpoint_interval=5.0`` replaces one key inside the
        ``engine`` mapping while keeping the rest — the form grid axes use.
        """
        plain: dict[str, Any] = {}
        nested: dict[str, dict[str, Any]] = {}
        for key, value in overrides.items():
            if "." in key:
                head, _, tail = key.partition(".")
                nested.setdefault(head, {})[tail] = value
            else:
                plain[key] = value
        for head, updates in nested.items():
            # A plain override of the same field ("engine": {...}) is the new
            # base; the dotted keys then apply on top of it.
            current = plain.get(head, getattr(self, head, None))
            if not isinstance(current, dict):
                raise ScenarioError(
                    f"dotted override {head!r} requires a mapping field; "
                    f"Scenario.{head} is {type(current).__name__}"
                )
            merged = dict(current)
            merged.update(updates)
            plain[head] = merged
        try:
            return replace(self, **plain)
        except TypeError as exc:
            raise ScenarioError(f"invalid scenario override: {exc}") from None

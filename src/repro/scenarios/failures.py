"""Built-in failure models for the scenario layer.

A failure model turns a :class:`~repro.scenarios.spec.FailureSpec` into the
concrete set of victim tasks for one topology.  The engine then kills every
node hosting a victim — matching how Sec. VI injects failures (correlated
failures kill many worker nodes at once).

Models registered here:

* ``"single-task"`` — one task, by operator name and index;
* ``"tasks"`` — an explicit task list (``[["O1", 0], ["O2", 1]]``);
* ``"correlated"`` — every task of the given operators (default: all
  non-source operators, the paper's worst-case correlated failure);
* ``"random-k"`` — ``k`` tasks sampled without replacement, deterministic
  in the seed;
* ``"unreplicated"`` — every task outside the replication plan (the
  Fig. 12/13 tentative-quality outage).

New models plug in with ``@FAILURE_MODELS.register("name")``; the callable
receives ``(topology, plan, *, seed, **params)`` and returns the victim
tasks.
"""

from __future__ import annotations

import random
from typing import AbstractSet, Iterable, Sequence

from repro.errors import ScenarioError
from repro.scenarios.registry import FAILURE_MODELS
from repro.topology.graph import Topology
from repro.topology.operators import TaskId


def _task_from_param(topology: Topology, value: object) -> TaskId:
    """Parse ``["O1", 0]`` / ``"O1[0]"`` / ``TaskId`` into a validated TaskId."""
    if isinstance(value, TaskId):
        task = value
    elif isinstance(value, str) and value.endswith("]") and "[" in value:
        operator, _, index = value[:-1].partition("[")
        try:
            task = TaskId(operator, int(index))
        except ValueError:
            raise ScenarioError(f"malformed task reference {value!r}") from None
    elif isinstance(value, Sequence) and not isinstance(value, str) and len(value) == 2:
        try:
            task = TaskId(str(value[0]), int(value[1]))
        except (TypeError, ValueError):
            raise ScenarioError(f"malformed task reference {value!r}") from None
    else:
        raise ScenarioError(
            f"task references must be [operator, index] pairs or 'Op[i]' "
            f"strings, got {value!r}"
        )
    if task not in topology.tasks():
        raise ScenarioError(f"failure references unknown task {task}")
    return task


def synthetic_tasks(topology: Topology) -> tuple[TaskId, ...]:
    """All non-source tasks — the tasks the paper's experiments kill."""
    return tuple(
        t for t in topology.tasks()
        if not topology.operator(t.operator).is_source
    )


@FAILURE_MODELS.register("single-task")
def single_task(topology: Topology, plan: AbstractSet[TaskId], *, seed: int,
                operator: str, index: int = 0) -> tuple[TaskId, ...]:
    """One task of ``operator`` fails (Fig. 7's single-node failure)."""
    task = TaskId(topology.operator(operator).name, int(index))
    if task not in topology.tasks():
        raise ScenarioError(f"failure references unknown task {task}")
    return (task,)


@FAILURE_MODELS.register("tasks")
def explicit_tasks(topology: Topology, plan: AbstractSet[TaskId], *, seed: int,
                   tasks: Iterable[object]) -> tuple[TaskId, ...]:
    """An explicit victim list, each entry ``[operator, index]`` or ``"Op[i]"``."""
    victims = tuple(_task_from_param(topology, t) for t in tasks)
    if not victims:
        raise ScenarioError("'tasks' failure model needs at least one task")
    return victims


@FAILURE_MODELS.register("correlated")
def correlated(topology: Topology, plan: AbstractSet[TaskId], *, seed: int,
               operators: Sequence[str] | None = None) -> tuple[TaskId, ...]:
    """Every task of ``operators`` fails at once (default: all non-sources)."""
    if operators is None:
        return synthetic_tasks(topology)
    victims: list[TaskId] = []
    for name in operators:
        victims.extend(topology.tasks_of(name))
    if not victims:
        raise ScenarioError("'correlated' failure model selected no tasks")
    return tuple(victims)


@FAILURE_MODELS.register("random-k")
def random_k(topology: Topology, plan: AbstractSet[TaskId], *, seed: int,
             k: int, include_sources: bool = False) -> tuple[TaskId, ...]:
    """``k`` victims drawn without replacement, deterministic in the seed."""
    eligible = sorted(
        topology.tasks() if include_sources else synthetic_tasks(topology)
    )
    if not 1 <= k <= len(eligible):
        raise ScenarioError(
            f"'random-k' needs 1 <= k <= {len(eligible)} eligible tasks, got k={k}"
        )
    rng = random.Random(seed)
    return tuple(sorted(rng.sample(eligible, k)))


@FAILURE_MODELS.register("unreplicated")
def unreplicated(topology: Topology, plan: AbstractSet[TaskId], *, seed: int,
                 include_sources: bool = False) -> tuple[TaskId, ...]:
    """Every task outside the plan fails — the worst case the plan defends."""
    eligible = (
        topology.tasks() if include_sources else synthetic_tasks(topology)
    )
    return tuple(t for t in eligible if t not in plan)

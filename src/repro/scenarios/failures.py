"""Built-in failure models for the scenario layer.

A failure model turns a :class:`~repro.scenarios.spec.FailureSpec` into the
concrete set of victim tasks for one topology.  The engine then kills every
node hosting a victim — matching how Sec. VI injects failures (correlated
failures kill many worker nodes at once).

Models registered here:

* ``"single-task"`` — one task, by operator name and index;
* ``"tasks"`` — an explicit task list (``[["O1", 0], ["O2", 1]]``);
* ``"correlated"`` — every task of the given operators (default: all
  non-source operators, the paper's worst-case correlated failure);
* ``"random-k"`` — ``k`` tasks sampled without replacement, deterministic
  in the seed;
* ``"unreplicated"`` — every task outside the replication plan (the
  Fig. 12/13 tentative-quality outage);
* ``"rack-correlated"`` (alias ``"rack_correlated"``) — every task placed
  on a node of the failing rack(s), derived from a node→rack placement map
  in ``failure.params`` (the paper's motivating correlated-failure domain:
  a shared switch or PDU takes out a whole rack of workers);
* ``"rolling-restart"`` — kills the victims one at a time on a stagger
  interval (scheduled maintenance: each node goes down, recovers, then the
  next one is taken down);
* ``"flapping"`` — repeated kill/recover cycles of the same victims (the
  flapping axis of the recovery-benchmarking work, Vogel et al.,
  arXiv:2404.06203): each cycle kills, waits ``down`` seconds, restores
  the nodes, waits ``up`` seconds, kills again;
* ``"detection-jitter"`` — wraps another model and adds a randomized
  per-victim detection delay on top of the heartbeat (detection-time
  jitter, same benchmarking axis); deterministic in the seed.

New models plug in with ``@FAILURE_MODELS.register("name")``; the callable
receives ``(topology, plan, *, seed, **params)`` and returns the victim
tasks — either a flat sequence (every victim dies at ``FailureSpec.at``) or
a sequence of :class:`FailureWave` entries whose offsets stagger the kills
relative to ``FailureSpec.at``.  A wave may also carry ``restores`` (tasks
whose nodes come back up at the wave's offset) and a ``detect_delay``
(extra per-task detection latency for that wave's kills).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import AbstractSet, Iterable, Mapping, Sequence

from repro.engine.cluster import placement_node_map
from repro.errors import ScenarioError
from repro.scenarios.registry import FAILURE_MODELS
from repro.topology.graph import Topology
from repro.topology.operators import TaskId


@dataclass(frozen=True)
class FailureWave:
    """One batch of simultaneous kills within a failure model's schedule.

    ``offset`` is in seconds relative to the owning
    :class:`~repro.scenarios.spec.FailureSpec`'s ``at`` time.  ``restores``
    names tasks whose (previously killed) nodes come back up at the same
    offset — they run *before* the wave's kills, so a wave may bounce a
    node in place.  ``detect_delay`` adds per-task detection latency to
    this wave's kills on top of the detecting heartbeat.
    """

    offset: float
    tasks: tuple[TaskId, ...]
    restores: tuple[TaskId, ...] = ()
    detect_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ScenarioError(
                f"failure wave offset must be >= 0, got {self.offset}"
            )
        if self.detect_delay < 0:
            raise ScenarioError(
                f"failure wave detect_delay must be >= 0, got {self.detect_delay}"
            )
        object.__setattr__(self, "tasks", tuple(self.tasks))
        object.__setattr__(self, "restores", tuple(self.restores))
        if not self.tasks and not self.restores:
            raise ScenarioError(
                "a failure wave must kill or restore at least one task"
            )


def as_waves(victims: object) -> tuple[FailureWave, ...]:
    """Normalise a failure model's return value to a wave schedule.

    A flat task sequence becomes a single wave at offset 0; a sequence of
    :class:`FailureWave` entries is ordered by offset (stable for ties).
    """
    if isinstance(victims, FailureWave):
        return (victims,)
    items = list(victims)  # type: ignore[arg-type]
    if items and all(isinstance(v, FailureWave) for v in items):
        return tuple(sorted(items, key=lambda w: w.offset))
    if any(isinstance(v, FailureWave) for v in items):
        raise ScenarioError(
            "a failure model must return either tasks or FailureWaves, "
            "not a mixture"
        )
    return (FailureWave(0.0, tuple(items)),) if items else ()


def parse_task_string(value: str) -> TaskId | None:
    """Parse the serialized ``"Op[i]"`` task spelling; ``None`` if malformed.

    The string form is owned by :meth:`TaskId.parse
    <repro.topology.operators.TaskId.parse>` (the topology layer), so the
    engine's recovery schemes and the scenario layer agree on it; this
    wrapper stays as the scenario-layer spelling.
    """
    return TaskId.parse(value)


def _task_from_param(topology: Topology, value: object) -> TaskId:
    """Parse ``["O1", 0]`` / ``"O1[0]"`` / ``TaskId`` into a validated TaskId."""
    if isinstance(value, TaskId):
        task = value
    elif isinstance(value, str) and value.endswith("]") and "[" in value:
        parsed = parse_task_string(value)
        if parsed is None:
            raise ScenarioError(f"malformed task reference {value!r}")
        task = parsed
    elif isinstance(value, Sequence) and not isinstance(value, str) and len(value) == 2:
        try:
            task = TaskId(str(value[0]), int(value[1]))
        except (TypeError, ValueError):
            raise ScenarioError(f"malformed task reference {value!r}") from None
    else:
        raise ScenarioError(
            f"task references must be [operator, index] pairs or 'Op[i]' "
            f"strings, got {value!r}"
        )
    if task not in topology.tasks():
        raise ScenarioError(f"failure references unknown task {task}")
    return task


def synthetic_tasks(topology: Topology) -> tuple[TaskId, ...]:
    """All non-source tasks — the tasks the paper's experiments kill."""
    return tuple(
        t for t in topology.tasks()
        if not topology.operator(t.operator).is_source
    )


@FAILURE_MODELS.register("single-task")
def single_task(topology: Topology, plan: AbstractSet[TaskId], *, seed: int,
                operator: str, index: int = 0) -> tuple[TaskId, ...]:
    """One task of ``operator`` fails (Fig. 7's single-node failure)."""
    task = TaskId(topology.operator(operator).name, int(index))
    if task not in topology.tasks():
        raise ScenarioError(f"failure references unknown task {task}")
    return (task,)


@FAILURE_MODELS.register("tasks")
def explicit_tasks(topology: Topology, plan: AbstractSet[TaskId], *, seed: int,
                   tasks: Iterable[object]) -> tuple[TaskId, ...]:
    """An explicit victim list, each entry ``[operator, index]`` or ``"Op[i]"``."""
    victims = tuple(_task_from_param(topology, t) for t in tasks)
    if not victims:
        raise ScenarioError("'tasks' failure model needs at least one task")
    return victims


@FAILURE_MODELS.register("correlated")
def correlated(topology: Topology, plan: AbstractSet[TaskId], *, seed: int,
               operators: Sequence[str] | None = None) -> tuple[TaskId, ...]:
    """Every task of ``operators`` fails at once (default: all non-sources)."""
    if operators is None:
        return synthetic_tasks(topology)
    victims: list[TaskId] = []
    for name in operators:
        victims.extend(topology.tasks_of(name))
    if not victims:
        raise ScenarioError("'correlated' failure model selected no tasks")
    return tuple(victims)


@FAILURE_MODELS.register("random-k")
def random_k(topology: Topology, plan: AbstractSet[TaskId], *, seed: int,
             k: int, include_sources: bool = False) -> tuple[TaskId, ...]:
    """``k`` victims drawn without replacement, deterministic in the seed."""
    eligible = sorted(
        topology.tasks() if include_sources else synthetic_tasks(topology)
    )
    if not 1 <= k <= len(eligible):
        raise ScenarioError(
            f"'random-k' needs 1 <= k <= {len(eligible)} eligible tasks, got k={k}"
        )
    rng = random.Random(seed)
    return tuple(sorted(rng.sample(eligible, k)))


@FAILURE_MODELS.register("rack-correlated")
def rack_correlated(topology: Topology, plan: AbstractSet[TaskId], *, seed: int,
                    placement: Mapping[str, str],
                    racks: Sequence[str] | str | None = None,
                    rack: str | None = None,
                    assignment: Mapping[str, object] | None = None,
                    include_sources: bool = True) -> tuple[TaskId, ...]:
    """Every task on a node of the failing rack(s) dies at once.

    ``placement`` maps node name → rack id; ``racks`` (or the singular
    ``rack``) names which rack(s) fail.  Tasks are placed on the nodes
    round-robin in ``placement``'s key order — mirroring the engine
    cluster's default placement — unless ``assignment`` pins specific tasks
    (``{"O2[0]": "node-a", ...}``) to nodes explicitly; unpinned tasks keep
    their round-robin slot.  Set ``include_sources=False`` to keep source
    tasks alive even when their rack fails.

    Example ``failure.params``::

        {"placement": {"n0": "rack-a", "n1": "rack-a", "n2": "rack-b"},
         "racks": ["rack-a"]}
    """
    if not isinstance(placement, Mapping) or not placement:
        raise ScenarioError(
            "'rack-correlated' needs a non-empty 'placement' mapping of "
            "node name -> rack id"
        )
    nodes = [str(n) for n in placement]
    node_racks = {str(n): str(r) for n, r in placement.items()}
    if rack is not None and racks is not None:
        raise ScenarioError("'rack-correlated': pass racks or rack, not both")
    if rack is not None:
        racks = (rack,)
    elif isinstance(racks, str):
        racks = (racks,)
    if not racks:
        raise ScenarioError(
            "'rack-correlated' needs 'racks' (or 'rack') naming the failing "
            "rack(s)"
        )
    known_racks = set(node_racks.values())
    failing = []
    for name in racks:
        name = str(name)
        if name not in known_racks:
            choices = ", ".join(repr(r) for r in sorted(known_racks))
            raise ScenarioError(
                f"'rack-correlated': unknown rack {name!r}; placement has "
                f"{choices}"
            )
        failing.append(name)
    failing_set = set(failing)

    pins: dict[TaskId, str] = {}
    if assignment:
        for ref, node_name in assignment.items():
            task = _task_from_param(topology, ref)
            node_name = str(node_name)
            if node_name not in node_racks:
                known = ", ".join(repr(n) for n in nodes)
                raise ScenarioError(
                    f"'rack-correlated': task {task} assigned to unknown "
                    f"node {node_name!r}; placement has {known}"
                )
            pins[task] = node_name
    # Shared with the engine's k-safe scheme, so the blast radius this model
    # kills is exactly the one replica placement avoids.
    node_of = placement_node_map(topology.tasks(), nodes, pins)

    victims = tuple(
        task for task in topology.tasks()
        if node_racks[node_of[task]] in failing_set
        and (include_sources or not topology.operator(task.operator).is_source)
    )
    if not victims:
        raise ScenarioError(
            f"'rack-correlated': no tasks are placed on rack(s) "
            f"{sorted(failing_set)}"
        )
    return victims


# Underscore alias so the model is reachable under both spellings.
FAILURE_MODELS.register("rack_correlated")(rack_correlated)


@FAILURE_MODELS.register("rolling-restart")
def rolling_restart(topology: Topology, plan: AbstractSet[TaskId], *, seed: int,
                    stagger: float = 10.0,
                    operators: Sequence[str] | None = None,
                    tasks: Iterable[object] | None = None,
                    include_sources: bool = False) -> tuple[FailureWave, ...]:
    """Kill the victims one at a time, ``stagger`` seconds apart.

    The scheduled-maintenance scenario the one-shot correlated models cannot
    express: each node is taken down, given time to recover, and only then
    is the next one killed.  Victims default to every non-source task
    (``include_sources=True`` adds sources); ``operators`` restricts to the
    named operators and ``tasks`` pins an explicit list (mutually
    exclusive).  Order is deterministic: topology order, or the given order
    for an explicit ``tasks`` list.

    Example ``failure.params``::

        {"stagger": 8.0, "operators": ["O2", "O3"]}
    """
    if stagger < 0:
        raise ScenarioError(
            f"'rolling-restart' stagger must be >= 0, got {stagger}"
        )
    if operators is not None and tasks is not None:
        raise ScenarioError("'rolling-restart': pass operators or tasks, not both")
    victims: list[TaskId]
    if tasks is not None:
        victims = [_task_from_param(topology, t) for t in tasks]
    elif operators is not None:
        victims = []
        for name in operators:
            victims.extend(topology.tasks_of(name))
    else:
        victims = list(
            topology.tasks() if include_sources else synthetic_tasks(topology)
        )
    if not victims:
        raise ScenarioError("'rolling-restart' selected no tasks")
    return tuple(
        FailureWave(position * stagger, (task,))
        for position, task in enumerate(victims)
    )


@FAILURE_MODELS.register("flapping")
def flapping(topology: Topology, plan: AbstractSet[TaskId], *, seed: int,
             cycles: int = 3, down: float = 4.0, up: float = 6.0,
             operators: Sequence[str] | None = None,
             tasks: Iterable[object] | None = None,
             include_sources: bool = False) -> tuple[FailureWave, ...]:
    """Repeated kill/recover cycles of the same victims.

    The flapping axis of the recovery-benchmarking suites (Vogel et al.,
    arXiv:2404.06203): a failure the system recovers from, only for the
    same nodes to fail again — stressing stale-restore handling, checkpoint
    freshness and detection bookkeeping in a way one-shot models cannot.
    Each of the ``cycles`` rounds kills the victims, waits ``down`` seconds,
    restores their nodes, waits ``up`` seconds, and kills again; the final
    round leaves them down for normal recovery.  Victim selection matches
    ``rolling-restart``: every non-source task by default, restricted by
    ``operators`` or pinned by ``tasks`` (mutually exclusive).

    Example ``failure.params``::

        {"cycles": 3, "down": 4.0, "up": 6.0, "operators": ["O2"]}
    """
    if cycles < 1:
        raise ScenarioError(f"'flapping' needs cycles >= 1, got {cycles}")
    if down <= 0:
        raise ScenarioError(f"'flapping' down time must be > 0, got {down}")
    if up < 0:
        raise ScenarioError(f"'flapping' up time must be >= 0, got {up}")
    if operators is not None and tasks is not None:
        raise ScenarioError("'flapping': pass operators or tasks, not both")
    victims: list[TaskId]
    if tasks is not None:
        victims = [_task_from_param(topology, t) for t in tasks]
    elif operators is not None:
        victims = []
        for name in operators:
            victims.extend(topology.tasks_of(name))
    else:
        victims = list(
            topology.tasks() if include_sources else synthetic_tasks(topology)
        )
    if not victims:
        raise ScenarioError("'flapping' selected no tasks")
    killed = tuple(victims)
    waves: list[FailureWave] = []
    period = down + up
    for cycle in range(cycles):
        waves.append(FailureWave(cycle * period, killed))
        if cycle < cycles - 1:
            waves.append(FailureWave(cycle * period + down, (),
                                     restores=killed))
    return tuple(waves)


@FAILURE_MODELS.register("detection-jitter")
def detection_jitter(topology: Topology, plan: AbstractSet[TaskId], *,
                     seed: int, jitter: float = 3.0,
                     base: str = "correlated",
                     base_params: Mapping[str, object] | None = None
                     ) -> tuple[FailureWave, ...]:
    """Randomized per-failure detection delay over another model's kills.

    Real failure detectors do not fire on a metronome: suspicion timeouts,
    lossy heartbeats and gossip dissemination smear detection over several
    seconds (the detection-time axis of Vogel et al., arXiv:2404.06203).
    This model delegates victim selection to ``base`` (any registered
    model, with ``base_params``) and gives each victim its own detection
    delay drawn uniformly from ``[0, jitter]`` seconds — deterministic in
    the scenario seed.  Restore entries of the base schedule pass through
    unchanged.

    Example ``failure.params``::

        {"jitter": 4.0, "base": "rolling-restart",
         "base_params": {"stagger": 2.0}}
    """
    if jitter < 0:
        raise ScenarioError(
            f"'detection-jitter' jitter must be >= 0, got {jitter}"
        )
    base = str(base)
    if base == "detection-jitter":
        raise ScenarioError("'detection-jitter' cannot wrap itself")
    model = FAILURE_MODELS.get(base)
    params = dict(base_params or {})
    waves = as_waves(model(topology, plan, seed=seed, **params))
    # Offset the stream so the wrapper's draws never collide with a base
    # model that consumed the same seed (e.g. random-k).
    rng = random.Random(seed ^ 0x9E3779B9)
    jittered: list[FailureWave] = []
    for wave in waves:
        if wave.restores and not wave.tasks:
            jittered.append(wave)
            continue
        for task in wave.tasks:
            jittered.append(FailureWave(
                wave.offset, (task,),
                detect_delay=round(rng.uniform(0.0, jitter), 6),
            ))
        if wave.restores:
            jittered.append(FailureWave(wave.offset, (),
                                        restores=wave.restores))
    return tuple(jittered)


@FAILURE_MODELS.register("unreplicated")
def unreplicated(topology: Topology, plan: AbstractSet[TaskId], *, seed: int,
                 include_sources: bool = False) -> tuple[TaskId, ...]:
    """Every task outside the plan fails — the worst case the plan defends."""
    eligible = (
        topology.tasks() if include_sources else synthetic_tasks(topology)
    )
    return tuple(t for t in eligible if t not in plan)

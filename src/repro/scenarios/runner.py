"""Execute one declarative scenario end-to-end into a structured result.

:func:`run_scenario` is the single façade the examples, the CLI and the
figure harness all share: resolve the workload, plan active replication,
configure the engine, inject the scheduled failures, run, and distil the
metrics into a :class:`ScenarioResult` (plan with provenance, fidelity
prediction vs the injected failure, recovery latencies, tentative-output
counts).
"""

from __future__ import annotations

import dataclasses
import json
import statistics
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.core.plans import (
    IC_OBJECTIVE,
    OF_OBJECTIVE,
    PlanObjective,
    ReplicationPlan,
    budget_from_fraction,
)
from repro.engine.config import CostModel, EngineConfig, PassiveStrategy
from repro.engine.engine import StreamEngine
from repro.engine.recovery import RECOVERY_SCHEMES
from repro.engine.routing import Router
from repro.errors import ScenarioError
from repro.scenarios import catalog
from repro.scenarios.failures import FailureWave, as_waves, parse_task_string
from repro.scenarios.registry import FAILURE_MODELS
from repro.scenarios.spec import FailureSpec, Scenario, _check_keys, _jsonify
from repro.topology.operators import TaskId
from repro.workloads.bundles import QueryBundle

#: Engine-dict keys that configure the engine constructor, not EngineConfig.
_ENGINE_EXTRA_KEYS = ("source_replay_window_batches",)


class WorkloadCaches:
    """Cross-run memoization scoped to one workload (grid fast path).

    Grid cells over one workload repeat three pure computations per cell:
    planning (same planner/budget on the same topology and rates), the
    OF/IC objective values (same topology/rates/task sets) and source batch
    generation (pure by the :class:`~repro.engine.logic.SourceFunction`
    contract).  A :class:`WorkloadCaches` instance — owned per distinct
    workload by :mod:`repro.scenarios.prebuilt` — memoizes all three, so a
    sweep pays for each distinct (planner, budget) and each distinct
    failure set once instead of once per cell.  Everything stored is frozen
    or append-only, so sharing across cells (and backend threads) cannot
    change results.
    """

    __slots__ = ("plans", "objective_values", "source_memos", "sink_baselines")

    def __init__(self) -> None:
        #: (planner, params, objective, budget) -> ReplicationPlan
        self.plans: dict[tuple, ReplicationPlan] = {}
        #: (kind, objective, frozen task set) -> float
        self.objective_values: dict[tuple, float] = {}
        #: TaskId -> shared MemoizedSource (see StreamEngine.source_memos).
        self.source_memos: dict[TaskId, Any] = {}
        #: (duration, batch_interval) -> failure-free sink outputs by batch
        #: index (the accurate reference of the output-quality axis).
        self.sink_baselines: dict[tuple, dict[int, tuple]] = {}


def _parse_task_ref(value: object, *, key: str) -> TaskId:
    """Parse the serialized ``"Op[i]"`` task spelling back into a TaskId."""
    task = parse_task_string(value) if isinstance(value, str) else None
    if task is None:
        raise ScenarioError(
            f"result field {key!r}: malformed task reference {value!r} "
            f"(expected 'Op[i]')"
        )
    return task


def _typed(data: Mapping[str, Any], key: str, convert: Any,
           default: Any = None, *, required: bool = False,
           nullable: bool = False) -> Any:
    """``convert(data[key])``, raising :class:`ScenarioError` naming ``key``.

    An explicit JSON ``null`` is only accepted where ``None`` is a
    meaningful value (``nullable=True``, e.g. an unfinished recovery);
    anywhere else it is malformed input, not a value to coerce.
    """
    if key not in data:
        if required:
            raise ScenarioError(f"result document is missing the {key!r} field")
        return default
    value = data[key]
    if value is None:
        if nullable:
            return None
        raise ScenarioError(f"result field {key!r} must not be null")
    try:
        return convert(value)
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"result field {key!r}: {exc}") from None


@dataclass(frozen=True)
class RecoveryOutcome:
    """One task's recovery as observed by the engine run."""

    task: TaskId
    mode: str
    fail_time: float
    detect_time: float
    recovered_time: float | None
    #: Approximate-recovery fidelity accounting (None for exact schemes):
    #: the configured divergence bound and the realized loss charged by the
    #: replay the scheme skipped.  Omitted from :meth:`to_dict` when None so
    #: exact-scheme results serialize exactly as before.
    fidelity_bound: float | None = None
    fidelity_loss: float | None = None

    @property
    def latency(self) -> float | None:
        """Detection-to-catch-up latency (the paper's definition), if finished."""
        if self.recovered_time is None:
            return None
        return self.recovered_time - self.detect_time

    def to_dict(self) -> dict[str, Any]:
        """JSON-native representation."""
        out = {"task": str(self.task), "mode": self.mode,
               "fail_time": self.fail_time, "detect_time": self.detect_time,
               "recovered_time": self.recovered_time, "latency": self.latency}
        if self.fidelity_bound is not None:
            out["fidelity_bound"] = self.fidelity_bound
        if self.fidelity_loss is not None:
            out["fidelity_loss"] = self.fidelity_loss
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RecoveryOutcome":
        """Inverse of :meth:`to_dict`; ``latency`` is derived and ignored."""
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"a recovery outcome must be an object, got {type(data).__name__}"
            )
        _check_keys("recovery", data, ("task", "mode", "fail_time",
                                       "detect_time", "recovered_time",
                                       "latency", "fidelity_bound",
                                       "fidelity_loss"))
        if "task" not in data:
            raise ScenarioError("result document is missing the 'task' field")
        return cls(
            task=_parse_task_ref(data["task"], key="task"),
            mode=str(_typed(data, "mode", str, required=True)),
            fail_time=_typed(data, "fail_time", float, required=True),
            detect_time=_typed(data, "detect_time", float, required=True),
            recovered_time=_typed(data, "recovered_time", float, nullable=True),
            fidelity_bound=_typed(data, "fidelity_bound", float, nullable=True),
            fidelity_loss=_typed(data, "fidelity_loss", float, nullable=True),
        )


@dataclass
class ScenarioResult:
    """Everything one scenario run produced, ready for tables or JSON."""

    scenario: Scenario
    plan: ReplicationPlan
    worst_case_fidelity: float
    failure_fidelity: float
    failed_tasks: tuple[TaskId, ...] = ()
    recoveries: tuple[RecoveryOutcome, ...] = ()
    batches_processed: int = 0
    tuples_processed: int = 0
    checkpoints_taken: int = 0
    batches_forged: int = 0
    complete_sink_batches: int = 0
    tentative_sink_batches: int = 0
    #: Mean sink-output accuracy vs a failure-free baseline run (the paper's
    #: Fig. 12/13 measure), only computed when the scenario requests it via
    #: ``Scenario.quality``; omitted from :meth:`to_dict` when None so runs
    #: without the quality axis serialize exactly as before.
    output_quality: float | None = None
    #: Engine-throughput profile (processed events, wall seconds, peak
    #: physical history) — only collected when the run was profiled, and
    #: machine-dependent, so it never participates in digests or
    #: result-equality comparisons of unprofiled runs.
    profile: dict[str, Any] | None = None

    # ------------------------------------------------------------------
    @property
    def recovery_latencies(self) -> tuple[float, ...]:
        """Latencies of every completed recovery."""
        return tuple(r.latency for r in self.recoveries if r.latency is not None)

    @property
    def mean_recovery_latency(self) -> float | None:
        """Mean completed recovery latency, or None when nothing recovered."""
        values = self.recovery_latencies
        if not values:
            return None
        return sum(values) / len(values)

    @property
    def max_recovery_latency(self) -> float | None:
        """Completion time of the slowest recovery (the correlated-failure view)."""
        values = self.recovery_latencies
        if not values:
            return None
        return max(values)

    @property
    def all_recovered(self) -> bool:
        """Whether every detected failure finished recovering."""
        return all(r.recovered_time is not None for r in self.recoveries)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-native representation of the full result.

        The machine-dependent ``profile`` block only appears when the run
        was profiled, so unprofiled results from different backends stay
        bit-for-bit comparable.
        """
        out = self._to_dict_base()
        if self.output_quality is not None:
            out["output_quality"] = self.output_quality
        if self.profile is not None:
            out["profile"] = dict(self.profile)
        return out

    def _to_dict_base(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario.to_dict(),
            "plan": {
                "planner": self.plan.planner,
                "budget": self.plan.budget,
                "replicated": [str(t) for t in sorted(self.plan.replicated)],
            },
            "worst_case_fidelity": self.worst_case_fidelity,
            "failure_fidelity": self.failure_fidelity,
            "failed_tasks": [str(t) for t in self.failed_tasks],
            "recoveries": [r.to_dict() for r in self.recoveries],
            "mean_recovery_latency": self.mean_recovery_latency,
            "max_recovery_latency": self.max_recovery_latency,
            "all_recovered": self.all_recovered,
            "batches_processed": self.batches_processed,
            "tuples_processed": self.tuples_processed,
            "checkpoints_taken": self.checkpoints_taken,
            "batches_forged": self.batches_forged,
            "complete_sink_batches": self.complete_sink_batches,
            "tentative_sink_batches": self.tentative_sink_batches,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_dict` output, losslessly.

        The inverse includes the nested :class:`Scenario`, the plan with its
        provenance (planner name, budget, replicated task set) and every
        :class:`RecoveryOutcome`; derived fields (``mean_recovery_latency``,
        ``max_recovery_latency``, ``all_recovered``, per-recovery
        ``latency``) are accepted and recomputed.  Malformed input raises
        :class:`ScenarioError` naming the offending key.
        """
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"a result document must be an object, got {type(data).__name__}"
            )
        _check_keys("result", data, (
            "scenario", "plan", "worst_case_fidelity", "failure_fidelity",
            "failed_tasks", "recoveries", "mean_recovery_latency",
            "max_recovery_latency", "all_recovered", "batches_processed",
            "tuples_processed", "checkpoints_taken", "batches_forged",
            "complete_sink_batches", "tentative_sink_batches",
            "output_quality", "profile",
        ))
        profile = data.get("profile")
        if profile is not None and not isinstance(profile, Mapping):
            raise ScenarioError(
                f"result field 'profile' must be an object, got "
                f"{type(profile).__name__}"
            )
        for key in ("scenario", "plan"):
            if key not in data:
                raise ScenarioError(
                    f"result document is missing the {key!r} field"
                )
        try:
            scenario = Scenario.from_dict(data["scenario"])
        except ScenarioError as exc:
            raise ScenarioError(f"result field 'scenario': {exc}") from None
        plan_data = data["plan"]
        if not isinstance(plan_data, Mapping):
            raise ScenarioError(
                f"result field 'plan' must be an object, got "
                f"{type(plan_data).__name__}"
            )
        _check_keys("result plan", plan_data, ("planner", "budget", "replicated"))
        budget = plan_data.get("budget")
        if budget is not None:
            try:
                budget = int(budget)
            except (TypeError, ValueError) as exc:
                raise ScenarioError(
                    f"result field 'plan.budget': {exc}"
                ) from None
        plan = ReplicationPlan(
            replicated=frozenset(
                _parse_task_ref(t, key="plan.replicated")
                for t in plan_data.get("replicated", ())
            ),
            planner=str(plan_data.get("planner", "")),
            budget=budget,
        )
        recoveries = data.get("recoveries", ())
        if not isinstance(recoveries, Sequence) or isinstance(recoveries, (str, bytes)):
            raise ScenarioError(
                f"result field 'recoveries' must be a list, got "
                f"{type(recoveries).__name__}"
            )
        return cls(
            scenario=scenario,
            plan=plan,
            worst_case_fidelity=_typed(data, "worst_case_fidelity", float,
                                       required=True),
            failure_fidelity=_typed(data, "failure_fidelity", float,
                                    required=True),
            failed_tasks=tuple(
                _parse_task_ref(t, key="failed_tasks")
                for t in data.get("failed_tasks", ())
            ),
            recoveries=tuple(RecoveryOutcome.from_dict(r) for r in recoveries),
            batches_processed=_typed(data, "batches_processed", int, 0),
            tuples_processed=_typed(data, "tuples_processed", int, 0),
            checkpoints_taken=_typed(data, "checkpoints_taken", int, 0),
            batches_forged=_typed(data, "batches_forged", int, 0),
            complete_sink_batches=_typed(data, "complete_sink_batches", int, 0),
            tentative_sink_batches=_typed(data, "tentative_sink_batches", int, 0),
            output_quality=_typed(data, "output_quality", float, nullable=True),
            profile=dict(profile) if profile is not None else None,
        )

    def render(self) -> str:
        """Human-readable multi-line summary (what the CLI prints)."""
        s = self.scenario
        label = s.name or s.workload
        metric = s.objective
        lines = [f"== ScenarioResult: {label} =="]
        lines.append(
            f"workload={s.workload}  planner={self.plan.planner or s.planner}"
            f"  budget={self.plan.budget}  |plan|={self.plan.usage}"
            + (f"  recovery={s.recovery}" if s.recovery else "")
        )
        lines.append(
            f"worst-case {metric}={self.worst_case_fidelity:.3f}  "
            f"{metric} under injected failures={self.failure_fidelity:.3f}"
        )
        if self.failed_tasks:
            n_rec = sum(1 for r in self.recoveries if r.recovered_time is not None)
            mean = self.mean_recovery_latency
            peak = self.max_recovery_latency
            lines.append(
                f"failures: {len(self.failed_tasks)} tasks killed; "
                f"{n_rec}/{len(self.recoveries)} recoveries finished"
                + (f", mean {mean:.2f}s, max {peak:.2f}s" if mean is not None else "")
            )
        else:
            lines.append("failures: none injected")
        lines.append(
            f"outputs: {self.complete_sink_batches} complete + "
            f"{self.tentative_sink_batches} tentative sink batches "
            f"({self.batches_forged} forged punctuations); "
            f"{self.batches_processed} batches / "
            f"{self.tuples_processed} tuples processed"
        )
        if self.output_quality is not None:
            lines.append(
                f"output quality vs failure-free baseline: "
                f"{self.output_quality:.3f}"
            )
        if self.profile:
            p = self.profile
            lines.append(
                f"profile: {p.get('sim_seconds_per_wall_second', 0.0):,.0f} "
                f"sim-s/wall-s, {p.get('events_per_second', 0.0):,.0f} "
                f"events/s ({p.get('processed_events', 0)} events in "
                f"{p.get('wall_seconds', 0.0):.3f}s wall), peak history "
                f"{p.get('peak_history_batches', 0)} batches"
            )
        return "\n".join(lines)


class ScenarioRunner:
    """Resolves a :class:`Scenario` against the registries and executes it.

    With ``profile=True`` the result carries the engine-throughput profile
    (events/second, simulated-seconds-per-wall-second, peak physical output
    history) in :attr:`ScenarioResult.profile`.

    ``bundle``/``router`` inject prebuilt workload artefacts (see
    :mod:`repro.scenarios.prebuilt`): the injected bundle must correspond to
    the scenario's workload spec and the router to the bundle's topology —
    grid sessions use this to build each distinct topology once instead of
    once per cell.  Results are identical either way.
    """

    def __init__(self, scenario: Scenario, *, profile: bool = False,
                 bundle: "QueryBundle | None" = None,
                 router: "Router | None" = None,
                 caches: "WorkloadCaches | None" = None):
        self.scenario = scenario
        self.profile = profile
        self._bundle = bundle
        self._router = router
        self._caches = caches

    # ------------------------------------------------------------------
    # Resolution steps (each usable on its own for inspection/tests)
    # ------------------------------------------------------------------
    def objective(self) -> PlanObjective:
        """The planning objective the scenario selected."""
        return OF_OBJECTIVE if self.scenario.objective == "OF" else IC_OBJECTIVE

    def bundle(self) -> QueryBundle:
        """Resolve the workload registry entry into a query bundle."""
        if self._bundle is not None:
            return self._bundle
        params = dict(self.scenario.workload_params)
        if self.scenario.topology is not None:
            if self.scenario.workload != "custom":
                raise ScenarioError(
                    "a scenario with an explicit topology must use "
                    f"workload='custom', got {self.scenario.workload!r}"
                )
            params.setdefault("recipe", self.scenario.topology)
        return catalog.make_bundle(self.scenario.workload, **params)

    def resolve_budget(self, bundle: QueryBundle) -> int:
        """The absolute replication budget for ``bundle``'s topology."""
        if self.scenario.budget is not None:
            return self.scenario.budget
        if self.scenario.budget_fraction is not None:
            return budget_from_fraction(bundle.topology, self.scenario.budget_fraction)
        return 0

    def plan(self, bundle: QueryBundle) -> ReplicationPlan:
        """Run the scenario's planner on the bundle's topology and rates.

        With shared :class:`WorkloadCaches`, identical (planner, params,
        objective, budget) requests reuse the frozen plan — planners are
        deterministic, so the memo is invisible in results.
        """
        caches = self._caches
        if caches is None:
            return self._compute_plan(bundle)
        # The factory object is part of the key (not just the name) so a
        # re-registered planner never serves plans built by its predecessor.
        key = (catalog.PLANNERS.get(self.scenario.planner),
               json.dumps(_jsonify(dict(self.scenario.planner_params)),
                          sort_keys=True),
               self.scenario.objective, self.resolve_budget(bundle))
        plan = caches.plans.get(key)
        if plan is None:
            caches.plans[key] = plan = self._compute_plan(bundle)
        return plan

    def _compute_plan(self, bundle: QueryBundle) -> ReplicationPlan:
        planner = catalog.make_planner(
            self.scenario.planner, self.objective(), **self.scenario.planner_params
        )
        return planner.plan(bundle.topology, bundle.rates, self.resolve_budget(bundle))

    def _objective_value(self, kind: str, bundle: QueryBundle,
                         tasks: frozenset) -> float:
        """Memoized OF/IC evaluation (``kind`` is ``"plan"`` or ``"failed"``)."""
        objective = self.objective()
        caches = self._caches
        if caches is not None:
            key = (kind, self.scenario.objective, tasks)
            value = caches.objective_values.get(key)
            if value is not None:
                return value
        if kind == "plan":
            value = objective.plan_value(bundle.topology, bundle.rates, tasks)
        else:
            value = objective.metric(bundle.topology, bundle.rates, tasks)
        if caches is not None:
            caches.objective_values[key] = value
        return value

    def engine_config(self, bundle: QueryBundle) -> EngineConfig:
        """The engine configuration: scenario overrides on bundle defaults."""
        overrides = dict(self.scenario.engine)
        for key in _ENGINE_EXTRA_KEYS:
            overrides.pop(key, None)
        cost_overrides = overrides.pop("costs", None)
        costs = bundle.costs
        if cost_overrides is not None:
            try:
                costs = CostModel(**{**dataclasses.asdict(bundle.costs),
                                     **dict(cost_overrides)})
            except TypeError as exc:
                raise ScenarioError(f"engine costs: {exc}") from None
        strategy = overrides.pop("passive_strategy", None)
        if strategy is not None:
            try:
                overrides["passive_strategy"] = PassiveStrategy(strategy)
            except ValueError:
                choices = ", ".join(repr(s.value) for s in PassiveStrategy)
                raise ScenarioError(
                    f"unknown passive_strategy {strategy!r}; one of {choices}"
                ) from None
        scheme = overrides.get("recovery_scheme")
        if self.scenario.recovery:
            if scheme is not None and scheme != self.scenario.recovery:
                raise ScenarioError(
                    f"scenario sets recovery={self.scenario.recovery!r} but "
                    f"engine overrides say recovery_scheme={scheme!r}; "
                    f"pick one spelling"
                )
            scheme = self.scenario.recovery
            overrides["recovery_scheme"] = scheme
        if scheme is not None and scheme not in RECOVERY_SCHEMES:
            known = ", ".join(repr(n) for n in RECOVERY_SCHEMES.names())
            raise ScenarioError(
                f"unknown recovery scheme {scheme!r}; registered schemes: "
                f"{known}"
            )
        params = {**dict(overrides.pop("recovery_params", None) or {}),
                  **self.scenario.recovery_params}
        if scheme == "k-safe" and "placement" not in params:
            # Auto-wire the scheme onto the blast-radius map the failure
            # model will actually kill: reuse the node->rack placement (and
            # any task pins) of the first rack-correlated failure spec, also
            # when it is wrapped by detection-jitter.  Without one the
            # scheme degrades to plain PPA, which is the only sound answer
            # when no failure-domain map exists.
            for spec in self.scenario.failures:
                source = dict(spec.params)
                if (spec.model == "detection-jitter"
                        and source.get("base") == "rack-correlated"):
                    source = dict(source.get("base_params") or {})
                elif spec.model != "rack-correlated":
                    continue
                if "placement" in source:
                    params["placement"] = source["placement"]
                    if "assignment" in source:
                        params.setdefault("assignment", source["assignment"])
                    break
        if params:
            overrides["recovery_params"] = params
        try:
            return EngineConfig(costs=costs, **overrides)
        except TypeError as exc:
            raise ScenarioError(f"engine config: {exc}") from None

    def failure_waves(self, spec: FailureSpec, bundle: QueryBundle,
                      plan: ReplicationPlan) -> "tuple[FailureWave, ...]":
        """Resolve one failure spec into its (possibly staggered) schedule."""
        model = FAILURE_MODELS.get(spec.model)
        params = dict(spec.params)
        seed = params.pop("seed", self.scenario.seed)
        try:
            victims = model(bundle.topology, plan.replicated,
                            seed=int(seed), **params)
        except TypeError as exc:
            raise ScenarioError(f"failure model {spec.model!r}: {exc}") from None
        return as_waves(victims)

    def victims_of(self, spec: FailureSpec, bundle: QueryBundle,
                   plan: ReplicationPlan) -> tuple[TaskId, ...]:
        """Resolve one failure spec into its flat victim task set."""
        return tuple(
            task
            for wave in self.failure_waves(spec, bundle, plan)
            for task in wave.tasks
        )

    # ------------------------------------------------------------------
    def run(self) -> ScenarioResult:
        """Execute the scenario once and collect the structured result."""
        scenario = self.scenario
        bundle = self.bundle()
        plan = self.plan(bundle)
        config = self.engine_config(bundle)

        replay_window = scenario.engine.get("source_replay_window_batches")
        engine_kwargs: dict[str, Any] = {}
        if replay_window is not None:
            engine_kwargs["source_replay_window_batches"] = int(replay_window)
        if self._router is not None:
            engine_kwargs["router"] = self._router
        if self._caches is not None:
            engine_kwargs["source_memos"] = self._caches.source_memos
        engine = StreamEngine(bundle.topology, bundle.make_logic(), config,
                              plan=plan, **engine_kwargs)

        all_victims: list[TaskId] = []
        seen: set[TaskId] = set()
        for spec in scenario.failures:
            if spec.at > scenario.duration:
                raise ScenarioError(
                    f"failure at t={spec.at:g}s is after the run ends "
                    f"(duration {scenario.duration:g}s)"
                )
            for wave in self.failure_waves(spec, bundle, plan):
                at = spec.at + wave.offset
                if at > scenario.duration:
                    raise ScenarioError(
                        f"failure model {spec.model!r} schedules a kill at "
                        f"t={at:g}s, after the run ends "
                        f"(duration {scenario.duration:g}s)"
                    )
                if wave.tasks:
                    engine.schedule_task_failure(
                        at, wave.tasks, detect_delay=wave.detect_delay
                    )
                if wave.restores:
                    engine.schedule_task_restore(at, wave.restores)
                for task in wave.tasks:
                    if task not in seen:
                        seen.add(task)
                        all_victims.append(task)

        engine.run(scenario.duration)

        worst_case = self._objective_value("plan", bundle, plan.replicated)
        failed_unreplicated = frozenset(all_victims) - plan.replicated
        failure_value = self._objective_value("failed", bundle,
                                              failed_unreplicated)

        metrics = engine.metrics
        return ScenarioResult(
            scenario=scenario,
            plan=plan,
            worst_case_fidelity=worst_case,
            failure_fidelity=failure_value,
            failed_tasks=tuple(all_victims),
            recoveries=tuple(
                RecoveryOutcome(r.task, r.mode.value, r.fail_time,
                                r.detect_time, r.recovered_time,
                                fidelity_bound=r.fidelity_bound,
                                fidelity_loss=r.fidelity_loss)
                for r in metrics.recoveries
            ),
            batches_processed=metrics.batches_processed,
            tuples_processed=metrics.tuples_processed,
            checkpoints_taken=metrics.checkpoints_taken,
            batches_forged=metrics.batches_forged,
            complete_sink_batches=len(metrics.sink_outputs(tentative=False)),
            tentative_sink_batches=len(metrics.sink_outputs(tentative=True)),
            output_quality=(self._measure_quality(bundle, config, engine)
                            if scenario.quality else None),
            profile=metrics.profile() if self.profile else None,
        )

    # ------------------------------------------------------------------
    def _measure_quality(self, bundle: QueryBundle, config: EngineConfig,
                         engine: "StreamEngine") -> float:
        """Mean sink accuracy of the failure run vs a failure-free baseline.

        The paper's Fig. 12/13 tentative-output-quality measure generalized
        to any recovery scheme: every sink batch inside the measurement
        window is compared against the same batch of a clean run with the
        bundle's accuracy function, and the scores are averaged.  Batches
        the failure run never produced score as fully lost.
        """
        scenario = self.scenario
        _check_keys("quality", scenario.quality,
                    ("measure_from", "measure_until"))
        if bundle.sink_task is None or bundle.accuracy_fn is None:
            raise ScenarioError(
                f"workload {scenario.workload!r} does not support the "
                f"output-quality axis (no sink task / accuracy function)"
            )
        interval = config.batch_interval
        try:
            # Default window: from the first injected failure (the quality
            # axis measures degradation, so pre-failure batches would only
            # dilute it) to just before the end of the run (the last
            # couple of batches may still be in flight at shutdown).
            measure_from = float(scenario.quality.get(
                "measure_from",
                min((spec.at for spec in scenario.failures), default=0.0),
            ))
            measure_until = float(scenario.quality.get(
                "measure_until", scenario.duration - 2.0 * interval,
            ))
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"quality window: {exc}") from None
        baseline = self._sink_baseline(bundle, config)
        produced = {
            record.index: record.tuples
            for record in engine.metrics.sink_records
            if record.task == bundle.sink_task
        }
        measured = []
        for index, accurate in sorted(baseline.items()):
            batch_time = (index + 1) * interval
            if measure_from <= batch_time <= measure_until:
                measured.append(
                    bundle.accuracy_fn(produced.get(index, ()), accurate)
                )
        if not measured:
            raise ScenarioError(
                f"no sink batches fall inside the quality window "
                f"[{measure_from:g}, {measure_until:g}]"
            )
        return statistics.fmean(measured)

    def _sink_baseline(self, bundle: QueryBundle, config: EngineConfig
                       ) -> dict[int, tuple]:
        """Accurate sink outputs of a failure-free run, memoized per workload."""
        key = (self.scenario.duration, config.batch_interval)
        caches = self._caches
        if caches is not None:
            hit = caches.sink_baselines.get(key)
            if hit is not None:
                return hit
        clean = EngineConfig(batch_interval=config.batch_interval,
                             checkpoint_interval=None, costs=bundle.costs)
        reference = StreamEngine(bundle.topology, bundle.make_logic(), clean)
        reference.run(self.scenario.duration)
        baseline = {
            record.index: record.tuples
            for record in reference.metrics.sink_records
            if record.task == bundle.sink_task
        }
        if caches is not None:
            caches.sink_baselines[key] = baseline
        return baseline


def run_scenario(scenario: Scenario, *, profile: bool = False) -> ScenarioResult:
    """Execute ``scenario`` end-to-end (the one-call façade).

    >>> from repro.scenarios import Scenario, FailureSpec, run_scenario
    >>> result = run_scenario(Scenario(
    ...     workload="synthetic",
    ...     workload_params={"rate_per_source": 200.0, "window_seconds": 5.0,
    ...                      "tuple_scale": 16.0},
    ...     planner="greedy", budget_fraction=0.5,
    ...     failures=(FailureSpec("single-task", at=10.0,
    ...                           params={"operator": "O2"}),),
    ...     duration=20.0,
    ... ))
    >>> 0.0 <= result.worst_case_fidelity <= 1.0 and result.all_recovered
    True
    """
    return ScenarioRunner(scenario, profile=profile).run()

"""String-keyed extension registries behind the declarative scenario API.

A :class:`Scenario <repro.scenarios.spec.Scenario>` names its planner,
workload and failure models by string; the three registries below resolve
those names to factories.  New entries plug in from *outside* the library
without touching core code:

>>> from repro.scenarios import WORKLOADS
>>> @WORKLOADS.register("tiny")
... def _tiny_bundle():
...     '''A workload someone defined in their own project.'''
...     from repro.workloads import fig6_bundle
...     return fig6_bundle(rate_per_source=100.0, window_seconds=5.0)
>>> "tiny" in WORKLOADS
True
>>> WORKLOADS.unregister("tiny")
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

from repro.errors import ScenarioError

T = TypeVar("T")


class Registry(Generic[T]):
    """A named mapping from string keys to factories, with a register decorator."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, T] = {}

    def register(self, name: str, *, overwrite: bool = False) -> Callable[[T], T]:
        """Decorator registering a factory under ``name``.

        >>> REGISTRY = Registry("demo")
        >>> @REGISTRY.register("x")
        ... def make_x():
        ...     return object()
        """
        if not name or not isinstance(name, str):
            raise ScenarioError(f"{self.kind} registry keys must be non-empty strings")

        def decorator(factory: T) -> T:
            if name in self._entries and not overwrite:
                raise ScenarioError(
                    f"{self.kind} {name!r} is already registered; "
                    f"pass overwrite=True to replace it"
                )
            self._entries[name] = factory
            return factory

        return decorator

    def unregister(self, name: str) -> None:
        """Remove ``name`` (raises :class:`ScenarioError` if absent)."""
        if name not in self._entries:
            raise ScenarioError(f"{self.kind} {name!r} is not registered")
        del self._entries[name]

    def get(self, name: str) -> T:
        """The factory registered under ``name``.

        Unknown names raise :class:`ScenarioError` listing every known key,
        so a typo in a scenario file produces an actionable message.
        """
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(repr(k) for k in self.names()) or "(none)"
            raise ScenarioError(
                f"unknown {self.kind} {name!r}; registered {self.kind}s: {known}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._entries))

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Registry({self.kind}, {list(self.names())})"


#: Planner factories: ``fn(objective, **planner_params) -> Planner``.
PLANNERS: Registry = Registry("planner")

#: Workload factories: ``fn(**workload_params) -> QueryBundle``.
WORKLOADS: Registry = Registry("workload")

#: Failure models: ``fn(topology, plan, *, seed, **params) -> tuple[TaskId, ...]``.
FAILURE_MODELS: Registry = Registry("failure model")

"""String-keyed extension registries behind the declarative scenario API.

A :class:`Scenario <repro.scenarios.spec.Scenario>` names its planner,
workload, failure models and recovery scheme by string; registries resolve
those names to factories.  New entries plug in from *outside* the library
without touching core code:

>>> from repro.scenarios import WORKLOADS
>>> @WORKLOADS.register("tiny")
... def _tiny_bundle():
...     '''A workload someone defined in their own project.'''
...     from repro.workloads import fig6_bundle
...     return fig6_bundle(rate_per_source=100.0, window_seconds=5.0)
>>> "tiny" in WORKLOADS
True
>>> WORKLOADS.unregister("tiny")

The generic :class:`~repro.registry.Registry` class lives at the package
root (:mod:`repro.registry`) so lower layers — notably the engine's
:data:`~repro.engine.recovery.RECOVERY_SCHEMES` — can define registries
without importing the scenario package; it is re-exported here for
backwards compatibility.
"""

from __future__ import annotations

from repro.registry import Registry

__all__ = ["FAILURE_MODELS", "PLANNERS", "Registry", "WORKLOADS"]

#: Planner factories: ``fn(objective, **planner_params) -> Planner``.
PLANNERS: Registry = Registry("planner")

#: Workload factories: ``fn(**workload_params) -> QueryBundle``.
WORKLOADS: Registry = Registry("workload")

#: Failure models: ``fn(topology, plan, *, seed, **params) -> tuple[TaskId, ...]``
#: (or a sequence of :class:`~repro.scenarios.failures.FailureWave` for
#: models that stagger their kills over time).
FAILURE_MODELS: Registry = Registry("failure model")
